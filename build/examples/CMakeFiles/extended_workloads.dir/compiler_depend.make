# Empty compiler generated dependencies file for extended_workloads.
# This may be replaced when dependencies are built.
