file(REMOVE_RECURSE
  "CMakeFiles/extended_workloads.dir/extended_workloads.cpp.o"
  "CMakeFiles/extended_workloads.dir/extended_workloads.cpp.o.d"
  "extended_workloads"
  "extended_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
