# Empty dependencies file for pcapsim.
# This may be replaced when dependencies are built.
