file(REMOVE_RECURSE
  "CMakeFiles/pcapsim.dir/pcapsim.cpp.o"
  "CMakeFiles/pcapsim.dir/pcapsim.cpp.o.d"
  "pcapsim"
  "pcapsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcapsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
