# Empty dependencies file for threshold_learning.
# This may be replaced when dependencies are built.
