file(REMOVE_RECURSE
  "CMakeFiles/threshold_learning.dir/threshold_learning.cpp.o"
  "CMakeFiles/threshold_learning.dir/threshold_learning.cpp.o.d"
  "threshold_learning"
  "threshold_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
