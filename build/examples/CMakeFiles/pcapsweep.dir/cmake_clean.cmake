file(REMOVE_RECURSE
  "CMakeFiles/pcapsweep.dir/pcapsweep.cpp.o"
  "CMakeFiles/pcapsweep.dir/pcapsweep.cpp.o.d"
  "pcapsweep"
  "pcapsweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcapsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
