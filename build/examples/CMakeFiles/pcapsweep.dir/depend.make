# Empty dependencies file for pcapsweep.
# This may be replaced when dependencies are built.
