# Empty compiler generated dependencies file for network_contention.
# This may be replaced when dependencies are built.
