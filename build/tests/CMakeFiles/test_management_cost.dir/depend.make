# Empty dependencies file for test_management_cost.
# This may be replaced when dependencies are built.
