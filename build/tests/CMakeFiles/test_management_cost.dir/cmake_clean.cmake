file(REMOVE_RECURSE
  "CMakeFiles/test_management_cost.dir/test_management_cost.cpp.o"
  "CMakeFiles/test_management_cost.dir/test_management_cost.cpp.o.d"
  "test_management_cost"
  "test_management_cost.pdb"
  "test_management_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_management_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
