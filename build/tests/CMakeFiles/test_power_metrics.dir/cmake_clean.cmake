file(REMOVE_RECURSE
  "CMakeFiles/test_power_metrics.dir/test_power_metrics.cpp.o"
  "CMakeFiles/test_power_metrics.dir/test_power_metrics.cpp.o.d"
  "test_power_metrics"
  "test_power_metrics.pdb"
  "test_power_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
