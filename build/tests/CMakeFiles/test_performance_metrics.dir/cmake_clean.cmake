file(REMOVE_RECURSE
  "CMakeFiles/test_performance_metrics.dir/test_performance_metrics.cpp.o"
  "CMakeFiles/test_performance_metrics.dir/test_performance_metrics.cpp.o.d"
  "test_performance_metrics"
  "test_performance_metrics.pdb"
  "test_performance_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_performance_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
