# Empty dependencies file for test_performance_metrics.
# This may be replaced when dependencies are built.
