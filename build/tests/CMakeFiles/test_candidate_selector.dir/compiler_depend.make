# Empty compiler generated dependencies file for test_candidate_selector.
# This may be replaced when dependencies are built.
