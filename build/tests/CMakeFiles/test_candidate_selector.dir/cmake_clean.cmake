file(REMOVE_RECURSE
  "CMakeFiles/test_candidate_selector.dir/test_candidate_selector.cpp.o"
  "CMakeFiles/test_candidate_selector.dir/test_candidate_selector.cpp.o.d"
  "test_candidate_selector"
  "test_candidate_selector.pdb"
  "test_candidate_selector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_candidate_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
