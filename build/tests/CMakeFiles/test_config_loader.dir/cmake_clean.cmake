file(REMOVE_RECURSE
  "CMakeFiles/test_config_loader.dir/test_config_loader.cpp.o"
  "CMakeFiles/test_config_loader.dir/test_config_loader.cpp.o.d"
  "test_config_loader"
  "test_config_loader.pdb"
  "test_config_loader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
