# Empty dependencies file for test_config_loader.
# This may be replaced when dependencies are built.
