file(REMOVE_RECURSE
  "CMakeFiles/test_job_generator.dir/test_job_generator.cpp.o"
  "CMakeFiles/test_job_generator.dir/test_job_generator.cpp.o.d"
  "test_job_generator"
  "test_job_generator.pdb"
  "test_job_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
