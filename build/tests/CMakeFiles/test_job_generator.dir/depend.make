# Empty dependencies file for test_job_generator.
# This may be replaced when dependencies are built.
