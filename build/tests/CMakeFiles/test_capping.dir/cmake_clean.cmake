file(REMOVE_RECURSE
  "CMakeFiles/test_capping.dir/test_capping.cpp.o"
  "CMakeFiles/test_capping.dir/test_capping.cpp.o.d"
  "test_capping"
  "test_capping.pdb"
  "test_capping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
