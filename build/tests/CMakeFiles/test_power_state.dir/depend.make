# Empty dependencies file for test_power_state.
# This may be replaced when dependencies are built.
