file(REMOVE_RECURSE
  "CMakeFiles/test_power_state.dir/test_power_state.cpp.o"
  "CMakeFiles/test_power_state.dir/test_power_state.cpp.o.d"
  "test_power_state"
  "test_power_state.pdb"
  "test_power_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
