
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_agent.cpp" "tests/CMakeFiles/test_agent.dir/test_agent.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/test_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/pcap_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pcap_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcap_power.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/pcap_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/pcap_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pcap_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pcap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pcap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/pcap_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
