file(REMOVE_RECURSE
  "libpcap_sched.a"
)
