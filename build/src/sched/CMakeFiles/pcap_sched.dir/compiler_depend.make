# Empty compiler generated dependencies file for pcap_sched.
# This may be replaced when dependencies are built.
