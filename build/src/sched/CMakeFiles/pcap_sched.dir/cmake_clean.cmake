file(REMOVE_RECURSE
  "CMakeFiles/pcap_sched.dir/allocation.cpp.o"
  "CMakeFiles/pcap_sched.dir/allocation.cpp.o.d"
  "CMakeFiles/pcap_sched.dir/scheduler.cpp.o"
  "CMakeFiles/pcap_sched.dir/scheduler.cpp.o.d"
  "libpcap_sched.a"
  "libpcap_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
