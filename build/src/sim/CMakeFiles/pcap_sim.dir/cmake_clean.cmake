file(REMOVE_RECURSE
  "CMakeFiles/pcap_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pcap_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pcap_sim.dir/simulation.cpp.o"
  "CMakeFiles/pcap_sim.dir/simulation.cpp.o.d"
  "libpcap_sim.a"
  "libpcap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
