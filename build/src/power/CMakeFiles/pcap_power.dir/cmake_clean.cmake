file(REMOVE_RECURSE
  "CMakeFiles/pcap_power.dir/candidate_selector.cpp.o"
  "CMakeFiles/pcap_power.dir/candidate_selector.cpp.o.d"
  "CMakeFiles/pcap_power.dir/capping.cpp.o"
  "CMakeFiles/pcap_power.dir/capping.cpp.o.d"
  "CMakeFiles/pcap_power.dir/manager.cpp.o"
  "CMakeFiles/pcap_power.dir/manager.cpp.o.d"
  "CMakeFiles/pcap_power.dir/node_controller.cpp.o"
  "CMakeFiles/pcap_power.dir/node_controller.cpp.o.d"
  "CMakeFiles/pcap_power.dir/policies_change_based.cpp.o"
  "CMakeFiles/pcap_power.dir/policies_change_based.cpp.o.d"
  "CMakeFiles/pcap_power.dir/policies_state_based.cpp.o"
  "CMakeFiles/pcap_power.dir/policies_state_based.cpp.o.d"
  "CMakeFiles/pcap_power.dir/policies_thermal.cpp.o"
  "CMakeFiles/pcap_power.dir/policies_thermal.cpp.o.d"
  "CMakeFiles/pcap_power.dir/policy.cpp.o"
  "CMakeFiles/pcap_power.dir/policy.cpp.o.d"
  "CMakeFiles/pcap_power.dir/policy_registry.cpp.o"
  "CMakeFiles/pcap_power.dir/policy_registry.cpp.o.d"
  "CMakeFiles/pcap_power.dir/state.cpp.o"
  "CMakeFiles/pcap_power.dir/state.cpp.o.d"
  "CMakeFiles/pcap_power.dir/thresholds.cpp.o"
  "CMakeFiles/pcap_power.dir/thresholds.cpp.o.d"
  "libpcap_power.a"
  "libpcap_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
