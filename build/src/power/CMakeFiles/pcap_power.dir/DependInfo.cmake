
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/candidate_selector.cpp" "src/power/CMakeFiles/pcap_power.dir/candidate_selector.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/candidate_selector.cpp.o.d"
  "/root/repo/src/power/capping.cpp" "src/power/CMakeFiles/pcap_power.dir/capping.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/capping.cpp.o.d"
  "/root/repo/src/power/manager.cpp" "src/power/CMakeFiles/pcap_power.dir/manager.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/manager.cpp.o.d"
  "/root/repo/src/power/node_controller.cpp" "src/power/CMakeFiles/pcap_power.dir/node_controller.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/node_controller.cpp.o.d"
  "/root/repo/src/power/policies_change_based.cpp" "src/power/CMakeFiles/pcap_power.dir/policies_change_based.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/policies_change_based.cpp.o.d"
  "/root/repo/src/power/policies_state_based.cpp" "src/power/CMakeFiles/pcap_power.dir/policies_state_based.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/policies_state_based.cpp.o.d"
  "/root/repo/src/power/policies_thermal.cpp" "src/power/CMakeFiles/pcap_power.dir/policies_thermal.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/policies_thermal.cpp.o.d"
  "/root/repo/src/power/policy.cpp" "src/power/CMakeFiles/pcap_power.dir/policy.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/policy.cpp.o.d"
  "/root/repo/src/power/policy_registry.cpp" "src/power/CMakeFiles/pcap_power.dir/policy_registry.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/policy_registry.cpp.o.d"
  "/root/repo/src/power/state.cpp" "src/power/CMakeFiles/pcap_power.dir/state.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/state.cpp.o.d"
  "/root/repo/src/power/thresholds.cpp" "src/power/CMakeFiles/pcap_power.dir/thresholds.cpp.o" "gcc" "src/power/CMakeFiles/pcap_power.dir/thresholds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telemetry/CMakeFiles/pcap_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pcap_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pcap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pcap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
