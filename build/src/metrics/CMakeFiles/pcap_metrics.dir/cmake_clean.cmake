file(REMOVE_RECURSE
  "CMakeFiles/pcap_metrics.dir/performance.cpp.o"
  "CMakeFiles/pcap_metrics.dir/performance.cpp.o.d"
  "CMakeFiles/pcap_metrics.dir/power_metrics.cpp.o"
  "CMakeFiles/pcap_metrics.dir/power_metrics.cpp.o.d"
  "CMakeFiles/pcap_metrics.dir/report.cpp.o"
  "CMakeFiles/pcap_metrics.dir/report.cpp.o.d"
  "CMakeFiles/pcap_metrics.dir/trace_analysis.cpp.o"
  "CMakeFiles/pcap_metrics.dir/trace_analysis.cpp.o.d"
  "CMakeFiles/pcap_metrics.dir/trace_recorder.cpp.o"
  "CMakeFiles/pcap_metrics.dir/trace_recorder.cpp.o.d"
  "libpcap_metrics.a"
  "libpcap_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
