
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/performance.cpp" "src/metrics/CMakeFiles/pcap_metrics.dir/performance.cpp.o" "gcc" "src/metrics/CMakeFiles/pcap_metrics.dir/performance.cpp.o.d"
  "/root/repo/src/metrics/power_metrics.cpp" "src/metrics/CMakeFiles/pcap_metrics.dir/power_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/pcap_metrics.dir/power_metrics.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/metrics/CMakeFiles/pcap_metrics.dir/report.cpp.o" "gcc" "src/metrics/CMakeFiles/pcap_metrics.dir/report.cpp.o.d"
  "/root/repo/src/metrics/trace_analysis.cpp" "src/metrics/CMakeFiles/pcap_metrics.dir/trace_analysis.cpp.o" "gcc" "src/metrics/CMakeFiles/pcap_metrics.dir/trace_analysis.cpp.o.d"
  "/root/repo/src/metrics/trace_recorder.cpp" "src/metrics/CMakeFiles/pcap_metrics.dir/trace_recorder.cpp.o" "gcc" "src/metrics/CMakeFiles/pcap_metrics.dir/trace_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pcap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pcap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
