# Empty dependencies file for pcap_metrics.
# This may be replaced when dependencies are built.
