file(REMOVE_RECURSE
  "libpcap_metrics.a"
)
