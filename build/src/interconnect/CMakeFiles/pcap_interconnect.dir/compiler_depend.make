# Empty compiler generated dependencies file for pcap_interconnect.
# This may be replaced when dependencies are built.
