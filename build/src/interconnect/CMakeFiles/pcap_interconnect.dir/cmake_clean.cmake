file(REMOVE_RECURSE
  "CMakeFiles/pcap_interconnect.dir/interconnect.cpp.o"
  "CMakeFiles/pcap_interconnect.dir/interconnect.cpp.o.d"
  "libpcap_interconnect.a"
  "libpcap_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
