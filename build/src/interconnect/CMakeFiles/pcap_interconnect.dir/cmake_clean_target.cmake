file(REMOVE_RECURSE
  "libpcap_interconnect.a"
)
