# Empty compiler generated dependencies file for pcap_common.
# This may be replaced when dependencies are built.
