file(REMOVE_RECURSE
  "libpcap_common.a"
)
