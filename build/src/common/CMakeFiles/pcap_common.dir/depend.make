# Empty dependencies file for pcap_common.
# This may be replaced when dependencies are built.
