file(REMOVE_RECURSE
  "CMakeFiles/pcap_common.dir/config.cpp.o"
  "CMakeFiles/pcap_common.dir/config.cpp.o.d"
  "CMakeFiles/pcap_common.dir/csv.cpp.o"
  "CMakeFiles/pcap_common.dir/csv.cpp.o.d"
  "CMakeFiles/pcap_common.dir/logging.cpp.o"
  "CMakeFiles/pcap_common.dir/logging.cpp.o.d"
  "CMakeFiles/pcap_common.dir/rng.cpp.o"
  "CMakeFiles/pcap_common.dir/rng.cpp.o.d"
  "CMakeFiles/pcap_common.dir/stats.cpp.o"
  "CMakeFiles/pcap_common.dir/stats.cpp.o.d"
  "CMakeFiles/pcap_common.dir/string_util.cpp.o"
  "CMakeFiles/pcap_common.dir/string_util.cpp.o.d"
  "CMakeFiles/pcap_common.dir/thread_pool.cpp.o"
  "CMakeFiles/pcap_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/pcap_common.dir/units.cpp.o"
  "CMakeFiles/pcap_common.dir/units.cpp.o.d"
  "libpcap_common.a"
  "libpcap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
