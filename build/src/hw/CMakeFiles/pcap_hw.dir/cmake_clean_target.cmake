file(REMOVE_RECURSE
  "libpcap_hw.a"
)
