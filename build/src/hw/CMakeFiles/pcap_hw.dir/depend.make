# Empty dependencies file for pcap_hw.
# This may be replaced when dependencies are built.
