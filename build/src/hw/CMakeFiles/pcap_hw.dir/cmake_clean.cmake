file(REMOVE_RECURSE
  "CMakeFiles/pcap_hw.dir/dvfs.cpp.o"
  "CMakeFiles/pcap_hw.dir/dvfs.cpp.o.d"
  "CMakeFiles/pcap_hw.dir/node.cpp.o"
  "CMakeFiles/pcap_hw.dir/node.cpp.o.d"
  "CMakeFiles/pcap_hw.dir/node_spec.cpp.o"
  "CMakeFiles/pcap_hw.dir/node_spec.cpp.o.d"
  "CMakeFiles/pcap_hw.dir/power_meter.cpp.o"
  "CMakeFiles/pcap_hw.dir/power_meter.cpp.o.d"
  "CMakeFiles/pcap_hw.dir/power_model.cpp.o"
  "CMakeFiles/pcap_hw.dir/power_model.cpp.o.d"
  "CMakeFiles/pcap_hw.dir/thermal.cpp.o"
  "CMakeFiles/pcap_hw.dir/thermal.cpp.o.d"
  "libpcap_hw.a"
  "libpcap_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
