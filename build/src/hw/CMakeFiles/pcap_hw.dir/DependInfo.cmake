
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/dvfs.cpp" "src/hw/CMakeFiles/pcap_hw.dir/dvfs.cpp.o" "gcc" "src/hw/CMakeFiles/pcap_hw.dir/dvfs.cpp.o.d"
  "/root/repo/src/hw/node.cpp" "src/hw/CMakeFiles/pcap_hw.dir/node.cpp.o" "gcc" "src/hw/CMakeFiles/pcap_hw.dir/node.cpp.o.d"
  "/root/repo/src/hw/node_spec.cpp" "src/hw/CMakeFiles/pcap_hw.dir/node_spec.cpp.o" "gcc" "src/hw/CMakeFiles/pcap_hw.dir/node_spec.cpp.o.d"
  "/root/repo/src/hw/power_meter.cpp" "src/hw/CMakeFiles/pcap_hw.dir/power_meter.cpp.o" "gcc" "src/hw/CMakeFiles/pcap_hw.dir/power_meter.cpp.o.d"
  "/root/repo/src/hw/power_model.cpp" "src/hw/CMakeFiles/pcap_hw.dir/power_model.cpp.o" "gcc" "src/hw/CMakeFiles/pcap_hw.dir/power_model.cpp.o.d"
  "/root/repo/src/hw/thermal.cpp" "src/hw/CMakeFiles/pcap_hw.dir/thermal.cpp.o" "gcc" "src/hw/CMakeFiles/pcap_hw.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
