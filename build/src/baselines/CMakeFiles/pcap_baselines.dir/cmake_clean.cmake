file(REMOVE_RECURSE
  "CMakeFiles/pcap_baselines.dir/budget_manager.cpp.o"
  "CMakeFiles/pcap_baselines.dir/budget_manager.cpp.o.d"
  "CMakeFiles/pcap_baselines.dir/feedback_manager.cpp.o"
  "CMakeFiles/pcap_baselines.dir/feedback_manager.cpp.o.d"
  "CMakeFiles/pcap_baselines.dir/sla_policy.cpp.o"
  "CMakeFiles/pcap_baselines.dir/sla_policy.cpp.o.d"
  "CMakeFiles/pcap_baselines.dir/uniform_policy.cpp.o"
  "CMakeFiles/pcap_baselines.dir/uniform_policy.cpp.o.d"
  "libpcap_baselines.a"
  "libpcap_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
