# Empty compiler generated dependencies file for pcap_baselines.
# This may be replaced when dependencies are built.
