file(REMOVE_RECURSE
  "libpcap_baselines.a"
)
