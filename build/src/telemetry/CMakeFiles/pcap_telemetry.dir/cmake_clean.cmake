file(REMOVE_RECURSE
  "CMakeFiles/pcap_telemetry.dir/agent.cpp.o"
  "CMakeFiles/pcap_telemetry.dir/agent.cpp.o.d"
  "CMakeFiles/pcap_telemetry.dir/collector.cpp.o"
  "CMakeFiles/pcap_telemetry.dir/collector.cpp.o.d"
  "CMakeFiles/pcap_telemetry.dir/management_cost.cpp.o"
  "CMakeFiles/pcap_telemetry.dir/management_cost.cpp.o.d"
  "libpcap_telemetry.a"
  "libpcap_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
