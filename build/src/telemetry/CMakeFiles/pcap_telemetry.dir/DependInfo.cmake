
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/agent.cpp" "src/telemetry/CMakeFiles/pcap_telemetry.dir/agent.cpp.o" "gcc" "src/telemetry/CMakeFiles/pcap_telemetry.dir/agent.cpp.o.d"
  "/root/repo/src/telemetry/collector.cpp" "src/telemetry/CMakeFiles/pcap_telemetry.dir/collector.cpp.o" "gcc" "src/telemetry/CMakeFiles/pcap_telemetry.dir/collector.cpp.o.d"
  "/root/repo/src/telemetry/management_cost.cpp" "src/telemetry/CMakeFiles/pcap_telemetry.dir/management_cost.cpp.o" "gcc" "src/telemetry/CMakeFiles/pcap_telemetry.dir/management_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/pcap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
