file(REMOVE_RECURSE
  "libpcap_telemetry.a"
)
