# Empty dependencies file for pcap_telemetry.
# This may be replaced when dependencies are built.
