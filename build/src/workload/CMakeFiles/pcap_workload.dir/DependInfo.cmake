
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_model.cpp" "src/workload/CMakeFiles/pcap_workload.dir/app_model.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/app_model.cpp.o.d"
  "/root/repo/src/workload/job.cpp" "src/workload/CMakeFiles/pcap_workload.dir/job.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/job.cpp.o.d"
  "/root/repo/src/workload/job_generator.cpp" "src/workload/CMakeFiles/pcap_workload.dir/job_generator.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/job_generator.cpp.o.d"
  "/root/repo/src/workload/npb.cpp" "src/workload/CMakeFiles/pcap_workload.dir/npb.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/npb.cpp.o.d"
  "/root/repo/src/workload/phase.cpp" "src/workload/CMakeFiles/pcap_workload.dir/phase.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/phase.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/pcap_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/pcap_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/pcap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
