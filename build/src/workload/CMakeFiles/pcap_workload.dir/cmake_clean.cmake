file(REMOVE_RECURSE
  "CMakeFiles/pcap_workload.dir/app_model.cpp.o"
  "CMakeFiles/pcap_workload.dir/app_model.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/job.cpp.o"
  "CMakeFiles/pcap_workload.dir/job.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/job_generator.cpp.o"
  "CMakeFiles/pcap_workload.dir/job_generator.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/npb.cpp.o"
  "CMakeFiles/pcap_workload.dir/npb.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/phase.cpp.o"
  "CMakeFiles/pcap_workload.dir/phase.cpp.o.d"
  "CMakeFiles/pcap_workload.dir/trace.cpp.o"
  "CMakeFiles/pcap_workload.dir/trace.cpp.o.d"
  "libpcap_workload.a"
  "libpcap_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
