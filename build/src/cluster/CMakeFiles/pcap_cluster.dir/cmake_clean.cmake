file(REMOVE_RECURSE
  "CMakeFiles/pcap_cluster.dir/cluster.cpp.o"
  "CMakeFiles/pcap_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/pcap_cluster.dir/config_loader.cpp.o"
  "CMakeFiles/pcap_cluster.dir/config_loader.cpp.o.d"
  "CMakeFiles/pcap_cluster.dir/experiment.cpp.o"
  "CMakeFiles/pcap_cluster.dir/experiment.cpp.o.d"
  "CMakeFiles/pcap_cluster.dir/scenario.cpp.o"
  "CMakeFiles/pcap_cluster.dir/scenario.cpp.o.d"
  "libpcap_cluster.a"
  "libpcap_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
