file(REMOVE_RECURSE
  "libpcap_cluster.a"
)
