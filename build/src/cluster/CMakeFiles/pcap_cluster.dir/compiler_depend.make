# Empty compiler generated dependencies file for pcap_cluster.
# This may be replaced when dependencies are built.
