# Empty dependencies file for bench_policies_extended.
# This may be replaced when dependencies are built.
