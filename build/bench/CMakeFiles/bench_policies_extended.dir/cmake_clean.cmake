file(REMOVE_RECURSE
  "CMakeFiles/bench_policies_extended.dir/bench_policies_extended.cpp.o"
  "CMakeFiles/bench_policies_extended.dir/bench_policies_extended.cpp.o.d"
  "bench_policies_extended"
  "bench_policies_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policies_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
