file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_provision.dir/bench_ablation_provision.cpp.o"
  "CMakeFiles/bench_ablation_provision.dir/bench_ablation_provision.cpp.o.d"
  "bench_ablation_provision"
  "bench_ablation_provision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_provision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
