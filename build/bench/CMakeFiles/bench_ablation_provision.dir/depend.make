# Empty dependencies file for bench_ablation_provision.
# This may be replaced when dependencies are built.
