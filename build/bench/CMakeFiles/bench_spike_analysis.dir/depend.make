# Empty dependencies file for bench_spike_analysis.
# This may be replaced when dependencies are built.
