file(REMOVE_RECURSE
  "CMakeFiles/bench_spike_analysis.dir/bench_spike_analysis.cpp.o"
  "CMakeFiles/bench_spike_analysis.dir/bench_spike_analysis.cpp.o.d"
  "bench_spike_analysis"
  "bench_spike_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spike_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
