# Empty dependencies file for bench_micro_cluster.
# This may be replaced when dependencies are built.
