file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tg.dir/bench_ablation_tg.cpp.o"
  "CMakeFiles/bench_ablation_tg.dir/bench_ablation_tg.cpp.o.d"
  "bench_ablation_tg"
  "bench_ablation_tg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
