file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_policies.dir/bench_fig7_policies.cpp.o"
  "CMakeFiles/bench_fig7_policies.dir/bench_fig7_policies.cpp.o.d"
  "bench_fig7_policies"
  "bench_fig7_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
