// Record a workload trace from one run, then replay the *identical* job
// sequence under two different power managers — the clean way to compare
// policies on exactly the same offered load.
//
//   ./build/examples/trace_replay [trace.csv]
// If a path is given, the recorded trace is also saved there.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "cluster/scenario.hpp"
#include "metrics/report.hpp"

namespace {

using namespace pcap;

struct ReplayOutcome {
  std::string manager;
  metrics::PerformanceSummary perf;
  Watts p_max{0.0};
  double delta_pxt = 0.0;
};

ReplayOutcome replay(const cluster::ExperimentConfig& cfg,
                     const workload::WorkloadTrace& trace,
                     const std::string& manager, Watts provision,
                     Seconds duration) {
  cluster::ClusterConfig cc = cfg.cluster;
  cc.auto_generate_jobs = false;
  cluster::Cluster cl(cc);

  cluster::ExperimentConfig mcfg = cfg;
  mcfg.manager = manager;
  mcfg.training = Seconds{0.0};  // thresholds learned live in this demo
  cl.set_manager(cluster::make_manager(mcfg, cc, provision,
                                       cl.controllable_nodes()));
  cl.load_trace(trace);
  cl.start_recording();
  cl.run(duration);

  ReplayOutcome out;
  out.manager = manager;
  out.perf = metrics::summarize_performance(cl.finished_records());
  const auto power = cl.recorder().power_trace();
  out.p_max = metrics::peak_power(power);
  out.delta_pxt = metrics::accumulated_overspend(power, provision);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pcap;

  cluster::ExperimentConfig cfg = cluster::small_scenario(19);
  cfg.cluster.num_nodes = 32;
  const Seconds duration{2 * 3600.0};

  // Phase 1: run with generation on, recording what arrived.
  cluster::Cluster recorder_run(cfg.cluster);
  recorder_run.run(duration);
  const workload::WorkloadTrace trace = recorder_run.generated_trace();
  std::printf("recorded %zu job arrivals over %.0f h\n", trace.size(),
              duration.value() / 3600.0);
  if (argc > 1) {
    trace.save(argv[1]);
    std::printf("trace saved to %s\n", argv[1]);
  }

  // Shared provision for a fair comparison.
  const Watts peak = cluster::probe_uncapped_peak(cfg.cluster, duration);
  const Watts provision = peak * cfg.provision_fraction;
  std::printf("P_Max = %.0f W\n\n", provision.value());

  // Phase 2: replay the identical sequence under three managers.
  metrics::Table table({"manager", "finished", "perf", "CPLJ", "P_max (W)",
                        "dPxT"});
  for (const char* manager : {"none", "mpc", "hri"}) {
    const ReplayOutcome r = replay(cfg, trace, manager, provision, duration);
    table.cell(r.manager)
        .cell(r.perf.finished_jobs)
        .cell(r.perf.performance, 4)
        .cell_percent(r.perf.lossless_fraction)
        .cell(r.p_max.value(), 0)
        .cell(r.delta_pxt, 5);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nall three rows processed the same arrivals; differences come only\n"
      "from the power manager.\n");
  return 0;
}
