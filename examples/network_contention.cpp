// Power capping with interconnect contention enabled.
//
// With oversubscribed leaf-switch uplinks, communication-heavy phases
// stretch and the power profile flattens (waiting ranks burn less CPU
// power than computing ones — here that shows as longer, cooler jobs).
// This example contrasts a free fabric with an oversubscribed one, both
// capped by MPC, and prints the uplink picture.
//
//   ./build/examples/network_contention
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "cluster/scenario.hpp"
#include "metrics/report.hpp"

namespace {

using namespace pcap;

struct Outcome {
  metrics::PerformanceSummary perf;
  Watts p_max{0.0};
  Watts mean{0.0};
  double worst_fraction = 1.0;
};

Outcome run(cluster::ExperimentConfig cfg) {
  const Watts peak = cluster::probe_uncapped_peak(cfg.cluster, Seconds{1800.0});
  cfg.provision = peak * cfg.provision_fraction;

  cluster::Cluster cl(cfg.cluster);
  cl.set_manager(cluster::make_manager(cfg, cfg.cluster, cfg.provision,
                                       cl.controllable_nodes()));
  cl.run(cfg.training);
  cl.start_recording();

  Outcome out;
  // Run in slices so we can watch the worst delivered fraction.
  for (int slice = 0; slice < 12; ++slice) {
    cl.run(Seconds{900.0});
    for (const double f : cl.last_delivered_fractions()) {
      out.worst_fraction = std::min(out.worst_fraction, f);
    }
  }
  out.perf = metrics::summarize_performance(cl.finished_records());
  const auto trace = cl.recorder().power_trace();
  out.p_max = metrics::peak_power(trace);
  out.mean = metrics::mean_power(trace);
  return out;
}

}  // namespace

int main() {
  using namespace pcap;

  cluster::ExperimentConfig base = cluster::small_scenario(41);
  base.cluster.num_nodes = 32;
  base.training = Seconds{1800.0};
  base.manager = "mpc";

  metrics::Table table({"fabric", "finished", "perf", "CPLJ", "P_max (W)",
                        "mean (W)", "worst delivered"});
  for (const bool contended : {false, true}) {
    cluster::ExperimentConfig cfg = base;
    cfg.cluster.interconnect.enabled = contended;
    cfg.cluster.interconnect.nodes_per_switch = 16;
    cfg.cluster.interconnect.uplink_bandwidth = 6e8;  // heavily oversubscribed
    const Outcome o = run(cfg);
    table.cell(contended ? "oversubscribed" : "free")
        .cell(o.perf.finished_jobs)
        .cell(o.perf.performance, 4)
        .cell_percent(o.perf.lossless_fraction)
        .cell(o.p_max.value(), 0)
        .cell(o.mean.value(), 0)
        .cell(o.worst_fraction, 3);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nnote: 'perf' compares against the contention-free model duration,\n"
      "so the oversubscribed row charges the network's slowdown to the\n"
      "jobs; the capped power envelope is maintained either way.\n");
  return 0;
}
