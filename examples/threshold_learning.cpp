// Watch the threshold learner at work (§III.A): P_L and P_H start from
// the provision capability, adopt the observed peak when training ends,
// and re-adjust every t_p cycles afterwards.
//
//   ./build/examples/threshold_learning
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/scenario.hpp"
#include "metrics/report.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"

int main() {
  using namespace pcap;

  cluster::ExperimentConfig cfg = cluster::small_scenario(7);
  cfg.cluster.num_nodes = 32;

  cluster::Cluster cl(cfg.cluster);

  power::CappingManagerParams params;
  params.thresholds.provision = cl.theoretical_peak() * 0.8;
  // 30 min training, adjust every 10 min, on the 4 s control cycle.
  params.thresholds.training_cycles =
      static_cast<std::int64_t>(1800.0 / cfg.cluster.control_period.value());
  params.thresholds.adjust_period_cycles =
      static_cast<std::int64_t>(600.0 / cfg.cluster.control_period.value());
  params.cycle_period = cfg.cluster.control_period;

  auto manager = std::make_unique<power::CappingManager>(
      params, power::make_policy("mpc"), common::Rng(3));
  manager->set_candidate_set(cl.controllable_nodes());
  const power::CappingManager* mgr = manager.get();
  cl.set_manager(std::move(manager));

  std::printf("provision P_Max = %.0f W (thresholds start from it)\n\n",
              params.thresholds.provision.value());

  metrics::Table table({"t (min)", "phase", "P (W)", "P_peak (W)", "P_L (W)",
                        "P_H (W)", "adjustments"});
  for (int minute = 5; minute <= 90; minute += 5) {
    cl.run(Seconds{300.0});
    const auto& learner = mgr->thresholds();
    table.cell(static_cast<std::int64_t>(minute))
        .cell(learner.training() ? "training" : "managing")
        .cell(cl.last_power().value(), 0)
        .cell(learner.p_peak().value(), 0)
        .cell(learner.p_low().value(), 0)
        .cell(learner.p_high().value(), 0)
        .cell(static_cast<std::int64_t>(learner.adjustments()));
    table.end_row();
  }
  table.print();

  std::printf(
      "\nnote the switch at 30 min: P_peak drops from the provisioned value\n"
      "to the observed training peak, and P_L/P_H follow at 84%%/93%%.\n");
  return 0;
}
