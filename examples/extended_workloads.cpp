// Capping the extended NPB mix (EP/CG/LU/BT/SP + MG/FT/IS).
//
// The paper evaluates five NPB kernels; the workload library also models
// the remaining three. FT's all-to-all transposes and IS's bucket
// redistribution are network-dominated, so their progress barely reacts
// to DVFS — they are nearly free to throttle. This example shows the
// per-application impact of capping and the resulting energy picture.
//
//   ./build/examples/extended_workloads
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "cluster/scenario.hpp"
#include "metrics/report.hpp"

int main() {
  using namespace pcap;

  cluster::ExperimentConfig cfg = cluster::small_scenario(31);
  cfg.cluster.num_nodes = 48;
  cfg.cluster.app_suite = workload::npb_extended_suite(workload::NpbClass::kC);
  cfg.calibration_duration = Seconds{3600.0};
  cfg.training = Seconds{3600.0};
  cfg.measured = Seconds{4 * 3600.0};
  cfg.manager = "mpc";

  const Watts peak =
      cluster::probe_uncapped_peak(cfg.cluster, cfg.calibration_duration);
  cfg.provision = peak * cfg.provision_fraction;
  std::printf("48 nodes, 8-kernel NPB mix, P_Max = %.0f W\n\n",
              cfg.provision.value());

  // Run capped, collecting per-job records.
  cluster::Cluster cl(cfg.cluster);
  cl.set_manager(cluster::make_manager(cfg, cfg.cluster, cfg.provision,
                                       cl.controllable_nodes()));
  cl.run(cfg.training);
  cl.start_recording();
  cl.run(cfg.measured);

  const auto perf = metrics::summarize_performance(cl.finished_records());
  std::printf("overall: %zu jobs finished, Performance(cap) = %.4f, "
              "CPLJ = %.1f%%\n\n",
              perf.finished_jobs, perf.performance,
              perf.lossless_fraction * 100.0);

  metrics::Table table({"app", "jobs", "mean slowdown", "mean energy (MJ)",
                        "mean duration (s)"});
  for (const auto& s : metrics::summarize_by_app(cl.finished_records())) {
    table.cell(s.app)
        .cell(s.jobs)
        .cell_percent(s.mean_slowdown_percent / 100.0)
        .cell(s.mean_energy_j / 1e6, 2)
        .cell(s.mean_duration_s, 0);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nreading guide: short kernels (IS) show the largest *relative*\n"
      "slowdown — one throttle episode is a big fraction of a 20 s run —\n"
      "while long kernels amortise it; per-application energy reflects\n"
      "duration x node power, so BT/SP/LU dominate the energy bill.\n");
  return 0;
}
