// Quickstart: cap a 16-node cluster's power with the MPC policy and
// compare against an unmanaged run.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cluster/scenario.hpp"
#include "metrics/report.hpp"

int main() {
  using namespace pcap;

  // A small scenario: 16 Tianhe-1A boards, NPB class-C jobs arriving
  // whenever the queue drains, 1 s control cycles.
  cluster::ExperimentConfig cfg = cluster::small_scenario(/*seed=*/7);

  // Calibrate the power provision once so both runs share the same P_Max.
  const Watts peak =
      cluster::probe_uncapped_peak(cfg.cluster, cfg.calibration_duration);
  cfg.provision = peak * cfg.provision_fraction;
  std::printf("uncapped probe peak: %.0f W -> provision P_Max = %.0f W\n\n",
              peak.value(), cfg.provision.value());

  metrics::Table table({"manager", "perf", "CPLJ", "P_max (W)", "mean (W)",
                        "dPxT", "yellow", "red"});
  for (const char* manager : {"none", "mpc", "hri"}) {
    cfg.manager = manager;
    const cluster::ExperimentResult r = cluster::run_experiment(cfg);
    table.cell(r.manager)
        .cell(r.perf.performance, 4)
        .cell_percent(r.perf.lossless_fraction)
        .cell(r.p_max.value(), 0)
        .cell(r.mean_power.value(), 0)
        .cell(r.delta_pxt, 5)
        .cell(r.yellow_cycles)
        .cell(r.red_cycles);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nperf = mean(T_uncapped / T_capped) over finished jobs; "
      "dPxT = overspent energy above P_Max / total energy.\n");
  return 0;
}
