// Power capping on a heterogeneous cluster (§III.B property 1: the
// algorithm "is applicable to both heterogeneous and homogeneous systems
// as far as the power states of a node are discrete").
//
// The cluster mixes three node types:
//   * Tianhe-1A boards (10-level DVFS),
//   * low-power nodes (4-level DVFS, different power envelope),
//   * a few uncontrollable nodes (no DVFS facility — the paper's
//     privileged set; they are excluded from A_candidate).
//
//   ./build/examples/heterogeneous_cluster
#include <cstdio>

#include "cluster/experiment.hpp"
#include "hw/node_spec.hpp"
#include "metrics/report.hpp"

int main() {
  using namespace pcap;

  cluster::ExperimentConfig cfg;
  cfg.cluster.npb_class = workload::NpbClass::kC;
  cfg.cluster.scheduler.max_procs_per_node = 3;
  cfg.cluster.seed = 29;
  for (int i = 0; i < 36; ++i) {
    if (i % 6 == 5) {
      cfg.cluster.node_specs.push_back(hw::uncontrollable_node_spec());
    } else if (i % 3 == 2) {
      cfg.cluster.node_specs.push_back(hw::low_power_node_spec());
    } else {
      cfg.cluster.node_specs.push_back(hw::tianhe1a_node_spec());
    }
  }
  cfg.calibration_duration = Seconds{1800.0};
  cfg.training = Seconds{1800.0};
  cfg.measured = Seconds{2 * 3600.0};

  std::size_t tianhe = 0;
  std::size_t low_power = 0;
  std::size_t privileged = 0;
  for (const auto& spec : cfg.cluster.node_specs) {
    if (!spec->controllable) {
      ++privileged;
    } else if (spec->name == "low_power") {
      ++low_power;
    } else {
      ++tianhe;
    }
  }
  std::printf(
      "cluster: %zu Tianhe-1A boards (10 DVFS levels), %zu low-power nodes "
      "(4 levels), %zu uncontrollable (privileged set)\n\n",
      tianhe, low_power, privileged);

  const Watts peak =
      cluster::probe_uncapped_peak(cfg.cluster, cfg.calibration_duration);
  cfg.provision = peak * cfg.provision_fraction;
  std::printf("uncapped peak %.0f W -> P_Max = %.0f W\n\n", peak.value(),
              cfg.provision.value());

  metrics::Table table({"manager", "candidates", "perf", "CPLJ", "P_max (W)",
                        "dPxT", "red (s)"});
  for (const char* manager : {"none", "mpc", "hri"}) {
    cfg.manager = manager;
    const cluster::ExperimentResult r = cluster::run_experiment(cfg);
    table.cell(r.manager)
        .cell(r.candidate_count)
        .cell(r.perf.performance, 4)
        .cell_percent(r.perf.lossless_fraction)
        .cell(r.p_max.value(), 0)
        .cell(r.delta_pxt, 5)
        .cell(r.red_cycles);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nonly the 30 controllable nodes are in A_candidate; Algorithm 1\n"
      "throttles across unequal ladders (a low-power node bottoms out after\n"
      "3 degradations, a Tianhe board after 9) without special-casing.\n");
  return 0;
}
