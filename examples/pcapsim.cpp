// pcapsim — declarative experiment driver.
//
// Runs a capping experiment described by an INI config file (keys are
// documented in src/cluster/config_loader.hpp) and prints the paper's
// metrics. With no file, runs the built-in paper scenario.
//
//   ./build/examples/pcapsim                     # paper scenario, MPC
//   ./build/examples/pcapsim my_experiment.ini
//   ./build/examples/pcapsim --print-config      # show effective defaults
//   ./build/examples/pcapsim --metrics=prom      # + Prometheus dump
//   ./build/examples/pcapsim --metrics=json      # + JSON snapshot dump
//
// Example config:
//   [cluster]
//   nodes = 64
//   seed = 7
//   [manager]
//   policy = hri-c
//   dynamic_candidates = true
//   [experiment]
//   training_h = 1
//   measured_h = 3
//   [telemetry]
//   loss_rate = 0.05
#include <cstdio>
#include <cstring>

#include "cluster/config_loader.hpp"
#include "common/string_util.hpp"
#include "cluster/scenario.hpp"
#include "metrics/report.hpp"

namespace {

void print_effective_defaults() {
  using namespace pcap;
  const cluster::ExperimentConfig cfg = cluster::paper_scenario();
  std::printf(
      "[cluster]\n"
      "nodes = %zu\nseed = %llu\ntick_s = %g\ncontrol_period_s = %g\n"
      "npb_class = D\nmax_procs_per_node = %d\nprivileged_fraction = %g\n"
      "idle_utilization = %g\nutilization_noise = %g\nramp_tau_s = %g\n\n"
      "[manager]\n"
      "policy = %s\ncandidate_count = %d\ndynamic_candidates = false\n"
      "tg_cycles = %lld\nred_margin = %g\nyellow_margin = %g\n"
      "adjust_period_cycles = %lld\n\n"
      "[experiment]\n"
      "training_h = %g\nmeasured_h = %g\ncalibration_h = %g\n"
      "provision_w = %g\nprovision_fraction = %g\n\n"
      "[telemetry]\nloss_rate = 0\ndelay_cycles = 0\n",
      cfg.cluster.num_nodes,
      static_cast<unsigned long long>(cfg.cluster.seed),
      cfg.cluster.tick.value(), cfg.cluster.control_period.value(),
      cfg.cluster.scheduler.max_procs_per_node,
      cfg.cluster.privileged_job_fraction, cfg.cluster.idle_utilization,
      cfg.cluster.utilization_noise_sigma,
      cfg.cluster.utilization_ramp_tau_s, cfg.manager.c_str(),
      cfg.candidate_count,
      static_cast<long long>(cfg.capping.steady_green_cycles),
      cfg.red_margin, cfg.yellow_margin,
      static_cast<long long>(cfg.adjust_period_cycles),
      cfg.training.value() / 3600.0, cfg.measured.value() / 3600.0,
      cfg.calibration_duration.value() / 3600.0, cfg.provision.value(),
      cfg.provision_fraction);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pcap;

  if (argc > 1 && std::strcmp(argv[1], "--print-config") == 0) {
    print_effective_defaults();
    return 0;
  }

  // --metrics=prom|json appends the final registry export (see DESIGN.md
  // §11) to the run's report; any remaining argument is the config file.
  const char* metrics_mode = nullptr;
  const char* config_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_mode = argv[i] + 10;
      if (std::strcmp(metrics_mode, "prom") != 0 &&
          std::strcmp(metrics_mode, "json") != 0) {
        std::fprintf(stderr, "pcapsim: --metrics wants prom or json\n");
        return 1;
      }
    } else {
      config_path = argv[i];
    }
  }

  cluster::ExperimentConfig cfg;
  try {
    cfg = config_path != nullptr ? cluster::experiment_from_file(config_path)
                                 : cluster::paper_scenario();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pcapsim: %s\n", e.what());
    return 1;
  }

  std::printf("pcapsim: %zu nodes, policy %s, training %.1f h, measured "
              "%.1f h, seed %llu\n",
              cfg.cluster.num_nodes ? cfg.cluster.num_nodes
                                    : cfg.cluster.node_specs.size(),
              cfg.manager.c_str(), cfg.training.value() / 3600.0,
              cfg.measured.value() / 3600.0,
              static_cast<unsigned long long>(cfg.cluster.seed));

  const cluster::ExperimentResult r = cluster::run_experiment(cfg);

  metrics::Table table({"metric", "value"});
  table.cell("manager").cell(r.manager);
  table.end_row();
  table.cell("|A_candidate|").cell(r.candidate_count);
  table.end_row();
  table.cell("finished jobs").cell(r.perf.finished_jobs);
  table.end_row();
  table.cell("Performance(cap)").cell(r.perf.performance, 4);
  table.end_row();
  table.cell("CPLJ").cell_percent(r.perf.lossless_fraction);
  table.end_row();
  table.cell("mean slowdown").cell_percent(
      r.perf.mean_slowdown_percent / 100.0);
  table.end_row();
  table.cell("P_Max (provision, W)").cell(r.provision.value(), 0);
  table.end_row();
  table.cell("P_max observed (W)").cell(r.p_max.value(), 0);
  table.end_row();
  table.cell("mean power (W)").cell(r.mean_power.value(), 0);
  table.end_row();
  table.cell("energy (MJ)").cell(r.energy.value() / 1e6, 1);
  table.end_row();
  table.cell("dPxT").cell(r.delta_pxt, 5);
  table.end_row();
  table.cell("P_L / P_H (W)").cell(common::strprintf(
      "%.0f / %.0f", r.p_low.value(), r.p_high.value()));
  table.end_row();
  table.cell("green/yellow/red (s)").cell(common::strprintf(
      "%zu / %zu / %zu", r.green_cycles, r.yellow_cycles, r.red_cycles));
  table.end_row();
  table.cell("never red").cell(r.never_red ? "yes" : "no");
  table.end_row();
  table.cell("DVFS transitions").cell(r.transitions);
  table.end_row();
  table.print();

  if (metrics_mode != nullptr) {
    std::printf("\n%s", std::strcmp(metrics_mode, "prom") == 0
                            ? r.metrics_prometheus.c_str()
                            : r.metrics_json.c_str());
  }
  return 0;
}
