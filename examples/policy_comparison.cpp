// Compare every target set selection policy on the paper's 128-node
// Tianhe-1A scenario (shortened runs so the example finishes in seconds).
//
//   ./build/examples/policy_comparison [seed]
#include <cstdio>
#include <cstdlib>

#include "cluster/scenario.hpp"
#include "metrics/report.hpp"
#include "power/policy_registry.hpp"

int main(int argc, char** argv) {
  using namespace pcap;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  cluster::ExperimentConfig cfg = cluster::paper_scenario(seed);
  cfg.calibration_duration = Seconds{3600.0};
  cfg.training = Seconds{3600.0};
  cfg.measured = Seconds{3 * 3600.0};

  // Share one calibrated provision across all policies.
  const Watts peak =
      cluster::probe_uncapped_peak(cfg.cluster, cfg.calibration_duration);
  cfg.provision = peak * cfg.provision_fraction;
  std::printf("128-node Tianhe-1A scenario, seed %llu, P_Max = %.0f W\n\n",
              static_cast<unsigned long long>(seed), cfg.provision.value());

  metrics::Table table(
      {"policy", "perf", "CPLJ", "P_max (W)", "dPxT", "yellow (s)", "red (s)"});
  std::vector<std::string> managers = {"none"};
  for (const std::string& name : power::policy_names()) {
    managers.push_back(name);
  }
  for (const std::string& manager : managers) {
    cfg.manager = manager;
    const cluster::ExperimentResult r = cluster::run_experiment(cfg);
    table.cell(r.manager)
        .cell(r.perf.performance, 4)
        .cell_percent(r.perf.lossless_fraction)
        .cell(r.p_max.value(), 0)
        .cell(r.delta_pxt, 5)
        .cell(r.yellow_cycles)
        .cell(r.red_cycles);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nperf = Performance(cap) = mean(T_j / T_cap,j); CPLJ = fraction of\n"
      "jobs finishing without measurable slowdown; dPxT = the paper's\n"
      "accumulative effect of overspending against P_Max.\n");
  return 0;
}
