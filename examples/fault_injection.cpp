// Fault injection: capping while the telemetry plane degrades underneath
// the manager. Agent reports get lost and delayed, agents drop out and
// restart, nodes crash and rejoin, and a fraction of delivered power
// estimates arrive corrupted. The architecture must keep the cap without
// ever throwing: stale and missing nodes get conservative fallback
// estimates and are excluded from target selection.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/fault_injection
#include <cstdio>

#include "cluster/scenario.hpp"
#include "metrics/report.hpp"

int main() {
  using namespace pcap;

  cluster::ExperimentConfig cfg = cluster::faulty_telemetry_scenario(23);

  const Watts peak =
      cluster::probe_uncapped_peak(cfg.cluster, cfg.calibration_duration);
  cfg.provision = peak * cfg.provision_fraction;
  std::printf("uncapped probe peak: %.0f W -> provision P_Max = %.0f W\n",
              peak.value(), cfg.provision.value());
  std::printf(
      "fault model: %.0f%% report loss, %d-cycle delay, %.1f%%/cycle agent "
      "dropout, %.2g/cycle crash rate (%d-cycle windows), %.1f%% corruption\n"
      "staleness: views older than %lld cycles fall back to last-known power "
      "x %.2f\n\n",
      cfg.transport.loss_rate * 100.0, cfg.transport.delay_cycles,
      cfg.faults.agent_dropout_rate * 100.0, cfg.faults.crash_rate,
      cfg.faults.crash_duration_cycles, cfg.faults.corruption_rate * 100.0,
      static_cast<long long>(cfg.max_sample_age_cycles),
      1.0 + cfg.stale_power_margin);

  metrics::Table table({"manager", "faults", "perf", "P_max (W)", "dPxT",
                        "stale", "skipped", "lost", "silent", "corrupt",
                        "crashes"});
  struct Row {
    const char* manager;
    bool faulty;
  };
  // mpc filters stale nodes out of target selection itself; the uniform
  // baseline does not, so its row shows the engine's defensive skip
  // counter instead.
  for (const Row row : {Row{"mpc", false}, Row{"mpc", true},
                        Row{"uniform", true}}) {
    cluster::ExperimentConfig run = cfg;
    run.manager = row.manager;
    const bool faulty = row.faulty;
    if (!faulty) {
      run.transport = telemetry::TransportParams{};
      run.faults = telemetry::FaultParams{};
    }
    const cluster::ExperimentResult r = cluster::run_experiment(run);
    table.cell(r.manager)
        .cell(faulty ? "on" : "off")
        .cell(r.perf.performance, 4)
        .cell(r.p_max.value(), 0)
        .cell(r.delta_pxt, 5)
        .cell(r.stale_node_cycles)
        .cell(r.skipped_targets)
        .cell(r.samples_lost)
        .cell(r.samples_suppressed)
        .cell(r.samples_corrupted)
        .cell(r.crash_events);
    table.end_row();
    if (faulty && r.p_max > r.provision) {
      std::printf("WARNING: %s: P_max %.0f W exceeded the provision under "
                  "faults\n",
                  r.manager.c_str(), r.p_max.value());
    }
  }
  table.print();

  std::printf(
      "\nstale = node-cycles decided on a fallback estimate; skipped = "
      "policy targets the engine refused;\nlost/silent/corrupt = reports "
      "dropped in transit / never sent / delivered with garbage power.\n");
  return 0;
}
