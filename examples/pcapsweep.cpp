// pcapsweep — sweep one experiment parameter and print a comparison table.
//
//   ./build/examples/pcapsweep policy mpc hri lpc uniform
//   ./build/examples/pcapsweep candidates 0 16 48 128
//   ./build/examples/pcapsweep seed 1 2 3 4
//   ./build/examples/pcapsweep tg 1 5 10 40
//
// Optional leading flag: --config <file.ini> applies a base config first.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/config_loader.hpp"
#include "cluster/scenario.hpp"
#include "common/thread_pool.hpp"
#include "metrics/report.hpp"

namespace {

using namespace pcap;

int usage() {
  std::fprintf(stderr,
               "usage: pcapsweep [--config file.ini] "
               "<policy|candidates|seed|tg> <value>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pcap;

  int arg = 1;
  cluster::ExperimentConfig base = cluster::paper_scenario();
  base.training = Seconds{3600.0};
  base.measured = Seconds{3 * 3600.0};
  if (arg < argc && std::strcmp(argv[arg], "--config") == 0) {
    if (arg + 1 >= argc) return usage();
    try {
      base = cluster::experiment_from_file(argv[arg + 1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pcapsweep: %s\n", e.what());
      return 1;
    }
    arg += 2;
  }
  if (arg >= argc) return usage();
  const std::string dimension = argv[arg++];
  std::vector<std::string> values(argv + arg, argv + argc);
  if (values.empty()) return usage();

  // One shared provision so rows are comparable.
  if (base.provision <= Watts{0.0}) {
    const Watts peak =
        cluster::probe_uncapped_peak(base.cluster, base.calibration_duration);
    base.provision = peak * base.provision_fraction;
  }
  std::printf("sweeping '%s' over %zu values; P_Max = %.0f W\n\n",
              dimension.c_str(), values.size(), base.provision.value());

  std::vector<cluster::ExperimentConfig> configs;
  for (const std::string& v : values) {
    cluster::ExperimentConfig cfg = base;
    if (dimension == "policy") {
      cfg.manager = v;
    } else if (dimension == "candidates") {
      cfg.candidate_count = std::atoi(v.c_str());
    } else if (dimension == "seed") {
      cfg.cluster.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (dimension == "tg") {
      cfg.capping.steady_green_cycles = std::atoll(v.c_str());
    } else {
      return usage();
    }
    configs.push_back(std::move(cfg));
  }

  std::vector<cluster::ExperimentResult> results(configs.size());
  common::ThreadPool pool;
  pool.parallel_for(configs.size(), [&](std::size_t i) {
    results[i] = cluster::run_experiment(configs[i]);
  });

  metrics::Table table({dimension, "perf", "CPLJ", "P_max (W)", "dPxT",
                        "yellow (s)", "red (s)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.cell(values[i])
        .cell(r.perf.performance, 4)
        .cell_percent(r.perf.lossless_fraction)
        .cell(r.p_max.value(), 0)
        .cell(r.delta_pxt, 5)
        .cell(r.yellow_cycles)
        .cell(r.red_cycles);
    table.end_row();
  }
  table.print();
  return 0;
}
