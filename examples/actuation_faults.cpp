// Actuation faults: capping while the *command* path degrades underneath
// the manager. DVFS level commands get lost in transit or land cycles
// late, transitions fail or stall part-way, and nodes reboot — silently
// resetting to full power mid-degradation. Telemetry stays healthy: the
// point is isolating the actuation plane, which the manager closes the
// loop around with telemetry acks, retry/backoff, and healing commands.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/actuation_faults
#include <cstdio>

#include "cluster/scenario.hpp"
#include "metrics/report.hpp"

int main() {
  using namespace pcap;

  cluster::ExperimentConfig cfg = cluster::lossy_actuation_scenario(31);

  const Watts peak =
      cluster::probe_uncapped_peak(cfg.cluster, cfg.calibration_duration);
  cfg.provision = peak * cfg.provision_fraction;
  std::printf("uncapped probe peak: %.0f W -> provision P_Max = %.0f W\n",
              peak.value(), cfg.provision.value());
  std::printf(
      "actuation model: %.0f%% command loss, %d-cycle delivery delay, "
      "%.0f%% failed / %.0f%% partial transitions,\n  %.2g/cycle reboot "
      "rate (%d-cycle windows, node resets to full power)\n"
      "reconciliation: retry after %d cycles, doubling to a %d-cycle cap, "
      "%d retries before a node is abandoned\n\n",
      cfg.actuation.command_loss_rate * 100.0,
      cfg.actuation.delivery_delay_cycles,
      cfg.actuation.transition_failure_rate * 100.0,
      cfg.actuation.partial_transition_rate * 100.0,
      cfg.actuation.reboot_rate, cfg.actuation.reboot_duration_cycles,
      cfg.reconciliation.retry_backoff_base_cycles,
      cfg.reconciliation.retry_backoff_cap_cycles,
      cfg.reconciliation.max_retries);

  metrics::Table table({"manager", "faults", "perf", "P_max (W)", "dPxT",
                        "retries", "heals", "lost", "reboots", "partial",
                        "abandoned"});
  struct Row {
    const char* manager;
    bool faulty;
  };
  for (const Row row : {Row{"mpc", false}, Row{"mpc", true},
                        Row{"uniform", true}}) {
    cluster::ExperimentConfig run = cfg;
    run.manager = row.manager;
    const bool faulty = row.faulty;
    if (!faulty) run.actuation = power::ActuationFaultParams{};
    const cluster::ExperimentResult r = cluster::run_experiment(run);
    table.cell(r.manager)
        .cell(faulty ? "on" : "off")
        .cell(r.perf.performance, 4)
        .cell(r.p_max.value(), 0)
        .cell(r.delta_pxt, 5)
        .cell(r.command_retries)
        .cell(r.heals)
        .cell(r.commands_lost)
        .cell(r.reboot_events)
        .cell(r.transitions_partial)
        .cell(r.commands_abandoned);
    table.end_row();
    if (faulty && r.p_max > r.provision) {
      std::printf("WARNING: %s: P_max %.0f W exceeded the provision under "
                  "actuation faults\n",
                  r.manager.c_str(), r.p_max.value());
    }
  }
  table.print();

  std::printf(
      "\nretries = unacked commands re-sent; heals = divergences commanded "
      "back to the believed level;\nlost/reboots/partial = ground truth the "
      "channel injected; abandoned = retry budgets exhausted.\n");
  return 0;
}
