// Controller outages: capping while the *controller itself* fails. The
// whole control plane blacks out for stretches of cycles, individual zone
// shards crash on their own windows, and control cycles stall. Node-local
// failsafe watchdogs step silent nodes down to a safe operating point;
// when the controller returns, its reconciler adopts the watchdog-imposed
// levels instead of healing them away, and the root conservatively
// re-plans around orphaned zones while their shards are down.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/controller_outage
#include <cstdio>

#include "cluster/scenario.hpp"
#include "metrics/report.hpp"

int main() {
  using namespace pcap;

  cluster::ExperimentConfig cfg = cluster::controller_outage_scenario(47);

  const Watts peak =
      cluster::probe_uncapped_peak(cfg.cluster, cfg.calibration_duration);
  cfg.provision = peak * cfg.provision_fraction;
  std::printf("uncapped probe peak: %.0f W -> provision P_Max = %.0f W\n",
              peak.value(), cfg.provision.value());
  std::printf(
      "control-fault model: %.2g/cycle root blackout (%d-cycle windows), "
      "%.2g/cycle zone-shard crash (%d-cycle windows),\n  %.2g/cycle "
      "stalls up to %d cycles; watchdog trips after %lld silent cycles "
      "to level %d\n\n",
      cfg.control.outage_rate, cfg.control.outage_duration_cycles,
      cfg.control.zone_outage_rate, cfg.control.zone_outage_duration_cycles,
      cfg.control.delay_rate, cfg.control.delay_max_cycles,
      static_cast<long long>(cfg.cluster.watchdog.timeout_cycles),
      cfg.cluster.watchdog.safe_level);

  metrics::Table table({"manager", "faults", "perf", "P_max (W)", "dPxT",
                        "outages", "dead cyc", "zone cyc", "engaged",
                        "adopted", "diverged"});
  struct Row {
    const char* manager;
    bool faulty;
  };
  for (const Row row : {Row{"mpc", false}, Row{"mpc", true}}) {
    cluster::ExperimentConfig run = cfg;
    run.manager = row.manager;
    const bool faulty = row.faulty;
    if (!faulty) {
      run.control = power::ControlFaultParams{};
      run.cluster.watchdog = hw::WatchdogParams{};
    }
    const cluster::ExperimentResult r = cluster::run_experiment(run);
    table.cell(r.manager)
        .cell(faulty ? "on" : "off")
        .cell(r.perf.performance, 4)
        .cell(r.p_max.value(), 0)
        .cell(r.delta_pxt, 5)
        .cell(r.ctrl_outages)
        .cell(r.ctrl_outage_cycles)
        .cell(r.ctrl_zone_outage_cycles)
        .cell(r.watchdog_engagements)
        .cell(r.watchdog_adoptions)
        .cell(r.divergences);
    table.end_row();
    if (faulty && r.p_max > r.provision) {
      std::printf("WARNING: %s: P_max %.0f W exceeded the provision under "
                  "controller outages\n",
                  r.manager.c_str(), r.p_max.value());
    }
  }
  table.print();

  std::printf(
      "\noutages/dead cyc = root blackouts and the cycles they silenced; "
      "zone cyc = per-shard crash cycles;\nengaged = nodes the failsafe "
      "stepped down; adopted = watchdog levels the returning controller "
      "absorbed\nwithout divergence warnings (diverged counts the warnings "
      "that did fire).\n");
  return 0;
}
