// Microbenchmarks of the simulation substrate's hot paths: scheduler
// allocation, telemetry collection, and whole-cluster ticks — the costs
// that bound how much simulated time the harness can chew per wall
// second.
#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "cluster/scenario.hpp"
#include "hw/node_spec.hpp"
#include "telemetry/collector.hpp"
#include "workload/job_generator.hpp"

namespace {

using namespace pcap;

void BM_SchedulerLaunchRelease(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sched::Scheduler sched(std::vector<int>(n, 12), {}, common::Rng(1));
  auto gen = workload::JobGenerator::paper_default(common::Rng(2),
                                                   sched.max_job_width(),
                                                   workload::NpbClass::kC);
  workload::JobId next = 0;
  for (auto _ : state) {
    sched.submit(gen.next(Seconds{0.0}));
    sched.try_launch(Seconds{0.0});
    // Finish and retire everything so the pool never exhausts.
    std::vector<workload::JobId> done;
    for (const auto id : sched.running_jobs()) {
      workload::Job* j = sched.find(id);
      j->advance(Seconds{1e9}, 1.0, Seconds{1e9});
      done.push_back(id);
    }
    for (const auto id : done) sched.on_job_finished(id);
    benchmark::DoNotOptimize(next);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SchedulerLaunchRelease)->Arg(32)->Arg(128);

void BM_CollectorSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<hw::Node> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.emplace_back(static_cast<hw::NodeId>(i), hw::tianhe1a_node_spec());
  }
  telemetry::Collector collector({}, common::Rng(3));
  std::vector<hw::NodeId> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back(static_cast<hw::NodeId>(i));
  collector.set_candidate_set(ids);
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    collector.collect(nodes, Seconds{t}, 16);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CollectorSweep)->RangeMultiplier(4)->Range(8, 512)->Complexity();

void BM_ClusterTick(benchmark::State& state) {
  cluster::ExperimentConfig cfg = cluster::paper_scenario(5);
  cluster::Cluster cl(cfg.cluster);
  cl.run(Seconds{600.0});  // warm: jobs placed, phases active
  for (auto _ : state) {
    cl.run(Seconds{1.0});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("128-node cluster, 1 simulated second per iteration");
}
BENCHMARK(BM_ClusterTick);

}  // namespace

BENCHMARK_MAIN();
