// Figure 7 — Power capping results of different policies (full candidate
// set, 128 nodes), plus the §V.D headline claims:
//   * system performance loss ~2% for both MPC and HRI,
//   * P_max reduced ~10%,
//   * ΔP×T reduced by 73% (MPC) and 66% (HRI),
//   * CPLJ(MPC) > CPLJ(HRI) (paper: by 1.4%),
//   * the system never enters the red state while capping is active.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcap;
  using namespace pcap::bench;

  print_header(
      "Figure 7: power capping results of different policies "
      "(|A_candidate| = 128)",
      "~2% performance loss, ~10% lower P_max, dPxT -73% (MPC) / -66% "
      "(HRI), CPLJ(MPC) > CPLJ(HRI), never red");

  cluster::ExperimentConfig base = cluster::paper_scenario();
  base.provision = calibrate_provision(base);
  std::printf("calibrated provision P_Max = %.0f W (training %.0f h, "
              "measured %.0f h simulated)\n",
              base.provision.value(), base.training.value() / 3600.0,
              base.measured.value() / 3600.0);

  const std::vector<std::uint64_t> seeds = {42, 1234, 777};
  common::ThreadPool pool;

  cluster::ExperimentConfig none = base;
  none.manager = "none";
  const AveragedResult baseline = average_over_seeds(none, seeds, pool);

  metrics::Table table({"policy", "perf", "CPLJ", "P_max (W)", "P_max vs none",
                        "dPxT", "dPxT reduction", "yellow (s)", "red (s)"});
  const auto add_row = [&](const AveragedResult& r) {
    const double pmax_delta = r.p_max_w / baseline.p_max_w - 1.0;
    const double dpxt_red =
        baseline.delta_pxt > 0.0 ? 1.0 - r.delta_pxt / baseline.delta_pxt
                                 : 0.0;
    table.cell(r.manager)
        .cell(r.performance, 4)
        .cell_percent(r.lossless_fraction)
        .cell(r.p_max_w, 0)
        .cell_percent(pmax_delta)
        .cell(r.delta_pxt, 5)
        .cell_percent(dpxt_red)
        .cell(r.yellow_s, 0)
        .cell(r.red_s, 0);
    table.end_row();
  };

  add_row(baseline);
  AveragedResult mpc;
  AveragedResult hri;
  AveragedResult mpc_c;
  AveragedResult hri_c;
  AveragedResult pi_c;
  AveragedResult pred_c;
  for (const char* policy :
       {"mpc", "hri", "mpc-c", "hri-c", "pi-c", "pred-c"}) {
    cluster::ExperimentConfig cfg = base;
    cfg.manager = policy;
    const AveragedResult r = average_over_seeds(cfg, seeds, pool);
    add_row(r);
    const std::string name = policy;
    if (name == "mpc") mpc = r;
    if (name == "hri") hri = r;
    if (name == "mpc-c") mpc_c = r;
    if (name == "hri-c") hri_c = r;
    if (name == "pi-c") pi_c = r;
    if (name == "pred-c") pred_c = r;
  }
  table.print();

  std::printf("\nheadline checks vs the paper:\n");
  std::printf("  performance loss: MPC %.1f%%, HRI %.1f%% (paper ~2%%)\n",
              (1.0 - mpc.performance) * 100.0, (1.0 - hri.performance) * 100.0);
  std::printf("  P_max reduction: MPC %.1f%%, HRI %.1f%% (paper ~10%%)\n",
              (1.0 - mpc.p_max_w / baseline.p_max_w) * 100.0,
              (1.0 - hri.p_max_w / baseline.p_max_w) * 100.0);
  std::printf("  dPxT reduction: MPC %.0f%%, HRI %.0f%% (paper 73%% / 66%%)\n",
              (1.0 - mpc.delta_pxt / baseline.delta_pxt) * 100.0,
              (1.0 - hri.delta_pxt / baseline.delta_pxt) * 100.0);
  std::printf("  CPLJ: MPC %.1f%% vs HRI %.1f%% (paper: MPC higher by 1.4%%)"
              " -> %s\n",
              mpc.lossless_fraction * 100.0, hri.lossless_fraction * 100.0,
              mpc.lossless_fraction > hri.lossless_fraction ? "ordering holds"
                                                            : "MISMATCH");
  std::printf("  dPxT ordering MPC better than HRI -> %s\n",
              mpc.delta_pxt <= hri.delta_pxt ? "holds" : "MISMATCH");
  std::printf("  red state with capping: MPC %.1f s, HRI %.1f s per 12 h "
              "(paper: never)\n",
              mpc.red_s, hri.red_s);

  // Predictive capping (ROADMAP): the forecast-driven policies must beat
  // the best reactive collections on overspend and red excursions while
  // giving up no more than ~2% of Performance(cap)/CPLJ.
  std::printf("\npredictive capping (PI-C / PRED-C vs reactive "
              "collections):\n");
  const AveragedResult& best_reactive =
      mpc_c.delta_pxt <= hri_c.delta_pxt ? mpc_c : hri_c;
  const auto pred_line = [&](const AveragedResult& r) {
    std::printf("  %-7s dPxT %.5f (%+.0f%% vs %s), red %.1f (vs %.1f), "
                "perf %.4f (%+.2f%%), CPLJ %.1f%% (%+.2f pp), "
                "elevations %.0f, overshoots %.0f, misses %.0f\n",
                r.manager.c_str(), r.delta_pxt,
                best_reactive.delta_pxt > 0.0
                    ? (r.delta_pxt / best_reactive.delta_pxt - 1.0) * 100.0
                    : 0.0,
                best_reactive.manager.c_str(), r.red_s, best_reactive.red_s,
                r.performance,
                (r.performance / best_reactive.performance - 1.0) * 100.0,
                r.lossless_fraction * 100.0,
                (r.lossless_fraction - best_reactive.lossless_fraction) *
                    100.0,
                r.predictive_elevations, r.predictor_overshoots,
                r.predictor_misses);
  };
  pred_line(pi_c);
  pred_line(pred_c);
  const auto holds = [&](const AveragedResult& r) {
    return r.delta_pxt <= best_reactive.delta_pxt &&
           r.red_s <= best_reactive.red_s &&
           r.performance >= best_reactive.performance * 0.98 &&
           r.lossless_fraction >= best_reactive.lossless_fraction - 0.02;
  };
  // The claim is "a forecast-driven policy acts before the threshold is
  // crossed", not "every tuning of one does": it holds when at least one
  // of PI-C/PRED-C dominates the best reactive collection.
  std::printf("  acts-before-threshold (lower dPxT, no more red, perf/CPLJ "
              "within 2%%): PI-C %s, PRED-C %s -> claim %s\n",
              holds(pi_c) ? "holds" : "short", holds(pred_c) ? "holds" : "short",
              holds(pi_c) || holds(pred_c) ? "holds" : "MISMATCH");
  return 0;
}
