// Microbenchmarks: formula (1) evaluation and policy selection cost.
//
// The power profile model runs once per candidate node per control cycle
// on every node agent, and the policy runs on the management node; both
// must be cheap at 128+ node scale.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "hw/node_spec.hpp"
#include "power/policy_registry.hpp"

namespace {

using namespace pcap;

hw::OperatingPoint random_op(common::Rng& rng, const hw::NodeSpec& spec) {
  hw::OperatingPoint op;
  op.cpu_utilization = rng.uniform();
  op.mem_used = spec.mem_total * rng.uniform();
  op.mem_total = spec.mem_total;
  op.nic_bytes = Bytes{rng.uniform(0.0, 5e9)};
  op.tau = Seconds{1.0};
  op.nic_bandwidth = spec.nic_bandwidth;
  return op;
}

void BM_Formula1(benchmark::State& state) {
  const auto spec = hw::tianhe1a_node_spec();
  common::Rng rng(1);
  std::vector<hw::OperatingPoint> ops;
  for (int i = 0; i < 1024; ++i) ops.push_back(random_op(rng, *spec));
  std::size_t i = 0;
  for (auto _ : state) {
    const Watts p = spec->power_model.power(
        static_cast<hw::Level>(i % 10), ops[i % ops.size()]);
    benchmark::DoNotOptimize(p);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Formula1);

void BM_NodeTruePower(benchmark::State& state) {
  const auto spec = hw::tianhe1a_node_spec();
  common::Rng rng(2);
  hw::Node node(0, spec, &rng);
  node.set_operating_point(random_op(rng, *spec));
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.true_power());
  }
}
BENCHMARK(BM_NodeTruePower);

power::PolicyContext make_context(std::size_t n_nodes, std::size_t n_jobs,
                                  std::uint64_t seed) {
  common::Rng rng(seed);
  power::PolicyContext ctx;
  ctx.p_low = Watts{1000.0};
  ctx.system_power = Watts{1100.0};
  for (std::size_t i = 0; i < n_nodes; ++i) {
    power::NodeView nv;
    nv.id = static_cast<hw::NodeId>(i);
    nv.level = static_cast<hw::Level>(rng.uniform_int(1, 9));
    nv.highest_level = 9;
    nv.busy = true;
    nv.power = Watts{rng.uniform(150.0, 400.0)};
    nv.power_prev = Watts{rng.uniform(150.0, 400.0)};
    nv.power_one_level_down = nv.power - Watts{15.0};
    ctx.nodes.push_back(nv);
  }
  ctx.index_nodes();
  for (std::size_t j = 0; j < n_jobs; ++j) {
    power::JobView jv;
    jv.id = j;
    for (std::size_t i = j; i < n_nodes; i += n_jobs) {
      jv.nodes.push_back(static_cast<hw::NodeId>(i));
      jv.power += ctx.nodes[i].power;
      jv.power_prev += ctx.nodes[i].power_prev;
    }
    if (!jv.nodes.empty()) ctx.jobs.push_back(std::move(jv));
  }
  return ctx;
}

void BM_PolicySelect(benchmark::State& state, const char* name) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ctx = make_context(n, std::max<std::size_t>(1, n / 8), 7);
  const power::PolicyPtr policy = power::make_policy(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->select(ctx));
  }
  state.SetComplexityN(state.range(0));
}

void BM_SelectMpc(benchmark::State& s) { BM_PolicySelect(s, "mpc"); }
void BM_SelectMpcC(benchmark::State& s) { BM_PolicySelect(s, "mpc-c"); }
void BM_SelectHri(benchmark::State& s) { BM_PolicySelect(s, "hri"); }
void BM_SelectHriC(benchmark::State& s) { BM_PolicySelect(s, "hri-c"); }
void BM_SelectBfp(benchmark::State& s) { BM_PolicySelect(s, "bfp"); }

BENCHMARK(BM_SelectMpc)->RangeMultiplier(4)->Range(8, 512)->Complexity();
BENCHMARK(BM_SelectMpcC)->RangeMultiplier(4)->Range(8, 512)->Complexity();
BENCHMARK(BM_SelectHri)->RangeMultiplier(4)->Range(8, 512)->Complexity();
BENCHMARK(BM_SelectHriC)->RangeMultiplier(4)->Range(8, 512)->Complexity();
BENCHMARK(BM_SelectBfp)->RangeMultiplier(4)->Range(8, 512)->Complexity();

}  // namespace

BENCHMARK_MAIN();
