// Ablation: the 7% / 16% threshold margins (§III.A).
//
// The paper derives P_H = 93% and P_L = 84% of P_peak from Fan et al.'s
// observed 7%-16% gap between achieved and theoretical aggregate power.
// This bench sweeps alternative (red, yellow) margin pairs to show the
// trade-off the chosen pair balances: tight margins protect the provision
// but throttle constantly; loose margins preserve performance but let
// overspending through.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcap;
  using namespace pcap::bench;

  print_header(
      "Ablation: threshold margins (paper: red 7%, yellow 16%)",
      "P_H = (1-red)*P_peak, P_L = (1-yellow)*P_peak; the paper picks "
      "7%/16% from Fan et al.");

  cluster::ExperimentConfig base = cluster::paper_scenario();
  base.training = Seconds{2 * 3600.0};
  base.measured = Seconds{6 * 3600.0};
  base.provision = calibrate_provision(base);
  base.manager = "mpc";
  std::printf("calibrated provision P_Max = %.0f W\n", base.provision.value());

  const std::vector<std::uint64_t> seeds = {42, 1234};
  common::ThreadPool pool;

  cluster::ExperimentConfig none = base;
  none.manager = "none";
  const AveragedResult baseline = average_over_seeds(none, seeds, pool);

  struct Margins {
    double red;
    double yellow;
    const char* note;
  };
  const Margins sweep[] = {
      {0.02, 0.06, "very loose"},
      {0.04, 0.10, "loose"},
      {0.07, 0.16, "paper"},
      {0.10, 0.22, "tight"},
      {0.15, 0.30, "very tight"},
  };

  metrics::Table table({"red", "yellow", "note", "perf", "CPLJ",
                        "P_max vs none", "dPxT reduction", "yellow (s)",
                        "red (s)"});
  for (const Margins& m : sweep) {
    cluster::ExperimentConfig cfg = base;
    cfg.red_margin = m.red;
    cfg.yellow_margin = m.yellow;
    const AveragedResult r = average_over_seeds(cfg, seeds, pool);
    table.cell_percent(m.red, 0)
        .cell_percent(m.yellow, 0)
        .cell(m.note)
        .cell(r.performance, 4)
        .cell_percent(r.lossless_fraction)
        .cell_percent(1.0 - r.p_max_w / baseline.p_max_w)
        .cell_percent(baseline.delta_pxt > 0.0
                          ? 1.0 - r.delta_pxt / baseline.delta_pxt
                          : 0.0)
        .cell(r.yellow_s, 0)
        .cell(r.red_s, 0);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nexpected shape: moving from loose to tight margins trades\n"
      "performance for overspend suppression; the paper's 7%%/16%% pair\n"
      "sits where dPxT is already mostly suppressed while perf stays ~98%%.\n");
  return 0;
}
