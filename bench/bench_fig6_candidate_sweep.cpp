// Figure 6 — Power capping effect at different sizes of A_candidate.
//
// The paper normalises P_max and ΔP×T against the unmanaged run
// (|A_candidate| = 0) and sweeps the candidate-set size for both the MPC
// and HRI policies, finding diminishing returns beyond ~48 of 128 nodes.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcap;
  using namespace pcap::bench;

  print_header(
      "Figure 6: power capping effect vs |A_candidate| (normalised to "
      "|A|=0)",
      "both P_max and dPxT improve with more candidates; gains diminish "
      "beyond ~48 nodes");

  cluster::ExperimentConfig base = cluster::paper_scenario();
  base.training = Seconds{2 * 3600.0};
  base.measured = Seconds{6 * 3600.0};
  base.provision = calibrate_provision(base);
  std::printf("calibrated provision P_Max = %.0f W\n", base.provision.value());

  const std::vector<std::uint64_t> seeds = {42, 1234, 777};
  common::ThreadPool pool;

  // The |A|=0 baseline all rows are normalised against.
  cluster::ExperimentConfig none = base;
  none.manager = "none";
  const AveragedResult baseline = average_over_seeds(none, seeds, pool);

  metrics::Table table({"policy", "|A_candidate|", "P_max (norm)",
                        "dPxT (norm)", "perf", "mgr util"});
  for (const char* policy : {"mpc", "hri"}) {
    double prev_pmax = 1.0;
    for (const int size : {0, 8, 16, 32, 48, 64, 96, 128}) {
      AveragedResult r;
      if (size == 0) {
        r = baseline;
        r.manager = policy;
      } else {
        cluster::ExperimentConfig cfg = base;
        cfg.manager = policy;
        cfg.candidate_count = size;
        r = average_over_seeds(cfg, seeds, pool);
      }
      const double pmax_norm = r.p_max_w / baseline.p_max_w;
      const double dpxt_norm =
          baseline.delta_pxt > 0.0 ? r.delta_pxt / baseline.delta_pxt : 0.0;
      table.cell(policy)
          .cell(static_cast<std::int64_t>(size))
          .cell(pmax_norm, 4)
          .cell(dpxt_norm, 4)
          .cell(r.performance, 4)
          .cell_percent(r.manager_utilization, 3);
      table.end_row();
      prev_pmax = pmax_norm;
    }
    (void)prev_pmax;
  }
  table.print();

  std::printf(
      "\nreading guide: values < 1 mean the capped run improved on the\n"
      "unmanaged baseline; the paper's diminishing-returns knee shows as\n"
      "the normalised curves flattening beyond ~48 candidates while the\n"
      "manager utilisation column keeps growing super-linearly.\n");
  return 0;
}
