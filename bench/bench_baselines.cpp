// Related-work baselines (§I.B) against the paper's architecture:
//   uniform   — every candidate node throttled indiscriminately (the
//               "all nodes equally important" strawman the paper rejects)
//   sla       — Ranganathan-style service-class priority throttling
//   feedback  — Wang-style proportional cluster power controller
// All run inside the same cluster with the same thresholds/actuators, so
// differences are attributable to the selection architecture alone.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcap;
  using namespace pcap::bench;

  print_header(
      "Baselines: subset selection (mpc) vs indiscriminate / related-work "
      "controllers",
      "§I.B argues selecting a job-aware subset beats treating all "
      "nodes as equally important");

  cluster::ExperimentConfig base = cluster::paper_scenario();
  base.training = Seconds{2 * 3600.0};
  base.measured = Seconds{6 * 3600.0};
  base.provision = calibrate_provision(base);
  std::printf("calibrated provision P_Max = %.0f W\n", base.provision.value());

  const std::vector<std::uint64_t> seeds = {42, 1234};
  common::ThreadPool pool;

  cluster::ExperimentConfig none = base;
  none.manager = "none";
  const AveragedResult baseline = average_over_seeds(none, seeds, pool);

  metrics::Table table({"manager", "perf", "CPLJ", "P_max vs none",
                        "dPxT reduction", "yellow (s)", "red (s)"});
  for (const char* manager : {"none", "mpc", "uniform", "sla", "feedback", "budget"}) {
    AveragedResult r;
    if (manager == std::string("none")) {
      r = baseline;
    } else {
      cluster::ExperimentConfig cfg = base;
      cfg.manager = manager;
      r = average_over_seeds(cfg, seeds, pool);
    }
    table.cell(manager)
        .cell(r.performance, 4)
        .cell_percent(r.lossless_fraction)
        .cell_percent(1.0 - r.p_max_w / baseline.p_max_w)
        .cell_percent(baseline.delta_pxt > 0.0
                          ? 1.0 - r.delta_pxt / baseline.delta_pxt
                          : 0.0)
        .cell(r.yellow_s, 0)
        .cell(r.red_s, 0);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nexpected shape: uniform capping controls power at a visibly higher\n"
      "performance cost (it throttles every job, including those that did\n"
      "not cause the spike); mpc keeps CPLJ highest for a comparable power\n"
      "envelope — the paper's core architectural argument.\n");
  return 0;
}
