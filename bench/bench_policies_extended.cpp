// Extension bench (§VI future work): head-to-head of every target set
// selection policy the paper defines — the two evaluated ones (MPC, HRI)
// plus the sketched variants (MPC-C/Algorithm 2, LPC, LPC-C, BFP, HRI-C).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcap;
  using namespace pcap::bench;

  print_header(
      "Extension: all seven target set selection policies (§IV)",
      "the paper evaluates MPC and HRI and defines MPC-C, LPC, LPC-C, BFP, "
      "HRI-C as future work");

  cluster::ExperimentConfig base = cluster::paper_scenario();
  base.training = Seconds{2 * 3600.0};
  base.measured = Seconds{6 * 3600.0};
  base.provision = calibrate_provision(base);
  std::printf("calibrated provision P_Max = %.0f W\n", base.provision.value());

  const std::vector<std::uint64_t> seeds = {42, 1234};
  common::ThreadPool pool;

  cluster::ExperimentConfig none = base;
  none.manager = "none";
  const AveragedResult baseline = average_over_seeds(none, seeds, pool);

  metrics::Table table({"policy", "perf", "CPLJ", "P_max vs none",
                        "dPxT reduction", "yellow (s)", "red (s)"});
  table.cell("none")
      .cell(baseline.performance, 4)
      .cell_percent(baseline.lossless_fraction)
      .cell_percent(0.0)
      .cell_percent(0.0)
      .cell(baseline.yellow_s, 0)
      .cell(baseline.red_s, 0);
  table.end_row();

  for (const char* policy :
       {"mpc", "mpc-c", "lpc", "lpc-c", "bfp", "hri", "hri-c"}) {
    cluster::ExperimentConfig cfg = base;
    cfg.manager = policy;
    const AveragedResult r = average_over_seeds(cfg, seeds, pool);
    table.cell(policy)
        .cell(r.performance, 4)
        .cell_percent(r.lossless_fraction)
        .cell_percent(1.0 - r.p_max_w / baseline.p_max_w)
        .cell_percent(baseline.delta_pxt > 0.0
                          ? 1.0 - r.delta_pxt / baseline.delta_pxt
                          : 0.0)
        .cell(r.yellow_s, 0)
        .cell(r.red_s, 0);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nexpected shape: collection policies (mpc-c, hri-c) shed the gap in\n"
      "one cycle (strongest dPxT suppression); lpc/lpc-c act slowest; bfp\n"
      "sits between mpc and lpc, as §IV.A argues.\n");
  return 0;
}
