// Ablation: how low can the power provision go? (§II.D operability)
//
// The paper assumes the provision capability is "not ridiculously low":
// capping should only have to shave occasional spikes. This bench sweeps
// the provision (as a fraction of the uncapped peak) and shows the
// operability assumption breaking down — at low provisions the system
// lives in the yellow state and performance collapses, i.e. the budget
// is no longer compatible with the offered load.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcap;
  using namespace pcap::bench;

  print_header(
      "Ablation: provision capability (operability assumption, §II.D)",
      "capping is designed for occasional spikes; a far-too-low provision "
      "breaks the assumption");

  cluster::ExperimentConfig base = cluster::paper_scenario();
  base.training = Seconds{2 * 3600.0};
  base.measured = Seconds{6 * 3600.0};
  base.manager = "mpc";

  const Watts peak =
      cluster::probe_uncapped_peak(base.cluster, base.calibration_duration);
  std::printf("uncapped probe peak: %.0f W\n", peak.value());

  const std::vector<std::uint64_t> seeds = {42, 1234};
  common::ThreadPool pool;

  metrics::Table table({"provision (x peak)", "P_Max (W)", "perf", "CPLJ",
                        "dPxT", "yellow (s)", "red (s)", "regime"});
  for (const double frac : {0.95, 0.90, 0.84, 0.78, 0.72, 0.65}) {
    cluster::ExperimentConfig cfg = base;
    cfg.provision = peak * frac;
    // Administrator mode: P_L/P_H derive from the provisioned budget, so
    // a smaller budget genuinely means more throttling.
    cfg.thresholds_from_provision = true;
    const AveragedResult r = average_over_seeds(cfg, seeds, pool);
    const double yellow_fraction = r.yellow_s / base.measured.value();
    const char* regime = yellow_fraction < 0.02   ? "spikes only (paper)"
                         : yellow_fraction < 0.25 ? "frequent throttling"
                                                  : "operability violated";
    table.cell(frac, 2)
        .cell(cfg.provision.value(), 0)
        .cell(r.performance, 4)
        .cell_percent(r.lossless_fraction)
        .cell(r.delta_pxt, 5)
        .cell(r.yellow_s, 0)
        .cell(r.red_s, 0)
        .cell(regime);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nthresholds here derive from the provision (administrator mode), so\n"
      "a smaller budget throttles harder. Expected shape: down to ~0.84x\n"
      "the system sheds only spikes; far below that the yellow state\n"
      "dominates and performance collapses — the operability assumption\n"
      "(§II.D) no longer holds.\n");
  return 0;
}
