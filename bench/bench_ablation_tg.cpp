// Ablation: the steady-green timer T_g (§III.B property 3; paper uses 10
// control cycles in §V.C).
//
// T_g controls how long the system must stay green before degraded nodes
// get their budget back. Small T_g restores aggressively (risking
// green/yellow oscillation); large T_g leaves jobs throttled long after
// the spike passed (costing performance).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcap;
  using namespace pcap::bench;

  print_header("Ablation: steady-green timer T_g (paper: 10 cycles)",
               "after T_g consecutive green cycles, degraded nodes are "
               "restored one level per cycle");

  cluster::ExperimentConfig base = cluster::paper_scenario();
  base.training = Seconds{2 * 3600.0};
  base.measured = Seconds{6 * 3600.0};
  base.provision = calibrate_provision(base);
  base.manager = "mpc";
  std::printf("calibrated provision P_Max = %.0f W\n", base.provision.value());

  const std::vector<std::uint64_t> seeds = {42, 1234};
  common::ThreadPool pool;

  cluster::ExperimentConfig none = base;
  none.manager = "none";
  const AveragedResult baseline = average_over_seeds(none, seeds, pool);

  metrics::Table table({"T_g (cycles)", "perf", "CPLJ", "P_max vs none",
                        "dPxT reduction", "yellow (s)"});
  for (const std::int64_t tg : {1, 2, 5, 10, 20, 40, 80}) {
    cluster::ExperimentConfig cfg = base;
    cfg.capping.steady_green_cycles = tg;
    const AveragedResult r = average_over_seeds(cfg, seeds, pool);
    table.cell(tg)
        .cell(r.performance, 4)
        .cell_percent(r.lossless_fraction)
        .cell_percent(1.0 - r.p_max_w / baseline.p_max_w)
        .cell_percent(baseline.delta_pxt > 0.0
                          ? 1.0 - r.delta_pxt / baseline.delta_pxt
                          : 0.0)
        .cell(r.yellow_s, 0);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nexpected shape: tiny T_g restores too eagerly (more yellow\n"
      "re-entries), huge T_g drags performance; the paper's T_g=10 sits on\n"
      "the flat part of the performance curve.\n");
  return 0;
}
