// Ablation: the control cycle period.
//
// The manager samples, classifies and actuates once per control period.
// Short periods react faster but measure ΔP over a noisier window (which
// starves the change-based HRI policy of signal); long periods let spikes
// run uncontrolled between cycles. The paper does not state Tianhe-1A's
// cycle; our default is 4 s.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcap;
  using namespace pcap::bench;

  print_header(
      "Ablation: control cycle period (default 4 s)",
      "short cycles denoise poorly for HRI; long cycles react too late");

  cluster::ExperimentConfig base = cluster::paper_scenario();
  base.training = Seconds{2 * 3600.0};
  base.measured = Seconds{6 * 3600.0};
  base.provision = calibrate_provision(base);
  std::printf("calibrated provision P_Max = %.0f W\n", base.provision.value());

  const std::vector<std::uint64_t> seeds = {42, 1234};
  common::ThreadPool pool;

  cluster::ExperimentConfig none = base;
  none.manager = "none";
  const AveragedResult baseline = average_over_seeds(none, seeds, pool);

  metrics::Table table({"policy", "period (s)", "perf", "CPLJ",
                        "P_max vs none", "dPxT reduction", "red (s)"});
  for (const char* policy : {"mpc", "hri"}) {
    for (const double period : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      cluster::ExperimentConfig cfg = base;
      cfg.manager = policy;
      cfg.cluster.control_period = Seconds{period};
      const AveragedResult r = average_over_seeds(cfg, seeds, pool);
      table.cell(policy)
          .cell(period, 0)
          .cell(r.performance, 4)
          .cell_percent(r.lossless_fraction)
          .cell_percent(1.0 - r.p_max_w / baseline.p_max_w)
          .cell_percent(baseline.delta_pxt > 0.0
                            ? 1.0 - r.delta_pxt / baseline.delta_pxt
                            : 0.0)
          .cell(r.red_s, 0);
      table.end_row();
    }
  }
  table.print();

  std::printf(
      "\nexpected shape: HRI's dPxT suppression improves from 1 s to ~4 s\n"
      "(its per-cycle power delta rises above sampling noise) and both\n"
      "policies lose peak control at 16 s.\n");
  return 0;
}
