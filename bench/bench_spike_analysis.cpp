// Spike-structure analysis: how capping reshapes the power trace.
//
// ΔP×T condenses the whole behaviour into one number; this bench breaks
// it apart — how many excursions above the provision survive capping, how
// long they last, how tall they get — and reports the yellow-episode
// structure (count, length, quick re-entries) per policy. This is the
// §IV.A intuition made measurable: MPC resolves an excursion in few, big
// steps; LPC nibbles and oscillates.
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "metrics/trace_analysis.hpp"

int main() {
  using namespace pcap;
  using namespace pcap::bench;

  print_header("Spike structure under capping (provision excursions)",
               "capping should turn few long, tall excursions into fewer, "
               "shorter, flatter ones");

  cluster::ExperimentConfig base = cluster::paper_scenario();
  base.training = Seconds{2 * 3600.0};
  base.measured = Seconds{6 * 3600.0};
  base.provision = calibrate_provision(base);
  std::printf("provision P_Max = %.0f W\n", base.provision.value());

  metrics::Table table({"manager", "excursions", "total (s)", "mean (s)",
                        "max (s)", "mean peak (W)", "max peak (W)",
                        "yellow episodes", "mean len (s)", "re-entries"});

  for (const char* manager : {"none", "mpc", "lpc", "hri"}) {
    // One full run per manager, recording the trace.
    cluster::ExperimentConfig cfg = base;
    cfg.manager = manager;
    cluster::Cluster cl(cfg.cluster);
    std::vector<hw::NodeId> candidates = cl.controllable_nodes();
    cl.set_manager(cluster::make_manager(cfg, cfg.cluster, cfg.provision,
                                         candidates));
    cl.run(cfg.training);
    cl.start_recording();
    cl.run(cfg.measured);

    const auto trace = cl.recorder().power_trace();
    const metrics::ExcursionStats ex =
        metrics::summarize_excursions(trace, cfg.provision);
    const metrics::EpisodeStats yellow =
        metrics::summarize_episodes(cl.recorder().points(), 1);
    const std::size_t reentries = metrics::count_rethrottle_oscillations(
        cl.recorder().points(), 60);

    table.cell(manager)
        .cell(ex.count)
        .cell(ex.total_time_s, 0)
        .cell(ex.mean_duration_s, 1)
        .cell(ex.max_duration_s, 0)
        .cell(ex.mean_peak_w, 0)
        .cell(ex.max_peak_w, 0)
        .cell(yellow.count)
        .cell(yellow.mean_length, 1)
        .cell(reentries);
    table.end_row();
  }
  table.print();

  std::printf(
      "\nreading guide: 'excursions' counts maximal runs above P_Max;\n"
      "yellow-episode lengths are in recorder ticks (1 s). LPC's small\n"
      "per-cycle savings show up as more yellow episodes and re-entries.\n");
  return 0;
}
