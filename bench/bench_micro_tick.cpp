// Ticks/second of the full Cluster::tick hot path — workload refresh,
// thermal advance, metering, and the capping control cycle (no training
// delay, so Algorithm 1 runs from the first control period).
//
// Usage: bench_micro_tick [--json] [--obs=on|off] [--quiesce=on|off]
//                         [--verify] [node_count...]
//   default node counts: 128 1024 8192 32768
//
// Each population is measured twice: serial (worker_threads = 1) and
// parallel (worker_threads = hardware concurrency; populations below the
// parallel threshold still run serial by design). Results land in
// BENCH_tick.json at the repo root when they change materially.
//
// --quiesce=off disables event-driven quiescence (ClusterConfig::
// event_driven_ticks): every node is swept every tick, the pre-quiescence
// behaviour. The A/B pair prices the fast-forward machinery and is the
// denominator for the quiescence speedup recorded in BENCH_tick.json.
//
// --verify runs each population four ways — {serial, parallel} x
// {quiescence on, off} — with trace recording on, folds every cycle point
// (meter power, state, targets, transitions, reconciler counters) and
// every finished job's energy attribution into an FNV-1a digest, and
// fails (exit 1) unless all four digests are bit-identical. This is the
// CI determinism gate for the event-driven tick path.
//
// --obs=off disables the cycle-phase span timers (ClusterConfig::
// obs_timing); counters and gauges stay live either way. Pairing an
// --obs=on run against an --obs=off run (scripts/check_bench_regression.py
// --ab) prices the full instrumentation, which must stay under 2% of tick
// throughput. --json emits one machine-readable array for that script.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "hw/node_spec.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"

using namespace pcap;

namespace {

struct Case {
  std::size_t nodes;
  int warm;     // warm-up ticks (thresholds frozen, queue primed)
  int measure;  // measured ticks
};

cluster::Cluster make_cluster(std::size_t nodes, std::size_t worker_threads,
                              bool obs_timing, bool quiesce) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = 1234;
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  cfg.obs_timing = obs_timing;
  cfg.event_driven_ticks = quiesce;
  return cluster::Cluster(cfg);
}

void attach_manager(cluster::Cluster& cl) {
  power::CappingManagerParams p;
  p.thresholds.provision = cl.theoretical_peak() * 0.9;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = Seconds{4.0};
  auto mgr = std::make_unique<power::CappingManager>(
      p, power::make_policy("mpc"), common::Rng(1234u ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));
}

double run_case(const Case& c, std::size_t worker_threads, bool obs_timing,
                bool quiesce) {
  cluster::Cluster cl =
      make_cluster(c.nodes, worker_threads, obs_timing, quiesce);
  attach_manager(cl);

  cl.run(Seconds{static_cast<double>(c.warm)});
  const auto t0 = std::chrono::steady_clock::now();
  cl.run(Seconds{static_cast<double>(c.measure)});
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  if (std::getenv("PCAP_BENCH_SPANS") != nullptr) {
    // Phase breakdown for perf triage: every pcap_cycle_phase_seconds
    // span the run accumulated (tick, node_sweep, manager phases).
    const std::string text = cl.metrics().prometheus_text();
    for (const char* key :
         {"pcap_cycle_phase_seconds_sum", "pcap_cluster_jobs_finished_total",
          "pcap_cluster_node_refreshes_total", "pcap_cluster_running_jobs"}) {
      std::size_t pos = 0;
      while ((pos = text.find(key, pos)) != std::string::npos) {
        const std::size_t eol = text.find('\n', pos);
        std::fprintf(stderr, "  %s\n", text.substr(pos, eol - pos).c_str());
        pos = eol;
      }
    }
  }
  return c.measure / secs;
}

// -- determinism verification -------------------------------------------------

std::uint64_t fnv_mix(std::uint64_t h, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// One full recorded run, folded to a digest: every control-cycle point
/// (meter reading, band, state, actuation and reconciler counters) and
/// every finished job's identity and attributed energy. Bit-identical
/// trajectories — the tentpole determinism requirement — give bit-
/// identical digests; a single ULP of drift anywhere does not.
std::uint64_t digest_run(const Case& c, std::size_t worker_threads,
                         bool quiesce) {
  cluster::Cluster cl = make_cluster(c.nodes, worker_threads, false, quiesce);
  attach_manager(cl);
  cl.start_recording();
  cl.run(Seconds{static_cast<double>(c.warm + c.measure)});

  std::uint64_t h = 1469598103934665603ull;
  for (const metrics::CyclePoint& pt : cl.recorder().points()) {
    h = fnv_mix(h, &pt.time_s, sizeof(pt.time_s));
    h = fnv_mix(h, &pt.power_w, sizeof(pt.power_w));
    h = fnv_mix(h, &pt.p_low_w, sizeof(pt.p_low_w));
    h = fnv_mix(h, &pt.p_high_w, sizeof(pt.p_high_w));
    h = fnv_mix(h, &pt.state, sizeof(pt.state));
    const std::uint64_t counters[] = {
        pt.running_jobs, pt.targets,    pt.transitions, pt.stale_nodes,
        pt.fallback_nodes, pt.skipped_targets, pt.retries, pt.divergences,
        pt.heals};
    h = fnv_mix(h, counters, sizeof(counters));
  }
  for (const metrics::JobRecord& r : cl.finished_records()) {
    const std::uint64_t id = r.id;
    h = fnv_mix(h, &id, sizeof(id));
    h = fnv_mix(h, &r.energy_j, sizeof(r.energy_j));
    h = fnv_mix(h, &r.actual_s, sizeof(r.actual_s));
  }
  return h;
}

int verify_case(const Case& c) {
  struct Variant {
    const char* name;
    std::size_t workers;
    bool quiesce;
  };
  const Variant variants[] = {{"serial/quiesce-on", 1, true},
                              {"serial/quiesce-off", 1, false},
                              {"parallel/quiesce-on", 0, true},
                              {"parallel/quiesce-off", 0, false}};
  std::uint64_t ref = 0;
  bool ok = true;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t h = digest_run(c, variants[i].workers,
                                       variants[i].quiesce);
    if (i == 0) ref = h;
    const bool match = h == ref;
    ok &= match;
    std::printf("  %-20s digest %016llx  %s\n", variants[i].name,
                static_cast<unsigned long long>(h), match ? "ok" : "MISMATCH");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Case> cases = {
      {128, 60, 20000}, {1024, 40, 4000}, {8192, 20, 600}, {32768, 40, 600}};
  bool json = false;
  bool obs_timing = true;
  bool quiesce = true;
  bool verify = false;
  std::vector<char*> size_args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--obs=on") == 0) {
      obs_timing = true;
    } else if (std::strcmp(argv[i], "--obs=off") == 0) {
      obs_timing = false;
    } else if (std::strcmp(argv[i], "--quiesce=on") == 0) {
      quiesce = true;
    } else if (std::strcmp(argv[i], "--quiesce=off") == 0) {
      quiesce = false;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      size_args.push_back(argv[i]);
    }
  }
  if (!size_args.empty()) {
    std::vector<Case> chosen;
    for (char* arg : size_args) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(arg, &end, 10);
      if (end == arg || *end != '\0' || parsed == 0 ||
          parsed > 10'000'000ULL || arg[0] == '-') {
        std::fprintf(stderr,
                     "bench_micro_tick: bad node count '%s' "
                     "(expected a positive integer <= 10000000)\n",
                     arg);
        return 2;
      }
      const auto want = static_cast<std::size_t>(parsed);
      bool found = false;
      for (const Case& c : cases) {
        if (c.nodes == want) {
          chosen.push_back(c);
          found = true;
        }
      }
      if (!found) {
        // Unlisted size: scale the tick budget to roughly constant work.
        const int measure =
            std::max(50, static_cast<int>(4'000'000 / std::max<std::size_t>(
                                                          want, 1)));
        chosen.push_back(Case{want, 10, measure});
      }
    }
    cases = std::move(chosen);
  }

  if (verify) {
    int rc = 0;
    for (const Case& c : cases) {
      std::printf("verify %zu nodes (%d ticks):\n", c.nodes,
                  c.warm + c.measure);
      rc |= verify_case(c);
    }
    std::printf(rc == 0 ? "verify: all digests identical\n"
                        : "verify: DIGEST MISMATCH\n");
    return rc;
  }

  if (json) {
    std::printf("[");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      const double serial = run_case(c, 1, obs_timing, quiesce);
      const double parallel = run_case(c, 0, obs_timing, quiesce);
      std::printf("%s\n  {\"nodes\": %zu, \"serial_ticks_per_s\": %.2f, "
                  "\"parallel_ticks_per_s\": %.2f}",
                  i == 0 ? "" : ",", c.nodes, serial, parallel);
    }
    std::printf("\n]\n");
    return 0;
  }

  std::printf("%8s  %14s  %14s   (obs %s, quiesce %s)\n", "nodes",
              "serial t/s", "parallel t/s", obs_timing ? "on" : "off",
              quiesce ? "on" : "off");
  for (const Case& c : cases) {
    const double serial = run_case(c, 1, obs_timing, quiesce);
    const double parallel = run_case(c, 0, obs_timing, quiesce);
    std::printf("%8zu  %14.2f  %14.2f\n", c.nodes, serial, parallel);
    std::fflush(stdout);
  }
  return 0;
}
