// Ticks/second of the full Cluster::tick hot path — workload refresh,
// thermal advance, metering, and the capping control cycle (no training
// delay, so Algorithm 1 runs from the first control period).
//
// Usage: bench_micro_tick [--json] [--obs=on|off] [node_count...]
//   default node counts: 128 1024 8192 32768
//
// Each population is measured twice: serial (worker_threads = 1) and
// parallel (worker_threads = hardware concurrency; populations below the
// parallel threshold still run serial by design). Results land in
// BENCH_tick.json at the repo root when they change materially.
//
// --obs=off disables the cycle-phase span timers (ClusterConfig::
// obs_timing); counters and gauges stay live either way. Pairing an
// --obs=on run against an --obs=off run (scripts/check_bench_regression.py
// --ab) prices the full instrumentation, which must stay under 2% of tick
// throughput. --json emits one machine-readable array for that script.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "hw/node_spec.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"

using namespace pcap;

namespace {

struct Case {
  std::size_t nodes;
  int warm;     // warm-up ticks (thresholds frozen, queue primed)
  int measure;  // measured ticks
};

double run_case(const Case& c, std::size_t worker_threads, bool obs_timing) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = c.nodes;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = 1234;
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  cfg.obs_timing = obs_timing;
  cluster::Cluster cl(cfg);

  power::CappingManagerParams p;
  p.thresholds.provision = cl.theoretical_peak() * 0.9;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  auto mgr = std::make_unique<power::CappingManager>(
      p, power::make_policy("mpc"), common::Rng(cfg.seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));

  cl.run(Seconds{static_cast<double>(c.warm)});
  const auto t0 = std::chrono::steady_clock::now();
  cl.run(Seconds{static_cast<double>(c.measure)});
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return c.measure / secs;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Case> cases = {
      {128, 60, 20000}, {1024, 40, 4000}, {8192, 20, 600}, {32768, 8, 150}};
  bool json = false;
  bool obs_timing = true;
  std::vector<char*> size_args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--obs=on") == 0) {
      obs_timing = true;
    } else if (std::strcmp(argv[i], "--obs=off") == 0) {
      obs_timing = false;
    } else {
      size_args.push_back(argv[i]);
    }
  }
  if (!size_args.empty()) {
    std::vector<Case> chosen;
    for (char* arg : size_args) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(arg, &end, 10);
      if (end == arg || *end != '\0' || parsed == 0 ||
          parsed > 10'000'000ULL || arg[0] == '-') {
        std::fprintf(stderr,
                     "bench_micro_tick: bad node count '%s' "
                     "(expected a positive integer <= 10000000)\n",
                     arg);
        return 2;
      }
      const auto want = static_cast<std::size_t>(parsed);
      bool found = false;
      for (const Case& c : cases) {
        if (c.nodes == want) {
          chosen.push_back(c);
          found = true;
        }
      }
      if (!found) {
        // Unlisted size: scale the tick budget to roughly constant work.
        const int measure =
            std::max(50, static_cast<int>(4'000'000 / std::max<std::size_t>(
                                                          want, 1)));
        chosen.push_back(Case{want, 10, measure});
      }
    }
    cases = std::move(chosen);
  }

  if (json) {
    std::printf("[");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      const double serial = run_case(c, 1, obs_timing);
      const double parallel = run_case(c, 0, obs_timing);
      std::printf("%s\n  {\"nodes\": %zu, \"serial_ticks_per_s\": %.2f, "
                  "\"parallel_ticks_per_s\": %.2f}",
                  i == 0 ? "" : ",", c.nodes, serial, parallel);
    }
    std::printf("\n]\n");
    return 0;
  }

  std::printf("%8s  %14s  %14s   (obs %s)\n", "nodes", "serial t/s",
              "parallel t/s", obs_timing ? "on" : "off");
  for (const Case& c : cases) {
    const double serial = run_case(c, 1, obs_timing);
    const double parallel = run_case(c, 0, obs_timing);
    std::printf("%8zu  %14.2f  %14.2f\n", c.nodes, serial, parallel);
    std::fflush(stdout);
  }
  return 0;
}
