// Control-plane cycles/second: the manager's non-green control cycle
// (context assembly + target selection + actuation bookkeeping) measured
// in steady state, independent of the data-plane tick.
//
// Five measurements per candidate count, serial and parallel:
//   yellow   — full CappingManager::cycle with the meter pinned mid-band
//              (collect + context build + policy select + actuation)
//   red      — full cycle with the meter pinned above P_H (everything
//              floors on the first cycle; the steady remainder is context
//              assembly + the idempotent red walk)
//   ctx+sel  — build_context_into + policy select alone, the two stages
//              this bench exists to track (no collection, no actuation)
//   zone-y   — ZoneTreeManager::cycle, meter pinned mid-band, measured in
//              the quiescent steady state (every zone floored and clean,
//              all Z zones skipping their sweeps). The flat yellow column
//              pays the O(n) sweep every cycle in the same pinned state;
//              the gap between the two columns is the quiescence win.
//   zone-r   — same protocol with the meter pinned above P_H
//
// --drain mode instead measures the transient the quiescence win cannot
// touch: a demand step lands the meter in yellow and every zone sweeps
// until the shed power brings the reading back under P_L and the acks
// drain. The meter is responsive (true population draw + an external
// offset, computed outside the timed region) so shedding actually ends
// the episode. Measured twice — incremental context plane on and off —
// over the identical cycle sequence; both modes must take the same
// number of cycles (bit-identical decisions) or the run warns.
//
// Usage: bench_control_cycle [--json] [--zones=Z] [--drain] [node_count...]
//   default node counts: 1024 8192 32768 131072 1048576; default Z = 8
//   --drain defaults: 8192 131072 1048576
//
// Serial = no thread pool attached; parallel = pool at hardware
// concurrency. Results land in BENCH_control_cycle.json at the repo root
// when they change materially.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "hw/node_spec.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"
#include "power/zone_manager.hpp"
#include "sched/scheduler.hpp"
#include "workload/npb.hpp"

using namespace pcap;

namespace {

struct Case {
  std::size_t nodes;
  int yellow_cycles;  // measured full yellow cycles
  int red_cycles;     // measured full red cycles
  int ctx_iters;      // measured context+select iterations
};

/// A full machine: every node busy at a realistic operating point, jobs of
/// ~32 nodes each covering the whole population.
struct Rig {
  std::vector<hw::Node> nodes;
  std::unique_ptr<sched::Scheduler> scheduler;

  explicit Rig(std::size_t n) {
    const hw::NodeSpecPtr spec = hw::tianhe1a_node_spec();
    nodes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.emplace_back(static_cast<hw::NodeId>(i), spec);
    }
    sched::SchedulerOptions opts;
    opts.max_procs_per_node = 3;
    scheduler = std::make_unique<sched::Scheduler>(
        std::vector<int>(n, spec->total_cores()), opts, common::Rng(7));

    // 32 nodes per job; fill the machine, then one launch pass.
    const int procs_per_job = 3 * 32;
    const std::size_t num_jobs = n / 32;
    for (std::size_t j = 0; j < num_jobs; ++j) {
      scheduler->submit(workload::Job(
          static_cast<workload::JobId>(j + 1),
          workload::npb_by_name("lu", workload::NpbClass::kD), procs_per_job,
          Seconds{0.0}));
    }
    scheduler->try_launch(Seconds{0.0});

    for (std::size_t i = 0; i < n; ++i) {
      hw::Node& node = nodes[i];
      hw::OperatingPoint op;
      // Mild per-node spread so job powers differ and sorting policies
      // have real work to order.
      op.cpu_utilization = 0.70 + 0.25 * static_cast<double>(i % 17) / 17.0;
      op.mem_used = node.spec().mem_total * 0.4;
      op.mem_total = node.spec().mem_total;
      op.tau = Seconds{1.0};
      op.nic_bandwidth = node.spec().nic_bandwidth;
      node.set_operating_point(op);
      node.set_busy(true);
    }
  }
};

struct Result {
  double yellow_cps = 0.0;
  double red_cps = 0.0;
  double ctx_select_ips = 0.0;
};

struct ZoneResult {
  double yellow_cps = 0.0;
  double red_cps = 0.0;
};

power::CappingManagerParams manager_params(Watts provision) {
  power::CappingManagerParams p;
  p.thresholds.provision = provision;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.thresholds.adjust_period_cycles = 1'000'000;
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  // The green warmup cycles exist to fill the telemetry histories; with
  // the steady-green stride at its default (16) they would all skip the
  // sweep and the ctx+sel loop would measure context assembly over empty
  // histories (every view missing, every selection empty). Non-green
  // cycles always collect, so the stride does not touch the timed loops.
  p.green_collect_stride = 1;
  return p;
}

double timed(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

Result run_case(const Case& c, bool parallel) {
  std::unique_ptr<common::ThreadPool> pool;
  if (parallel) pool = std::make_unique<common::ThreadPool>(0);

  // The provision anchors the frozen thresholds; the meter reading is
  // synthetic and pinned per state, so only classification — not the node
  // population's true draw — depends on it.
  const Watts provision{1000.0 * static_cast<double>(c.nodes)};
  const Watts green = provision * 0.5;
  const Watts yellow = provision * 0.88;  // in [0.84, 0.93) x provision
  const Watts red = provision * 0.95;

  Result out;
  std::vector<hw::NodeId> all_ids;
  all_ids.reserve(c.nodes);
  for (std::size_t i = 0; i < c.nodes; ++i) {
    all_ids.push_back(static_cast<hw::NodeId>(i));
  }

  // -- yellow: full control cycles --
  {
    Rig rig(c.nodes);
    power::CappingManager mgr(manager_params(provision),
                              power::make_policy("mpc-c"), common::Rng(42));
    mgr.set_thread_pool(pool.get());
    mgr.set_candidate_set(all_ids);
    double now = 1.0;
    for (int i = 0; i < 3; ++i) {  // fill histories (green: no context)
      mgr.cycle(green, rig.nodes, *rig.scheduler, Seconds{now});
      now += 1.0;
    }
    const double secs = timed([&] {
      for (int i = 0; i < c.yellow_cycles; ++i) {
        mgr.cycle(yellow, rig.nodes, *rig.scheduler, Seconds{now});
        now += 1.0;
      }
    });
    out.yellow_cps = c.yellow_cycles / secs;
  }

  // -- red: full control cycles (steady after the first floor) --
  {
    Rig rig(c.nodes);
    power::CappingManager mgr(manager_params(provision),
                              power::make_policy("mpc-c"), common::Rng(42));
    mgr.set_thread_pool(pool.get());
    mgr.set_candidate_set(all_ids);
    double now = 1.0;
    for (int i = 0; i < 3; ++i) {
      mgr.cycle(green, rig.nodes, *rig.scheduler, Seconds{now});
      now += 1.0;
    }
    // First red cycle floors everything; measure the steady remainder.
    mgr.cycle(red, rig.nodes, *rig.scheduler, Seconds{now});
    now += 1.0;
    const double secs = timed([&] {
      for (int i = 0; i < c.red_cycles; ++i) {
        mgr.cycle(red, rig.nodes, *rig.scheduler, Seconds{now});
        now += 1.0;
      }
    });
    out.red_cps = c.red_cycles / secs;
  }

  // -- context assembly + selection in isolation --
  {
    Rig rig(c.nodes);
    power::CappingManager mgr(manager_params(provision),
                              power::make_policy("mpc-c"), common::Rng(42));
    mgr.set_thread_pool(pool.get());
    mgr.set_candidate_set(all_ids);
    double now = 1.0;
    for (int i = 0; i < 3; ++i) {
      mgr.cycle(green, rig.nodes, *rig.scheduler, Seconds{now});
      now += 1.0;
    }
    power::PolicyPtr policy = power::make_policy("mpc-c");
    power::PolicyContext ctx;
    ctx.system_power = yellow;
    // Warm the context's buffers once so the loop measures steady state.
    mgr.build_context_into(ctx, yellow, rig.nodes, *rig.scheduler);
    std::size_t sink = 0;
    const double secs = timed([&] {
      for (int i = 0; i < c.ctx_iters; ++i) {
        mgr.build_context_into(ctx, yellow, rig.nodes, *rig.scheduler);
        sink += policy->select(ctx).size();
      }
    });
    if (sink == 0) std::fprintf(stderr, "warning: empty selections\n");
    out.ctx_select_ips = c.ctx_iters / secs;
  }

  return out;
}

ZoneResult run_zone_case(const Case& c, bool parallel, std::size_t zones) {
  std::unique_ptr<common::ThreadPool> pool;
  if (parallel) pool = std::make_unique<common::ThreadPool>(0);

  const Watts provision{1000.0 * static_cast<double>(c.nodes)};
  const Watts green = provision * 0.5;
  const Watts yellow = provision * 0.88;
  const Watts red = provision * 0.95;

  std::vector<hw::NodeId> all_ids;
  all_ids.reserve(c.nodes);
  for (std::size_t i = 0; i < c.nodes; ++i) {
    all_ids.push_back(static_cast<hw::NodeId>(i));
  }

  const auto make_manager = [&] {
    power::ZoneTreeParams zp;
    zp.zone_count = zones;
    zp.redistribution = power::ZoneTreeParams::Redistribution::kProportional;
    return std::make_unique<power::ZoneTreeManager>(
        zp, manager_params(provision),
        [] { return power::make_policy("mpc-c"); }, common::Rng(42));
  };

  // Pinned non-green drives every zone to the ladder floor within a few
  // cycles; once the acks land and the hints turn clean, all Z zones
  // quiesce. The timed loop measures that steady all-quiet state — the
  // flat columns above measure the same pinned state but re-sweep every
  // candidate every cycle.
  const auto measure = [&](Watts pinned, int min_iters) {
    Rig rig(c.nodes);
    auto mgr = make_manager();
    mgr->set_thread_pool(pool.get());
    mgr->set_candidate_set(all_ids);
    double now = 1.0;
    for (int i = 0; i < 3; ++i) {  // fill histories (green: no context)
      mgr->cycle(green, rig.nodes, *rig.scheduler, Seconds{now});
      now += 1.0;
    }
    int drain = 0;
    do {
      mgr->cycle(pinned, rig.nodes, *rig.scheduler, Seconds{now});
      now += 1.0;
    } while (mgr->zones_active_last_cycle() > 0 && ++drain < 64);
    if (mgr->zones_active_last_cycle() > 0) {
      std::fprintf(stderr,
                   "warning: %zu zones still active after drain; measuring "
                   "a mixed (non-quiescent) steady state\n",
                   mgr->zones_active_last_cycle());
    }
    // Quiescent cycles are orders of magnitude cheaper than full sweeps;
    // run enough of them that the timer resolution is irrelevant.
    const int iters = std::max(min_iters, 2000);
    const double secs = timed([&] {
      for (int i = 0; i < iters; ++i) {
        mgr->cycle(pinned, rig.nodes, *rig.scheduler, Seconds{now});
        now += 1.0;
      }
    });
    return iters / secs;
  };

  ZoneResult out;
  out.yellow_cps = measure(yellow, c.yellow_cycles);
  out.red_cps = measure(red, c.red_cycles);
  return out;
}

struct DrainResult {
  int warm_cycles = 0;  ///< untimed warmup-excursion drain length
  int cycles = 0;       ///< timed demand-step drain length
  double secs = 0.0;    ///< wall time inside cycle() over the timed drain
};

DrainResult run_drain_case(std::size_t n, bool parallel, std::size_t zones,
                           bool incremental) {
  std::unique_ptr<common::ThreadPool> pool;
  if (parallel) pool = std::make_unique<common::ThreadPool>(0);

  Rig rig(n);
  // Responsive meter: the population's true draw plus an external offset.
  // Shedding a target actually lowers the next reading, so the episode
  // ends the way a real one does — power back under P_L, acks drained,
  // every zone quiescent. Summed OUTSIDE the timed region.
  const auto draw = [&] {
    Watts total{0.0};
    for (const hw::Node& node : rig.nodes) total += node.estimated_power();
    return total;
  };
  const Watts provision = draw() * 2.0;  // the base draw sits mid-green

  std::vector<hw::NodeId> all_ids;
  all_ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    all_ids.push_back(static_cast<hw::NodeId>(i));
  }

  power::ZoneTreeParams zp;
  zp.zone_count = zones;
  zp.redistribution = power::ZoneTreeParams::Redistribution::kProportional;
  power::CappingManagerParams params = manager_params(provision);
  params.incremental_context = incremental;
  power::ZoneTreeManager mgr(
      zp, params, [] { return power::make_policy("mpc-c"); }, common::Rng(42));
  mgr.set_thread_pool(pool.get());
  mgr.set_candidate_set(all_ids);

  double now = 1.0;
  for (int i = 0; i < 4; ++i) {  // fill histories
    mgr.cycle(draw(), rig.nodes, *rig.scheduler, Seconds{now});
    now += 1.0;
  }

  // One drain episode: a transient demand spike. The external offset
  // holds until the shed brings the reading back under P_L (the shed
  // leg), then recedes; the episode keeps cycling through the T_g-paced
  // restore — every one of those green cycles still builds a context,
  // because the capped nodes sit in A_degraded — until the last node is
  // back at its top level and every zone requiesces (the restore leg).
  // A permanent offset would never get there: the restore re-inflates the
  // draw past P_L and the system rings at the threshold forever.
  const auto episode = [&](double* secs) {
    const Watts offset = provision * 0.845 - draw();
    bool spiked = true;
    int cycles = 0;
    while (cycles < 2048) {
      const Watts measured =
          (spiked ? offset : Watts{0.0}) + draw();  // outside the timed region
      power::ManagerReport rep;
      if (secs != nullptr) {
        *secs += timed([&] {
          rep = mgr.cycle(measured, rig.nodes, *rig.scheduler, Seconds{now});
        });
      } else {
        rep = mgr.cycle(measured, rig.nodes, *rig.scheduler, Seconds{now});
      }
      now += 1.0;
      ++cycles;
      if (spiked && rep.state == power::PowerState::kGreen) spiked = false;
      if (!spiked && mgr.zones_active_last_cycle() == 0) break;
    }
    return cycles;
  };

  DrainResult out;
  // Warmup episode, untimed: leaves every shard's persistent context
  // warm — the production steady state — so the timed episode measures
  // drain cost, not the one-off first-build cost both modes share.
  out.warm_cycles = episode(nullptr);
  out.cycles = episode(&out.secs);
  if (out.cycles >= 2048) {
    std::fprintf(stderr,
                 "warning: %zu-node drain hit the cycle cap without "
                 "quiescing\n",
                 n);
  }
  return out;
}

int run_drain(bool json, std::size_t zones,
              const std::vector<std::size_t>& node_counts) {
  if (json) std::printf("[");
  bool first = true;
  if (!json) {
    std::printf("drain: ZoneTreeManager, Z=%zu, demand step to 0.845x "
                "provision, warm contexts\n",
                zones);
    std::printf("%8s  %6s  %11s  %11s  %8s  %12s  %12s  %9s\n", "nodes",
                "cycles", "inc ms", "rebuild ms", "speedup", "inc-par ms",
                "rebu-par ms", "speedup");
  }
  for (const std::size_t n : node_counts) {
    const DrainResult inc_s = run_drain_case(n, false, zones, true);
    const DrainResult reb_s = run_drain_case(n, false, zones, false);
    const DrainResult inc_p = run_drain_case(n, true, zones, true);
    const DrainResult reb_p = run_drain_case(n, true, zones, false);
    if (inc_s.cycles != reb_s.cycles || inc_p.cycles != reb_p.cycles) {
      std::fprintf(stderr,
                   "warning: %zu-node drain lengths differ between modes "
                   "(serial %d vs %d, parallel %d vs %d) — decisions are "
                   "supposed to be bit-identical\n",
                   n, inc_s.cycles, reb_s.cycles, inc_p.cycles, reb_p.cycles);
    }
    const double serial_speedup =
        inc_s.secs > 0.0 ? reb_s.secs / inc_s.secs : 0.0;
    const double parallel_speedup =
        inc_p.secs > 0.0 ? reb_p.secs / inc_p.secs : 0.0;
    if (json) {
      std::printf(
          "%s\n  {\"nodes\": %zu, \"zones\": %zu, \"drain_cycles\": %d, "
          "\"drain_serial_incremental_ms\": %.3f, "
          "\"drain_serial_rebuild_ms\": %.3f, "
          "\"drain_serial_speedup\": %.2f, "
          "\"drain_parallel_incremental_ms\": %.3f, "
          "\"drain_parallel_rebuild_ms\": %.3f, "
          "\"drain_parallel_speedup\": %.2f}",
          first ? "" : ",", n, zones, inc_s.cycles, inc_s.secs * 1e3,
          reb_s.secs * 1e3, serial_speedup, inc_p.secs * 1e3, reb_p.secs * 1e3,
          parallel_speedup);
      first = false;
    } else {
      std::printf("%8zu  %6d  %11.3f  %11.3f  %8.2f  %12.3f  %12.3f  %9.2f\n",
                  n, inc_s.cycles, inc_s.secs * 1e3, reb_s.secs * 1e3,
                  serial_speedup, inc_p.secs * 1e3, reb_p.secs * 1e3,
                  parallel_speedup);
    }
    std::fflush(stdout);
  }
  if (json) std::printf("\n]\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool drain = false;
  std::size_t zones = 8;
  std::vector<Case> cases = {{1024, 4000, 4000, 6000},
                             {8192, 600, 600, 800},
                             {32768, 120, 120, 160},
                             {131072, 30, 30, 40},
                             {1048576, 8, 8, 10}};
  std::vector<Case> chosen;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      continue;
    }
    if (std::strcmp(argv[i], "--drain") == 0) {
      drain = true;
      continue;
    }
    if (std::strncmp(argv[i], "--zones=", 8) == 0) {
      char* zend = nullptr;
      const unsigned long long z = std::strtoull(argv[i] + 8, &zend, 10);
      if (zend == argv[i] + 8 || *zend != '\0' || z < 1 || z > 4096) {
        std::fprintf(stderr,
                     "bench_control_cycle: bad zone count '%s' (expected "
                     "--zones=Z with Z in [1, 4096])\n",
                     argv[i] + 8);
        return 2;
      }
      zones = static_cast<std::size_t>(z);
      continue;
    }
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(argv[i], &end, 10);
    if (end == argv[i] || *end != '\0' || parsed < 64 ||
        parsed > 2'000'000ULL || argv[i][0] == '-') {
      std::fprintf(stderr,
                   "bench_control_cycle: bad arg '%s' (expected --json or a "
                   "node count in [64, 2000000])\n",
                   argv[i]);
      return 2;
    }
    const auto want = static_cast<std::size_t>(parsed);
    bool found = false;
    for (const Case& c : cases) {
      if (c.nodes == want) {
        chosen.push_back(c);
        found = true;
      }
    }
    if (!found) {
      const int budget = static_cast<int>(
          std::max<std::size_t>(20, 4'000'000 / std::max<std::size_t>(want, 1)));
      chosen.push_back(Case{want, budget, budget, budget});
    }
  }
  if (drain) {
    std::vector<std::size_t> node_counts;
    for (const Case& c : chosen) node_counts.push_back(c.nodes);
    if (node_counts.empty()) node_counts = {8192, 131072, 1048576};
    return run_drain(json, zones, node_counts);
  }
  if (!chosen.empty()) cases = std::move(chosen);

  if (json) std::printf("[");
  bool first = true;
  if (!json) {
    std::printf("zone columns: ZoneTreeManager, Z=%zu, quiescent steady "
                "state\n",
                zones);
    std::printf("%8s  %12s  %14s  %11s  %13s  %14s  %16s  %12s  %14s  %12s  "
                "%14s\n",
                "nodes", "yellow c/s", "yellow-par c/s", "red c/s",
                "red-par c/s", "ctx+sel it/s", "ctx+sel-par it/s",
                "zone-y c/s", "zone-y-par c/s", "zone-r c/s",
                "zone-r-par c/s");
  }
  for (const Case& c : cases) {
    const Result serial = run_case(c, false);
    const Result parallel = run_case(c, true);
    const ZoneResult zone_serial = run_zone_case(c, false, zones);
    const ZoneResult zone_parallel = run_zone_case(c, true, zones);
    if (json) {
      std::printf(
          "%s\n  {\"nodes\": %zu, \"yellow_serial_cps\": %.2f, "
          "\"yellow_parallel_cps\": %.2f, \"red_serial_cps\": %.2f, "
          "\"red_parallel_cps\": %.2f, \"ctx_select_serial_ips\": %.2f, "
          "\"ctx_select_parallel_ips\": %.2f, "
          "\"zone_yellow_serial_cps\": %.2f, "
          "\"zone_yellow_parallel_cps\": %.2f, "
          "\"zone_red_serial_cps\": %.2f, \"zone_red_parallel_cps\": %.2f}",
          first ? "" : ",", c.nodes, serial.yellow_cps, parallel.yellow_cps,
          serial.red_cps, parallel.red_cps, serial.ctx_select_ips,
          parallel.ctx_select_ips, zone_serial.yellow_cps,
          zone_parallel.yellow_cps, zone_serial.red_cps,
          zone_parallel.red_cps);
      first = false;
    } else {
      std::printf("%8zu  %12.2f  %14.2f  %11.2f  %13.2f  %14.2f  %16.2f  "
                  "%12.2f  %14.2f  %12.2f  %14.2f\n",
                  c.nodes, serial.yellow_cps, parallel.yellow_cps,
                  serial.red_cps, parallel.red_cps, serial.ctx_select_ips,
                  parallel.ctx_select_ips, zone_serial.yellow_cps,
                  zone_parallel.yellow_cps, zone_serial.red_cps,
                  zone_parallel.red_cps);
    }
    std::fflush(stdout);
  }
  if (json) std::printf("\n]\n");
  return 0;
}
