// Figure 5 — Scalability of the global manager.
//
// The paper shows the central management node's CPU utilisation rising
// non-linearly with |A_candidate|. We report two independent measurements
// for candidate sets of 8..128 nodes:
//   * the management-cost model's utilisation (what a production
//     deployment would budget), and
//   * the real wall-clock time of one full control cycle of our
//     CappingManager (collect + context build + Algorithm 1), measured on
//     this machine.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "hw/node_spec.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"
#include "workload/job_generator.hpp"
#include "workload/npb.hpp"

namespace {

using namespace pcap;

/// Builds a loaded 128-node rig with jobs covering the machine.
struct Rig {
  std::vector<hw::Node> nodes;
  sched::Scheduler scheduler;

  Rig()
      : scheduler(std::vector<int>(128, 12), sched::SchedulerOptions{},
                  common::Rng(9)) {
    common::Rng var(17);
    for (int i = 0; i < 128; ++i) {
      nodes.emplace_back(static_cast<hw::NodeId>(i), hw::tianhe1a_node_spec(),
                         &var);
    }
    // One single-node job per node: the monitored-job count then scales
    // with the candidate-set size, which is what drives the manager's
    // super-linear node-to-job aggregation cost.
    auto gen = workload::JobGenerator(
        workload::npb_suite(), std::vector<int>{12}, common::Rng(5));
    for (int j = 0; j < 128; ++j) {
      scheduler.submit(gen.next(Seconds{0.0}));
      scheduler.try_launch(Seconds{0.0});
    }
    common::Rng util(7);
    for (auto& n : nodes) {
      hw::OperatingPoint op;
      op.cpu_utilization = util.uniform(0.2, 0.95);
      op.mem_used = n.spec().mem_total * util.uniform(0.2, 0.6);
      op.mem_total = n.spec().mem_total;
      op.nic_bytes = Bytes{util.uniform(0.0, 2e9)};
      op.tau = Seconds{1.0};
      op.nic_bandwidth = n.spec().nic_bandwidth;
      n.set_operating_point(op);
      n.set_busy(scheduler.job_on_node(n.id()).has_value());
    }
  }
};

}  // namespace

int main() {
  using namespace pcap;
  bench::print_header(
      "Figure 5: scalability of the global manager",
      "central-manager CPU utilisation grows non-linearly with |A_candidate|");

  Rig rig;
  metrics::Table table({"|A_candidate|", "monitored jobs", "model cost (us)",
                        "model util (1s cycle)", "measured cycle (us)"});

  double first_model = 0.0;
  double last_model = 0.0;
  std::size_t first_n = 0;
  std::size_t last_n = 0;
  for (const int n : {8, 16, 32, 48, 64, 96, 128}) {
    power::CappingManagerParams params;
    params.thresholds.provision = Watts{40000.0};
    params.thresholds.training_cycles = 0;
    params.collector.agent.utilization_noise = 0.0;
    params.collector.agent.nic_noise = 0.0;
    power::CappingManager mgr(params, power::make_policy("mpc"),
                              common::Rng(3));
    std::vector<hw::NodeId> candidates;
    for (int i = 0; i < n; ++i) candidates.push_back(static_cast<hw::NodeId>(i));
    mgr.set_candidate_set(candidates);

    // Count the jobs that actually touch the candidate set.
    std::size_t monitored_jobs = 0;
    for (const auto jid : rig.scheduler.running_jobs()) {
      const auto* job = rig.scheduler.find(jid);
      for (const auto nid : job->nodes()) {
        if (nid < static_cast<hw::NodeId>(n)) {
          ++monitored_jobs;
          break;
        }
      }
    }

    // Warm up, then time repeated control cycles.
    const Watts reading{36000.0};
    mgr.cycle(reading, rig.nodes, rig.scheduler, Seconds{1.0});
    const int reps = 200;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      mgr.cycle(reading, rig.nodes, rig.scheduler,
                Seconds{2.0 + static_cast<double>(r)});
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double measured_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;

    const auto& cost = mgr.collector().cost_model();
    const double model_us =
        cost.cycle_cost_us(static_cast<std::size_t>(n), monitored_jobs);
    const double model_util = cost.cpu_utilization(
        static_cast<std::size_t>(n), monitored_jobs, Seconds{1.0});

    if (first_n == 0) {
      first_n = static_cast<std::size_t>(n);
      first_model = model_us;
    }
    last_n = static_cast<std::size_t>(n);
    last_model = model_us;

    table.cell(static_cast<std::int64_t>(n))
        .cell(monitored_jobs)
        .cell(model_us, 1)
        .cell_percent(model_util, 3)
        .cell(measured_us, 1);
    table.end_row();
  }
  table.print();

  const double n_growth =
      static_cast<double>(last_n) / static_cast<double>(first_n);
  const double cost_growth = last_model / first_model;
  std::printf(
      "\ncandidate set grew %.0fx; modelled cost grew %.1fx -> %s\n",
      n_growth, cost_growth,
      cost_growth > n_growth ? "super-linear (matches Figure 5)"
                             : "NOT super-linear (mismatch)");
  return 0;
}
