// Microbenchmarks for the discrete-event kernel: the whole simulation
// (ticks, manager cycles, job events) flows through this queue.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace pcap;

void BM_ScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  std::vector<double> times;
  times.reserve(n);
  for (std::size_t i = 0; i < n; ++i) times.push_back(rng.uniform(0.0, 1e6));
  for (auto _ : state) {
    sim::EventQueue q;
    for (const double t : times) q.schedule(Seconds{t}, [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScheduleAndPop)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_CancelHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(2);
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(q.schedule(Seconds{rng.uniform(0.0, 1e6)}, [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) q.cancel(ids[i]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CancelHeavy)->Arg(4096);

void BM_PeriodicTicks(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t count = 0;
    sim.every(Seconds{1.0}, Seconds{1.0}, [&](Seconds) { ++count; });
    sim.run_until(Seconds{10000.0});
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_PeriodicTicks);

}  // namespace

BENCHMARK_MAIN();
