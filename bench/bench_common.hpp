// Shared plumbing for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "cluster/scenario.hpp"
#include "common/thread_pool.hpp"
#include "metrics/report.hpp"

namespace pcap::bench {

/// Averages the scalar results of one experiment config over several
/// seeds. Runs are independent, so they execute on a thread pool.
struct AveragedResult {
  std::string manager;
  std::size_t candidate_count = 0;
  double performance = 0.0;
  double lossless_fraction = 0.0;
  double p_max_w = 0.0;
  double mean_power_w = 0.0;
  double delta_pxt = 0.0;
  double yellow_s = 0.0;
  double red_s = 0.0;
  double manager_utilization = 0.0;
  std::size_t finished_jobs = 0;
  double predictive_elevations = 0.0;
  double predictor_overshoots = 0.0;
  double predictor_misses = 0.0;
};

inline AveragedResult average_over_seeds(
    cluster::ExperimentConfig cfg, const std::vector<std::uint64_t>& seeds,
    common::ThreadPool& pool) {
  std::vector<cluster::ExperimentResult> results(seeds.size());
  pool.parallel_for(seeds.size(), [&](std::size_t i) {
    cluster::ExperimentConfig c = cfg;
    c.cluster.seed = seeds[i];
    results[i] = cluster::run_experiment(c);
  });

  AveragedResult avg;
  avg.manager = cfg.manager;
  const double n = static_cast<double>(results.size());
  for (const auto& r : results) {
    avg.candidate_count = r.candidate_count;
    avg.performance += r.perf.performance / n;
    avg.lossless_fraction += r.perf.lossless_fraction / n;
    avg.p_max_w += r.p_max.value() / n;
    avg.mean_power_w += r.mean_power.value() / n;
    avg.delta_pxt += r.delta_pxt / n;
    avg.yellow_s += static_cast<double>(r.yellow_cycles) / n;
    avg.red_s += static_cast<double>(r.red_cycles) / n;
    avg.manager_utilization += r.mean_manager_utilization / n;
    avg.finished_jobs += r.perf.finished_jobs;
    avg.predictive_elevations +=
        static_cast<double>(r.predictive_elevations) / n;
    avg.predictor_overshoots +=
        static_cast<double>(r.predictor_overshoots) / n;
    avg.predictor_misses += static_cast<double>(r.predictor_misses) / n;
  }
  return avg;
}

/// Calibrates the shared power provision once (it is a property of the
/// facility, not of the policy under test).
inline Watts calibrate_provision(const cluster::ExperimentConfig& cfg) {
  const Watts peak =
      cluster::probe_uncapped_peak(cfg.cluster, cfg.calibration_duration);
  return peak * cfg.provision_fraction;
}

inline void print_header(const char* title, const char* paper_claim) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper: %s\n\n", paper_claim);
}

}  // namespace pcap::bench
