#include "obs/spans.hpp"

namespace pcap::obs {

std::vector<double> default_time_bounds() {
  return {1e-6,    3.16e-6, 1e-5,    3.16e-5, 1e-4,    3.16e-4, 1e-3,
          3.16e-3, 1e-2,    3.16e-2, 1e-1,    3.16e-1, 1.0,     10.0};
}

void SpanTimer::bind(Registry& reg, const std::string& name,
                     const std::string& help, const std::string& labels) {
  reg_ = &reg;
  handle_ = reg.histogram(name, help, default_time_bounds(), labels);
}

}  // namespace pcap::obs
