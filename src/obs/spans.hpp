// Cycle-phase span timers over the metrics registry.
//
// A SpanTimer owns one histogram series in the shared
// "pcap_cycle_phase_seconds" family (or any family the binder chooses);
// start() returns a scope that measures wall-clock time from construction
// to destruction and records it as one observation. The measurement uses
// std::chrono::steady_clock and is therefore non-deterministic by design
// — span values may never feed back into simulation behaviour (DESIGN.md
// §11). When the registry's timing gate is off, start() skips the clock
// reads entirely, which is how the bench proves the instrumentation's
// overhead.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace pcap::obs {

/// Log-spaced duration buckets, 1 µs .. 10 s (half-decade steps): wide
/// enough for a 32k-node context assembly, fine enough to see a phase
/// regress by one decade.
std::vector<double> default_time_bounds();

class SpanTimer {
 public:
  SpanTimer() = default;  ///< unbound: start() returns an inert scope

  /// Registers the series; `labels` conventionally carries
  /// phase="<stage>". Idempotent per (name, labels) like all registration.
  void bind(Registry& reg, const std::string& name, const std::string& help,
            const std::string& labels);

  class Scope {
   public:
    Scope() = default;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&& other) noexcept
        : reg_(other.reg_), handle_(other.handle_), start_(other.start_) {
      other.reg_ = nullptr;
    }
    Scope& operator=(Scope&&) = delete;
    ~Scope() {
      if (reg_ == nullptr) return;
      const auto end = std::chrono::steady_clock::now();
      reg_->observe(handle_,
                    std::chrono::duration<double>(end - start_).count());
    }

   private:
    friend class SpanTimer;
    Scope(Registry* reg, HistogramHandle handle)
        : reg_(reg), handle_(handle),
          start_(std::chrono::steady_clock::now()) {}

    Registry* reg_ = nullptr;
    HistogramHandle handle_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Begins a measured span; inert when unbound or timing is disabled.
  [[nodiscard]] Scope start() const {
    if (reg_ == nullptr || !reg_->timing_enabled()) return Scope{};
    return Scope{reg_, handle_};
  }

  /// Records a duration directly (tests / externally timed sections).
  void record(double seconds) {
    if (reg_ != nullptr) reg_->observe(handle_, seconds);
  }

  [[nodiscard]] bool bound() const { return reg_ != nullptr; }
  [[nodiscard]] HistogramHandle handle() const { return handle_; }

 private:
  Registry* reg_ = nullptr;
  HistogramHandle handle_;
};

}  // namespace pcap::obs
