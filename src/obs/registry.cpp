#include "obs/registry.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/string_util.hpp"

namespace pcap::obs {

namespace {

/// Minimal JSON string escaping (keys carry label quotes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return common::strprintf("%.17g", v);
}

}  // namespace

std::string series_key(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

void Registry::check_new_series(const std::string& key) const {
  if (frozen_) {
    throw std::logic_error("obs::Registry: registering new series '" + key +
                           "' after freeze()");
  }
  if (key.empty() || key.front() == '{') {
    throw std::invalid_argument("obs::Registry: empty series name");
  }
}

CounterHandle Registry::counter(const std::string& name,
                                const std::string& help,
                                const std::string& labels) {
  const std::string key = series_key(name, labels);
  if (const auto existing = find_counter(key)) return *existing;
  check_new_series(key);
  counters_.push_back(CounterSeries{key, name, labels, help, 0});
  return CounterHandle{counters_.size() - 1};
}

GaugeHandle Registry::gauge(const std::string& name, const std::string& help,
                            const std::string& labels) {
  const std::string key = series_key(name, labels);
  if (const auto existing = find_gauge(key)) return *existing;
  check_new_series(key);
  gauges_.push_back(GaugeSeries{key, name, labels, help, 0.0});
  return GaugeHandle{gauges_.size() - 1};
}

HistogramHandle Registry::histogram(const std::string& name,
                                    const std::string& help,
                                    std::vector<double> upper_bounds,
                                    const std::string& labels) {
  const std::string key = series_key(name, labels);
  if (const auto existing = find_histogram(key)) return *existing;
  check_new_series(key);
  if (upper_bounds.empty()) {
    throw std::invalid_argument("obs::Registry: histogram '" + key +
                                "' needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
    if (!(upper_bounds[i] > upper_bounds[i - 1])) {
      throw std::invalid_argument("obs::Registry: histogram '" + key +
                                  "' bounds not strictly increasing");
    }
  }
  HistogramSeries h;
  h.key = key;
  h.family = name;
  h.labels = labels;
  h.help = help;
  h.bins.assign(upper_bounds.size() + 1, 0);
  h.bounds = std::move(upper_bounds);
  histograms_.push_back(std::move(h));
  return HistogramHandle{histograms_.size() - 1};
}

void Registry::observe(HistogramHandle h, double x) {
  HistogramSeries& s = histograms_[h.index];
  std::size_t i = 0;
  while (i < s.bounds.size() && x > s.bounds[i]) ++i;
  ++s.bins[i];
  ++s.count;
  s.sum += x;
}

std::optional<CounterHandle> Registry::find_counter(
    const std::string& key) const {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].key == key) return CounterHandle{i};
  }
  return std::nullopt;
}

std::optional<GaugeHandle> Registry::find_gauge(const std::string& key) const {
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i].key == key) return GaugeHandle{i};
  }
  return std::nullopt;
}

std::optional<HistogramHandle> Registry::find_histogram(
    const std::string& key) const {
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].key == key) return HistogramHandle{i};
  }
  return std::nullopt;
}

std::optional<std::uint64_t> Registry::counter_value(
    const std::string& key) const {
  if (const auto h = find_counter(key)) return value(*h);
  return std::nullopt;
}

std::string Registry::prometheus_text() const {
  std::ostringstream out;
  std::string last_family;
  const auto header = [&](const std::string& family, const std::string& help,
                          const char* type) {
    if (family == last_family) return;
    out << "# HELP " << family << ' ' << help << '\n';
    out << "# TYPE " << family << ' ' << type << '\n';
    last_family = family;
  };

  for (const CounterSeries& c : counters_) {
    header(c.family, c.help, "counter");
    out << c.key << ' ' << c.value << '\n';
  }
  for (const GaugeSeries& g : gauges_) {
    header(g.family, g.help, "gauge");
    out << g.key << ' ' << format_double(g.value) << '\n';
  }
  for (const HistogramSeries& h : histograms_) {
    header(h.family, h.help, "histogram");
    const std::string sep = h.labels.empty() ? "" : ",";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.bins[i];
      out << h.family << "_bucket{" << h.labels << sep << "le=\""
          << common::strprintf("%g", h.bounds[i]) << "\"} " << cumulative
          << '\n';
    }
    out << h.family << "_bucket{" << h.labels << sep << "le=\"+Inf\"} "
        << h.count << '\n';
    out << series_key(h.family + "_sum", h.labels) << ' '
        << format_double(h.sum) << '\n';
    out << series_key(h.family + "_count", h.labels) << ' ' << h.count
        << '\n';
  }
  return out.str();
}

std::string Registry::json_snapshot() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << json_escape(counters_[i].key) << "\": " << counters_[i].value;
  }
  out << (counters_.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(gauges_[i].key)
        << "\": " << common::strprintf("%.17g", gauges_[i].value);
  }
  out << (gauges_.empty() ? "}" : "\n  }") << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const HistogramSeries& h = histograms_[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(h.key)
        << "\": {\"count\": " << h.count
        << ", \"sum\": " << common::strprintf("%.17g", h.sum)
        << ", \"le\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      out << (b == 0 ? "" : ", ") << common::strprintf("%g", h.bounds[b]);
    }
    out << "], \"cumulative\": [";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += h.bins[b];
      out << (b == 0 ? "" : ", ") << cumulative;
    }
    out << (h.bounds.empty() ? "" : ", ") << h.count << "]}";
  }
  out << (histograms_.empty() ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

}  // namespace pcap::obs
