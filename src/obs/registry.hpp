// Runtime observability: a deterministic metrics registry.
//
// Every series (monotonic counter, gauge, fixed-bucket histogram) is
// registered once at setup time; the hot path then performs nothing but
// array stores against preallocated slots — no hashing, no allocation,
// no locks. The registry is therefore NOT thread-safe: publish only from
// the thread driving the simulation (all existing publish sites sit in
// the serial sections of the tick/control loop).
//
// Determinism rules (see DESIGN.md §11):
//  * Counters and gauges derived from simulation state are a pure
//    function of the seed/config — identical across worker counts.
//  * Span histograms (obs/spans.hpp) record wall-clock durations and are
//    explicitly non-deterministic; nothing in the simulation may ever
//    read them back, so they cannot perturb results. Timing can be
//    disabled wholesale (set_timing_enabled) for overhead measurements.
//  * Registration is idempotent per series key: re-registering the same
//    key returns the existing slot (so a replacement manager re-binding
//    against a frozen registry keeps working), and freeze() turns any
//    *new* registration into an error — the guard that keeps series
//    creation out of the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace pcap::obs {

struct CounterHandle {
  std::size_t index = std::numeric_limits<std::size_t>::max();
  [[nodiscard]] bool valid() const {
    return index != std::numeric_limits<std::size_t>::max();
  }
};

struct GaugeHandle {
  std::size_t index = std::numeric_limits<std::size_t>::max();
  [[nodiscard]] bool valid() const {
    return index != std::numeric_limits<std::size_t>::max();
  }
};

struct HistogramHandle {
  std::size_t index = std::numeric_limits<std::size_t>::max();
  [[nodiscard]] bool valid() const {
    return index != std::numeric_limits<std::size_t>::max();
  }
};

class Registry {
 public:
  Registry() = default;

  // -- registration (setup phase) ---------------------------------------
  // `name` is the Prometheus family name (e.g. "pcap_manager_acks_total");
  // `labels` is an optional label body without braces (e.g.
  // "phase=\"collect\""). The series key is name or name{labels}.
  // Registering an existing key returns its handle; registering a new key
  // after freeze() throws std::logic_error.
  CounterHandle counter(const std::string& name, const std::string& help,
                        const std::string& labels = "");
  GaugeHandle gauge(const std::string& name, const std::string& help,
                    const std::string& labels = "");
  /// `upper_bounds` are the histogram's inclusive bucket upper bounds,
  /// strictly increasing and non-empty; samples above the last bound land
  /// in the implicit +Inf bucket.
  HistogramHandle histogram(const std::string& name, const std::string& help,
                            std::vector<double> upper_bounds,
                            const std::string& labels = "");

  /// Seals the series set: any registration of a new key afterwards
  /// throws. Called once by the owner before the first hot-path tick.
  void freeze() { frozen_ = true; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  /// Gates span timing (obs/spans.hpp): when off, scopes skip the clock
  /// reads entirely. Counters and gauges are always live.
  void set_timing_enabled(bool on) { timing_enabled_ = on; }
  [[nodiscard]] bool timing_enabled() const { return timing_enabled_; }

  // -- hot path (array stores only) --------------------------------------
  void add(CounterHandle h, std::uint64_t delta = 1) {
    counters_[h.index].value += delta;
  }
  /// Mirrors an externally-maintained monotonic total into the slot (the
  /// channel/collector lifetime counters own their ground truth; the
  /// registry exposes it).
  void set_total(CounterHandle h, std::uint64_t total) {
    counters_[h.index].value = total;
  }
  void set(GaugeHandle h, double value) { gauges_[h.index].value = value; }
  void observe(HistogramHandle h, double x);

  // -- reads -------------------------------------------------------------
  [[nodiscard]] std::uint64_t value(CounterHandle h) const {
    return counters_[h.index].value;
  }
  [[nodiscard]] double value(GaugeHandle h) const {
    return gauges_[h.index].value;
  }
  [[nodiscard]] std::uint64_t count(HistogramHandle h) const {
    return histograms_[h.index].count;
  }
  [[nodiscard]] double sum(HistogramHandle h) const {
    return histograms_[h.index].sum;
  }

  /// Looks a series up by its key ("name" or "name{labels}"); consumers
  /// that did not register the series (e.g. the experiment runner reading
  /// manager counters) resolve handles this way.
  [[nodiscard]] std::optional<CounterHandle> find_counter(
      const std::string& key) const;
  [[nodiscard]] std::optional<GaugeHandle> find_gauge(
      const std::string& key) const;
  [[nodiscard]] std::optional<HistogramHandle> find_histogram(
      const std::string& key) const;
  /// find_counter + value in one step; nullopt when the series is absent.
  [[nodiscard]] std::optional<std::uint64_t> counter_value(
      const std::string& key) const;

  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }
  [[nodiscard]] std::size_t gauge_count() const { return gauges_.size(); }
  [[nodiscard]] std::size_t histogram_count() const {
    return histograms_.size();
  }

  // -- exporters ---------------------------------------------------------
  /// Prometheus text exposition format (one # HELP/# TYPE per family, in
  /// registration order).
  [[nodiscard]] std::string prometheus_text() const;
  /// JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {key: {count, sum, le[], cumulative[]}}}.
  [[nodiscard]] std::string json_snapshot() const;

 private:
  struct CounterSeries {
    std::string key;
    std::string family;
    std::string labels;
    std::string help;
    std::uint64_t value = 0;
  };
  struct GaugeSeries {
    std::string key;
    std::string family;
    std::string labels;
    std::string help;
    double value = 0.0;
  };
  struct HistogramSeries {
    std::string key;
    std::string family;
    std::string labels;
    std::string help;
    std::vector<double> bounds;        ///< inclusive upper bounds
    std::vector<std::uint64_t> bins;   ///< bounds.size() + 1 (+Inf last)
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  void check_new_series(const std::string& key) const;

  std::vector<CounterSeries> counters_;
  std::vector<GaugeSeries> gauges_;
  std::vector<HistogramSeries> histograms_;
  bool frozen_ = false;
  bool timing_enabled_ = true;
};

/// Series key for a (name, labels) pair: "name" or "name{labels}".
std::string series_key(const std::string& name, const std::string& labels);

}  // namespace pcap::obs
