// Phase descriptors: the unit of application behaviour.
//
// An application is modelled as a repeating iteration of phases; each phase
// states what the node's devices are doing (CPU utilisation, memory
// footprint, NIC traffic) and how sensitive its progress is to clock
// frequency. These are exactly the inputs of the paper's formula (1), so
// the profiling agents observe realistic signals.
#pragma once

#include <stdexcept>
#include <string>

namespace pcap::workload {

struct Phase {
  std::string name;

  /// CPU utilisation demanded on a fully occupied node, in [0, 1].
  double cpu_utilization = 0.0;

  /// Frequency-sensitive fraction of the phase's work, in [0, 1].
  /// 1.0 = perfectly compute-bound (halving the clock halves progress);
  /// 0.0 = progress independent of clock (memory/network bound).
  double frequency_sensitivity = 0.5;

  /// Fraction of node memory touched when the node is fully occupied.
  double mem_fraction = 0.0;

  /// NIC traffic per process, bytes per second (both directions summed).
  double comm_bytes_per_proc_per_s = 0.0;

  /// Fraction of the phase's progress gated by the network, in [0, 1]:
  /// under interconnect contention delivering fraction f of the offered
  /// traffic, progress scales by (1 - ns + ns * f).
  double network_sensitivity = 0.0;

  /// Wall-clock seconds this phase lasts per iteration at full speed.
  double seconds_per_iteration = 1.0;
};

/// Amdahl-style slowdown law on clock frequency: the achievable progress
/// rate (<= 1) of a phase when the clock runs at `relative_speed` (= f/f_max)
/// of nominal:
///
///   rate = 1 / ( s / r + (1 - s) )     with s = frequency_sensitivity.
///
/// A fully compute-bound phase (s=1) degrades proportionally to the clock;
/// a fully memory-bound one (s=0) does not degrade at all.
///
/// Inline: the workload engine evaluates this per job-node per tick.
inline double frequency_progress_rate(double frequency_sensitivity,
                                      double relative_speed) {
  if (relative_speed <= 0.0) {
    throw std::invalid_argument("frequency_progress_rate: non-positive speed");
  }
  const double s = frequency_sensitivity;
  // 1 / (s/v + (1-s)) rearranged to a single division.
  return relative_speed / (s + (1.0 - s) * relative_speed);
}

/// Progress multiplier (<= 1) when the interconnect delivers
/// `delivered_fraction` of the phase's offered traffic. Inline for the
/// same reason as frequency_progress_rate.
inline double network_progress_rate(double network_sensitivity,
                                    double delivered_fraction) {
  if (delivered_fraction <= 0.0 || delivered_fraction > 1.0) {
    throw std::invalid_argument("network_progress_rate: bad fraction");
  }
  return 1.0 - network_sensitivity + network_sensitivity * delivered_fraction;
}

/// Validates a phase's ranges; throws std::invalid_argument.
void validate_phase(const Phase& p);

}  // namespace pcap::workload
