#include "workload/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/csv.hpp"

namespace pcap::workload {

void WorkloadTrace::add(TraceEntry entry) {
  if (!entries_.empty() && entry.submit_time_s < entries_.back().submit_time_s) {
    throw std::invalid_argument("WorkloadTrace: submit times must not regress");
  }
  if (entry.nprocs <= 0) {
    throw std::invalid_argument("WorkloadTrace: nprocs <= 0");
  }
  entries_.push_back(std::move(entry));
}

std::string WorkloadTrace::to_csv() const {
  std::ostringstream out;
  common::CsvWriter w(out, {"submit_s", "app", "nprocs"});
  for (const auto& e : entries_) {
    w.cell(e.submit_time_s)
        .cell(e.app_name)
        .cell(static_cast<std::int64_t>(e.nprocs));
    w.end_row();
  }
  return out.str();
}

WorkloadTrace WorkloadTrace::from_csv(const std::string& text) {
  WorkloadTrace trace;
  const auto rows = common::parse_csv(text);
  if (rows.empty()) return trace;
  for (std::size_t i = 1; i < rows.size(); ++i) {  // skip header
    const auto& row = rows[i];
    if (row.size() != 3) {
      throw std::runtime_error("WorkloadTrace: malformed row " +
                               std::to_string(i));
    }
    trace.add(TraceEntry{.submit_time_s = std::stod(row[0]),
                         .app_name = row[1],
                         .nprocs = std::stoi(row[2])});
  }
  return trace;
}

void WorkloadTrace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("WorkloadTrace: cannot write " + path);
  out << to_csv();
}

WorkloadTrace WorkloadTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("WorkloadTrace: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_csv(ss.str());
}

std::vector<Job> WorkloadTrace::materialize(NpbClass cls) const {
  std::vector<Job> jobs;
  jobs.reserve(entries_.size());
  JobId id = 0;
  for (const auto& e : entries_) {
    jobs.emplace_back(id++, npb_by_name(e.app_name, cls), e.nprocs,
                      Seconds{e.submit_time_s});
  }
  return jobs;
}

}  // namespace pcap::workload
