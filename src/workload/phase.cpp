#include "workload/phase.hpp"

#include <stdexcept>

namespace pcap::workload {

void validate_phase(const Phase& p) {
  const auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in01(p.cpu_utilization)) {
    throw std::invalid_argument("Phase: cpu_utilization out of [0,1]");
  }
  if (!in01(p.frequency_sensitivity)) {
    throw std::invalid_argument("Phase: frequency_sensitivity out of [0,1]");
  }
  if (!in01(p.mem_fraction)) {
    throw std::invalid_argument("Phase: mem_fraction out of [0,1]");
  }
  if (p.comm_bytes_per_proc_per_s < 0.0) {
    throw std::invalid_argument("Phase: negative comm rate");
  }
  if (!in01(p.network_sensitivity)) {
    throw std::invalid_argument("Phase: network_sensitivity out of [0,1]");
  }
  if (p.seconds_per_iteration <= 0.0) {
    throw std::invalid_argument("Phase: non-positive duration");
  }
}

}  // namespace pcap::workload
