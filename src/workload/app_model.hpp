// Application behaviour model: a repeating iteration of phases plus a
// strong-scaling law that turns (class, nprocs) into a full-speed duration.
#pragma once

#include <string>
#include <vector>

#include "workload/phase.hpp"

namespace pcap::workload {

struct AppModel {
  std::string name;

  /// One-off start-up phases (initialisation, data generation, warm-up)
  /// executed before the main loop. Real codes spend their first minute
  /// or two well below peak power, which is what makes machine-wide power
  /// onset gradual rather than step-like.
  std::vector<Phase> prologue;

  /// One iteration of the application's main loop; cycled until the job's
  /// full-speed duration is exhausted.
  std::vector<Phase> iteration;

  /// Full-speed duration at the reference process count (seconds).
  double reference_duration_s = 600.0;
  int reference_nprocs = 64;

  /// Strong-scaling exponent: T(n) = T_ref * (ref_nprocs / n)^alpha.
  /// alpha = 1 is perfect scaling; < 1 reflects parallel inefficiency.
  double scaling_alpha = 0.9;

  /// Seconds of one full iteration at full speed.
  [[nodiscard]] double iteration_seconds() const;

  /// Seconds of the one-off prologue at full speed.
  [[nodiscard]] double prologue_seconds() const;

  /// Full-speed duration for an nprocs-process run of this application.
  [[nodiscard]] double duration_at(int nprocs) const;

  /// The phase active after `progress` seconds of full-speed execution
  /// (progress is folded into the iteration cycle).
  [[nodiscard]] const Phase& phase_at(double progress_seconds) const;

  /// Average CPU utilisation over one iteration (time-weighted), a rough
  /// indicator of how power-hungry the application is.
  [[nodiscard]] double mean_cpu_utilization() const;

  /// Validates all phases and scaling parameters.
  void validate() const;
};

}  // namespace pcap::workload
