#include "workload/job.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::workload {

const char* job_priority_name(JobPriority p) {
  switch (p) {
    case JobPriority::kNormal:
      return "normal";
    case JobPriority::kPrivileged:
      return "privileged";
  }
  return "?";
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kFinished:
      return "finished";
  }
  return "?";
}

Job::Job(JobId id, AppModel app, int nprocs, Seconds submit_time,
         JobPriority priority)
    : id_(id),
      app_(std::move(app)),
      nprocs_(nprocs),
      priority_(priority),
      submit_time_(submit_time),
      duration_s_(0.0) {
  if (nprocs_ <= 0) throw std::invalid_argument("Job: nprocs <= 0");
  app_.validate();
  duration_s_ = app_.duration_at(nprocs_);
}

Seconds Job::actual_duration() const {
  if (state_ != JobState::kFinished) {
    throw std::logic_error("Job::actual_duration: job not finished");
  }
  return finish_time_ - start_time_;
}

int Job::nodes_needed(int cores_per_node) const {
  if (cores_per_node <= 0) {
    throw std::invalid_argument("Job::nodes_needed: cores_per_node <= 0");
  }
  return (nprocs_ + cores_per_node - 1) / cores_per_node;
}

int Job::procs_on_node(std::size_t alloc_index, int cores_per_node) const {
  const int total_nodes = nodes_needed(cores_per_node);
  if (alloc_index >= static_cast<std::size_t>(total_nodes)) return 0;
  if (alloc_index + 1 < static_cast<std::size_t>(total_nodes)) {
    return cores_per_node;
  }
  const int rem = nprocs_ % cores_per_node;
  return rem == 0 ? cores_per_node : rem;
}

void Job::start(std::vector<hw::NodeId> nodes, std::vector<int> procs_per_node,
                Seconds now) {
  if (state_ != JobState::kQueued) {
    throw std::logic_error("Job::start: job not queued");
  }
  if (nodes.empty()) throw std::invalid_argument("Job::start: no nodes");
  if (procs_per_node.size() != nodes.size()) {
    throw std::invalid_argument("Job::start: placement size mismatch");
  }
  int total = 0;
  for (int p : procs_per_node) {
    if (p <= 0) throw std::invalid_argument("Job::start: empty placement slot");
    total += p;
  }
  if (total != nprocs_) {
    throw std::invalid_argument("Job::start: placement does not cover nprocs");
  }
  nodes_ = std::move(nodes);
  procs_per_node_ = std::move(procs_per_node);
  start_time_ = now;
  state_ = JobState::kRunning;
}

bool Job::advance(Seconds dt, double progress_rate, Seconds now_end) {
  if (state_ != JobState::kRunning) {
    throw std::logic_error("Job::advance: job not running");
  }
  if (dt < Seconds{0.0} || progress_rate < 0.0) {
    throw std::invalid_argument("Job::advance: negative step");
  }
  const double gained = dt.value() * progress_rate;
  const double before = progress_s_;
  progress_s_ = std::min(progress_s_ + gained, duration_s_);
  if (progress_s_ >= duration_s_) {
    // Interpolate the finish instant inside the step.
    const double needed = duration_s_ - before;
    const double frac = gained > 0.0 ? needed / gained : 0.0;
    finish_time_ = now_end - dt * (1.0 - frac);
    state_ = JobState::kFinished;
    return true;
  }
  return false;
}

double Job::remaining_seconds() const {
  return std::max(0.0, duration_s_ - progress_s_);
}

const Phase& Job::current_phase() const { return app_.phase_at(progress_s_); }

}  // namespace pcap::workload
