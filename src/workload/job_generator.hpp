// Random job generation following the paper's experimental protocol:
// "evaluation jobs were generated at random by first selecting one
// application from the benchmark, and then set the NPROCS parameter at
// random to be one of the values 8, 16, 32, 64, 128, 256. An evaluation
// job is added to the job queue whenever the queue is empty." (§V.C)
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/job.hpp"
#include "workload/npb.hpp"

namespace pcap::workload {

struct JobDraw {
  std::size_t app_index = 0;  ///< index into the generator's suite
  int nprocs = 0;
  JobPriority priority = JobPriority::kNormal;
};

class JobGenerator {
 public:
  /// `max_nprocs` clips the NPROCS choices so a draw never exceeds the
  /// cluster's capacity (e.g. small test clusters).
  /// `privileged_fraction` of draws are marked privileged (§II.A): their
  /// nodes join A_uncontrollable for the duration of the job.
  JobGenerator(std::vector<AppModel> suite, std::vector<int> nprocs_choices,
               common::Rng rng, int max_nprocs = 0,
               double privileged_fraction = 0.0);

  /// Convenience: the paper's NPB suite + NPROCS set.
  static JobGenerator paper_default(common::Rng rng, int max_nprocs = 0,
                                    NpbClass cls = NpbClass::kD,
                                    double privileged_fraction = 0.0);

  /// Uniform draw of (application, nprocs).
  JobDraw draw();

  /// Materialises the next job from a draw.
  Job make_job(const JobDraw& draw, Seconds submit_time);

  /// draw() + make_job() with a fresh id.
  Job next(Seconds submit_time);

  [[nodiscard]] const std::vector<AppModel>& suite() const { return suite_; }
  [[nodiscard]] const std::vector<int>& nprocs_choices() const {
    return nprocs_choices_;
  }
  [[nodiscard]] JobId jobs_issued() const { return next_id_; }

 private:
  std::vector<AppModel> suite_;
  std::vector<int> nprocs_choices_;
  common::Rng rng_;
  double privileged_fraction_;
  JobId next_id_ = 0;
};

}  // namespace pcap::workload
