// Workload trace record/replay.
//
// A trace pins down the exact job sequence (submit time, benchmark,
// NPROCS) so two policies can be compared on identical offered load, and
// experiments can be archived as CSV artefacts.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "workload/job.hpp"
#include "workload/npb.hpp"

namespace pcap::workload {

struct TraceEntry {
  double submit_time_s = 0.0;
  std::string app_name;
  int nprocs = 0;
};

class WorkloadTrace {
 public:
  WorkloadTrace() = default;

  void add(TraceEntry entry);
  [[nodiscard]] const std::vector<TraceEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// CSV round-trip ("submit_s,app,nprocs" header).
  [[nodiscard]] std::string to_csv() const;
  static WorkloadTrace from_csv(const std::string& text);

  void save(const std::string& path) const;
  static WorkloadTrace load(const std::string& path);

  /// Materialises jobs (ids assigned in order) using NPB models.
  [[nodiscard]] std::vector<Job> materialize(NpbClass cls = NpbClass::kD) const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace pcap::workload
