#include "workload/npb.hpp"

#include <stdexcept>

#include "common/string_util.hpp"

namespace pcap::workload {

double npb_class_scale(NpbClass cls) {
  switch (cls) {
    case NpbClass::kC:
      return 1.0 / 16.0;
    case NpbClass::kD:
      return 1.0;
  }
  return 1.0;
}

namespace {

AppModel finalize(AppModel m, NpbClass cls) {
  m.reference_duration_s *= npb_class_scale(cls);
  m.validate();
  return m;
}

}  // namespace

AppModel make_ep(NpbClass cls) {
  AppModel m;
  m.name = "EP";
  m.prologue = {
      Phase{.name = "init",
            .cpu_utilization = 0.25,
            .frequency_sensitivity = 0.40,
            .mem_fraction = 0.08,
            .comm_bytes_per_proc_per_s = 1e6,
            .seconds_per_iteration = 45.0},
  };
  m.iteration = {
      Phase{.name = "generate",
            .cpu_utilization = 0.98,
            .frequency_sensitivity = 0.95,
            .mem_fraction = 0.08,
            .comm_bytes_per_proc_per_s = 2e4,
            .seconds_per_iteration = 160.0},
      Phase{.name = "reduce",
            .cpu_utilization = 0.30,
            .frequency_sensitivity = 0.30,
            .mem_fraction = 0.08,
            .comm_bytes_per_proc_per_s = 4e7,
            .network_sensitivity = 0.60,
            .seconds_per_iteration = 6.0},
  };
  m.reference_duration_s = 420.0;
  m.reference_nprocs = 64;
  m.scaling_alpha = 0.98;  // embarrassingly parallel scales near-perfectly
  return finalize(std::move(m), cls);
}

AppModel make_cg(NpbClass cls) {
  AppModel m;
  m.name = "CG";
  m.prologue = {
      Phase{.name = "makea",
            .cpu_utilization = 0.22,
            .frequency_sensitivity = 0.35,
            .mem_fraction = 0.45,
            .comm_bytes_per_proc_per_s = 2e6,
            .seconds_per_iteration = 75.0},
  };
  m.iteration = {
      Phase{.name = "spmv",
            .cpu_utilization = 0.42,
            .frequency_sensitivity = 0.35,
            .mem_fraction = 0.60,
            .comm_bytes_per_proc_per_s = 6e7,
            .network_sensitivity = 0.35,
            .seconds_per_iteration = 40.0},
      Phase{.name = "dot+axpy",
            .cpu_utilization = 0.28,
            .frequency_sensitivity = 0.30,
            .mem_fraction = 0.60,
            .comm_bytes_per_proc_per_s = 9e7,
            .network_sensitivity = 0.55,
            .seconds_per_iteration = 18.0},
  };
  m.reference_duration_s = 520.0;
  m.reference_nprocs = 64;
  m.scaling_alpha = 0.80;  // irregular communication limits scaling
  return finalize(std::move(m), cls);
}

AppModel make_lu(NpbClass cls) {
  AppModel m;
  m.name = "LU";
  m.prologue = {
      Phase{.name = "setbv+setiv",
            .cpu_utilization = 0.25,
            .frequency_sensitivity = 0.40,
            .mem_fraction = 0.30,
            .comm_bytes_per_proc_per_s = 2e6,
            .seconds_per_iteration = 90.0},
  };
  m.iteration = {
      Phase{.name = "ssor-sweep",
            .cpu_utilization = 0.88,
            .frequency_sensitivity = 0.62,
            .mem_fraction = 0.38,
            .comm_bytes_per_proc_per_s = 1.5e7,
            .seconds_per_iteration = 70.0},
      Phase{.name = "rhs-exchange",
            .cpu_utilization = 0.30,
            .frequency_sensitivity = 0.35,
            .mem_fraction = 0.38,
            .comm_bytes_per_proc_per_s = 7e7,
            .network_sensitivity = 0.50,
            .seconds_per_iteration = 18.0},
  };
  m.reference_duration_s = 900.0;
  m.reference_nprocs = 64;
  m.scaling_alpha = 0.88;
  return finalize(std::move(m), cls);
}

AppModel make_bt(NpbClass cls) {
  AppModel m;
  m.name = "BT";
  m.prologue = {
      Phase{.name = "initialize",
            .cpu_utilization = 0.25,
            .frequency_sensitivity = 0.40,
            .mem_fraction = 0.35,
            .comm_bytes_per_proc_per_s = 2e6,
            .seconds_per_iteration = 90.0},
  };
  m.iteration = {
      Phase{.name = "xyz-solve",
            .cpu_utilization = 0.80,
            .frequency_sensitivity = 0.58,
            .mem_fraction = 0.45,
            .comm_bytes_per_proc_per_s = 2.5e7,
            .seconds_per_iteration = 80.0},
      Phase{.name = "face-exchange",
            .cpu_utilization = 0.28,
            .frequency_sensitivity = 0.30,
            .mem_fraction = 0.45,
            .comm_bytes_per_proc_per_s = 8e7,
            .network_sensitivity = 0.50,
            .seconds_per_iteration = 20.0},
  };
  m.reference_duration_s = 1100.0;
  m.reference_nprocs = 64;
  m.scaling_alpha = 0.90;
  return finalize(std::move(m), cls);
}

AppModel make_sp(NpbClass cls) {
  AppModel m;
  m.name = "SP";
  m.prologue = {
      Phase{.name = "initialize",
            .cpu_utilization = 0.25,
            .frequency_sensitivity = 0.40,
            .mem_fraction = 0.38,
            .comm_bytes_per_proc_per_s = 2e6,
            .seconds_per_iteration = 90.0},
  };
  m.iteration = {
      Phase{.name = "adi-sweep",
            .cpu_utilization = 0.70,
            .frequency_sensitivity = 0.52,
            .mem_fraction = 0.48,
            .comm_bytes_per_proc_per_s = 3.5e7,
            .seconds_per_iteration = 55.0},
      Phase{.name = "boundary-exchange",
            .cpu_utilization = 0.26,
            .frequency_sensitivity = 0.28,
            .mem_fraction = 0.48,
            .comm_bytes_per_proc_per_s = 9.5e7,
            .network_sensitivity = 0.55,
            .seconds_per_iteration = 20.0},
  };
  m.reference_duration_s = 1000.0;
  m.reference_nprocs = 64;
  m.scaling_alpha = 0.86;
  return finalize(std::move(m), cls);
}

AppModel make_mg(NpbClass cls) {
  AppModel m;
  m.name = "MG";
  m.prologue = {
      Phase{.name = "setup-grids",
            .cpu_utilization = 0.20,
            .frequency_sensitivity = 0.35,
            .mem_fraction = 0.40,
            .comm_bytes_per_proc_per_s = 2e6,
            .seconds_per_iteration = 60.0},
  };
  m.iteration = {
      Phase{.name = "v-cycle-smooth",
            .cpu_utilization = 0.55,
            .frequency_sensitivity = 0.40,
            .mem_fraction = 0.55,
            .comm_bytes_per_proc_per_s = 3e7,
            .seconds_per_iteration = 35.0},
      Phase{.name = "coarse-exchange",
            .cpu_utilization = 0.25,
            .frequency_sensitivity = 0.25,
            .mem_fraction = 0.55,
            .comm_bytes_per_proc_per_s = 1.1e8,
            .network_sensitivity = 0.60,
            .seconds_per_iteration = 12.0},
  };
  m.reference_duration_s = 450.0;
  m.reference_nprocs = 64;
  m.scaling_alpha = 0.82;
  return finalize(std::move(m), cls);
}

AppModel make_ft(NpbClass cls) {
  AppModel m;
  m.name = "FT";
  m.prologue = {
      Phase{.name = "init-arrays",
            .cpu_utilization = 0.22,
            .frequency_sensitivity = 0.35,
            .mem_fraction = 0.50,
            .comm_bytes_per_proc_per_s = 2e6,
            .seconds_per_iteration = 70.0},
  };
  m.iteration = {
      Phase{.name = "local-fft",
            .cpu_utilization = 0.68,
            .frequency_sensitivity = 0.50,
            .mem_fraction = 0.62,
            .comm_bytes_per_proc_per_s = 1e7,
            .seconds_per_iteration = 25.0},
      Phase{.name = "all-to-all-transpose",
            .cpu_utilization = 0.22,
            .frequency_sensitivity = 0.15,
            .mem_fraction = 0.62,
            .comm_bytes_per_proc_per_s = 2.2e8,
            .network_sensitivity = 0.90,
            .seconds_per_iteration = 18.0},
  };
  m.reference_duration_s = 650.0;
  m.reference_nprocs = 64;
  m.scaling_alpha = 0.78;  // transposes throttle scaling hard
  return finalize(std::move(m), cls);
}

AppModel make_is(NpbClass cls) {
  AppModel m;
  m.name = "IS";
  m.prologue = {
      Phase{.name = "key-generation",
            .cpu_utilization = 0.35,
            .frequency_sensitivity = 0.55,
            .mem_fraction = 0.30,
            .comm_bytes_per_proc_per_s = 1e6,
            .seconds_per_iteration = 25.0},
  };
  m.iteration = {
      Phase{.name = "local-rank",
            .cpu_utilization = 0.45,
            .frequency_sensitivity = 0.30,
            .mem_fraction = 0.38,
            .comm_bytes_per_proc_per_s = 2e7,
            .seconds_per_iteration = 10.0},
      Phase{.name = "bucket-redistribute",
            .cpu_utilization = 0.20,
            .frequency_sensitivity = 0.12,
            .mem_fraction = 0.38,
            .comm_bytes_per_proc_per_s = 1.8e8,
            .network_sensitivity = 0.85,
            .seconds_per_iteration = 8.0},
  };
  m.reference_duration_s = 180.0;  // IS is the shortest NPB kernel
  m.reference_nprocs = 64;
  m.scaling_alpha = 0.72;
  return finalize(std::move(m), cls);
}

std::vector<AppModel> npb_suite(NpbClass cls) {
  return {make_ep(cls), make_cg(cls), make_lu(cls), make_bt(cls),
          make_sp(cls)};
}

std::vector<AppModel> npb_extended_suite(NpbClass cls) {
  auto suite = npb_suite(cls);
  suite.push_back(make_mg(cls));
  suite.push_back(make_ft(cls));
  suite.push_back(make_is(cls));
  return suite;
}

AppModel npb_by_name(const std::string& name, NpbClass cls) {
  const std::string n = common::to_lower(name);
  if (n == "ep") return make_ep(cls);
  if (n == "cg") return make_cg(cls);
  if (n == "lu") return make_lu(cls);
  if (n == "bt") return make_bt(cls);
  if (n == "sp") return make_sp(cls);
  if (n == "mg") return make_mg(cls);
  if (n == "ft") return make_ft(cls);
  if (n == "is") return make_is(cls);
  throw std::invalid_argument("npb_by_name: unknown benchmark '" + name +
                              "'");
}

const std::vector<int>& npb_nprocs_choices() {
  static const std::vector<int> choices = {8, 16, 32, 64, 128, 256};
  return choices;
}

}  // namespace pcap::workload
