// NAS Parallel Benchmark behaviour models.
//
// The paper evaluates with five NPB MPI applications — EP, CG, LU, BT, SP —
// at CLASS = D and NPROCS in {8, 16, 32, 64, 128, 256} (§V.B). We model
// each benchmark's well-known character:
//
//   EP  embarrassingly parallel   — pure compute, almost no communication,
//                                    highly frequency-sensitive.
//   CG  conjugate gradient        — memory-bandwidth bound sparse algebra
//                                    with heavy irregular communication.
//   LU  LU factorisation          — compute-heavy with pipelined exchanges.
//   BT  block tridiagonal solver  — balanced compute + structured exchange.
//   SP  scalar pentadiagonal      — like BT, a bit more communication.
//
// Frequency sensitivities follow the usual compute-vs-memory boundedness
// ordering (EP > LU > BT > SP > CG), which is what makes DVFS capping hurt
// EP most and CG least — a prerequisite for reproducing the paper's ~2 %
// mean performance loss.
#pragma once

#include <string>
#include <vector>

#include "workload/app_model.hpp"

namespace pcap::workload {

enum class NpbClass { kC, kD };

/// Problem-class multiplier applied to reference durations (class D is the
/// paper's configuration; class C is ~16x smaller and handy for tests).
double npb_class_scale(NpbClass cls);

AppModel make_ep(NpbClass cls = NpbClass::kD);
AppModel make_cg(NpbClass cls = NpbClass::kD);
AppModel make_lu(NpbClass cls = NpbClass::kD);
AppModel make_bt(NpbClass cls = NpbClass::kD);
AppModel make_sp(NpbClass cls = NpbClass::kD);

// The remaining NPB kernels (not part of the paper's evaluation, provided
// as workload-library extensions):
//   MG  multigrid           — memory-bound V-cycles with long-range comm.
//   FT  3-D FFT             — all-to-all transposes dominate (network).
//   IS  integer bucket sort — short, communication-heavy, integer-only.
AppModel make_mg(NpbClass cls = NpbClass::kD);
AppModel make_ft(NpbClass cls = NpbClass::kD);
AppModel make_is(NpbClass cls = NpbClass::kD);

/// The paper's benchmark suite in a stable order {EP, CG, LU, BT, SP}.
std::vector<AppModel> npb_suite(NpbClass cls = NpbClass::kD);

/// The paper's five plus {MG, FT, IS}.
std::vector<AppModel> npb_extended_suite(NpbClass cls = NpbClass::kD);

/// Lookup by (case-insensitive) name; throws std::invalid_argument for
/// anything that is not one of the five benchmarks.
AppModel npb_by_name(const std::string& name, NpbClass cls = NpbClass::kD);

/// The paper's NPROCS draw set {8, 16, 32, 64, 128, 256}.
const std::vector<int>& npb_nprocs_choices();

}  // namespace pcap::workload
