// A job: one submitted run of an application on a set of nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "hw/node.hpp"
#include "workload/app_model.hpp"

namespace pcap::workload {

using JobId = std::uint64_t;

enum class JobState { kQueued, kRunning, kFinished };

const char* job_state_name(JobState s);

/// §II.A: jobs that are "urgent, of high priority in real-time systems,
/// or critical to the system's performance" make their nodes privileged —
/// such nodes must never be degraded and are excluded from A_candidate.
enum class JobPriority { kNormal, kPrivileged };

const char* job_priority_name(JobPriority p);

class Job {
 public:
  Job(JobId id, AppModel app, int nprocs, Seconds submit_time,
      JobPriority priority = JobPriority::kNormal);

  [[nodiscard]] JobId id() const { return id_; }
  [[nodiscard]] const AppModel& app() const { return app_; }
  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] JobState state() const { return state_; }
  [[nodiscard]] JobPriority priority() const { return priority_; }
  [[nodiscard]] bool privileged() const {
    return priority_ == JobPriority::kPrivileged;
  }

  [[nodiscard]] Seconds submit_time() const { return submit_time_; }
  [[nodiscard]] Seconds start_time() const { return start_time_; }
  [[nodiscard]] Seconds finish_time() const { return finish_time_; }

  /// Full-speed (uncapped) duration T_j — the paper's baseline for the
  /// Performance(cap) metric and CPLJ.
  [[nodiscard]] Seconds baseline_duration() const {
    return Seconds{app_.duration_at(nprocs_)};
  }
  /// Actual running time T_cap,j (finish - start); only valid when
  /// finished.
  [[nodiscard]] Seconds actual_duration() const;

  /// Number of whole nodes an allocation needs given cores per node.
  [[nodiscard]] int nodes_needed(int cores_per_node) const;

  /// Processes placed on the i-th allocated node (whole nodes filled
  /// first; the last node may be partial).
  [[nodiscard]] int procs_on_node(std::size_t alloc_index,
                                  int cores_per_node) const;

  // -- lifecycle -------------------------------------------------------------
  /// Transition queued -> running on the given nodes at time `now`.
  /// `procs_per_node[i]` processes are placed on `nodes[i]`; the placement
  /// must cover exactly nprocs() processes.
  void start(std::vector<hw::NodeId> nodes, std::vector<int> procs_per_node,
             Seconds now);

  /// Advances execution by wall-clock dt at the given progress rate
  /// (<= 1; the bottleneck-node rate). Returns true if the job finished
  /// during this step; `now_end` is the wall-clock time at the end of the
  /// step, used to interpolate the precise finish time.
  bool advance(Seconds dt, double progress_rate, Seconds now_end);

  /// Full-speed seconds of execution completed so far.
  [[nodiscard]] double progress_seconds() const { return progress_s_; }
  /// Remaining full-speed seconds.
  [[nodiscard]] double remaining_seconds() const;
  /// Phase currently executing (by progress position).
  [[nodiscard]] const Phase& current_phase() const;

  [[nodiscard]] const std::vector<hw::NodeId>& nodes() const { return nodes_; }
  /// Processes placed on nodes()[i]; parallel to nodes().
  [[nodiscard]] const std::vector<int>& placement() const {
    return procs_per_node_;
  }

 private:
  JobId id_;
  AppModel app_;
  int nprocs_;
  JobPriority priority_;
  Seconds submit_time_;
  Seconds start_time_{0.0};
  Seconds finish_time_{0.0};
  JobState state_ = JobState::kQueued;
  std::vector<hw::NodeId> nodes_;
  std::vector<int> procs_per_node_;
  double progress_s_ = 0.0;
  double duration_s_;
};

}  // namespace pcap::workload
