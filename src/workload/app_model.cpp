#include "workload/app_model.hpp"

#include <cmath>
#include <stdexcept>

namespace pcap::workload {

double AppModel::iteration_seconds() const {
  double total = 0.0;
  for (const Phase& p : iteration) total += p.seconds_per_iteration;
  return total;
}

double AppModel::prologue_seconds() const {
  double total = 0.0;
  for (const Phase& p : prologue) total += p.seconds_per_iteration;
  return total;
}

double AppModel::duration_at(int nprocs) const {
  if (nprocs <= 0) {
    throw std::invalid_argument("AppModel::duration_at: nprocs <= 0");
  }
  const double ratio =
      static_cast<double>(reference_nprocs) / static_cast<double>(nprocs);
  return reference_duration_s * std::pow(ratio, scaling_alpha);
}

const Phase& AppModel::phase_at(double progress_seconds) const {
  if (iteration.empty()) {
    throw std::logic_error("AppModel::phase_at: no phases");
  }
  if (progress_seconds < 0.0) progress_seconds = 0.0;
  // One-off prologue first.
  for (const Phase& p : prologue) {
    if (progress_seconds < p.seconds_per_iteration) return p;
    progress_seconds -= p.seconds_per_iteration;
  }
  const double iter = iteration_seconds();
  // progress - iter * floor(progress / iter): cheaper than fmod, and this
  // runs once per running job per tick.
  double within = progress_seconds - iter * std::floor(progress_seconds / iter);
  if (within < 0.0) within = 0.0;
  for (const Phase& p : iteration) {
    if (within < p.seconds_per_iteration) return p;
    within -= p.seconds_per_iteration;
  }
  return iteration.back();  // numerical edge: exactly at the boundary
}

double AppModel::mean_cpu_utilization() const {
  const double iter = iteration_seconds();
  if (iter <= 0.0) return 0.0;
  double weighted = 0.0;
  for (const Phase& p : iteration) {
    weighted += p.cpu_utilization * p.seconds_per_iteration;
  }
  return weighted / iter;
}

void AppModel::validate() const {
  if (name.empty()) throw std::invalid_argument("AppModel: empty name");
  if (iteration.empty()) throw std::invalid_argument("AppModel: no phases");
  for (const Phase& p : prologue) validate_phase(p);
  for (const Phase& p : iteration) validate_phase(p);
  if (reference_duration_s <= 0.0) {
    throw std::invalid_argument("AppModel: non-positive duration");
  }
  if (reference_nprocs <= 0) {
    throw std::invalid_argument("AppModel: non-positive reference nprocs");
  }
  if (scaling_alpha <= 0.0 || scaling_alpha > 1.5) {
    throw std::invalid_argument("AppModel: implausible scaling alpha");
  }
}

}  // namespace pcap::workload
