#include "workload/job_generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::workload {

JobGenerator::JobGenerator(std::vector<AppModel> suite,
                           std::vector<int> nprocs_choices, common::Rng rng,
                           int max_nprocs, double privileged_fraction)
    : suite_(std::move(suite)),
      nprocs_choices_(std::move(nprocs_choices)),
      rng_(rng),
      privileged_fraction_(privileged_fraction) {
  if (privileged_fraction_ < 0.0 || privileged_fraction_ > 1.0) {
    throw std::invalid_argument("JobGenerator: bad privileged fraction");
  }
  if (suite_.empty()) throw std::invalid_argument("JobGenerator: empty suite");
  for (const auto& app : suite_) app.validate();
  if (max_nprocs > 0) {
    std::erase_if(nprocs_choices_, [max_nprocs](int n) {
      return n > max_nprocs;
    });
  }
  if (nprocs_choices_.empty()) {
    throw std::invalid_argument("JobGenerator: no feasible NPROCS choices");
  }
  for (int n : nprocs_choices_) {
    if (n <= 0) throw std::invalid_argument("JobGenerator: bad NPROCS");
  }
}

JobGenerator JobGenerator::paper_default(common::Rng rng, int max_nprocs,
                                         NpbClass cls,
                                         double privileged_fraction) {
  return JobGenerator(npb_suite(cls), npb_nprocs_choices(), rng, max_nprocs,
                      privileged_fraction);
}

JobDraw JobGenerator::draw() {
  JobDraw d;
  d.app_index = rng_.index(suite_.size());
  d.nprocs = nprocs_choices_[rng_.index(nprocs_choices_.size())];
  if (privileged_fraction_ > 0.0 && rng_.bernoulli(privileged_fraction_)) {
    d.priority = JobPriority::kPrivileged;
  }
  return d;
}

Job JobGenerator::make_job(const JobDraw& draw, Seconds submit_time) {
  if (draw.app_index >= suite_.size()) {
    throw std::invalid_argument("JobGenerator::make_job: bad app index");
  }
  return Job(next_id_++, suite_[draw.app_index], draw.nprocs, submit_time,
             draw.priority);
}

Job JobGenerator::next(Seconds submit_time) {
  return make_job(draw(), submit_time);
}

}  // namespace pcap::workload
