// Interconnect contention model.
//
// The Tianhe-1A network attaches groups of nodes to leaf switches whose
// uplinks into the core are shared (and typically oversubscribed). When
// the jobs on one switch collectively offer more remote traffic than the
// uplink carries, everyone on that switch gets a proportional share —
// and network-bound phases slow down accordingly.
//
// The model is deliberately coarse: per sampling interval, each node
// offers `bytes`, a fixed fraction of which crosses its leaf uplink;
// per-switch delivered fractions are min(1, capacity / offered). That is
// enough to produce the phenomenon that matters for power studies:
// co-scheduled communication-heavy jobs interfere, stretching their
// runtimes and flattening their power draw.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace pcap::interconnect {

struct InterconnectParams {
  bool enabled = false;
  int nodes_per_switch = 16;
  double uplink_bandwidth = 40e9;  ///< bytes/second shared per leaf switch
  double remote_fraction = 0.6;    ///< share of node traffic crossing the
                                   ///< uplink (rest stays switch-local)
};

class Interconnect {
 public:
  Interconnect(InterconnectParams params, std::size_t num_nodes);

  [[nodiscard]] const InterconnectParams& params() const { return params_; }
  [[nodiscard]] std::size_t num_switches() const { return num_switches_; }
  [[nodiscard]] std::size_t switch_of(std::size_t node) const;

  /// Computes per-node delivered fractions (in (0, 1]) for one interval.
  /// `offered_bytes[i]` is node i's traffic within `dt`. When disabled,
  /// every fraction is 1.
  [[nodiscard]] std::vector<double> delivered_fractions(
      const std::vector<double>& offered_bytes, Seconds dt) const;

  /// Allocation-free variant for the per-tick hot path: writes the
  /// fractions into `out` (resized to num_nodes) and reuses an internal
  /// per-switch scratch buffer, so steady-state ticks never touch the
  /// heap.
  void delivered_fractions_into(const std::vector<double>& offered_bytes,
                                Seconds dt, std::vector<double>& out);

  /// Per-switch uplink utilisation (offered remote bytes / capacity) for
  /// the same inputs — can exceed 1 when oversubscribed.
  [[nodiscard]] std::vector<double> uplink_utilization(
      const std::vector<double>& offered_bytes, Seconds dt) const;

 private:
  InterconnectParams params_;
  std::size_t num_nodes_;
  std::size_t num_switches_;
  std::vector<double> switch_offered_;  ///< delivered_fractions_into scratch
};

}  // namespace pcap::interconnect
