#include "interconnect/interconnect.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::interconnect {

Interconnect::Interconnect(InterconnectParams params, std::size_t num_nodes)
    : params_(params), num_nodes_(num_nodes) {
  if (params_.nodes_per_switch <= 0) {
    throw std::invalid_argument("Interconnect: nodes_per_switch <= 0");
  }
  if (params_.uplink_bandwidth <= 0.0) {
    throw std::invalid_argument("Interconnect: non-positive uplink");
  }
  if (params_.remote_fraction < 0.0 || params_.remote_fraction > 1.0) {
    throw std::invalid_argument("Interconnect: remote fraction in [0,1]");
  }
  if (num_nodes_ == 0) {
    throw std::invalid_argument("Interconnect: no nodes");
  }
  const auto per = static_cast<std::size_t>(params_.nodes_per_switch);
  num_switches_ = (num_nodes_ + per - 1) / per;
}

std::size_t Interconnect::switch_of(std::size_t node) const {
  if (node >= num_nodes_) {
    throw std::out_of_range("Interconnect::switch_of: bad node");
  }
  return node / static_cast<std::size_t>(params_.nodes_per_switch);
}

std::vector<double> Interconnect::uplink_utilization(
    const std::vector<double>& offered_bytes, Seconds dt) const {
  if (offered_bytes.size() != num_nodes_) {
    throw std::invalid_argument("Interconnect: offered size mismatch");
  }
  if (dt <= Seconds{0.0}) {
    throw std::invalid_argument("Interconnect: non-positive dt");
  }
  std::vector<double> offered(num_switches_, 0.0);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    offered[switch_of(i)] +=
        std::max(0.0, offered_bytes[i]) * params_.remote_fraction;
  }
  const double capacity = params_.uplink_bandwidth * dt.value();
  for (double& o : offered) o /= capacity;
  return offered;
}

std::vector<double> Interconnect::delivered_fractions(
    const std::vector<double>& offered_bytes, Seconds dt) const {
  std::vector<double> fractions(num_nodes_, 1.0);
  if (!params_.enabled) return fractions;

  const std::vector<double> utilization =
      uplink_utilization(offered_bytes, dt);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const double u = utilization[switch_of(i)];
    if (u > 1.0) fractions[i] = 1.0 / u;
  }
  return fractions;
}

void Interconnect::delivered_fractions_into(
    const std::vector<double>& offered_bytes, Seconds dt,
    std::vector<double>& out) {
  out.assign(num_nodes_, 1.0);
  if (!params_.enabled) return;
  if (offered_bytes.size() != num_nodes_) {
    throw std::invalid_argument("Interconnect: offered size mismatch");
  }
  if (dt <= Seconds{0.0}) {
    throw std::invalid_argument("Interconnect: non-positive dt");
  }
  switch_offered_.assign(num_switches_, 0.0);
  const auto per = static_cast<std::size_t>(params_.nodes_per_switch);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    switch_offered_[i / per] +=
        std::max(0.0, offered_bytes[i]) * params_.remote_fraction;
  }
  const double capacity = params_.uplink_bandwidth * dt.value();
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const double u = switch_offered_[i / per] / capacity;
    if (u > 1.0) out[i] = 1.0 / u;
  }
}

}  // namespace pcap::interconnect
