// First-order thermal model with temperature-dependent leakage.
//
// The paper's introduction cites the positive feedback loop between
// temperature and power ("a chipset with higher temperatures consumes more
// power while running identical computations" [5]) and motivates ΔP×T as a
// proxy for accumulated thermal damage. We model node temperature with a
// lumped RC network:
//
//   dT/dt = (P * R_th - (T - T_amb)) / tau_th
//
// and scale leakage (idle) power by a factor growing linearly with the
// temperature excess above a reference point.
#pragma once

#include <cmath>

#include "common/units.hpp"

namespace pcap::hw {

struct ThermalParams {
  double thermal_resistance = 0.12;  ///< R_th in deg-C per watt.
  Seconds time_constant{120.0};      ///< tau_th: RC time constant.
  Celsius ambient{22.0};             ///< machine-room inlet temperature.
  Celsius leakage_reference{55.0};   ///< T_ref above which leakage grows.
  double leakage_coefficient = 0.0;  ///< fractional leakage per deg-C; 0
                                     ///< disables the feedback entirely.
};

/// Closed-form pieces of the RC integral, shared by ThermalModel::step and
/// the NodeStatePool's lazy fast-forward. Power is piecewise-constant
/// between power-changing events, so advancing by any dt under the power
/// that held over the interval is the *exact* solution of the ODE — this
/// is what lets quiescent nodes skip per-tick thermal stepping entirely
/// and fast-forward in one evaluation when they next wake.
inline double thermal_decay(const ThermalParams& p, double dt_s) {
  return std::exp(-dt_s / p.time_constant.value());
}

inline double thermal_fast_forward(const ThermalParams& p, double current_c,
                                   double power_w, double decay) {
  const double target = p.ambient.value() + power_w * p.thermal_resistance;
  return target + (current_c - target) * decay;
}

class ThermalModel {
 public:
  explicit ThermalModel(ThermalParams params);

  [[nodiscard]] const ThermalParams& params() const { return params_; }

  /// Steady-state temperature under constant power draw.
  [[nodiscard]] Celsius equilibrium(Watts power) const;

  /// Advances the temperature by dt under draw `power` (exact exponential
  /// integration of the linear ODE, stable for any dt).
  [[nodiscard]] Celsius step(Celsius current, Watts power, Seconds dt) const;

  /// Multiplier (>= 1) applied to static power: 1 below the reference,
  /// 1 + k * (T - T_ref) above it.
  [[nodiscard]] double leakage_factor(Celsius temperature) const;

 private:
  ThermalParams params_;
  // step() runs every simulation tick with a constant dt; the decay
  // factor exp(-dt/tau) is re-derived only when dt changes. Each node
  // owns its ThermalModel copy, so the cache is never shared.
  mutable double cached_dt_ = -1.0;
  mutable double cached_decay_ = 1.0;
};

// step() and leakage_factor() run once per node per tick; inline so the
// thermal advance folds into its caller.

inline Celsius ThermalModel::equilibrium(Watts power) const {
  return params_.ambient + Celsius{power.value() * params_.thermal_resistance};
}

inline Celsius ThermalModel::step(Celsius current, Watts power,
                                  Seconds dt) const {
  const Celsius target = equilibrium(power);
  if (dt.value() != cached_dt_) {
    cached_dt_ = dt.value();
    cached_decay_ = std::exp(-dt / params_.time_constant);
  }
  return target + (current - target) * cached_decay_;
}

inline double ThermalModel::leakage_factor(Celsius temperature) const {
  if (params_.leakage_coefficient == 0.0 ||
      temperature <= params_.leakage_reference) {
    return 1.0;
  }
  const double excess = (temperature - params_.leakage_reference).value();
  return 1.0 + params_.leakage_coefficient * excess;
}

}  // namespace pcap::hw
