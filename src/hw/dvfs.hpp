// Dynamic Voltage and Frequency Scaling (DVFS) ladder.
//
// A node's "power state level" in the paper maps one-to-one onto a
// processor frequency step (§V.A: each level of node power degradation is
// one level of processor frequency). Level 0 is the LOWEST state; the
// highest level is num_levels()-1 — matching Algorithm 1, which increments
// levels to restore performance and decrements to throttle.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace pcap::hw {

/// Power state level. 0 = lowest (slowest/cheapest) state.
using Level = int;

class DvfsLadder {
 public:
  /// Frequencies must be strictly ascending; voltages are derived from a
  /// linear f->V map between v_min (at the lowest f) and v_max.
  DvfsLadder(std::vector<Hertz> frequencies, double v_min, double v_max);

  /// The Intel Xeon X5670 ladder used on the Tianhe-1A mainboard in the
  /// paper: 10 working frequencies from 1.60 GHz to 2.93 GHz (§V.A).
  static DvfsLadder xeon_x5670();

  /// A coarse 4-level ladder, useful for heterogeneous-cluster scenarios
  /// and for exercising ladders of different depth in tests.
  static DvfsLadder coarse_low_power();

  [[nodiscard]] int num_levels() const {
    return static_cast<int>(frequencies_.size());
  }
  [[nodiscard]] Level lowest() const { return 0; }
  [[nodiscard]] Level highest() const { return num_levels() - 1; }
  [[nodiscard]] bool valid(Level l) const {
    return l >= 0 && l < num_levels();
  }

  [[nodiscard]] Hertz frequency(Level l) const;
  [[nodiscard]] double voltage(Level l) const;

  /// f(l) / f(highest): the clock-rate ratio in [~0.5, 1].
  [[nodiscard]] double relative_speed(Level l) const;

  /// Dynamic-power scale factor (f/f_max) * (V/V_max)^2 in (0, 1]; this is
  /// the classic CMOS alpha*C*V^2*f law normalised to the top level.
  [[nodiscard]] double power_scale(Level l) const;

 private:
  std::vector<Hertz> frequencies_;
  std::vector<double> voltages_;
};

}  // namespace pcap::hw
