// Node type descriptions (hardware capability + power character).
#pragma once

#include <memory>
#include <string>

#include "common/units.hpp"
#include "hw/dvfs.hpp"
#include "hw/power_model.hpp"
#include "hw/thermal.hpp"

namespace pcap::hw {

/// Immutable description of one node type. Nodes share specs via
/// shared_ptr; a heterogeneous cluster simply mixes specs.
struct NodeSpec {
  std::string name;
  int sockets = 2;
  int cores_per_socket = 6;
  Bytes mem_total{0.0};
  double nic_bandwidth = 0.0;  ///< bytes per second
  DvfsLadder ladder;
  PowerModel power_model;
  ThermalParams thermal;
  bool controllable = true;  ///< false: no DVFS facility (§II.A privileged)

  [[nodiscard]] int total_cores() const { return sockets * cores_per_socket; }

  /// Validates invariants (ladder depth == power table depth, positive
  /// core/memory/bandwidth figures). Throws std::invalid_argument.
  void validate() const;
};

using NodeSpecPtr = std::shared_ptr<const NodeSpec>;

/// The Tianhe-1A compute board of the paper's testbed (§V.A): two Xeon
/// X5670 (2 x 6 cores), 12 x 4 GB DDR3, Tianhe high-speed NIC, 10-level
/// DVFS from 1.60 to 2.93 GHz. Power figures are calibrated to a dual-5600
/// series board: ~140 W idle / ~415 W flat-out at the top level.
NodeSpecPtr tianhe1a_node_spec();

/// A lower-power node type with a 4-level ladder, used by heterogeneous
/// scenarios and to exercise ladders of differing depth.
NodeSpecPtr low_power_node_spec();

/// A node with no power-management facility (controllable = false),
/// representing the paper's privileged/uncontrollable class.
NodeSpecPtr uncontrollable_node_spec();

}  // namespace pcap::hw
