#include "hw/node_spec.hpp"

#include <stdexcept>

namespace pcap::hw {

using namespace pcap::literals;

void NodeSpec::validate() const {
  if (ladder.num_levels() != power_model.num_levels()) {
    throw std::invalid_argument(
        "NodeSpec: ladder and power table depth differ");
  }
  if (sockets <= 0 || cores_per_socket <= 0) {
    throw std::invalid_argument("NodeSpec: non-positive core counts");
  }
  if (mem_total <= Bytes{0.0}) {
    throw std::invalid_argument("NodeSpec: non-positive memory");
  }
  if (nic_bandwidth <= 0.0) {
    throw std::invalid_argument("NodeSpec: non-positive NIC bandwidth");
  }
}

NodeSpecPtr tianhe1a_node_spec() {
  static const NodeSpecPtr spec = [] {
    DvfsLadder ladder = DvfsLadder::xeon_x5670();
    // Idle splits into a level-independent base (board, fans, chipset) and
    // a part scaling with the CPU's f*V^2 (uncore + idle core power).
    // Dynamic maxima: 190 W for the two sockets, 60 W for 12 DIMMs, 25 W
    // for the Tianhe NIC.
    DevicePowerTable table = make_scaled_table(
        ladder, /*idle_base=*/95.0_W, /*idle_scaled=*/45.0_W,
        /*cpu_dyn_max=*/190.0_W, /*mem_dyn=*/60.0_W, /*nic_dyn=*/25.0_W);
    auto s = std::make_shared<NodeSpec>(NodeSpec{
        .name = "tianhe1a",
        .sockets = 2,
        .cores_per_socket = 6,
        .mem_total = 48_GiB,
        .nic_bandwidth = 5e9,  // ~40 Gb/s Tianhe interconnect per node
        .ladder = std::move(ladder),
        .power_model = PowerModel{std::move(table)},
        .thermal = ThermalParams{},
        .controllable = true,
    });
    s->validate();
    return s;
  }();
  return spec;
}

NodeSpecPtr low_power_node_spec() {
  static const NodeSpecPtr spec = [] {
    DvfsLadder ladder = DvfsLadder::coarse_low_power();
    DevicePowerTable table = make_scaled_table(
        ladder, /*idle_base=*/40.0_W, /*idle_scaled=*/20.0_W,
        /*cpu_dyn_max=*/70.0_W, /*mem_dyn=*/25.0_W, /*nic_dyn=*/10.0_W);
    auto s = std::make_shared<NodeSpec>(NodeSpec{
        .name = "low_power",
        .sockets = 1,
        .cores_per_socket = 8,
        .mem_total = 16_GiB,
        .nic_bandwidth = 1.25e9,  // 10 Gb/s
        .ladder = std::move(ladder),
        .power_model = PowerModel{std::move(table)},
        .thermal = ThermalParams{},
        .controllable = true,
    });
    s->validate();
    return s;
  }();
  return spec;
}

NodeSpecPtr uncontrollable_node_spec() {
  static const NodeSpecPtr spec = [] {
    // A single-level "ladder": the node always runs flat out. The ladder
    // type requires ascending frequencies, so one entry is the natural way
    // to express "no DVFS facility".
    DvfsLadder ladder({2.93_GHz}, 1.20, 1.20);
    DevicePowerTable table = make_scaled_table(
        ladder, /*idle_base=*/95.0_W, /*idle_scaled=*/45.0_W,
        /*cpu_dyn_max=*/190.0_W, /*mem_dyn=*/60.0_W, /*nic_dyn=*/25.0_W);
    auto s = std::make_shared<NodeSpec>(NodeSpec{
        .name = "uncontrollable",
        .sockets = 2,
        .cores_per_socket = 6,
        .mem_total = 48_GiB,
        .nic_bandwidth = 5e9,
        .ladder = std::move(ladder),
        .power_model = PowerModel{std::move(table)},
        .thermal = ThermalParams{},
        .controllable = false,
    });
    s->validate();
    return s;
  }();
  return spec;
}

}  // namespace pcap::hw
