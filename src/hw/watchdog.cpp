#include "hw/watchdog.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::hw {

void WatchdogParams::validate() const {
  if (timeout_cycles < 0) {
    throw std::invalid_argument(
        "WatchdogParams: 'timeout_cycles' must be >= 0 (0 disables)");
  }
  if (safe_level < 0) {
    throw std::invalid_argument("WatchdogParams: 'safe_level' must be >= 0");
  }
}

FailsafeWatchdog::FailsafeWatchdog(WatchdogParams params) : params_(params) {
  params_.validate();
}

FailsafeWatchdog::Slot& FailsafeWatchdog::slot(NodeId id) {
  if (id >= slots_.size()) {
    slots_.resize(id + 1);
  }
  return slots_[id];
}

void FailsafeWatchdog::set_groups(
    const std::vector<std::vector<NodeId>>& groups) {
  for (Slot& s : slots_) {
    s.member = false;
  }
  groups_ = groups;
  group_hb_.assign(groups_.size(), cycle_);
  engaged_per_group_.assign(groups_.size(), 0);
  pending_per_group_.assign(groups_.size(), 0);
  pending_count_ = 0;
  engaged_count_ = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (NodeId id : groups_[g]) {
      Slot& s = slot(id);
      s.group = static_cast<std::uint32_t>(g);
      s.member = true;
      if (s.engaged) {
        ++engaged_per_group_[g];
        ++engaged_count_;
      }
      if (s.pending) {
        ++pending_per_group_[g];
        ++pending_count_;
      }
    }
  }
  // Ex-members keep engaged/pending flags locally but drop out of every
  // count; rejoining a group recounts them above.
  for (Slot& s : slots_) {
    if (!s.member) {
      s.engaged = false;
      s.pending = false;
    }
  }
}

void FailsafeWatchdog::heartbeat(std::size_t group) {
  if (group < group_hb_.size()) {
    group_hb_[group] = cycle_;
  }
}

void FailsafeWatchdog::contact(NodeId id) {
  slot(id).last_contact = cycle_;
}

std::size_t FailsafeWatchdog::tick(std::vector<Node>& nodes) {
  if (!params_.enabled()) {
    ++cycle_;
    return 0;
  }
  std::size_t changed = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const bool group_stale = cycle_ - group_hb_[g] >= params_.timeout_cycles;
    // Healthy groups with nothing engaged cost one comparison; members are
    // only walked while the group is stale or still has nodes to release.
    if (!group_stale && engaged_per_group_[g] == 0) {
      continue;
    }
    for (NodeId id : groups_[g]) {
      Slot& s = slots_[id];
      const std::int64_t last_heard = std::max(group_hb_[g], s.last_contact);
      if (cycle_ - last_heard >= params_.timeout_cycles) {
        if (id >= nodes.size() || !nodes[id].controllable()) {
          continue;  // nothing a local agent could throttle
        }
        Node& node = nodes[id];
        if (!s.engaged) {
          s.engaged = true;
          ++engaged_per_group_[g];
          ++engaged_count_;
          ++engagements_;
        }
        // Re-asserted every silent cycle: a mid-outage reboot resets the
        // node to full power, and nobody else will cap it again.
        if (node.level() > params_.safe_level) {
          const Level before = node.level();
          if (node.set_level(params_.safe_level) != before) {
            ++failsafe_transitions_;
            ++changed;
            if (!s.pending) {
              s.pending = true;
              ++pending_per_group_[g];
              ++pending_count_;
            }
          }
        }
      } else if (s.engaged) {
        // Controller is back for this node; the pending flag stays until
        // the reconciler adopts the level it finds.
        s.engaged = false;
        --engaged_per_group_[g];
        --engaged_count_;
      }
    }
  }
  ++cycle_;
  return changed;
}

void FailsafeWatchdog::resolve_adoption(NodeId id) {
  if (id >= slots_.size() || !slots_[id].pending) {
    return;
  }
  Slot& s = slots_[id];
  s.pending = false;
  --pending_count_;
  if (s.member && s.group < pending_per_group_.size()) {
    --pending_per_group_[s.group];
  }
}

}  // namespace pcap::hw
