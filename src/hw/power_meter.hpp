// Facility-level power meter.
//
// §II.D (observability): "the system's total power consumption can be
// measured directly". The meter integrates the *true* node powers — the
// controller never sees per-node truth, only this one aggregate scalar
// plus the agents' formula-(1) estimates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/node.hpp"

namespace pcap::hw {

struct PowerMeterParams {
  double psu_efficiency = 0.92;  ///< wall power = IT power / efficiency.
  double noise_sigma = 0.002;    ///< relative gaussian measurement noise.
};

/// Block-partial-sum ledger for the facility meter's IT-side total.
///
/// The event-driven tick only re-evaluates the nodes whose power moved, so
/// the aggregate cannot be a full O(N) fold any more — but an incremental
/// running sum drifts (floating-point addition does not commute with
/// subtraction) and its bits would depend on the update history. Instead
/// the ledger keeps one leaf per node and fixed 64-leaf block partial
/// sums: an update dirties its block, total() re-folds dirty blocks and
/// then the block sums, both serially in ascending index order. The total
/// is therefore a pure function of the leaf values — bit-identical across
/// serial/parallel sweeps and quiescence on/off, and its cost is
/// O(dirty-blocks + N/64) per tick instead of O(N).
class PowerSumTree {
 public:
  static constexpr std::size_t kBlock = 64;

  void reset(std::size_t n);
  [[nodiscard]] std::size_t size() const { return leaf_.size(); }

  /// Last power accounted for node i (the ledger the deltas are computed
  /// against).
  [[nodiscard]] double leaf(std::size_t i) const { return leaf_[i]; }

  /// Writes leaf i and marks its block dirty. Callers update leaves in
  /// ascending index order (the serial fold discipline), which keeps the
  /// dirty-block list sorted for free.
  void set_leaf(std::size_t i, double power_w);

  /// Re-folds dirty blocks (ascending), then folds the block sums
  /// (ascending) into the IT-side total.
  [[nodiscard]] double total();

 private:
  std::vector<double> leaf_;
  std::vector<double> block_sum_;
  std::vector<std::uint8_t> block_dirty_;
  std::vector<std::uint32_t> dirty_blocks_;
};

class SystemPowerMeter {
 public:
  SystemPowerMeter(PowerMeterParams params, common::Rng rng);

  /// Sum of node true powers divided by PSU efficiency, with multiplicative
  /// measurement noise. This is P in Algorithm 1.
  Watts measure(const std::vector<Node>& nodes);

  /// Same conversion and noise applied to an externally accumulated
  /// IT-side power sum — the incremental tick path, where the cluster
  /// already holds every node's true power and only the aggregation is
  /// left. One meter-noise draw either way, so both entry points advance
  /// the meter's RNG stream identically.
  Watts measure_sum(Watts it_power);

  /// Noise-free reading, for metrics that want ground truth.
  [[nodiscard]] static Watts exact(const std::vector<Node>& nodes,
                                   double psu_efficiency);

  [[nodiscard]] const PowerMeterParams& params() const { return params_; }

 private:
  PowerMeterParams params_;
  common::Rng rng_;
};

}  // namespace pcap::hw
