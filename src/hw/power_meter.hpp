// Facility-level power meter.
//
// §II.D (observability): "the system's total power consumption can be
// measured directly". The meter integrates the *true* node powers — the
// controller never sees per-node truth, only this one aggregate scalar
// plus the agents' formula-(1) estimates.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/node.hpp"

namespace pcap::hw {

struct PowerMeterParams {
  double psu_efficiency = 0.92;  ///< wall power = IT power / efficiency.
  double noise_sigma = 0.002;    ///< relative gaussian measurement noise.
};

class SystemPowerMeter {
 public:
  SystemPowerMeter(PowerMeterParams params, common::Rng rng);

  /// Sum of node true powers divided by PSU efficiency, with multiplicative
  /// measurement noise. This is P in Algorithm 1.
  Watts measure(const std::vector<Node>& nodes);

  /// Same conversion and noise applied to an externally accumulated
  /// IT-side power sum — the incremental tick path, where the cluster
  /// already holds every node's true power and only the aggregation is
  /// left. One meter-noise draw either way, so both entry points advance
  /// the meter's RNG stream identically.
  Watts measure_sum(Watts it_power);

  /// Noise-free reading, for metrics that want ground truth.
  [[nodiscard]] static Watts exact(const std::vector<Node>& nodes,
                                   double psu_efficiency);

  [[nodiscard]] const PowerMeterParams& params() const { return params_; }

 private:
  PowerMeterParams params_;
  common::Rng rng_;
};

}  // namespace pcap::hw
