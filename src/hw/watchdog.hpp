// Node-local failsafe watchdog: fail-to-cap when the controller dies.
//
// The capping managers are implicit single points of failure — if a zone
// shard or the root learner goes silent, nodes hold their last DVFS levels
// indefinitely and the "stay under P_H" guarantee quietly expires. The
// paper provisions close to the breaker limit, so the architecture needs
// nodes that fail toward safety, not toward whatever they were last told.
//
// Model: each node's local agent counts control cycles since it last heard
// from its controller — either a command delivery addressed to it
// ("contact") or the controller's per-cycle liveness beacon over the
// actuation fabric ("heartbeat", one per controller group, since a live
// controller is live for every node it owns). Past
// `WatchdogParams::timeout_cycles` of silence the agent autonomously steps
// its node DOWN to `safe_level` (never up — a failsafe must not add
// power), and keeps re-asserting it each silent cycle so a mid-outage
// reboot that resets the node to full power is re-capped within one cycle.
//
// Every level the watchdog changes is flagged "adoption pending": when the
// controller returns, its reconciler must adopt the observed level as the
// new believed reality (clearing the flag via resolve_adoption) instead of
// logging divergence warnings and issuing healing commands against its own
// failsafe. See ActuationReconciler::adopt_reality.
//
// The watchdog is deterministic (no RNG) and ticked serially by the
// cluster once per control cycle, after the manager. Group heartbeat
// stamps make the healthy path O(groups): members are only scanned while
// their group is stale or still has engaged nodes to release.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/dvfs.hpp"
#include "hw/node.hpp"

namespace pcap::hw {

struct WatchdogParams {
  /// Control cycles of controller silence a node tolerates before stepping
  /// to the failsafe point. 0 disables the watchdog entirely.
  std::int64_t timeout_cycles = 0;
  /// The safe operating point (DVFS level) a timed-out node steps down to.
  Level safe_level = 0;

  [[nodiscard]] bool enabled() const { return timeout_cycles > 0; }
  /// Throws std::invalid_argument on negative timeout or safe level.
  void validate() const;
};

class FailsafeWatchdog {
 public:
  explicit FailsafeWatchdog(WatchdogParams params);

  /// (Re)partitions nodes into controller groups (group g = the nodes
  /// owned by controller g; the flat manager is one group, the zone tree
  /// one per zone). Stamps every group's heartbeat "now" so a
  /// reconfiguration never manufactures instant timeouts. Engaged/pending
  /// state of nodes that stay members survives regrouping.
  void set_groups(const std::vector<std::vector<NodeId>>& groups);

  /// Controller group g executed a live cycle this control period.
  void heartbeat(std::size_t group);
  /// A command was delivered to this node this control period.
  void contact(NodeId id);

  /// Advances one control cycle: engages/releases members of stale/live
  /// groups and re-asserts the failsafe level on silent nodes. Serial, in
  /// ascending node order within each group — deterministic. Returns the
  /// number of levels actually changed this cycle.
  std::size_t tick(std::vector<Node>& nodes);

  /// Did the watchdog change this node's level without the controller's
  /// knowledge (and the controller has not yet adopted it)?
  [[nodiscard]] bool adoption_pending(NodeId id) const {
    return id < slots_.size() && slots_[id].pending;
  }
  /// Any adoptions pending among group g's members?
  [[nodiscard]] bool adoption_pending_in_group(std::size_t group) const {
    return group < pending_per_group_.size() && pending_per_group_[group] > 0;
  }
  /// Appends group g's adoption-pending members, in ascending node order.
  /// The controller's telemetry watch set: a pending node must be sampled
  /// and folded every cycle so the adoption handshake (observe → adopt →
  /// resolve) is driven off the stream, never off content dedup.
  void collect_adoption_pending(std::size_t group,
                                std::vector<NodeId>& out) const {
    if (!adoption_pending_in_group(group)) return;
    for (const NodeId id : groups_[group]) {
      if (slots_[id].pending) out.push_back(id);
    }
  }
  /// The controller observed this node's post-failsafe level and adopted
  /// it into its shadow tables.
  void resolve_adoption(NodeId id);

  [[nodiscard]] std::size_t pending_count() const { return pending_count_; }
  [[nodiscard]] std::size_t engaged_count() const { return engaged_count_; }
  /// Distinct node-engagement episodes (a node timing out counts once per
  /// outage, however long the window).
  [[nodiscard]] std::uint64_t engagements() const { return engagements_; }
  /// Levels actually changed by the failsafe, lifetime.
  [[nodiscard]] std::uint64_t failsafe_transitions() const {
    return failsafe_transitions_;
  }
  [[nodiscard]] const WatchdogParams& params() const { return params_; }

 private:
  struct Slot {
    std::uint32_t group = 0;
    std::int64_t last_contact = -1;  ///< watchdog cycle of last delivery
    bool member = false;             ///< belongs to a current group
    bool engaged = false;            ///< currently past timeout
    bool pending = false;            ///< failsafe change awaiting adoption
  };

  Slot& slot(NodeId id);

  WatchdogParams params_;
  std::vector<Slot> slots_;  ///< indexed by node id
  std::vector<std::vector<NodeId>> groups_;
  std::vector<std::int64_t> group_hb_;
  std::vector<std::uint32_t> engaged_per_group_;
  std::vector<std::uint32_t> pending_per_group_;
  std::int64_t cycle_ = 0;
  std::size_t pending_count_ = 0;
  std::size_t engaged_count_ = 0;
  std::uint64_t engagements_ = 0;
  std::uint64_t failsafe_transitions_ = 0;
};

}  // namespace pcap::hw
