// Structure-of-arrays storage for the hot per-node run state.
//
// A million-node tick sweep cannot afford to pointer-chase through Node
// objects: the power ledger, DVFS level, thermal RC state and operating
// point all live here in flat parallel arrays, one slot per node, so the
// cluster's refresh loops walk contiguous memory. hw::Node remains the
// API — it becomes a thin view over one slot (standalone nodes own a
// single-slot pool), so every existing caller keeps compiling while the
// cluster's hot paths index the arrays directly.
//
// Ownership rules (see DESIGN.md "SoA node-state pools"):
//   - The pool owner (Cluster, or a standalone Node) writes operating-point
//     and utilisation fields only from its serial tick sections or from
//     parallel shards that each own a disjoint slot range.
//   - set_level()/set_operating_point() on a Node view are the only
//     externally reachable mutators (power manager, actuation channel,
//     tests); with change tracking enabled they enqueue the slot on the
//     changed list, which the cluster drains at the next tick start.
//   - The lazy evaluation caches (true/estimated/static power, thermal
//     decay) are per-slot, so concurrent evaluation of *distinct* slots
//     from sweep workers is race-free, exactly like the old per-Node
//     mutable memo members.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "hw/dvfs.hpp"
#include "hw/node_spec.hpp"
#include "hw/power_model.hpp"

namespace pcap::hw {

class NodeStatePool {
 public:
  explicit NodeStatePool(std::size_t n);

  [[nodiscard]] std::size_t size() const { return spec_.size(); }

  /// Binds slot `i` to a spec and resets its run state (highest level,
  /// ambient temperature, empty operating point) — the same initial state
  /// the old Node constructor produced. `variation` is the process
  /// variation factor the owner drew for this board.
  void init_slot(std::size_t i, const NodeSpec* spec, double variation);

  // -- direct array access (hot loops) --------------------------------------
  [[nodiscard]] const NodeSpec& spec(std::size_t i) const { return *spec_[i]; }
  [[nodiscard]] Level level(std::size_t i) const { return level_[i]; }
  [[nodiscard]] double relative_speed(std::size_t i) const {
    return relative_speed_[i];
  }
  [[nodiscard]] double cpu_utilization(std::size_t i) const {
    return cpu_utilization_[i];
  }
  [[nodiscard]] bool busy(std::size_t i) const { return busy_[i] != 0; }
  [[nodiscard]] double variation(std::size_t i) const { return variation_[i]; }
  [[nodiscard]] double mem_used(std::size_t i) const { return mem_used_[i]; }
  [[nodiscard]] double nic_bytes(std::size_t i) const { return nic_bytes_[i]; }

  /// Assembles the slot's operating point (the AoS view legacy callers
  /// expect; hot paths read the individual arrays instead).
  [[nodiscard]] OperatingPoint operating_point(std::size_t i) const;

  // -- mutators -------------------------------------------------------------
  /// Current sim-time, set by the pool owner once per tick. set_level uses
  /// it to fast-forward a slot's temperature under the *old* power before
  /// the level switches — a DVFS change from the actuation plane lands
  /// mid-timeline, and the heating up to that instant happened at the
  /// pre-change draw. Standalone pools can leave it at 0 (no-op).
  void set_now(double now_s) { now_s_ = now_s; }

  /// DVFS level write with the Node::set_level contract: clamped to the
  /// ladder, pinned to the highest level on uncontrollable boards.
  /// Returns the level in effect; enqueues the slot on the changed list
  /// when the level actually moved and tracking is on.
  Level set_level(std::size_t i, Level l);

  /// Utilisation-only refresh: the static share of formula (1) survives.
  void set_cpu_utilization(std::size_t i, double u) {
    cpu_utilization_[i] = u;
    true_valid_[i] = 0;
    est_valid_[i] = 0;
    ++state_epoch_[i];
  }

  /// Rewrites the static operating-point fields (memory footprint, NIC
  /// traffic, sampling interval, bandwidth) and invalidates the static
  /// power caches.
  void set_static_op(std::size_t i, double mem_used, double nic_bytes,
                     double tau_s, double nic_bandwidth);

  void set_busy(std::size_t i, bool b) {
    busy_[i] = b ? 1 : 0;
    ++state_epoch_[i];
  }

  /// Full operating-point write with the Node::set_operating_point
  /// fast path: utilisation-only when the static fields are unchanged.
  void set_operating_point(std::size_t i, const OperatingPoint& op);

  // -- power (formula 1 + variation + leakage) ------------------------------
  /// Physical draw at the current temperature; memoised per slot.
  [[nodiscard]] Watts true_power(std::size_t i) const;
  /// Formula-(1) estimate (no variation, no leakage); memoised per slot.
  [[nodiscard]] Watts estimated_power(std::size_t i) const;
  /// Estimate at an arbitrary level (Algorithm 2's P'(x)).
  [[nodiscard]] Watts estimated_power_at(std::size_t i, Level l) const;
  /// Formula (1) evaluated at *observed* counter readings — the profiling
  /// agent's fast path. Reuses the slot's cached static split so a sample
  /// costs two multiply-adds and one divide, not a model evaluation.
  [[nodiscard]] Watts estimated_power_observed(std::size_t i,
                                               double observed_cpu,
                                               double observed_nic_bytes) const;

  // -- thermal (lazy closed form) -------------------------------------------
  // Temperature is stored together with the sim-time it refers to; power
  // is piecewise-constant between refresh events, so advancing the RC
  // exponential under the *current* true power before any power write is
  // the exact integral — quiescent nodes pay nothing per tick.
  [[nodiscard]] Celsius temperature(std::size_t i) const {
    return Celsius{temperature_c_[i]};
  }
  /// Fast-forwards the slot's temperature to `now_s` under the current
  /// true power and returns it. No-op when now_s <= the stored timestamp.
  Celsius advance_temperature_to(std::size_t i, double now_s) const;
  /// Legacy Node::advance_thermal: one explicit step of `dt` from the
  /// stored state (standalone nodes and tests drive this directly).
  void advance_temperature_by(std::size_t i, double dt_s) const;

  // -- change tracking ------------------------------------------------------
  /// Cluster-owned pools track external power-relevant writes (level
  /// changes from the manager / actuation plane) so the tick only
  /// re-evaluates what moved. Standalone pools leave this off.
  void enable_change_tracking();
  [[nodiscard]] bool change_tracking() const { return track_changes_; }
  /// Slots whose level changed since the last drain, unordered and
  /// deduplicated. The caller sorts, consumes, then calls clear_changed().
  [[nodiscard]] std::vector<std::uint32_t>& changed_slots() {
    return changed_list_;
  }
  void clear_changed();

  // -- state epoch ----------------------------------------------------------
  /// Bumped by every sample-visible mutation (level, busy, utilisation,
  /// operating point, slot re-init). An unchanged epoch certifies that a
  /// fresh telemetry sample would reproduce the previous one bit for bit
  /// — EXCEPT for board temperature, which drifts with sim-time and never
  /// passes through a mutator; temperature-sensitive consumers must check
  /// it separately. Monotonic per slot; never reset.
  [[nodiscard]] std::uint64_t state_epoch(std::size_t i) const {
    return state_epoch_[i];
  }

 private:
  void refresh_static(std::size_t i) const;
  void step_temperature(std::size_t i, double power_w, double dt_s) const;
  void note_power_change(std::size_t i);

  std::vector<const NodeSpec*> spec_;
  std::vector<Level> level_;
  std::vector<double> relative_speed_;
  std::vector<double> variation_;
  std::vector<std::uint8_t> busy_;

  // Operating point, unpacked.
  std::vector<double> cpu_utilization_;
  std::vector<double> mem_used_;
  std::vector<double> mem_total_;
  std::vector<double> nic_bytes_;
  std::vector<double> tau_s_;
  std::vector<double> nic_bandwidth_;

  // Thermal RC state: T at sim-time thermal_time_s_, plus a four-entry
  // MRU decay cache per slot. Steady state interleaves up to three
  // distinct dts per node (the staircase refresh period, the shorter
  // refresh->collect gap and its collect->refresh complement); four
  // entries keep exp() off the path with one slot of slack for control
  // actuation landing mid-window.
  mutable std::vector<double> temperature_c_;
  mutable std::vector<double> thermal_time_s_;
  mutable std::vector<double> th_dt_a_, th_decay_a_;
  mutable std::vector<double> th_dt_b_, th_decay_b_;
  mutable std::vector<double> th_dt_c_, th_decay_c_;
  mutable std::vector<double> th_dt_d_, th_decay_d_;

  // Formula-(1) memoisation, split exactly like the old Node caches:
  // static share (idle + memory + NIC terms), utilisation coefficient,
  // idle power (the leakage share), plus the idle+memory sub-share and
  // NIC divisor for the observed-counters fast path.
  mutable std::vector<double> true_power_w_;
  mutable std::vector<double> est_power_w_;
  mutable std::vector<double> static_power_w_;
  mutable std::vector<double> cpu_dyn_w_;
  mutable std::vector<double> idle_leak_w_;
  mutable std::vector<double> base_idle_mem_w_;
  mutable std::vector<double> nic_dyn_w_;
  mutable std::vector<double> nic_div_;  ///< tau * bandwidth, 0 when unset
  mutable std::vector<std::uint8_t> true_valid_;
  mutable std::vector<std::uint8_t> est_valid_;
  mutable std::vector<std::uint8_t> static_valid_;

  double now_s_ = 0.0;
  bool track_changes_ = false;
  std::vector<std::uint8_t> changed_mark_;
  std::vector<std::uint32_t> changed_list_;
  std::vector<std::uint64_t> state_epoch_;
};

}  // namespace pcap::hw
