#include "hw/power_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::hw {

void DevicePowerTable::validate() const {
  const std::size_t n = idle.size();
  if (n == 0) throw std::invalid_argument("DevicePowerTable: empty");
  if (cpu_dyn.size() != n || mem_dyn.size() != n || nic_dyn.size() != n) {
    throw std::invalid_argument("DevicePowerTable: ragged tables");
  }
  const auto non_negative = [](const std::vector<Watts>& v) {
    return std::all_of(v.begin(), v.end(),
                       [](Watts w) { return w >= Watts{0.0}; });
  };
  if (!non_negative(idle) || !non_negative(cpu_dyn) || !non_negative(mem_dyn) ||
      !non_negative(nic_dyn)) {
    throw std::invalid_argument("DevicePowerTable: negative entry");
  }
}

double OperatingPoint::nic_fraction() const {
  const double denom = tau.value() * nic_bandwidth;
  if (denom <= 0.0) return 0.0;
  return std::clamp(nic_bytes.value() / denom, 0.0, 1.0);
}

double OperatingPoint::mem_fraction() const {
  if (mem_total.value() <= 0.0) return 0.0;
  return std::clamp(mem_used / mem_total, 0.0, 1.0);
}

PowerModel::PowerModel(DevicePowerTable table) : table_(std::move(table)) {
  table_.validate();
}

Watts PowerModel::power(Level level, const OperatingPoint& op) const {
  if (level < 0 || level >= num_levels()) {
    throw std::out_of_range("PowerModel::power: bad level");
  }
  const auto l = static_cast<std::size_t>(level);
  const double uti = std::clamp(op.cpu_utilization, 0.0, 1.0);
  // Summed as static share + utilisation term, in exactly the order the
  // cached two-piece evaluation uses, so both paths agree to the bit.
  return table_.idle[l] + op.mem_fraction() * table_.mem_dyn[l] +
         op.nic_fraction() * table_.nic_dyn[l] + uti * table_.cpu_dyn[l];
}

Watts PowerModel::static_power(Level level, const OperatingPoint& op) const {
  if (level < 0 || level >= num_levels()) {
    throw std::out_of_range("PowerModel::static_power: bad level");
  }
  const auto l = static_cast<std::size_t>(level);
  return table_.idle[l] + op.mem_fraction() * table_.mem_dyn[l] +
         op.nic_fraction() * table_.nic_dyn[l];
}

Watts PowerModel::cpu_dyn(Level level) const {
  if (level < 0 || level >= num_levels()) {
    throw std::out_of_range("PowerModel::cpu_dyn: bad level");
  }
  return table_.cpu_dyn[static_cast<std::size_t>(level)];
}

Watts PowerModel::theoretical_max() const {
  const auto top = static_cast<std::size_t>(num_levels() - 1);
  return table_.idle[top] + table_.cpu_dyn[top] + table_.mem_dyn[top] +
         table_.nic_dyn[top];
}

Watts PowerModel::idle_power(Level level) const {
  if (level < 0 || level >= num_levels()) {
    throw std::out_of_range("PowerModel::idle_power: bad level");
  }
  return table_.idle[static_cast<std::size_t>(level)];
}

DevicePowerTable make_scaled_table(const DvfsLadder& ladder, Watts idle_base,
                                   Watts idle_scaled, Watts cpu_dyn_max,
                                   Watts mem_dyn, Watts nic_dyn) {
  DevicePowerTable t;
  const int n = ladder.num_levels();
  t.idle.reserve(static_cast<std::size_t>(n));
  t.cpu_dyn.reserve(static_cast<std::size_t>(n));
  t.mem_dyn.assign(static_cast<std::size_t>(n), mem_dyn);
  t.nic_dyn.assign(static_cast<std::size_t>(n), nic_dyn);
  for (Level l = 0; l < n; ++l) {
    const double scale = ladder.power_scale(l);
    t.idle.push_back(idle_base + scale * idle_scaled);
    t.cpu_dyn.push_back(scale * cpu_dyn_max);
  }
  t.validate();
  return t;
}

}  // namespace pcap::hw
