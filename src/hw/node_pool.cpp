#include "hw/node_pool.hpp"

#include <algorithm>
#include <cmath>

namespace pcap::hw {

NodeStatePool::NodeStatePool(std::size_t n)
    : spec_(n, nullptr),
      level_(n, 0),
      relative_speed_(n, 1.0),
      variation_(n, 1.0),
      busy_(n, 0),
      cpu_utilization_(n, 0.0),
      mem_used_(n, 0.0),
      mem_total_(n, 1.0),
      nic_bytes_(n, 0.0),
      tau_s_(n, 1.0),
      nic_bandwidth_(n, 1.0),
      temperature_c_(n, 0.0),
      thermal_time_s_(n, 0.0),
      th_dt_a_(n, -1.0),
      th_decay_a_(n, 1.0),
      th_dt_b_(n, -1.0),
      th_decay_b_(n, 1.0),
      th_dt_c_(n, -1.0),
      th_decay_c_(n, 1.0),
      th_dt_d_(n, -1.0),
      th_decay_d_(n, 1.0),
      true_power_w_(n, 0.0),
      est_power_w_(n, 0.0),
      static_power_w_(n, 0.0),
      cpu_dyn_w_(n, 0.0),
      idle_leak_w_(n, 0.0),
      base_idle_mem_w_(n, 0.0),
      nic_dyn_w_(n, 0.0),
      nic_div_(n, 0.0),
      true_valid_(n, 0),
      est_valid_(n, 0),
      static_valid_(n, 0),
      changed_mark_(n, 0),
      state_epoch_(n, 0) {}

void NodeStatePool::init_slot(std::size_t i, const NodeSpec* spec,
                              double variation) {
  spec_[i] = spec;
  level_[i] = spec->ladder.highest();
  relative_speed_[i] = spec->ladder.relative_speed(level_[i]);
  variation_[i] = variation;
  busy_[i] = 0;
  cpu_utilization_[i] = 0.0;
  mem_used_[i] = 0.0;
  mem_total_[i] = spec->mem_total.value();
  nic_bytes_[i] = 0.0;
  tau_s_[i] = 1.0;
  nic_bandwidth_[i] = spec->nic_bandwidth;
  temperature_c_[i] = spec->thermal.ambient.value();
  thermal_time_s_[i] = 0.0;
  true_valid_[i] = 0;
  est_valid_[i] = 0;
  static_valid_[i] = 0;
  ++state_epoch_[i];
}

OperatingPoint NodeStatePool::operating_point(std::size_t i) const {
  OperatingPoint op;
  op.cpu_utilization = cpu_utilization_[i];
  op.mem_used = Bytes{mem_used_[i]};
  op.mem_total = Bytes{mem_total_[i]};
  op.nic_bytes = Bytes{nic_bytes_[i]};
  op.tau = Seconds{tau_s_[i]};
  op.nic_bandwidth = nic_bandwidth_[i];
  return op;
}

Level NodeStatePool::set_level(std::size_t i, Level l) {
  const NodeSpec& spec = *spec_[i];
  const Level before = level_[i];
  Level next;
  if (!spec.controllable) {
    next = spec.ladder.highest();
  } else {
    next = std::clamp(l, spec.ladder.lowest(), spec.ladder.highest());
  }
  if (next != before) {
    // Heat through the present instant at the pre-change draw before the
    // cached power is invalidated; the post-change power only applies
    // from here on.
    advance_temperature_to(i, now_s_);
    level_[i] = next;
    relative_speed_[i] = spec.ladder.relative_speed(next);
    static_valid_[i] = 0;
    true_valid_[i] = 0;
    est_valid_[i] = 0;
    ++state_epoch_[i];
    note_power_change(i);
  }
  return next;
}

void NodeStatePool::set_static_op(std::size_t i, double mem_used,
                                  double nic_bytes, double tau_s,
                                  double nic_bandwidth) {
  mem_used_[i] = mem_used;
  nic_bytes_[i] = nic_bytes;
  tau_s_[i] = tau_s;
  nic_bandwidth_[i] = nic_bandwidth;
  static_valid_[i] = 0;
  true_valid_[i] = 0;
  est_valid_[i] = 0;
  ++state_epoch_[i];
}

void NodeStatePool::set_operating_point(std::size_t i,
                                        const OperatingPoint& op) {
  // External (Node-view) writes land mid-timeline like level changes do:
  // heat at the pre-write draw first, and let a tracking owner know this
  // slot's accounted power needs a refresh.
  advance_temperature_to(i, now_s_);
  note_power_change(i);
  if (static_valid_[i] != 0 && op.mem_used.value() == mem_used_[i] &&
      op.mem_total.value() == mem_total_[i] &&
      op.nic_bytes.value() == nic_bytes_[i] && op.tau.value() == tau_s_[i] &&
      op.nic_bandwidth == nic_bandwidth_[i]) {
    cpu_utilization_[i] = op.cpu_utilization;
  } else {
    cpu_utilization_[i] = op.cpu_utilization;
    mem_used_[i] = op.mem_used.value();
    mem_total_[i] = op.mem_total.value();
    nic_bytes_[i] = op.nic_bytes.value();
    tau_s_[i] = op.tau.value();
    nic_bandwidth_[i] = op.nic_bandwidth;
    static_valid_[i] = 0;
  }
  true_valid_[i] = 0;
  est_valid_[i] = 0;
  ++state_epoch_[i];
}

void NodeStatePool::refresh_static(std::size_t i) const {
  // Exactly PowerModel::static_power's evaluation order — ((idle + mem)
  // + nic) — split so the observed-counters fast path can re-evaluate the
  // NIC term alone.
  const NodeSpec& spec = *spec_[i];
  const DevicePowerTable& t = spec.power_model.table();
  const auto l = static_cast<std::size_t>(level_[i]);
  const double mem_frac =
      mem_total_[i] <= 0.0
          ? 0.0
          : std::clamp(mem_used_[i] / mem_total_[i], 0.0, 1.0);
  const double denom = tau_s_[i] * nic_bandwidth_[i];
  const double nic_frac =
      denom <= 0.0 ? 0.0 : std::clamp(nic_bytes_[i] / denom, 0.0, 1.0);
  const double base = t.idle[l].value() + mem_frac * t.mem_dyn[l].value();
  base_idle_mem_w_[i] = base;
  nic_dyn_w_[i] = t.nic_dyn[l].value();
  nic_div_[i] = denom;
  static_power_w_[i] = base + nic_frac * t.nic_dyn[l].value();
  cpu_dyn_w_[i] = t.cpu_dyn[l].value();
  idle_leak_w_[i] = t.idle[l].value();
  static_valid_[i] = 1;
}

Watts NodeStatePool::estimated_power(std::size_t i) const {
  if (est_valid_[i] != 0) return Watts{est_power_w_[i]};
  if (static_valid_[i] == 0) refresh_static(i);
  const double uti = std::clamp(cpu_utilization_[i], 0.0, 1.0);
  est_power_w_[i] = static_power_w_[i] + cpu_dyn_w_[i] * uti;
  est_valid_[i] = 1;
  return Watts{est_power_w_[i]};
}

Watts NodeStatePool::true_power(std::size_t i) const {
  if (true_valid_[i] != 0) return Watts{true_power_w_[i]};
  const double estimated = estimated_power(i).value();
  const double idle = idle_leak_w_[i];
  const ThermalParams& th = spec_[i]->thermal;
  double leak = 1.0;
  if (th.leakage_coefficient != 0.0 &&
      temperature_c_[i] > th.leakage_reference.value()) {
    leak = 1.0 + th.leakage_coefficient *
                     (temperature_c_[i] - th.leakage_reference.value());
  }
  true_power_w_[i] = ((estimated - idle) + idle * leak) * variation_[i];
  true_valid_[i] = 1;
  return Watts{true_power_w_[i]};
}

Watts NodeStatePool::estimated_power_at(std::size_t i, Level l) const {
  const NodeSpec& spec = *spec_[i];
  const Level clamped =
      std::clamp(l, spec.ladder.lowest(), spec.ladder.highest());
  if (clamped == level_[i]) return estimated_power(i);
  return spec.power_model.power(clamped, operating_point(i));
}

Watts NodeStatePool::estimated_power_observed(std::size_t i,
                                              double observed_cpu,
                                              double observed_nic_bytes) const {
  if (static_valid_[i] == 0) refresh_static(i);
  const double denom = nic_div_[i];
  const double nic_frac =
      denom <= 0.0 ? 0.0 : std::clamp(observed_nic_bytes / denom, 0.0, 1.0);
  const double uti = std::clamp(observed_cpu, 0.0, 1.0);
  return Watts{base_idle_mem_w_[i] + nic_frac * nic_dyn_w_[i] +
               uti * cpu_dyn_w_[i]};
}

void NodeStatePool::step_temperature(std::size_t i, double power_w,
                                     double dt_s) const {
  const ThermalParams& th = spec_[i]->thermal;
  double decay;
  if (th_dt_a_[i] == dt_s) {
    decay = th_decay_a_[i];
  } else if (th_dt_b_[i] == dt_s) {
    decay = th_decay_b_[i];
    std::swap(th_dt_a_[i], th_dt_b_[i]);
    std::swap(th_decay_a_[i], th_decay_b_[i]);
  } else if (th_dt_c_[i] == dt_s) {
    decay = th_decay_c_[i];
    th_dt_c_[i] = th_dt_b_[i];
    th_decay_c_[i] = th_decay_b_[i];
    th_dt_b_[i] = th_dt_a_[i];
    th_decay_b_[i] = th_decay_a_[i];
    th_dt_a_[i] = dt_s;
    th_decay_a_[i] = decay;
  } else if (th_dt_d_[i] == dt_s) {
    decay = th_decay_d_[i];
    th_dt_d_[i] = th_dt_c_[i];
    th_decay_d_[i] = th_decay_c_[i];
    th_dt_c_[i] = th_dt_b_[i];
    th_decay_c_[i] = th_decay_b_[i];
    th_dt_b_[i] = th_dt_a_[i];
    th_decay_b_[i] = th_decay_a_[i];
    th_dt_a_[i] = dt_s;
    th_decay_a_[i] = decay;
  } else {
    decay = thermal_decay(th, dt_s);
    th_dt_d_[i] = th_dt_c_[i];
    th_decay_d_[i] = th_decay_c_[i];
    th_dt_c_[i] = th_dt_b_[i];
    th_decay_c_[i] = th_decay_b_[i];
    th_dt_b_[i] = th_dt_a_[i];
    th_decay_b_[i] = th_decay_a_[i];
    th_dt_a_[i] = dt_s;
    th_decay_a_[i] = decay;
  }
  temperature_c_[i] = thermal_fast_forward(th, temperature_c_[i], power_w,
                                           decay);
  if (th.leakage_coefficient != 0.0) true_valid_[i] = 0;
}

Celsius NodeStatePool::advance_temperature_to(std::size_t i,
                                              double now_s) const {
  const double dt = now_s - thermal_time_s_[i];
  if (dt > 0.0) {
    const double p = true_power(i).value();
    step_temperature(i, p, dt);
    thermal_time_s_[i] = now_s;
  }
  return Celsius{temperature_c_[i]};
}

void NodeStatePool::advance_temperature_by(std::size_t i, double dt_s) const {
  const double p = true_power(i).value();
  step_temperature(i, p, dt_s);
  thermal_time_s_[i] += dt_s;
}

void NodeStatePool::enable_change_tracking() {
  track_changes_ = true;
  changed_list_.reserve(64);
}

void NodeStatePool::note_power_change(std::size_t i) {
  if (!track_changes_ || changed_mark_[i] != 0) return;
  changed_mark_[i] = 1;
  changed_list_.push_back(static_cast<std::uint32_t>(i));
}

void NodeStatePool::clear_changed() {
  for (const std::uint32_t i : changed_list_) changed_mark_[i] = 0;
  changed_list_.clear();
}

}  // namespace pcap::hw
