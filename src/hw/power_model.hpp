// The paper's power profile model — formula (1).
//
//   P(l) = P_idle(l)
//        + Uti_CPU * sum_{x in CPU} P_x(l)
//        + Mem_used/Mem_total * P_mem(l)
//        + Data_NIC/(tau * BW_NIC) * P_NIC(l)
//
// Per-level device tables hold the static power P_idle(l) and the maximal
// *dynamic* power of each device class at level l (the gap between its
// maximal and idle power, as §II.C defines P_cpu(l)).
#pragma once

#include <vector>

#include "common/units.hpp"
#include "hw/dvfs.hpp"

namespace pcap::hw {

/// Per-level power table for one node type. Index = DVFS level.
struct DevicePowerTable {
  std::vector<Watts> idle;     ///< P_idle(l): static node power at level l.
  std::vector<Watts> cpu_dyn;  ///< sum over CPU units of P_x(l).
  std::vector<Watts> mem_dyn;  ///< P_mem(l): max dynamic power of memory.
  std::vector<Watts> nic_dyn;  ///< P_NIC(l): max dynamic power of the NIC.

  [[nodiscard]] int num_levels() const {
    return static_cast<int>(idle.size());
  }
  /// Validates that all four tables have the same, non-zero depth and all
  /// entries are non-negative. Throws std::invalid_argument otherwise.
  void validate() const;
};

/// A node's instantaneous resource usage — the inputs of formula (1),
/// sampled over one interval tau (§II.C).
struct OperatingPoint {
  double cpu_utilization = 0.0;  ///< Uti_CPU in [0, 1].
  Bytes mem_used{0.0};           ///< Mem_used.
  Bytes mem_total{1.0};          ///< Mem_total (> 0).
  Bytes nic_bytes{0.0};          ///< Data_NIC transmitted within tau.
  Seconds tau{1.0};              ///< sampling interval.
  double nic_bandwidth = 1.0;    ///< BW_NIC in bytes/second (> 0).

  /// NIC duty fraction Data_NIC / (tau * BW_NIC), clamped to [0, 1].
  [[nodiscard]] double nic_fraction() const;
  /// Memory fraction Mem_used / Mem_total, clamped to [0, 1].
  [[nodiscard]] double mem_fraction() const;
};

/// Evaluates formula (1) for a given table.
class PowerModel {
 public:
  explicit PowerModel(DevicePowerTable table);

  [[nodiscard]] const DevicePowerTable& table() const { return table_; }
  [[nodiscard]] int num_levels() const { return table_.num_levels(); }

  /// P(l) for the given operating point. `level` must be valid.
  [[nodiscard]] Watts power(Level level, const OperatingPoint& op) const;

  /// The share of formula (1) that does not depend on CPU utilisation:
  /// idle + memory + NIC terms. power(l, op) == static_power(l, op) +
  /// clamp(op.cpu_utilization) * cpu_dyn(l) up to rounding; callers whose
  /// utilisation moves every tick cache this and pay a multiply-add.
  [[nodiscard]] Watts static_power(Level level, const OperatingPoint& op) const;
  /// The utilisation coefficient of formula (1) at `level`.
  [[nodiscard]] Watts cpu_dyn(Level level) const;

  /// Estimated power if the node were moved to `level` while keeping the
  /// same resource usage — the paper's P'(x) when level = current-1
  /// (Algorithm 2). Clamps usage fractions exactly like power().
  [[nodiscard]] Watts power_at(Level level, const OperatingPoint& op) const {
    return power(level, op);
  }

  /// Theoretical per-node maximum: all usage fractions at 1 on the top
  /// level. Contributes to P_thy = sum_i P_i (§II.D, necessity).
  [[nodiscard]] Watts theoretical_max() const;

  /// Idle power at the given level.
  [[nodiscard]] Watts idle_power(Level level) const;

 private:
  DevicePowerTable table_;
};

/// Builds the per-level table for a dual-socket Xeon X5670 Tianhe-1A board:
/// idle and CPU dynamic power follow the ladder's f*V^2 scale; memory and
/// NIC dynamic power are level-independent (DVFS only acts on the CPU,
/// §V.A: "power consumption of all other devices is indirectly managed").
DevicePowerTable make_scaled_table(const DvfsLadder& ladder, Watts idle_base,
                                   Watts idle_scaled, Watts cpu_dyn_max,
                                   Watts mem_dyn, Watts nic_dyn);

}  // namespace pcap::hw
