#include "hw/node.hpp"

#include <algorithm>

namespace pcap::hw {

Node::Node(NodeId id, NodeSpecPtr spec, common::Rng* variation_rng)
    : id_(id),
      spec_(std::move(spec)),
      level_(spec_->ladder.highest()),
      thermal_(spec_->thermal),
      temperature_(spec_->thermal.ambient) {
  op_.mem_total = spec_->mem_total;
  op_.nic_bandwidth = spec_->nic_bandwidth;
  if (variation_rng != nullptr) {
    variation_ = std::clamp(variation_rng->normal(1.0, 0.02), 0.9, 1.1);
  }
}

Level Node::set_level(Level l) {
  if (!spec_->controllable) {
    level_ = spec_->ladder.highest();
    return level_;
  }
  level_ = std::clamp(l, spec_->ladder.lowest(), spec_->ladder.highest());
  return level_;
}

Level Node::degrade_one() { return set_level(level_ - 1); }

Level Node::restore_one() { return set_level(level_ + 1); }

Watts Node::true_power() const {
  const Watts estimated = spec_->power_model.power(level_, op_);
  const Watts idle = spec_->power_model.idle_power(level_);
  const double leak = thermal_.leakage_factor(temperature_);
  const Watts with_leakage = (estimated - idle) + idle * leak;
  return with_leakage * variation_;
}

Watts Node::estimated_power() const {
  return spec_->power_model.power(level_, op_);
}

Watts Node::estimated_power_at(Level l) const {
  const Level clamped =
      std::clamp(l, spec_->ladder.lowest(), spec_->ladder.highest());
  return spec_->power_model.power(clamped, op_);
}

void Node::advance_thermal(Seconds dt) {
  temperature_ = thermal_.step(temperature_, true_power(), dt);
}

}  // namespace pcap::hw
