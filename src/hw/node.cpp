#include "hw/node.hpp"

#include <algorithm>
#include <utility>

namespace pcap::hw {

namespace {

double draw_variation(common::Rng* rng) {
  if (rng == nullptr) return 1.0;
  return std::clamp(rng->normal(1.0, 0.02), 0.9, 1.1);
}

}  // namespace

Node::Node(NodeId id, NodeSpecPtr spec, common::Rng* variation_rng)
    : id_(id),
      spec_(std::move(spec)),
      pool_(nullptr),
      slot_(0),
      owned_(std::make_unique<NodeStatePool>(1)) {
  pool_ = owned_.get();
  pool_->init_slot(0, spec_.get(), draw_variation(variation_rng));
}

Node::Node(NodeId id, NodeSpecPtr spec, NodeStatePool* pool,
           std::uint32_t slot, common::Rng* variation_rng)
    : id_(id), spec_(std::move(spec)), pool_(pool), slot_(slot) {
  pool_->init_slot(slot_, spec_.get(), draw_variation(variation_rng));
}

Node::Node(Node&& other) noexcept
    : id_(other.id_),
      spec_(std::move(other.spec_)),
      pool_(other.pool_),
      slot_(other.slot_),
      owned_(std::move(other.owned_)) {
  // A standalone node's view must follow its private pool.
  if (owned_) pool_ = owned_.get();
}

Node& Node::operator=(Node&& other) noexcept {
  if (this != &other) {
    id_ = other.id_;
    spec_ = std::move(other.spec_);
    pool_ = other.pool_;
    slot_ = other.slot_;
    owned_ = std::move(other.owned_);
    if (owned_) pool_ = owned_.get();
  }
  return *this;
}

}  // namespace pcap::hw
