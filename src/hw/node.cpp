#include "hw/node.hpp"

#include <algorithm>

namespace pcap::hw {

Node::Node(NodeId id, NodeSpecPtr spec, common::Rng* variation_rng)
    : id_(id),
      spec_(std::move(spec)),
      level_(spec_->ladder.highest()),
      thermal_(spec_->thermal),
      temperature_(spec_->thermal.ambient),
      relative_speed_(spec_->ladder.relative_speed(level_)) {
  op_.mem_total = spec_->mem_total;
  op_.nic_bandwidth = spec_->nic_bandwidth;
  if (variation_rng != nullptr) {
    variation_ = std::clamp(variation_rng->normal(1.0, 0.02), 0.9, 1.1);
  }
}

Level Node::set_level(Level l) {
  const Level before = level_;
  if (!spec_->controllable) {
    level_ = spec_->ladder.highest();
  } else {
    level_ = std::clamp(l, spec_->ladder.lowest(), spec_->ladder.highest());
  }
  if (level_ != before) {
    relative_speed_ = spec_->ladder.relative_speed(level_);
    static_power_valid_ = false;
    invalidate_power_cache();
  }
  return level_;
}

Level Node::degrade_one() { return set_level(level_ - 1); }

Level Node::restore_one() { return set_level(level_ + 1); }

Watts Node::true_power() const {
  if (true_power_valid_) return true_power_cache_;
  const Watts estimated = estimated_power();  // fills the static caches
  const Watts idle = idle_leak_cache_;
  const double leak = thermal_.leakage_factor(temperature_);
  const Watts with_leakage = (estimated - idle) + idle * leak;
  true_power_cache_ = with_leakage * variation_;
  true_power_valid_ = true;
  return true_power_cache_;
}

Watts Node::estimated_power() const {
  if (estimated_power_valid_) return estimated_power_cache_;
  if (!static_power_valid_) {
    static_power_cache_ = spec_->power_model.static_power(level_, op_);
    cpu_dyn_cache_ = spec_->power_model.cpu_dyn(level_);
    idle_leak_cache_ = spec_->power_model.idle_power(level_);
    static_power_valid_ = true;
  }
  const double uti = std::clamp(op_.cpu_utilization, 0.0, 1.0);
  estimated_power_cache_ = static_power_cache_ + cpu_dyn_cache_ * uti;
  estimated_power_valid_ = true;
  return estimated_power_cache_;
}

Watts Node::estimated_power_at(Level l) const {
  const Level clamped =
      std::clamp(l, spec_->ladder.lowest(), spec_->ladder.highest());
  if (clamped == level_) return estimated_power();
  return spec_->power_model.power(clamped, op_);
}

void Node::advance_thermal(Seconds dt) {
  temperature_ = thermal_.step(temperature_, true_power(), dt);
  true_power_valid_ = false;  // leakage now sees the new temperature
}

}  // namespace pcap::hw
