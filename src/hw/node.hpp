// A compute node: spec + mutable run state (DVFS level, usage, temperature).
//
// Since the SoA refactor the run state lives in a NodeStatePool slot and
// Node is a thin view over it: the cluster owns one big pool (cache-linear
// tick sweeps index its arrays directly), while a standalone Node — tests,
// single-board examples — owns a private single-slot pool. Either way the
// public API below is unchanged.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/node_pool.hpp"
#include "hw/node_spec.hpp"

namespace pcap::hw {

using NodeId = std::uint32_t;

class Node {
 public:
  /// `variation_rng`, when provided, draws a per-node process-variation
  /// factor (~2 % sigma) so identical boards do not consume identical
  /// power — the reason the paper estimates rather than assumes power.
  /// Standalone form: the node owns a private single-slot pool.
  Node(NodeId id, NodeSpecPtr spec, common::Rng* variation_rng = nullptr);

  /// Pool-backed form: the node is a view over `pool` slot `slot` (the
  /// cluster's layout). The pool must outlive the node.
  Node(NodeId id, NodeSpecPtr spec, NodeStatePool* pool, std::uint32_t slot,
       common::Rng* variation_rng = nullptr);

  // Views are move-only: moving a standalone node re-targets the view at
  // the relocated private pool; copying would alias run state.
  Node(Node&& other) noexcept;
  Node& operator=(Node&& other) noexcept;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const NodeSpec& spec() const { return *spec_; }
  [[nodiscard]] bool controllable() const { return spec_->controllable; }
  /// The pool slot backing this node (cluster nodes: slot == id).
  [[nodiscard]] std::uint32_t slot() const { return slot_; }

  // -- power state (DVFS level) -------------------------------------------
  [[nodiscard]] Level level() const { return pool_->level(slot_); }
  [[nodiscard]] bool at_lowest() const { return level() == 0; }
  [[nodiscard]] bool at_highest() const {
    return level() == spec_->ladder.highest();
  }
  /// Sets the DVFS level, clamped to the spec's ladder. Uncontrollable
  /// nodes ignore the request and stay at the highest level; returns the
  /// level actually in effect afterwards.
  Level set_level(Level l) { return pool_->set_level(slot_, l); }
  /// One-step throttle/restore used by Algorithm 1.
  Level degrade_one() { return set_level(level() - 1); }
  Level restore_one() { return set_level(level() + 1); }

  /// Clock-speed ratio at the current level (1.0 at the top). Cached on
  /// level changes: the workload engine reads this per job-node per tick.
  [[nodiscard]] double relative_speed() const {
    return pool_->relative_speed(slot_);
  }

  // -- operating point ------------------------------------------------------
  /// The cluster's workload engine refreshes the pool arrays directly; this
  /// keeps the old entry point for standalone nodes and tests. On a steady
  /// phase only the CPU utilisation moves, so the static share of formula
  /// (1) — idle + memory + NIC terms — survives the refresh.
  void set_operating_point(const OperatingPoint& op) {
    pool_->set_operating_point(slot_, op);
  }
  /// Assembled by value from the pool arrays since the SoA refactor.
  [[nodiscard]] OperatingPoint operating_point() const {
    return pool_->operating_point(slot_);
  }
  // Direct pool reads for hot samplers that need a few fields, not the
  // whole assembled operating point (the profiling agent's per-node sweep).
  [[nodiscard]] double cpu_utilization() const {
    return pool_->cpu_utilization(slot_);
  }
  [[nodiscard]] double mem_used() const { return pool_->mem_used(slot_); }
  [[nodiscard]] double nic_bytes() const { return pool_->nic_bytes(slot_); }
  [[nodiscard]] bool busy() const { return pool_->busy(slot_); }
  void set_busy(bool busy) { pool_->set_busy(slot_, busy); }
  /// Mutation epoch (see NodeStatePool::state_epoch): unchanged ⟹ every
  /// sample-visible field except board temperature is unchanged.
  [[nodiscard]] std::uint64_t state_epoch() const {
    return pool_->state_epoch(slot_);
  }

  // -- power ----------------------------------------------------------------
  /// Physical power draw: formula (1) plus process variation plus
  /// temperature-driven leakage on the static share. This is what the
  /// facility power meter integrates over. Memoised in the pool slot, so
  /// quiescent nodes cost a load, not a formula.
  [[nodiscard]] Watts true_power() const { return pool_->true_power(slot_); }

  /// What a profiling agent can compute from /proc-style counters — plain
  /// formula (1), without variation or leakage. The gap between this and
  /// true_power() is the estimation error the architecture must tolerate.
  [[nodiscard]] Watts estimated_power() const {
    return pool_->estimated_power(slot_);
  }

  /// Formula-(1) estimate at an arbitrary level (the P'(x) of Algorithm 2).
  [[nodiscard]] Watts estimated_power_at(Level l) const {
    return pool_->estimated_power_at(slot_, l);
  }

  /// Formula (1) at observed counter readings — the profiling agent's
  /// per-sample fast path (reuses the slot's cached static split).
  [[nodiscard]] Watts estimated_power_observed(double observed_cpu,
                                               double observed_nic) const {
    return pool_->estimated_power_observed(slot_, observed_cpu, observed_nic);
  }

  // -- thermal ---------------------------------------------------------------
  /// Temperature as of the last thermal advance (no integration).
  [[nodiscard]] Celsius temperature() const {
    return pool_->temperature(slot_);
  }
  /// Lazy closed-form advance: fast-forwards the RC exponential under the
  /// current power to sim-time `now` and returns the temperature. Exact,
  /// because power is piecewise-constant between power-changing events.
  [[nodiscard]] Celsius temperature_at(Seconds now) const {
    return pool_->advance_temperature_to(slot_, now.value());
  }
  /// Integrates the thermal model over dt at the current true power
  /// (legacy explicit-step entry point; standalone nodes and tests).
  void advance_thermal(Seconds dt) {
    pool_->advance_temperature_by(slot_, dt.value());
  }

 private:
  NodeId id_;
  NodeSpecPtr spec_;
  NodeStatePool* pool_;
  std::uint32_t slot_;
  std::unique_ptr<NodeStatePool> owned_;  ///< standalone nodes only
};

}  // namespace pcap::hw
