// A compute node: spec + mutable run state (DVFS level, usage, temperature).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/node_spec.hpp"

namespace pcap::hw {

using NodeId = std::uint32_t;

class Node {
 public:
  /// `variation_rng`, when provided, draws a per-node process-variation
  /// factor (~2 % sigma) so identical boards do not consume identical
  /// power — the reason the paper estimates rather than assumes power.
  Node(NodeId id, NodeSpecPtr spec, common::Rng* variation_rng = nullptr);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const NodeSpec& spec() const { return *spec_; }
  [[nodiscard]] bool controllable() const { return spec_->controllable; }

  // -- power state (DVFS level) -------------------------------------------
  [[nodiscard]] Level level() const { return level_; }
  [[nodiscard]] bool at_lowest() const { return level_ == 0; }
  [[nodiscard]] bool at_highest() const {
    return level_ == spec_->ladder.highest();
  }
  /// Sets the DVFS level, clamped to the spec's ladder. Uncontrollable
  /// nodes ignore the request and stay at the highest level; returns the
  /// level actually in effect afterwards.
  Level set_level(Level l);
  /// One-step throttle/restore used by Algorithm 1.
  Level degrade_one();
  Level restore_one();

  /// Clock-speed ratio at the current level (1.0 at the top).
  [[nodiscard]] double relative_speed() const {
    return spec_->ladder.relative_speed(level_);
  }

  // -- operating point ------------------------------------------------------
  /// The cluster's workload engine refreshes this every tick.
  void set_operating_point(const OperatingPoint& op) { op_ = op; }
  [[nodiscard]] const OperatingPoint& operating_point() const { return op_; }
  [[nodiscard]] bool busy() const { return busy_; }
  void set_busy(bool busy) { busy_ = busy; }

  // -- power ----------------------------------------------------------------
  /// Physical power draw: formula (1) plus process variation plus
  /// temperature-driven leakage on the static share. This is what the
  /// facility power meter integrates over.
  [[nodiscard]] Watts true_power() const;

  /// What a profiling agent can compute from /proc-style counters — plain
  /// formula (1), without variation or leakage. The gap between this and
  /// true_power() is the estimation error the architecture must tolerate.
  [[nodiscard]] Watts estimated_power() const;

  /// Formula-(1) estimate at an arbitrary level (the P'(x) of Algorithm 2).
  [[nodiscard]] Watts estimated_power_at(Level l) const;

  // -- thermal ---------------------------------------------------------------
  [[nodiscard]] Celsius temperature() const { return temperature_; }
  /// Integrates the thermal model over dt at the current true power.
  void advance_thermal(Seconds dt);

 private:
  NodeId id_;
  NodeSpecPtr spec_;
  Level level_;
  OperatingPoint op_;
  bool busy_ = false;
  double variation_ = 1.0;
  ThermalModel thermal_;
  Celsius temperature_;
};

}  // namespace pcap::hw
