// A compute node: spec + mutable run state (DVFS level, usage, temperature).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/node_spec.hpp"

namespace pcap::hw {

using NodeId = std::uint32_t;

class Node {
 public:
  /// `variation_rng`, when provided, draws a per-node process-variation
  /// factor (~2 % sigma) so identical boards do not consume identical
  /// power — the reason the paper estimates rather than assumes power.
  Node(NodeId id, NodeSpecPtr spec, common::Rng* variation_rng = nullptr);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const NodeSpec& spec() const { return *spec_; }
  [[nodiscard]] bool controllable() const { return spec_->controllable; }

  // -- power state (DVFS level) -------------------------------------------
  [[nodiscard]] Level level() const { return level_; }
  [[nodiscard]] bool at_lowest() const { return level_ == 0; }
  [[nodiscard]] bool at_highest() const {
    return level_ == spec_->ladder.highest();
  }
  /// Sets the DVFS level, clamped to the spec's ladder. Uncontrollable
  /// nodes ignore the request and stay at the highest level; returns the
  /// level actually in effect afterwards.
  Level set_level(Level l);
  /// One-step throttle/restore used by Algorithm 1.
  Level degrade_one();
  Level restore_one();

  /// Clock-speed ratio at the current level (1.0 at the top). Cached on
  /// level changes: the workload engine reads this per job-node per tick.
  [[nodiscard]] double relative_speed() const { return relative_speed_; }

  // -- operating point ------------------------------------------------------
  /// The cluster's workload engine refreshes this every tick. On a steady
  /// phase only the CPU utilisation moves (OU noise on the target), so the
  /// static share of formula (1) — idle + memory + NIC terms — survives
  /// the refresh and the next power evaluation is a multiply-add.
  void set_operating_point(const OperatingPoint& op) {
    if (static_power_valid_ && op.mem_used == op_.mem_used &&
        op.mem_total == op_.mem_total && op.nic_bytes == op_.nic_bytes &&
        op.tau == op_.tau && op.nic_bandwidth == op_.nic_bandwidth) {
      op_.cpu_utilization = op.cpu_utilization;
    } else {
      op_ = op;
      static_power_valid_ = false;
    }
    invalidate_power_cache();
  }
  [[nodiscard]] const OperatingPoint& operating_point() const { return op_; }
  [[nodiscard]] bool busy() const { return busy_; }
  void set_busy(bool busy) { busy_ = busy; }

  // -- power ----------------------------------------------------------------
  /// Physical power draw: formula (1) plus process variation plus
  /// temperature-driven leakage on the static share. This is what the
  /// facility power meter integrates over. Memoised: the model is only
  /// re-evaluated when the level, operating point or temperature changed
  /// since the last call, so quiescent nodes cost a load, not a formula.
  [[nodiscard]] Watts true_power() const;

  /// What a profiling agent can compute from /proc-style counters — plain
  /// formula (1), without variation or leakage. The gap between this and
  /// true_power() is the estimation error the architecture must tolerate.
  /// Memoised like true_power() (temperature does not enter formula (1)).
  [[nodiscard]] Watts estimated_power() const;

  /// Formula-(1) estimate at an arbitrary level (the P'(x) of Algorithm 2).
  [[nodiscard]] Watts estimated_power_at(Level l) const;

  // -- thermal ---------------------------------------------------------------
  [[nodiscard]] Celsius temperature() const { return temperature_; }
  /// Integrates the thermal model over dt at the current true power.
  void advance_thermal(Seconds dt);

 private:
  void invalidate_power_cache() {
    true_power_valid_ = false;
    estimated_power_valid_ = false;
  }

  NodeId id_;
  NodeSpecPtr spec_;
  Level level_;
  OperatingPoint op_;
  bool busy_ = false;
  double variation_ = 1.0;
  ThermalModel thermal_;
  Celsius temperature_;
  double relative_speed_ = 1.0;  ///< ladder ratio at level_, kept in sync

  // Power memoisation (per node, so parallel sweeps over disjoint nodes
  // never share these). Temperature invalidates only the true power:
  // formula (1) does not see leakage. The static share (idle + memory +
  // NIC terms and the utilisation coefficient) outlives utilisation-only
  // operating-point refreshes and is invalidated by level changes.
  mutable Watts true_power_cache_{0.0};
  mutable Watts estimated_power_cache_{0.0};
  mutable Watts static_power_cache_{0.0};
  mutable Watts cpu_dyn_cache_{0.0};
  mutable Watts idle_leak_cache_{0.0};  ///< idle[l], for the leakage share
  mutable bool true_power_valid_ = false;
  mutable bool estimated_power_valid_ = false;
  mutable bool static_power_valid_ = false;
};

}  // namespace pcap::hw
