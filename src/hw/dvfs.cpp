#include "hw/dvfs.hpp"

#include <stdexcept>

namespace pcap::hw {

using namespace pcap::literals;

DvfsLadder::DvfsLadder(std::vector<Hertz> frequencies, double v_min,
                       double v_max)
    : frequencies_(std::move(frequencies)) {
  if (frequencies_.empty()) {
    throw std::invalid_argument("DvfsLadder: no frequencies");
  }
  for (std::size_t i = 1; i < frequencies_.size(); ++i) {
    if (!(frequencies_[i - 1] < frequencies_[i])) {
      throw std::invalid_argument("DvfsLadder: frequencies must ascend");
    }
  }
  if (v_min <= 0.0 || v_max < v_min) {
    throw std::invalid_argument("DvfsLadder: bad voltage range");
  }
  voltages_.reserve(frequencies_.size());
  const double f_lo = frequencies_.front().value();
  const double f_hi = frequencies_.back().value();
  for (const Hertz f : frequencies_) {
    const double t =
        f_hi > f_lo ? (f.value() - f_lo) / (f_hi - f_lo) : 1.0;
    voltages_.push_back(v_min + t * (v_max - v_min));
  }
}

DvfsLadder DvfsLadder::xeon_x5670() {
  // 10 steps between 1.60 and 2.93 GHz (133 MHz granularity, top turbo-free
  // bin at 2.93), per the paper's description of the X5670 on Tianhe-1A.
  return DvfsLadder({1.60_GHz, 1.73_GHz, 1.86_GHz, 2.00_GHz, 2.13_GHz,
                     2.26_GHz, 2.40_GHz, 2.53_GHz, 2.66_GHz, 2.93_GHz},
                    0.85, 1.20);
}

DvfsLadder DvfsLadder::coarse_low_power() {
  return DvfsLadder({1.00_GHz, 1.40_GHz, 1.80_GHz, 2.20_GHz}, 0.80, 1.05);
}

Hertz DvfsLadder::frequency(Level l) const {
  if (!valid(l)) throw std::out_of_range("DvfsLadder::frequency: bad level");
  return frequencies_[static_cast<std::size_t>(l)];
}

double DvfsLadder::voltage(Level l) const {
  if (!valid(l)) throw std::out_of_range("DvfsLadder::voltage: bad level");
  return voltages_[static_cast<std::size_t>(l)];
}

double DvfsLadder::relative_speed(Level l) const {
  return frequency(l) / frequency(highest());
}

double DvfsLadder::power_scale(Level l) const {
  const double f_ratio = relative_speed(l);
  const double v_ratio = voltage(l) / voltage(highest());
  return f_ratio * v_ratio * v_ratio;
}

}  // namespace pcap::hw
