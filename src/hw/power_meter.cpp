#include "hw/power_meter.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::hw {

void PowerSumTree::reset(std::size_t n) {
  leaf_.assign(n, 0.0);
  const std::size_t blocks = (n + kBlock - 1) / kBlock;
  block_sum_.assign(blocks, 0.0);
  block_dirty_.assign(blocks, 0);
  dirty_blocks_.clear();
  dirty_blocks_.reserve(blocks);
}

void PowerSumTree::set_leaf(std::size_t i, double power_w) {
  leaf_[i] = power_w;
  const std::size_t b = i / kBlock;
  if (block_dirty_[b] == 0) {
    block_dirty_[b] = 1;
    dirty_blocks_.push_back(static_cast<std::uint32_t>(b));
  }
}

double PowerSumTree::total() {
  for (const std::uint32_t b : dirty_blocks_) {
    const std::size_t begin = static_cast<std::size_t>(b) * kBlock;
    const std::size_t end = std::min(begin + kBlock, leaf_.size());
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += leaf_[i];
    block_sum_[b] = sum;
    block_dirty_[b] = 0;
  }
  dirty_blocks_.clear();
  double total = 0.0;
  for (const double s : block_sum_) total += s;
  return total;
}

SystemPowerMeter::SystemPowerMeter(PowerMeterParams params, common::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.psu_efficiency <= 0.0 || params_.psu_efficiency > 1.0) {
    throw std::invalid_argument("SystemPowerMeter: bad PSU efficiency");
  }
  if (params_.noise_sigma < 0.0) {
    throw std::invalid_argument("SystemPowerMeter: negative noise");
  }
}

Watts SystemPowerMeter::measure(const std::vector<Node>& nodes) {
  Watts total{0.0};
  for (const Node& n : nodes) total += n.true_power();
  return measure_sum(total);
}

Watts SystemPowerMeter::measure_sum(Watts it_power) {
  const Watts truth = it_power / params_.psu_efficiency;
  if (params_.noise_sigma == 0.0) return truth;
  const double factor =
      std::max(0.0, rng_.normal(1.0, params_.noise_sigma));
  return truth * factor;
}

Watts SystemPowerMeter::exact(const std::vector<Node>& nodes,
                              double psu_efficiency) {
  Watts total{0.0};
  for (const Node& n : nodes) total += n.true_power();
  return total / psu_efficiency;
}

}  // namespace pcap::hw
