#include "hw/power_meter.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::hw {

SystemPowerMeter::SystemPowerMeter(PowerMeterParams params, common::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.psu_efficiency <= 0.0 || params_.psu_efficiency > 1.0) {
    throw std::invalid_argument("SystemPowerMeter: bad PSU efficiency");
  }
  if (params_.noise_sigma < 0.0) {
    throw std::invalid_argument("SystemPowerMeter: negative noise");
  }
}

Watts SystemPowerMeter::measure(const std::vector<Node>& nodes) {
  Watts total{0.0};
  for (const Node& n : nodes) total += n.true_power();
  return measure_sum(total);
}

Watts SystemPowerMeter::measure_sum(Watts it_power) {
  const Watts truth = it_power / params_.psu_efficiency;
  if (params_.noise_sigma == 0.0) return truth;
  const double factor =
      std::max(0.0, rng_.normal(1.0, params_.noise_sigma));
  return truth * factor;
}

Watts SystemPowerMeter::exact(const std::vector<Node>& nodes,
                              double psu_efficiency) {
  Watts total{0.0};
  for (const Node& n : nodes) total += n.true_power();
  return total / psu_efficiency;
}

}  // namespace pcap::hw
