#include "hw/thermal.hpp"

#include <cmath>
#include <stdexcept>

namespace pcap::hw {

ThermalModel::ThermalModel(ThermalParams params) : params_(params) {
  if (params_.thermal_resistance < 0.0 ||
      params_.time_constant <= Seconds{0.0} ||
      params_.leakage_coefficient < 0.0) {
    throw std::invalid_argument("ThermalModel: bad parameters");
  }
}

}  // namespace pcap::hw
