#include "hw/thermal.hpp"

#include <cmath>
#include <stdexcept>

namespace pcap::hw {

ThermalModel::ThermalModel(ThermalParams params) : params_(params) {
  if (params_.thermal_resistance < 0.0 ||
      params_.time_constant <= Seconds{0.0} ||
      params_.leakage_coefficient < 0.0) {
    throw std::invalid_argument("ThermalModel: bad parameters");
  }
}

Celsius ThermalModel::equilibrium(Watts power) const {
  return params_.ambient +
         Celsius{power.value() * params_.thermal_resistance};
}

Celsius ThermalModel::step(Celsius current, Watts power, Seconds dt) const {
  const Celsius target = equilibrium(power);
  const double a = std::exp(-dt / params_.time_constant);
  return target + (current - target) * a;
}

double ThermalModel::leakage_factor(Celsius temperature) const {
  if (params_.leakage_coefficient == 0.0 ||
      temperature <= params_.leakage_reference) {
    return 1.0;
  }
  const double excess =
      (temperature - params_.leakage_reference).value();
  return 1.0 + params_.leakage_coefficient * excess;
}

}  // namespace pcap::hw
