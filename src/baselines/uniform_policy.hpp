// The related-work strawman the paper argues against (§I.B): "all nodes in
// the cluster are considered as of the same importance indiscriminately".
//
// UniformAllNodesPolicy degrades EVERY busy, throttleable candidate node by
// one level whenever the system is yellow — no job awareness at all. It
// plugs into the same CappingManager, which makes the comparison clean:
// identical thresholds and Algorithm 1 mechanics, only the target set
// selection differs.
#pragma once

#include "power/policy.hpp"

namespace pcap::baselines {

class UniformAllNodesPolicy final : public power::TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "uniform"; }
  std::vector<hw::NodeId> select(const power::PolicyContext& ctx) override;
};

}  // namespace pcap::baselines
