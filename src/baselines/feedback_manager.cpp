#include "baselines/feedback_manager.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::baselines {

FeedbackManager::FeedbackManager(FeedbackParams params, common::Rng rng)
    : params_(params), collector_(params.collector, rng.fork("feedback")) {
  if (params_.setpoint <= Watts{0.0}) {
    throw std::invalid_argument("FeedbackManager: setpoint must be > 0");
  }
  if (params_.gain <= 0.0 || params_.hysteresis < 0.0) {
    throw std::invalid_argument("FeedbackManager: bad gain/hysteresis");
  }
  collector_.set_cycle_period(params_.cycle_period);
}

void FeedbackManager::set_candidate_set(const std::vector<hw::NodeId>& ids) {
  collector_.set_candidate_set(ids);
}

power::ManagerReport FeedbackManager::cycle(Watts measured,
                                            std::vector<hw::Node>& nodes,
                                            const sched::Scheduler& scheduler,
                                            Seconds now) {
  collector_.collect(nodes, now, scheduler.running_count());

  power::ManagerReport report;
  report.measured = measured;
  report.p_low = params_.setpoint;
  report.p_high = params_.setpoint;
  report.manager_utilization = collector_.last_cycle_manager_utilization();

  struct Actuator {
    hw::NodeId id;
    Watts power;
    Watts saving;  // power shed (or regained) by one step
    hw::Level level;
  };

  const double error = (measured - params_.setpoint).value();
  std::vector<power::LevelCommand> commands;

  if (error > 0.0) {
    report.state = power::PowerState::kYellow;
    // Throttle: busiest nodes first until the requested shed is covered.
    std::vector<Actuator> acts;
    for (const hw::NodeId id : collector_.candidate_set()) {
      const auto s = collector_.latest(id);
      if (!s || !s->busy || s->level == 0) continue;
      const hw::Node& node = nodes.at(id);
      acts.push_back(Actuator{
          id, s->estimated_power,
          s->estimated_power - node.estimated_power_at(s->level - 1),
          s->level});
    }
    std::stable_sort(acts.begin(), acts.end(),
                     [](const Actuator& a, const Actuator& b) {
                       return a.power > b.power;
                     });
    double requested = error * params_.gain;
    for (const Actuator& a : acts) {
      if (requested <= 0.0) break;
      commands.push_back(power::LevelCommand{a.id, a.level - 1});
      requested -= a.saving.value();
    }
  } else if (-error > params_.setpoint.value() * params_.hysteresis) {
    report.state = power::PowerState::kGreen;
    // Restore headroom: raise throttled nodes, cheapest first, but never
    // request more watts back than the available slack.
    std::vector<Actuator> acts;
    for (const hw::NodeId id : collector_.candidate_set()) {
      const auto s = collector_.latest(id);
      if (!s) continue;
      const hw::Node& node = nodes.at(id);
      if (s->level >= node.spec().ladder.highest()) continue;
      acts.push_back(Actuator{
          id, s->estimated_power,
          node.estimated_power_at(s->level + 1) - s->estimated_power,
          s->level});
    }
    std::stable_sort(acts.begin(), acts.end(),
                     [](const Actuator& a, const Actuator& b) {
                       return a.saving < b.saving;
                     });
    double slack = -error - params_.setpoint.value() * params_.hysteresis;
    for (const Actuator& a : acts) {
      if (slack <= a.saving.value()) break;
      commands.push_back(power::LevelCommand{a.id, a.level + 1});
      slack -= a.saving.value();
    }
  }

  report.targets = commands.size();
  report.transitions = controller_.apply(commands, nodes);
  return report;
}

}  // namespace pcap::baselines
