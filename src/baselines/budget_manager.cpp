#include "baselines/budget_manager.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::baselines {

BudgetManager::BudgetManager(BudgetParams params, common::Rng rng)
    : params_(params), collector_(params.collector, rng.fork("budget")) {
  if (params_.global_budget <= Watts{0.0}) {
    throw std::invalid_argument("BudgetManager: budget must be > 0");
  }
  if (params_.demand_weight < 0.0 || params_.demand_weight > 1.0) {
    throw std::invalid_argument("BudgetManager: demand weight in [0,1]");
  }
  collector_.set_cycle_period(params_.cycle_period);
}

void BudgetManager::set_candidate_set(const std::vector<hw::NodeId>& ids) {
  collector_.set_candidate_set(ids);
}

power::ManagerReport BudgetManager::cycle(Watts measured,
                                          std::vector<hw::Node>& nodes,
                                          const sched::Scheduler& scheduler,
                                          Seconds now) {
  collector_.collect(nodes, now, scheduler.running_count());

  power::ManagerReport report;
  report.measured = measured;
  report.p_low = params_.global_budget;
  report.p_high = params_.global_budget;
  report.manager_utilization = collector_.last_cycle_manager_utilization();

  const auto& candidates = collector_.candidate_set();
  if (candidates.empty()) return report;

  // Cluster level: split the budget — a demand-proportional share plus an
  // even share (Femal's non-uniform allocation).
  double total_demand = 0.0;
  std::vector<double> demand(candidates.size(), 0.0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (const auto s = collector_.latest(candidates[i])) {
      demand[i] = std::max(0.0, s->estimated_power.value());
    }
    total_demand += demand[i];
  }
  const double even_share =
      params_.global_budget.value() * (1.0 - params_.demand_weight) /
      static_cast<double>(candidates.size());

  last_budgets_.assign(candidates.size(), Watts{0.0});
  std::vector<power::LevelCommand> commands;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double proportional =
        total_demand > 0.0
            ? params_.global_budget.value() * params_.demand_weight *
                  demand[i] / total_demand
            : params_.global_budget.value() * params_.demand_weight /
                  static_cast<double>(candidates.size());
    const Watts budget{even_share + proportional};
    last_budgets_[i] = budget;

    // Node level: highest level whose estimate fits the local budget.
    const hw::Node& node = nodes.at(candidates[i]);
    hw::Level chosen = node.spec().ladder.lowest();
    for (hw::Level l = node.spec().ladder.highest();
         l >= node.spec().ladder.lowest(); --l) {
      if (node.estimated_power_at(l) <= budget) {
        chosen = l;
        break;
      }
    }
    if (chosen != node.level()) {
      commands.push_back(power::LevelCommand{candidates[i], chosen});
    }
  }

  report.state = measured > params_.global_budget
                     ? power::PowerState::kYellow
                     : power::PowerState::kGreen;
  report.targets = commands.size();
  report.transitions = controller_.apply(commands, nodes);
  return report;
}

}  // namespace pcap::baselines
