#include "baselines/sla_policy.hpp"

#include <algorithm>
#include <unordered_set>

namespace pcap::baselines {

SlaClass sla_class_of(workload::JobId id) {
  switch (id % 5) {
    case 0:
    case 1:
      return SlaClass::kBronze;
    case 2:
    case 3:
      return SlaClass::kSilver;
    default:
      return SlaClass::kGold;
  }
}

std::vector<hw::NodeId> SlaPriorityPolicy::select(
    const power::PolicyContext& ctx) {
  struct Entry {
    const power::JobView* job;
    std::vector<hw::NodeId> nodes;
    SlaClass cls;
  };
  std::vector<Entry> entries;
  entries.reserve(ctx.jobs.size());
  for (const power::JobView& j : ctx.jobs) {
    auto nodes = power::throttleable_nodes(ctx, j);
    if (nodes.empty()) continue;
    entries.push_back(Entry{&j, std::move(nodes), sla_class_of(j.id)});
  }
  if (entries.empty()) return {};

  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.cls != b.cls) return a.cls < b.cls;  // bronze first
                     return a.job->power > b.job->power;
                   });

  const Watts needed = ctx.required_saving();
  std::vector<hw::NodeId> targets;
  std::unordered_set<hw::NodeId> seen;
  Watts saved{0.0};
  for (const Entry& e : entries) {
    for (const hw::NodeId id : e.nodes) {
      if (!seen.insert(id).second) continue;
      targets.push_back(id);
      const power::NodeView* nv = ctx.node(id);
      saved += nv->power - nv->power_one_level_down;
    }
    if (saved >= needed) break;
  }
  return targets;
}

}  // namespace pcap::baselines
