// Cluster-level proportional feedback power controller, after Wang & Chen
// (HPCA'08), simplified from their MIMO formulation.
//
// Each cycle the controller computes the power error against a setpoint
// and converts it into a number of one-level frequency steps, distributed
// over the monitored nodes in descending power order (positive error:
// throttle; negative error beyond a hysteresis band: restore, busiest
// nodes last). Unlike the paper's architecture there are no power states,
// no steady-green timer and no job awareness — every monitored node is an
// independent actuator.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "power/manager.hpp"
#include "telemetry/collector.hpp"

namespace pcap::baselines {

struct FeedbackParams {
  Watts setpoint{0.0};        ///< target system power.
  double gain = 1.0;          ///< proportional gain on the error (watts
                              ///< of requested shed per watt of error).
  double hysteresis = 0.02;   ///< fraction of setpoint below which restore
                              ///< actions kick in.
  telemetry::CollectorParams collector;
  Seconds cycle_period{1.0};
};

class FeedbackManager final : public power::PowerManagerBase {
 public:
  FeedbackManager(FeedbackParams params, common::Rng rng);

  [[nodiscard]] std::string name() const override { return "feedback"; }

  void set_candidate_set(const std::vector<hw::NodeId>& ids);

  power::ManagerReport cycle(Watts measured, std::vector<hw::Node>& nodes,
                             const sched::Scheduler& scheduler,
                             Seconds now) override;

  [[nodiscard]] const telemetry::Collector& collector() const {
    return collector_;
  }

 private:
  FeedbackParams params_;
  telemetry::Collector collector_;
  power::NodeController controller_;
};

}  // namespace pcap::baselines
