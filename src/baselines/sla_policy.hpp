// SLA-priority target selection, after Ranganathan et al. (ISCA'06).
//
// Each job carries a service class; when the budget is exceeded the
// controller throttles the cheapest class first. We derive a deterministic
// class from the job id (bronze/silver/gold in a 2:2:1 mix) so experiments
// are reproducible; a production system would read it from the scheduler.
// Within a class, higher-power jobs are throttled first, and jobs are
// accumulated until the expected saving covers P - P_L.
#pragma once

#include "power/policy.hpp"

namespace pcap::baselines {

enum class SlaClass { kBronze = 0, kSilver = 1, kGold = 2 };

/// Deterministic class assignment used by the simulation.
SlaClass sla_class_of(workload::JobId id);

class SlaPriorityPolicy final : public power::TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "sla"; }
  std::vector<hw::NodeId> select(const power::PolicyContext& ctx) override;
};

}  // namespace pcap::baselines
