// Two-level non-uniform power budgeting, after Femal & Freeh (ICAC'05).
//
// The cluster-level manager divides a global budget across nodes in
// proportion to their recent demand (non-uniform allocation: busy nodes
// get more); each node-level manager then picks the highest DVFS level
// whose estimated power fits its local budget. This is the classic
// related-work architecture the paper contrasts with: budgets are
// enforced continuously on every node, with no green/yellow/red states,
// no job awareness and no notion of a target subset.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "power/manager.hpp"
#include "telemetry/collector.hpp"

namespace pcap::baselines {

struct BudgetParams {
  Watts global_budget{0.0};  ///< total node-level budget to distribute.
  /// Fraction of the budget distributed demand-proportionally; the rest
  /// is split evenly (pure even split = uniform allocation).
  double demand_weight = 0.7;
  telemetry::CollectorParams collector;
  Seconds cycle_period{1.0};
};

class BudgetManager final : public power::PowerManagerBase {
 public:
  BudgetManager(BudgetParams params, common::Rng rng);

  [[nodiscard]] std::string name() const override { return "budget"; }

  void set_candidate_set(const std::vector<hw::NodeId>& ids);

  power::ManagerReport cycle(Watts measured, std::vector<hw::Node>& nodes,
                             const sched::Scheduler& scheduler,
                             Seconds now) override;

  /// The per-node budgets computed in the last cycle (empty before the
  /// first cycle). Indexed like the candidate set.
  [[nodiscard]] const std::vector<Watts>& last_budgets() const {
    return last_budgets_;
  }

 private:
  BudgetParams params_;
  telemetry::Collector collector_;
  power::NodeController controller_;
  std::vector<Watts> last_budgets_;
};

}  // namespace pcap::baselines
