#include "baselines/uniform_policy.hpp"

namespace pcap::baselines {

std::vector<hw::NodeId> UniformAllNodesPolicy::select(
    const power::PolicyContext& ctx) {
  std::vector<hw::NodeId> out;
  out.reserve(ctx.nodes.size());
  for (const power::NodeView& nv : ctx.nodes) {
    if (nv.busy && !nv.at_lowest) out.push_back(nv.id);
  }
  return out;
}

}  // namespace pcap::baselines
