// A small fixed-size thread pool for embarrassingly parallel sweeps.
//
// Benchmarks sweep many independent simulation configurations (candidate-set
// sizes, policies, seeds); parallel_for distributes those runs across
// hardware threads. The pool is deliberately simple — a mutex-guarded deque —
// because tasks here are seconds-long simulations, not microtasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pcap::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Tasks queued but not yet claimed by a worker (observability gauge;
  /// takes the queue mutex, so sample it from serial sections only).
  [[nodiscard]] std::size_t queue_depth();

  /// Enqueues a task; the returned future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// complete. Exceptions from tasks are rethrown (the first one).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Grained variant for microtasks: fn(begin, end) is invoked over
  /// contiguous chunks of at most `grain` indices covering [0, n). Chunks
  /// are claimed from a shared atomic counter by the workers and the
  /// calling thread, so per-index dispatch overhead vanishes; with n <=
  /// grain the call degenerates to fn(0, n) inline (serial fast path, no
  /// queue traffic). Chunk boundaries are fixed by `grain` alone, so any
  /// computation whose writes stay inside its own indices produces
  /// results independent of the worker count.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// The one shared go-parallel decision for every sweep in the tree
/// (cluster ticks, telemetry collection, context assembly): fan
/// fn(begin, end) out over the pool in `grain`-sized chunks only when a
/// pool is attached, the index count reaches `min_parallel`, and the range
/// spans at least two grains — anything smaller loses more to fan-out than
/// it wins, so it runs inline as one serial chunk. Chunk boundaries are
/// fixed by `grain` alone, so results cannot depend on the worker count as
/// long as fn only writes state owned by its own indices.
template <typename Fn>
void maybe_parallel_for(ThreadPool* pool, std::size_t n,
                        std::size_t min_parallel, std::size_t grain,
                        Fn&& fn) {
  if (grain == 0) grain = 1;
  if (pool != nullptr && n >= min_parallel && n >= 2 * grain) {
    pool->parallel_for(n, grain, std::forward<Fn>(fn));
  } else if (n > 0) {
    fn(std::size_t{0}, n);
  }
}

}  // namespace pcap::common
