#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pcap::common {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void TimeWeightedMean::add(double value, double dt) {
  assert(dt >= 0.0);
  integral_ += value * dt;
  total_time_ += dt;
}

void TimeWeightedMean::reset() { *this = TimeWeightedMean{}; }

double TimeWeightedMean::mean() const {
  return total_time_ > 0.0 ? integral_ / total_time_ : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = underflow_ = overflow_ = 0;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<double>(total_) * q;
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within =
          counts_[i] > 0 ? (target - cum) / static_cast<double>(counts_[i])
                         : 0.0;
      return bin_lo(i) + within * (bin_hi(i) - bin_lo(i));
    }
    cum = next;
  }
  return hi_;
}

double PercentileSampler::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples_.begin(), samples_.end());
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace pcap::common
