#include "common/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace pcap::common {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), width_(header.size()) {
  if (width_ == 0) throw std::logic_error("csv: empty header");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i != 0) out_ << ',';
    write_quoted(header[i]);
  }
  out_ << '\n';
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  if (cells_in_row_ != 0) out_ << ',';
  write_quoted(value);
  ++cells_in_row_;
  return *this;
}

CsvWriter& CsvWriter::cell(const char* value) {
  return cell(std::string(value));
}

CsvWriter& CsvWriter::cell(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return cell(std::string(buf));
}

CsvWriter& CsvWriter::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

CsvWriter& CsvWriter::cell(std::size_t value) {
  return cell(std::to_string(value));
}

void CsvWriter::end_row() {
  if (cells_in_row_ != width_) {
    throw std::logic_error("csv: row has " + std::to_string(cells_in_row_) +
                           " cells, header has " + std::to_string(width_));
  }
  out_ << '\n';
  cells_in_row_ = 0;
  ++rows_;
}

void CsvWriter::write_quoted(const std::string& value) {
  const bool needs_quote =
      value.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) {
    out_ << value;
    return;
  }
  out_ << '"';
  for (char c : value) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(cell));
        cell.clear();
        row_has_content = true;
        break;
      case '\n':
        if (row_has_content || !cell.empty()) {
          row.push_back(std::move(cell));
          cell.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
        }
        break;
      case '\r':
        break;
      default:
        cell += c;
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !cell.empty()) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace pcap::common
