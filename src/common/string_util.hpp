// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pcap::common {

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII.
std::string to_lower(std::string_view s);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace pcap::common
