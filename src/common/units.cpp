#include "common/units.hpp"

#include <cstdio>

namespace pcap {

namespace {
std::string fmt(double v, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g %s", v, unit);
  return buf;
}
}  // namespace

std::string to_string(Watts w) {
  const double v = w.value();
  if (std::fabs(v) >= 1e6) return fmt(v / 1e6, "MW");
  if (std::fabs(v) >= 1e3) return fmt(v / 1e3, "kW");
  return fmt(v, "W");
}

std::string to_string(Joules j) {
  const double v = j.value();
  if (std::fabs(v) >= 1e9) return fmt(v / 1e9, "GJ");
  if (std::fabs(v) >= 1e6) return fmt(v / 1e6, "MJ");
  if (std::fabs(v) >= 1e3) return fmt(v / 1e3, "kJ");
  return fmt(v, "J");
}

std::string to_string(Seconds s) {
  const double v = s.value();
  if (std::fabs(v) >= 3600.0) return fmt(v / 3600.0, "h");
  if (std::fabs(v) >= 60.0) return fmt(v / 60.0, "min");
  return fmt(v, "s");
}

std::string to_string(Hertz f) { return fmt(f.gigahertz(), "GHz"); }

}  // namespace pcap
