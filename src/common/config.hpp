// Flat key-value configuration with typed accessors.
//
// Experiments and examples are driven by small INI-style configs:
//   # comment
//   cluster.nodes = 128
//   manager.policy = mpc
//   manager.cycle_s = 1.0
// Sections ([power]) prefix keys with "power.". Values are stored as strings
// and converted on access; a missing key falls back to the caller's default.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pcap::common {

class Config {
 public:
  Config() = default;

  /// Parses INI-style text. Throws std::runtime_error on malformed lines
  /// (a line that is neither blank, a comment, a [section], nor key=value).
  static Config parse(std::string_view text);

  /// Loads and parses a file. Throws std::runtime_error if unreadable.
  static Config load_file(const std::string& path);

  void set(std::string key, std::string value);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> raw(const std::string& key) const;

  /// Typed getters with defaults. Conversion failure throws
  /// std::runtime_error naming the offending key.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string_view def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  /// Comma-separated list of doubles, e.g. "1.6, 1.73, 2.93".
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& key, const std::vector<double>& def) const;

  /// All keys in sorted order (map iteration order).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Serialises back to INI text (flat keys, no sections).
  [[nodiscard]] std::string to_string() const;

  /// Merges `other` into this config; other's values win on conflict.
  void merge(const Config& other);

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pcap::common
