// Minimal levelled logger.
//
// The library is a simulation substrate, so logging is kept deliberately
// simple: a process-wide level, printf-style formatting, and an optional
// sink override for capturing output in tests. Hot paths guard with
// `PCAP_LOG_ENABLED` so disabled levels cost one branch.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace pcap::common {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the printable name of a level ("INFO", ...).
const char* log_level_name(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; returns kInfo on
/// unknown input.
LogLevel parse_log_level(const std::string& name);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Process-wide logger instance.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Replaces the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  /// printf-style log entry.
  void logf(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

}  // namespace pcap::common

#define PCAP_LOG_ENABLED(lvl) (::pcap::common::Logger::instance().enabled(lvl))

#define PCAP_LOG(lvl, ...)                                     \
  do {                                                         \
    if (PCAP_LOG_ENABLED(lvl)) {                               \
      ::pcap::common::Logger::instance().logf(lvl, __VA_ARGS__); \
    }                                                          \
  } while (0)

#define PCAP_TRACE(...) PCAP_LOG(::pcap::common::LogLevel::kTrace, __VA_ARGS__)
#define PCAP_DEBUG(...) PCAP_LOG(::pcap::common::LogLevel::kDebug, __VA_ARGS__)
#define PCAP_INFO(...) PCAP_LOG(::pcap::common::LogLevel::kInfo, __VA_ARGS__)
#define PCAP_WARN(...) PCAP_LOG(::pcap::common::LogLevel::kWarn, __VA_ARGS__)
#define PCAP_ERROR(...) PCAP_LOG(::pcap::common::LogLevel::kError, __VA_ARGS__)
