#include "common/config.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.hpp"

namespace pcap::common {

Config Config::parse(std::string_view text) {
  Config cfg;
  std::string section;
  std::size_t lineno = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++lineno;
    const std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw std::runtime_error("config: unterminated section at line " +
                                 std::to_string(lineno));
      }
      section = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("config: expected key=value at line " +
                               std::to_string(lineno));
    }
    std::string key(trim(line.substr(0, eq)));
    const std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      throw std::runtime_error("config: empty key at line " +
                               std::to_string(lineno));
    }
    if (!section.empty()) key = section + "." + key;
    cfg.set(std::move(key), value);
  }
  return cfg;
}

Config Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               std::string_view def) const {
  const auto v = raw(key);
  return v ? *v : std::string(def);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  const auto v = raw(key);
  if (!v) return def;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (errno != 0 || end == v->c_str() || !trim(end).empty()) {
    throw std::runtime_error("config: key '" + key + "' is not an integer: " +
                             *v);
  }
  return parsed;
}

double Config::get_double(const std::string& key, double def) const {
  const auto v = raw(key);
  if (!v) return def;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (errno != 0 || end == v->c_str()) {
    throw std::runtime_error("config: key '" + key + "' is not a number: " +
                             *v);
  }
  return parsed;
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto v = raw(key);
  if (!v) return def;
  const std::string lower = to_lower(*v);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  throw std::runtime_error("config: key '" + key + "' is not a bool: " + *v);
}

std::vector<double> Config::get_double_list(
    const std::string& key, const std::vector<double>& def) const {
  const auto v = raw(key);
  if (!v) return def;
  std::vector<double> out;
  for (const auto& part : split(*v, ',')) {
    const auto t = trim(part);
    if (t.empty()) continue;
    errno = 0;
    char* end = nullptr;
    const std::string item(t);
    const double parsed = std::strtod(item.c_str(), &end);
    if (errno != 0 || end == item.c_str()) {
      throw std::runtime_error("config: key '" + key +
                               "' has a non-numeric element: " + item);
    }
    out.push_back(parsed);
  }
  return out;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    out += k;
    out += " = ";
    out += v;
    out += '\n';
  }
  return out;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

}  // namespace pcap::common
