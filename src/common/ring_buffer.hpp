// Fixed-capacity ring buffer used for per-node sample histories.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace pcap::common {

/// Overwriting ring buffer: once full, pushing evicts the oldest element.
/// Indexing is logical: operator[](0) is the *oldest* retained element and
/// back() the most recent.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : data_(capacity) {
    assert(capacity > 0);
  }

  void push(T value) {
    data_[head_] = std::move(value);
    // Wrap by compare, not modulo: push runs once per sample delivered.
    if (++head_ == data_.size()) head_ = 0;
    if (size_ < data_.size()) ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == data_.size(); }

  /// i = 0 is the oldest retained element; i must be < size().
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[physical(i)];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[physical(i)];
  }

  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t physical(std::size_t logical) const {
    // head_ points at the next write slot; oldest element sits size_ back.
    // The sum is < 2 * capacity, so one conditional subtract wraps it.
    std::size_t idx = head_ + (data_.size() - size_) + logical;
    if (idx >= data_.size()) idx -= data_.size();
    return idx;
  }

  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace pcap::common
