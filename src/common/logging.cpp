#include "common/logging.hpp"

#include <cstdio>
#include <vector>

namespace pcap::common {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::logf(LogLevel level, const char* fmt, ...) {
  if (!enabled(level)) return;
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string msg;
  if (needed > 0) {
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    msg.assign(buf.data(), static_cast<std::size_t>(needed));
  }
  va_end(args);
  if (sink_) {
    sink_(level, msg);
  } else {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(level), msg.c_str());
  }
}

}  // namespace pcap::common
