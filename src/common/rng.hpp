// Deterministic, seedable random number generation.
//
// All stochastic behaviour in the library (workload draws, utilisation noise,
// sensor noise) flows through Rng so that experiments are reproducible
// bit-for-bit from a single seed. The generator is xoshiro256**, which is
// fast, tiny and has excellent statistical quality; independent streams are
// derived with SplitMix64 so per-component streams never correlate.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pcap::common {

namespace detail {
/// Ziggurat tables for the standard normal (Marsaglia & Tsang 2000, 128
/// strips), built once at static-initialisation time. kn gates the
/// no-rejection fast path against a 31-bit magnitude; wn scales the raw
/// integer into its strip; fn holds the density at each strip boundary.
struct ZigguratTables {
  std::uint32_t kn[128];
  double wn[128];
  double fn[128];
  ZigguratTables();
};
extern const ZigguratTables zig_normal;
}  // namespace detail

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child stream; `tag` decorrelates streams that
  /// are forked from the same parent for different purposes.
  [[nodiscard]] Rng fork(std::uint64_t tag);
  /// Convenience overload hashing a string tag (e.g. component name).
  [[nodiscard]] Rng fork(std::string_view tag);
  /// Derives the `index`-th child stream as a pure function of the current
  /// state — the parent is NOT advanced, so the result is independent of
  /// the order (and number) of stream() calls. This is what makes
  /// per-element noise draws order-independent: fork one root per purpose,
  /// then stream(i) per element.
  [[nodiscard]] Rng stream(std::uint64_t index) const;
  /// fork(tag) + stream(index) in one call: a named family of indexed
  /// streams (e.g. fork("util-noise", node_id)). Advances the parent once
  /// per call like fork(); prefer forking the root once and calling
  /// stream() when deriving many siblings.
  [[nodiscard]] Rng fork(std::string_view tag, std::uint64_t index);

  /// Raw 64 uniformly distributed bits. Inline: every distribution below
  /// bottoms out here, often once per node per tick.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface so <random> adaptors also work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via the Marsaglia-Tsang ziggurat: the common case is
  /// one 64-bit draw, one table compare and one multiply; transcendentals
  /// only on the rare wedge/tail rejections (~2 % of calls).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given mean (= 1/lambda). Requires mean > 0.
  double exponential(double mean);
  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);
  /// Log-normal such that the *median* of the distribution is `median` and
  /// the underlying normal has standard deviation `sigma`.
  double lognormal(double median, double sigma);
  /// Uniformly selects an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);
  /// Uniformly selects one element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }
  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  /// Wedge/tail handling for normal(): called on the ~2 % of draws the
  /// ziggurat fast path rejects. Out of line to keep the hot path small.
  double normal_slow(std::int32_t hz);

  std::array<std::uint64_t, 4> state_{};
};

inline std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

inline double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

inline double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

inline bool Rng::bernoulli(double p) { return uniform() < p; }

inline double Rng::normal() {
  const auto hz = static_cast<std::int32_t>(next_u64() >> 32);
  const std::size_t iz = static_cast<std::uint32_t>(hz) & 127u;
  // |hz| as an unsigned 31-bit magnitude; 0u - x handles INT32_MIN.
  const std::uint32_t mag = hz < 0 ? 0u - static_cast<std::uint32_t>(hz)
                                   : static_cast<std::uint32_t>(hz);
  if (mag < detail::zig_normal.kn[iz]) return hz * detail::zig_normal.wn[iz];
  return normal_slow(hz);
}

inline double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

/// SplitMix64 step — exposed for hashing/tagging purposes.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a hash of a string, used to derive stream tags from names.
std::uint64_t hash_tag(std::string_view s);

/// Mean-reverting Ornstein-Uhlenbeck process discretised at fixed steps.
/// Used to superimpose realistic temporal noise on utilisation signals:
/// the value wanders around `mean` with relaxation time `tau` and
/// stationary standard deviation `sigma`.
class OrnsteinUhlenbeck {
 public:
  OrnsteinUhlenbeck(double mean, double sigma, double tau_seconds,
                    double initial);

  /// Advances the process by dt seconds and returns the new value.
  double step(double dt_seconds, Rng& rng);

  /// Exact discretisation coefficients for a step of dt: decay =
  /// exp(-dt/tau), noise_sd = sigma * sqrt(1 - decay^2) — the same values
  /// step() computes and caches internally. Callers stepping thousands of
  /// processes at a handful of known dts (the cluster's k-tick staircase
  /// jumps) precompute one table and use step_with, which is bit-identical
  /// to step(dt) and keeps exp/sqrt out of the refresh loop entirely.
  struct StepCoeffs {
    double decay = 0.0;
    double noise_sd = 0.0;
  };
  [[nodiscard]] StepCoeffs coeffs(double dt_seconds) const {
    StepCoeffs c;
    c.decay = std::exp(-dt_seconds / tau_);
    c.noise_sd = sigma_ * std::sqrt(1.0 - c.decay * c.decay);
    return c;
  }
  double step_with(const StepCoeffs& c, Rng& rng) {
    value_ = mean_ + c.decay * (value_ - mean_) + c.noise_sd * rng.normal();
    return value_;
  }

  [[nodiscard]] double value() const { return value_; }
  void reset(double value) { value_ = value; }
  void set_mean(double mean) { mean_ = mean; }

 private:
  double mean_;
  double sigma_;
  double tau_;
  double value_;
  // Discretisation coefficients for the last-used dt; stepping a process
  // at a fixed cadence (every simulation tick) pays the exp/sqrt once
  // instead of every step.
  double cached_dt_ = -1.0;
  double decay_ = 0.0;
  double noise_sd_ = 0.0;
};

}  // namespace pcap::common
