// Deterministic, seedable random number generation.
//
// All stochastic behaviour in the library (workload draws, utilisation noise,
// sensor noise) flows through Rng so that experiments are reproducible
// bit-for-bit from a single seed. The generator is xoshiro256**, which is
// fast, tiny and has excellent statistical quality; independent streams are
// derived with SplitMix64 so per-component streams never correlate.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pcap::common {

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child stream; `tag` decorrelates streams that
  /// are forked from the same parent for different purposes.
  [[nodiscard]] Rng fork(std::uint64_t tag);
  /// Convenience overload hashing a string tag (e.g. component name).
  [[nodiscard]] Rng fork(std::string_view tag);

  /// Raw 64 uniformly distributed bits.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface so <random> adaptors also work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached spare).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given mean (= 1/lambda). Requires mean > 0.
  double exponential(double mean);
  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);
  /// Log-normal such that the *median* of the distribution is `median` and
  /// the underlying normal has standard deviation `sigma`.
  double lognormal(double median, double sigma);
  /// Uniformly selects an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);
  /// Uniformly selects one element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }
  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// SplitMix64 step — exposed for hashing/tagging purposes.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a hash of a string, used to derive stream tags from names.
std::uint64_t hash_tag(std::string_view s);

/// Mean-reverting Ornstein-Uhlenbeck process discretised at fixed steps.
/// Used to superimpose realistic temporal noise on utilisation signals:
/// the value wanders around `mean` with relaxation time `tau` and
/// stationary standard deviation `sigma`.
class OrnsteinUhlenbeck {
 public:
  OrnsteinUhlenbeck(double mean, double sigma, double tau_seconds,
                    double initial);

  /// Advances the process by dt seconds and returns the new value.
  double step(double dt_seconds, Rng& rng);

  [[nodiscard]] double value() const { return value_; }
  void reset(double value) { value_ = value; }
  void set_mean(double mean) { mean_ = mean; }

 private:
  double mean_;
  double sigma_;
  double tau_;
  double value_;
};

}  // namespace pcap::common
