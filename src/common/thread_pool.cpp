#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace pcap::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::queue_depth() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  auto fut = wrapped.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();  // propagates the first exception
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (n <= grain) {
    fn(0, n);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto drain = [&] {
    for (;;) {
      const std::size_t begin = next.fetch_add(grain);
      if (begin >= n) return;
      fn(begin, std::min(begin + grain, n));
    }
  };
  // Enough helpers to cover every chunk; the caller drains too.
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(submit(drain));
  std::exception_ptr error;
  try {
    drain();
  } catch (...) {
    error = std::current_exception();
    next.store(n);  // stop helpers from claiming further chunks
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace pcap::common
