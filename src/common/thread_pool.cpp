#include "common/thread_pool.hpp"

#include <algorithm>

namespace pcap::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  auto fut = wrapped.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();  // propagates the first exception
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace pcap::common
