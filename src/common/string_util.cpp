#include "common/string_util.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace pcap::common {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

}  // namespace pcap::common
