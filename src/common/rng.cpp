#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace pcap::common {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_tag(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : state_) w = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t tag) {
  // Mix the tag with fresh output so sibling forks are independent.
  std::uint64_t sm = next_u64() ^ (tag * 0x9e3779b97f4a7c15ULL);
  return Rng{splitmix64(sm)};
}

Rng Rng::fork(std::string_view tag) { return fork(hash_tag(tag)); }

Rng Rng::stream(std::uint64_t index) const {
  // Fold the index and all four state words through SplitMix64 without
  // touching state_: sibling streams decorrelate, the parent stays put.
  std::uint64_t acc = 0x9e3779b97f4a7c15ULL * (index + 1);
  for (const std::uint64_t w : state_) {
    std::uint64_t sm = w ^ acc;
    acc = splitmix64(sm);
  }
  return Rng{acc};
}

Rng Rng::fork(std::string_view tag, std::uint64_t index) {
  return fork(tag).stream(index);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire's rejection-free-ish multiply-shift with rejection for exactness.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = -range % range;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

namespace detail {

ZigguratTables::ZigguratTables() {
  const double m1 = 2147483648.0;  // 2^31
  const double vn = 9.91256303526217e-3;
  double dn = 3.442619855899;
  double tn = dn;
  const double q = vn / std::exp(-0.5 * dn * dn);
  kn[0] = static_cast<std::uint32_t>((dn / q) * m1);
  kn[1] = 0;
  wn[0] = q / m1;
  wn[127] = dn / m1;
  fn[0] = 1.0;
  fn[127] = std::exp(-0.5 * dn * dn);
  for (int i = 126; i >= 1; --i) {
    dn = std::sqrt(-2.0 * std::log(vn / dn + std::exp(-0.5 * dn * dn)));
    kn[i + 1] = static_cast<std::uint32_t>((dn / tn) * m1);
    tn = dn;
    fn[i] = std::exp(-0.5 * dn * dn);
    wn[i] = dn / m1;
  }
}

const ZigguratTables zig_normal;

}  // namespace detail

namespace {
constexpr double kZigR = 3.442619855899;  // right edge of the base strip
}  // namespace

double Rng::normal_slow(std::int32_t hz) {
  const detail::ZigguratTables& z = detail::zig_normal;
  std::size_t iz = static_cast<std::uint32_t>(hz) & 127u;
  for (;;) {
    if (iz == 0) {
      // Tail beyond R: Marsaglia's exact exponential-majorant method.
      double x = 0.0;
      double y = 0.0;
      do {
        double u1 = 0.0;
        do {
          u1 = uniform();
        } while (u1 <= 0.0);
        double u2 = 0.0;
        do {
          u2 = uniform();
        } while (u2 <= 0.0);
        x = -std::log(u1) / kZigR;
        y = -std::log(u2);
      } while (y + y < x * x);
      return hz > 0 ? kZigR + x : -(kZigR + x);
    }

    // Wedge between the strip and the density curve.
    const double x = hz * z.wn[iz];
    if (z.fn[iz] + uniform() * (z.fn[iz - 1] - z.fn[iz]) <
        std::exp(-0.5 * x * x)) {
      return x;
    }

    // Rejected: redraw from scratch (mirrors the inline fast path).
    hz = static_cast<std::int32_t>(next_u64() >> 32);
    iz = static_cast<std::uint32_t>(hz) & 127u;
    const std::uint32_t mag = hz < 0 ? 0u - static_cast<std::uint32_t>(hz)
                                     : static_cast<std::uint32_t>(hz);
    if (mag < z.kn[iz]) return hz * z.wn[iz];
  }
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::lognormal(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

OrnsteinUhlenbeck::OrnsteinUhlenbeck(double mean, double sigma,
                                     double tau_seconds, double initial)
    : mean_(mean), sigma_(sigma), tau_(tau_seconds), value_(initial) {}

double OrnsteinUhlenbeck::step(double dt_seconds, Rng& rng) {
  // Exact discretisation of the OU SDE over a step of dt.
  if (dt_seconds != cached_dt_) {
    cached_dt_ = dt_seconds;
    decay_ = std::exp(-dt_seconds / tau_);
    noise_sd_ = sigma_ * std::sqrt(1.0 - decay_ * decay_);
  }
  value_ = mean_ + decay_ * (value_ - mean_) + noise_sd_ * rng.normal();
  return value_;
}

}  // namespace pcap::common
