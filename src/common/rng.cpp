#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace pcap::common {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_tag(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : state_) w = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t tag) {
  // Mix the tag with fresh output so sibling forks are independent.
  std::uint64_t sm = next_u64() ^ (tag * 0x9e3779b97f4a7c15ULL);
  return Rng{splitmix64(sm)};
}

Rng Rng::fork(std::string_view tag) { return fork(hash_tag(tag)); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire's rejection-free-ish multiply-shift with rejection for exactness.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = -range % range;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::lognormal(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

OrnsteinUhlenbeck::OrnsteinUhlenbeck(double mean, double sigma,
                                     double tau_seconds, double initial)
    : mean_(mean), sigma_(sigma), tau_(tau_seconds), value_(initial) {}

double OrnsteinUhlenbeck::step(double dt_seconds, Rng& rng) {
  // Exact discretisation of the OU SDE over a step of dt.
  const double a = std::exp(-dt_seconds / tau_);
  const double noise_sd = sigma_ * std::sqrt(1.0 - a * a);
  value_ = mean_ + a * (value_ - mean_) + noise_sd * rng.normal();
  return value_;
}

}  // namespace pcap::common
