// CSV emission for experiment artefacts (power traces, sweep tables).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pcap::common {

/// Streams rows to an ostream with proper quoting. The writer owns no
/// stream; callers keep the ofstream alive for the writer's lifetime.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Appends one cell to the current row. Mixed-type overloads.
  CsvWriter& cell(const std::string& value);
  CsvWriter& cell(const char* value);
  CsvWriter& cell(double value);
  CsvWriter& cell(std::int64_t value);
  CsvWriter& cell(std::size_t value);

  /// Terminates the current row. Throws std::logic_error if the number of
  /// cells does not match the header width.
  void end_row();

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void write_quoted(const std::string& value);

  std::ostream& out_;
  std::size_t width_;
  std::size_t cells_in_row_ = 0;
  std::size_t rows_ = 0;
};

/// Parses simple CSV text (quotes supported) into rows of strings.
/// Used by trace replay and by tests to round-trip artefacts.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace pcap::common
