// Streaming statistics used throughout metrics and telemetry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace pcap::common {

/// Welford running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal: each `add(value,
/// dt)` states that the signal held `value` for `dt` units of time.
class TimeWeightedMean {
 public:
  void add(double value, double dt);
  void reset();

  [[nodiscard]] double mean() const;
  [[nodiscard]] double total_time() const { return total_time_; }
  [[nodiscard]] double integral() const { return integral_; }

 private:
  double integral_ = 0.0;
  double total_time_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin and are counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void reset();

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  /// Linear-interpolated quantile in [0,1]; 0 samples -> lo bound.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Exact percentile over a retained sample vector (for modest sample
/// counts, e.g. per-job statistics). Computes by partial sort on demand.
class PercentileSampler {
 public:
  void add(double x) { samples_.push_back(x); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  /// q in [0,1]; empty -> 0. Uses nearest-rank with linear interpolation.
  [[nodiscard]] double percentile(double q) const;
  void reset() { samples_.clear(); }

 private:
  mutable std::vector<double> samples_;
};

}  // namespace pcap::common
