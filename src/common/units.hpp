// Strong unit types for the power-capping library.
//
// Every physical quantity that crosses a module boundary is wrapped in a
// strong type so that watts cannot silently be added to joules or seconds.
// The wrappers are trivial (a single double) and compile away entirely.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace pcap {

namespace detail {

/// CRTP base providing arithmetic for a strong double wrapper.
/// `Derived` gains +, -, scalar *, scalar /, ratio /, comparisons and
/// accumulation operators while remaining a distinct type.
template <typename Derived>
class StrongDouble {
 public:
  constexpr StrongDouble() = default;
  constexpr explicit StrongDouble(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value_ + b.value_};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value_ - b.value_};
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.value_}; }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value_ * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{s * a.value_};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value_ / s};
  }
  /// Dimensionless ratio of two like quantities.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value_ <=> b.value_;
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value_ == b.value_;
  }
  constexpr Derived& operator+=(Derived b) {
    value_ += b.value_;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived b) {
    value_ -= b.value_;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator*=(double s) {
    value_ *= s;
    return static_cast<Derived&>(*this);
  }

 private:
  double value_ = 0.0;
};

}  // namespace detail

/// Electrical power in watts.
class Watts : public detail::StrongDouble<Watts> {
 public:
  using StrongDouble::StrongDouble;
};

/// Energy in joules.
class Joules : public detail::StrongDouble<Joules> {
 public:
  using StrongDouble::StrongDouble;
};

/// Duration or absolute simulation time in seconds.
class Seconds : public detail::StrongDouble<Seconds> {
 public:
  using StrongDouble::StrongDouble;
};

/// Clock frequency in hertz.
class Hertz : public detail::StrongDouble<Hertz> {
 public:
  using StrongDouble::StrongDouble;
  [[nodiscard]] constexpr double gigahertz() const { return value() / 1e9; }
};

/// Data size in bytes (kept as double: traffic volumes, not addresses).
class Bytes : public detail::StrongDouble<Bytes> {
 public:
  using StrongDouble::StrongDouble;
  [[nodiscard]] constexpr double megabytes() const {
    return value() / (1024.0 * 1024.0);
  }
};

/// Temperature in degrees Celsius.
class Celsius : public detail::StrongDouble<Celsius> {
 public:
  using StrongDouble::StrongDouble;
};

// -- cross-unit physics --------------------------------------------------

/// Energy = power * time.
constexpr Joules operator*(Watts p, Seconds t) {
  return Joules{p.value() * t.value()};
}
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }

/// Average power = energy / time.
constexpr Watts operator/(Joules e, Seconds t) {
  return Watts{e.value() / t.value()};
}

// -- literals --------------------------------------------------------------

namespace literals {
constexpr Watts operator""_W(long double v) {
  return Watts{static_cast<double>(v)};
}
constexpr Watts operator""_W(unsigned long long v) {
  return Watts{static_cast<double>(v)};
}
constexpr Watts operator""_kW(long double v) {
  return Watts{static_cast<double>(v) * 1e3};
}
constexpr Watts operator""_kW(unsigned long long v) {
  return Watts{static_cast<double>(v) * 1e3};
}
constexpr Joules operator""_J(long double v) {
  return Joules{static_cast<double>(v)};
}
constexpr Joules operator""_J(unsigned long long v) {
  return Joules{static_cast<double>(v)};
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_min(unsigned long long v) {
  return Seconds{static_cast<double>(v) * 60.0};
}
constexpr Seconds operator""_h(unsigned long long v) {
  return Seconds{static_cast<double>(v) * 3600.0};
}
constexpr Hertz operator""_GHz(long double v) {
  return Hertz{static_cast<double>(v) * 1e9};
}
constexpr Hertz operator""_GHz(unsigned long long v) {
  return Hertz{static_cast<double>(v) * 1e9};
}
constexpr Hertz operator""_MHz(unsigned long long v) {
  return Hertz{static_cast<double>(v) * 1e6};
}
constexpr Bytes operator""_B(unsigned long long v) {
  return Bytes{static_cast<double>(v)};
}
constexpr Bytes operator""_MiB(unsigned long long v) {
  return Bytes{static_cast<double>(v) * 1024.0 * 1024.0};
}
constexpr Bytes operator""_GiB(unsigned long long v) {
  return Bytes{static_cast<double>(v) * 1024.0 * 1024.0 * 1024.0};
}
}  // namespace literals

// -- formatting ------------------------------------------------------------

/// "12.3 W" / "4.56 kW" depending on magnitude.
std::string to_string(Watts w);
/// "1.23 kJ" / "4.5 MJ" depending on magnitude.
std::string to_string(Joules j);
/// "90 s" / "1.5 h" depending on magnitude.
std::string to_string(Seconds s);
/// "2.93 GHz".
std::string to_string(Hertz f);

}  // namespace pcap
