// FCFS cluster job scheduler with whole-node allocation.
//
// The scheduler owns all jobs through their lifetime (queued -> running ->
// finished) and tracks which node hosts which job. The paper's protocol
// loads jobs "as soon as the required hardware resource is available"; this
// is plain FCFS — optionally with backfill so a wide job at the head does
// not idle the machine (off by default to match the paper's description).
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "sched/allocation.hpp"
#include "workload/job.hpp"

namespace pcap::sched {

/// One entry in the scheduler's append-only lifecycle log. Consumers (the
/// power manager's job index) keep a cursor into the log and replay only
/// the suffix each control cycle, so tracking membership of the running
/// set costs O(churn) instead of O(running jobs) per cycle.
struct JobEvent {
  enum class Kind : std::uint8_t { kStarted, kFinished };
  Kind kind = Kind::kStarted;
  workload::JobId id = 0;
};

struct SchedulerOptions {
  AllocationStrategy strategy = AllocationStrategy::kFirstFit;
  bool backfill = false;  ///< allow jobs behind a blocked head to start
  /// Max MPI ranks per node (0 = pack up to the core count). Wide
  /// placements (small values) match memory-bandwidth-bound MPI codes.
  int max_procs_per_node = 0;
};

class Scheduler {
 public:
  /// `cores_per_node[i]` is node i's core count; node ids are dense
  /// [0, cores_per_node.size()).
  Scheduler(std::vector<int> cores_per_node, SchedulerOptions options,
            common::Rng rng);

  // -- submission & launch ---------------------------------------------------
  /// Enqueues a job (must be in the queued state). Returns its id.
  workload::JobId submit(workload::Job job);

  /// Starts as many queued jobs as resources allow (FCFS order; with
  /// backfill, later jobs may jump a blocked head). Returns started ids.
  std::vector<workload::JobId> try_launch(Seconds now);

  /// Marks a running job finished is handled by the caller advancing the
  /// job; this releases its nodes afterwards.
  void release(workload::JobId id);

  // -- queries -----------------------------------------------------------------
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::size_t running_count() const { return running_.size(); }
  [[nodiscard]] std::size_t finished_count() const { return finished_.size(); }
  [[nodiscard]] std::size_t free_node_count() const;
  [[nodiscard]] int total_nodes() const {
    return static_cast<int>(cores_per_node_.size());
  }
  /// Sum of node core counts.
  [[nodiscard]] int total_cores() const;
  /// Largest job (in processes) this cluster can ever host, honouring the
  /// per-node rank cap.
  [[nodiscard]] int max_job_width() const;

  [[nodiscard]] const std::vector<workload::JobId>& running_jobs() const {
    return running_;
  }
  /// Append-only start/finish log, in the exact order running_jobs()
  /// mutated: replaying it from any cursor reconstructs the running set
  /// (and its order) at that point. One entry per job lifecycle edge —
  /// a few bytes per job, never compacted.
  [[nodiscard]] const std::vector<JobEvent>& job_events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<workload::JobId>& finished_jobs() const {
    return finished_;
  }

  /// nullptr if unknown id.
  [[nodiscard]] workload::Job* find(workload::JobId id);
  [[nodiscard]] const workload::Job* find(workload::JobId id) const;

  /// Job currently occupying a node, if any.
  [[nodiscard]] std::optional<workload::JobId> job_on_node(
      hw::NodeId node) const;

  /// Moves a just-finished job from running to finished and frees nodes.
  /// The job must have state kFinished.
  void on_job_finished(workload::JobId id);

 private:
  bool try_start(workload::Job& job, Seconds now);
  /// Removes `taken` (a successful allocation's nodes) from free_ids_.
  void remove_from_free(const std::vector<hw::NodeId>& taken);

  std::vector<int> cores_per_node_;
  SchedulerOptions options_;
  Allocator allocator_;

  std::unordered_map<workload::JobId, workload::Job> jobs_;
  std::deque<workload::JobId> queue_;
  std::vector<workload::JobId> running_;
  std::vector<workload::JobId> finished_;
  std::vector<JobEvent> events_;
  std::vector<std::optional<workload::JobId>> node_owner_;
  /// Count of unset entries in node_owner_, maintained incrementally so
  /// the launch path's feasibility gate is O(1) per attempt.
  std::size_t free_count_ = 0;
  /// Most processes any single node can host under the rank cap —
  /// ceil(nprocs / this) lower-bounds the node count a job needs.
  int max_procs_one_node_ = 1;
  /// Ascending ids of all unowned nodes, maintained incrementally.
  /// The live region is [free_head_, size): first-fit consumes exactly the
  /// lowest free ids, so a launch retires a prefix by advancing the head
  /// cursor (O(job width)); releases merge into the live tail; the dead
  /// prefix is compacted away once it outgrows the live region (amortized
  /// O(1) per launch). Identical ordering to the owner scan this replaced,
  /// so allocations are unchanged.
  std::vector<hw::NodeId> free_ids_;
  std::size_t free_head_ = 0;
  std::vector<hw::NodeId> freed_scratch_;
};

}  // namespace pcap::sched
