// Whole-node allocation strategies.
//
// HPC schedulers hand out whole nodes; an allocation picks enough free
// nodes to host nprocs processes given each node's core count.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "hw/node.hpp"

namespace pcap::sched {

enum class AllocationStrategy {
  kFirstFit,  ///< lowest-id free nodes (contiguous-ish, deterministic)
  kRandom,    ///< uniformly random free nodes (spreads heat)
};

const char* allocation_strategy_name(AllocationStrategy s);

struct Allocation {
  std::vector<hw::NodeId> nodes;
  std::vector<int> procs_per_node;  ///< parallel to `nodes`
};

/// Chooses free nodes for `nprocs` processes.
/// `free_nodes` lists candidate node ids in ascending order;
/// `cores_of(id)` gives each node's core count. Returns nullopt when the
/// free pool cannot host the job.
class Allocator {
 public:
  Allocator(AllocationStrategy strategy, common::Rng rng);

  /// `max_procs_per_node` caps ranks placed per node (0 = the node's core
  /// count). HPC launchers spread memory-bandwidth-bound MPI ranks across
  /// nodes rather than packing cores, so class-D NPB placements are wide.
  /// First-fit walks the span in place — no copy of the free list; only
  /// the random strategy materialises a shuffled copy.
  std::optional<Allocation> allocate(std::span<const hw::NodeId> free_nodes,
                                     const std::vector<int>& cores_per_node,
                                     int nprocs, int max_procs_per_node = 0);

  [[nodiscard]] AllocationStrategy strategy() const { return strategy_; }

 private:
  AllocationStrategy strategy_;
  common::Rng rng_;
  std::vector<hw::NodeId> order_scratch_;  ///< random strategy's shuffle
};

}  // namespace pcap::sched
