#include "sched/allocation.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::sched {

const char* allocation_strategy_name(AllocationStrategy s) {
  switch (s) {
    case AllocationStrategy::kFirstFit:
      return "first_fit";
    case AllocationStrategy::kRandom:
      return "random";
  }
  return "?";
}

Allocator::Allocator(AllocationStrategy strategy, common::Rng rng)
    : strategy_(strategy), rng_(rng) {}

std::optional<Allocation> Allocator::allocate(
    std::span<const hw::NodeId> free_nodes,
    const std::vector<int>& cores_per_node, int nprocs,
    int max_procs_per_node) {
  if (nprocs <= 0) throw std::invalid_argument("Allocator: nprocs <= 0");
  if (max_procs_per_node < 0) {
    throw std::invalid_argument("Allocator: negative per-node cap");
  }

  std::span<const hw::NodeId> order = free_nodes;
  if (strategy_ == AllocationStrategy::kRandom) {
    order_scratch_.assign(free_nodes.begin(), free_nodes.end());
    rng_.shuffle(order_scratch_);
    order = order_scratch_;
  }

  Allocation alloc;
  int remaining = nprocs;
  for (const hw::NodeId id : order) {
    if (remaining <= 0) break;
    int cores = cores_per_node.at(id);
    if (cores <= 0) continue;
    if (max_procs_per_node > 0) cores = std::min(cores, max_procs_per_node);
    const int placed = std::min(remaining, cores);
    alloc.nodes.push_back(id);
    alloc.procs_per_node.push_back(placed);
    remaining -= placed;
  }
  if (remaining > 0) return std::nullopt;
  return alloc;
}

}  // namespace pcap::sched
