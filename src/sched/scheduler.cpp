#include "sched/scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pcap::sched {

using workload::Job;
using workload::JobId;
using workload::JobState;

Scheduler::Scheduler(std::vector<int> cores_per_node, SchedulerOptions options,
                     common::Rng rng)
    : cores_per_node_(std::move(cores_per_node)),
      options_(options),
      allocator_(options.strategy, rng),
      node_owner_(cores_per_node_.size()) {
  if (cores_per_node_.empty()) {
    throw std::invalid_argument("Scheduler: no nodes");
  }
  for (int c : cores_per_node_) {
    if (c <= 0) throw std::invalid_argument("Scheduler: bad core count");
  }
}

JobId Scheduler::submit(Job job) {
  if (job.state() != JobState::kQueued) {
    throw std::invalid_argument("Scheduler::submit: job not queued");
  }
  if (job.nprocs() > max_job_width()) {
    throw std::invalid_argument(
        "Scheduler::submit: job wider than the machine");
  }
  const JobId id = job.id();
  if (!jobs_.emplace(id, std::move(job)).second) {
    throw std::invalid_argument("Scheduler::submit: duplicate job id");
  }
  queue_.push_back(id);
  return id;
}

std::vector<JobId> Scheduler::try_launch(Seconds now) {
  std::vector<JobId> started;
  for (auto it = queue_.begin(); it != queue_.end();) {
    Job& job = jobs_.at(*it);
    if (try_start(job, now)) {
      started.push_back(*it);
      running_.push_back(*it);
      events_.push_back(JobEvent{JobEvent::Kind::kStarted, *it});
      it = queue_.erase(it);
    } else if (options_.backfill) {
      ++it;  // head blocked; look further down the queue
    } else {
      break;  // strict FCFS: stop at the first job that cannot start
    }
  }
  return started;
}

bool Scheduler::try_start(Job& job, Seconds now) {
  const auto alloc =
      allocator_.allocate(free_nodes(), cores_per_node_, job.nprocs(),
                          options_.max_procs_per_node);
  if (!alloc) return false;
  for (const hw::NodeId id : alloc->nodes) node_owner_[id] = job.id();
  job.start(alloc->nodes, alloc->procs_per_node, now);
  return true;
}

std::vector<hw::NodeId> Scheduler::free_nodes() const {
  std::vector<hw::NodeId> out;
  for (std::size_t i = 0; i < node_owner_.size(); ++i) {
    if (!node_owner_[i]) out.push_back(static_cast<hw::NodeId>(i));
  }
  return out;
}

std::size_t Scheduler::free_node_count() const {
  return static_cast<std::size_t>(
      std::count(node_owner_.begin(), node_owner_.end(), std::nullopt));
}

int Scheduler::total_cores() const {
  return std::accumulate(cores_per_node_.begin(), cores_per_node_.end(), 0);
}

int Scheduler::max_job_width() const {
  int width = 0;
  for (const int cores : cores_per_node_) {
    width += options_.max_procs_per_node > 0
                 ? std::min(cores, options_.max_procs_per_node)
                 : cores;
  }
  return width;
}

Job* Scheduler::find(JobId id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const Job* Scheduler::find(JobId id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

std::optional<JobId> Scheduler::job_on_node(hw::NodeId node) const {
  if (node >= node_owner_.size()) return std::nullopt;
  return node_owner_[node];
}

void Scheduler::release(JobId id) {
  for (auto& owner : node_owner_) {
    if (owner == id) owner.reset();
  }
}

void Scheduler::on_job_finished(JobId id) {
  Job* job = find(id);
  if (job == nullptr || job->state() != JobState::kFinished) {
    throw std::logic_error("Scheduler::on_job_finished: job not finished");
  }
  release(id);
  const auto it = std::find(running_.begin(), running_.end(), id);
  if (it == running_.end()) {
    throw std::logic_error("Scheduler::on_job_finished: job not running");
  }
  running_.erase(it);
  finished_.push_back(id);
  events_.push_back(JobEvent{JobEvent::Kind::kFinished, id});
}

}  // namespace pcap::sched
