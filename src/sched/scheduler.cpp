#include "sched/scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pcap::sched {

using workload::Job;
using workload::JobId;
using workload::JobState;

Scheduler::Scheduler(std::vector<int> cores_per_node, SchedulerOptions options,
                     common::Rng rng)
    : cores_per_node_(std::move(cores_per_node)),
      options_(options),
      allocator_(options.strategy, rng),
      node_owner_(cores_per_node_.size()) {
  if (cores_per_node_.empty()) {
    throw std::invalid_argument("Scheduler: no nodes");
  }
  for (int c : cores_per_node_) {
    if (c <= 0) throw std::invalid_argument("Scheduler: bad core count");
  }
  free_count_ = cores_per_node_.size();
  free_ids_.resize(cores_per_node_.size());
  for (std::size_t i = 0; i < free_ids_.size(); ++i) {
    free_ids_[i] = static_cast<hw::NodeId>(i);
  }
  for (const int cores : cores_per_node_) {
    const int cap = options_.max_procs_per_node > 0
                        ? std::min(cores, options_.max_procs_per_node)
                        : cores;
    max_procs_one_node_ = std::max(max_procs_one_node_, cap);
  }
}

JobId Scheduler::submit(Job job) {
  if (job.state() != JobState::kQueued) {
    throw std::invalid_argument("Scheduler::submit: job not queued");
  }
  if (job.nprocs() > max_job_width()) {
    throw std::invalid_argument(
        "Scheduler::submit: job wider than the machine");
  }
  const JobId id = job.id();
  if (!jobs_.emplace(id, std::move(job)).second) {
    throw std::invalid_argument("Scheduler::submit: duplicate job id");
  }
  queue_.push_back(id);
  return id;
}

std::vector<JobId> Scheduler::try_launch(Seconds now) {
  std::vector<JobId> started;
  for (auto it = queue_.begin(); it != queue_.end();) {
    Job& job = jobs_.at(*it);
    if (try_start(job, now)) {
      started.push_back(*it);
      running_.push_back(*it);
      events_.push_back(JobEvent{JobEvent::Kind::kStarted, *it});
      it = queue_.erase(it);
    } else if (options_.backfill) {
      ++it;  // head blocked; look further down the queue
    } else {
      break;  // strict FCFS: stop at the first job that cannot start
    }
  }
  return started;
}

bool Scheduler::try_start(Job& job, Seconds now) {
  // O(1) feasibility gate before touching the allocator: a job needing
  // more nodes than are free can never place, so a saturated machine with
  // a deep queue pays nothing per blocked attempt. This also skips the
  // allocator's shuffle draw under the random strategy, so random
  // placement streams differ from the ungated scheduler — consistently
  // across serial/parallel and quiescence modes.
  const auto min_nodes = static_cast<std::size_t>(
      (job.nprocs() + max_procs_one_node_ - 1) / max_procs_one_node_);
  if (min_nodes > free_count_) return false;
  const auto alloc = allocator_.allocate(
      std::span<const hw::NodeId>(free_ids_).subspan(free_head_),
      cores_per_node_, job.nprocs(), options_.max_procs_per_node);
  if (!alloc) return false;
  for (const hw::NodeId id : alloc->nodes) node_owner_[id] = job.id();
  free_count_ -= alloc->nodes.size();
  remove_from_free(alloc->nodes);
  job.start(alloc->nodes, alloc->procs_per_node, now);
  return true;
}

void Scheduler::remove_from_free(const std::vector<hw::NodeId>& taken) {
  // First-fit consumes the lowest free ids, i.e. exactly the first |taken|
  // live entries: retire them by advancing the head cursor instead of
  // rewriting the list (the fill phase of a large machine launches onto a
  // huge free pool every tick — this is what keeps that O(job width)).
  if (free_head_ + taken.size() <= free_ids_.size() &&
      std::equal(taken.begin(), taken.end(),
                 free_ids_.begin() + static_cast<std::ptrdiff_t>(free_head_))) {
    free_head_ += taken.size();
    if (free_head_ > free_ids_.size() - free_head_) {
      // Dead prefix outgrew the live region; fold it away now so the
      // amortized cost per launch stays constant.
      free_ids_.erase(free_ids_.begin(),
                      free_ids_.begin() +
                          static_cast<std::ptrdiff_t>(free_head_));
      free_head_ = 0;
    }
    return;
  }
  // Random placement scatters: one compact pass over the (sorted) live
  // region, skipping the sorted taken ids — every taken id came from
  // free_ids_, so the two-pointer walk consumes both lists exactly.
  freed_scratch_ = taken;
  std::sort(freed_scratch_.begin(), freed_scratch_.end());
  std::size_t t = 0;
  std::size_t write = free_head_;
  for (std::size_t r = free_head_; r < free_ids_.size(); ++r) {
    if (t < freed_scratch_.size() && free_ids_[r] == freed_scratch_[t]) {
      ++t;
      continue;
    }
    free_ids_[write++] = free_ids_[r];
  }
  free_ids_.resize(write);
}

std::size_t Scheduler::free_node_count() const { return free_count_; }

int Scheduler::total_cores() const {
  return std::accumulate(cores_per_node_.begin(), cores_per_node_.end(), 0);
}

int Scheduler::max_job_width() const {
  int width = 0;
  for (const int cores : cores_per_node_) {
    width += options_.max_procs_per_node > 0
                 ? std::min(cores, options_.max_procs_per_node)
                 : cores;
  }
  return width;
}

Job* Scheduler::find(JobId id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const Job* Scheduler::find(JobId id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

std::optional<JobId> Scheduler::job_on_node(hw::NodeId node) const {
  if (node >= node_owner_.size()) return std::nullopt;
  return node_owner_[node];
}

void Scheduler::release(JobId id) {
  // A job knows its own placement, so releasing walks |nodes(J)| entries
  // instead of the whole machine. Fall back to the full scan only for an
  // id the scheduler never saw (defensive; keeps the old contract).
  if (const Job* job = find(id)) {
    freed_scratch_.clear();
    for (const hw::NodeId nid : job->nodes()) {
      if (nid < node_owner_.size() && node_owner_[nid] == id) {
        node_owner_[nid].reset();
        ++free_count_;
        freed_scratch_.push_back(nid);
      }
    }
    std::sort(freed_scratch_.begin(), freed_scratch_.end());
    const std::size_t mid = free_ids_.size();
    free_ids_.insert(free_ids_.end(), freed_scratch_.begin(),
                     freed_scratch_.end());
    std::inplace_merge(free_ids_.begin() +
                           static_cast<std::ptrdiff_t>(free_head_),
                       free_ids_.begin() + static_cast<std::ptrdiff_t>(mid),
                       free_ids_.end());
    return;
  }
  free_ids_.clear();
  free_head_ = 0;
  for (std::size_t i = 0; i < node_owner_.size(); ++i) {
    if (node_owner_[i] == id) {
      node_owner_[i].reset();
      ++free_count_;
    }
    if (!node_owner_[i]) free_ids_.push_back(static_cast<hw::NodeId>(i));
  }
}

void Scheduler::on_job_finished(JobId id) {
  Job* job = find(id);
  if (job == nullptr || job->state() != JobState::kFinished) {
    throw std::logic_error("Scheduler::on_job_finished: job not finished");
  }
  release(id);
  const auto it = std::find(running_.begin(), running_.end(), id);
  if (it == running_.end()) {
    throw std::logic_error("Scheduler::on_job_finished: job not running");
  }
  running_.erase(it);
  finished_.push_back(id);
  events_.push_back(JobEvent{JobEvent::Kind::kFinished, id});
}

}  // namespace pcap::sched
