// Management-cost model of the central power manager (Figure 5).
//
// §V.D: "the CPU utilization of the central management node increases
// non-linearly with the size of A_candidate". We model one control cycle's
// CPU time on the management node as
//
//   cost(n, j) = base
//              + collect * n            (receive + decode agent messages)
//              + history * n            (ring-buffer update, Δ computation)
//              + sort * n * log2(n)     (ranking nodes/jobs by power)
//              + jobmap * n * j         (node -> job aggregation)
//
// with n = |A_candidate| and j = number of monitored jobs. Since j itself
// grows with n on a loaded machine, the n*j term dominates at scale and
// yields the super-linear curve of Figure 5.
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace pcap::telemetry {

struct ManagementCostParams {
  double base_us = 250.0;
  double collect_us_per_node = 35.0;
  double history_us_per_node = 12.0;
  double sort_us_per_nlogn = 4.0;
  double jobmap_us_per_node_job = 1.8;
};

class ManagementCostModel {
 public:
  explicit ManagementCostModel(ManagementCostParams params = {});

  /// CPU time of one control cycle, microseconds.
  [[nodiscard]] double cycle_cost_us(std::size_t candidate_nodes,
                                     std::size_t monitored_jobs) const;

  /// Fraction of the management node's cycle budget consumed,
  /// cost / cycle_period (can exceed 1 when the manager saturates).
  [[nodiscard]] double cpu_utilization(std::size_t candidate_nodes,
                                       std::size_t monitored_jobs,
                                       Seconds cycle_period) const;

  [[nodiscard]] const ManagementCostParams& params() const { return params_; }

 private:
  ManagementCostParams params_;
};

}  // namespace pcap::telemetry
