#include "telemetry/agent.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::telemetry {

ProfilingAgent::ProfilingAgent(hw::NodeId node, AgentParams params,
                               common::Rng rng)
    : node_(node), params_(params), rng_(rng) {
  if (params_.utilization_noise < 0.0 || params_.nic_noise < 0.0) {
    throw std::invalid_argument("ProfilingAgent: negative noise");
  }
}

NodeSample ProfilingAgent::sample(const hw::Node& node, Seconds now) {
  if (node.id() != node_) {
    throw std::invalid_argument("ProfilingAgent: sampling a foreign node");
  }
  const hw::OperatingPoint& op = node.operating_point();

  hw::OperatingPoint observed = op;
  if (params_.utilization_noise > 0.0) {
    observed.cpu_utilization = std::clamp(
        op.cpu_utilization + rng_.normal(0.0, params_.utilization_noise), 0.0,
        1.0);
  }
  if (params_.nic_noise > 0.0) {
    observed.nic_bytes =
        op.nic_bytes * std::max(0.0, rng_.normal(1.0, params_.nic_noise));
  }

  NodeSample s;
  s.node = node_;
  s.time = now;
  s.cpu_utilization = observed.cpu_utilization;
  s.mem_used = observed.mem_used;
  s.nic_bytes = observed.nic_bytes;
  s.level = node.level();
  s.estimated_power = node.spec().power_model.power(node.level(), observed);
  s.temperature = node.temperature();
  s.busy = node.busy();
  return s;
}

}  // namespace pcap::telemetry
