#include "telemetry/agent.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::telemetry {

ProfilingAgent::ProfilingAgent(hw::NodeId node, AgentParams params,
                               common::Rng rng)
    : node_(node), params_(params), rng_(rng) {
  if (params_.utilization_noise < 0.0 || params_.nic_noise < 0.0) {
    throw std::invalid_argument("ProfilingAgent: negative noise");
  }
}

NodeSample ProfilingAgent::sample(const hw::Node& node, Seconds now) {
  if (node.id() != node_) {
    throw std::invalid_argument("ProfilingAgent: sampling a foreign node");
  }
  // Observed counters: the true pool values plus sampling noise — read
  // field by field, not via the assembled operating_point() (this sweep
  // touches every candidate node per collection). The power estimate
  // reuses the node's cached formula-(1) static split
  // (estimated_power_observed) instead of a full model evaluation — same
  // arithmetic as PowerModel::power term by term, a fraction of the cost.
  const double true_cpu = node.cpu_utilization();
  const double true_nic = node.nic_bytes();
  double observed_cpu = true_cpu;
  double observed_nic = true_nic;
  if (params_.utilization_noise > 0.0) {
    observed_cpu = std::clamp(
        true_cpu + rng_.normal(0.0, params_.utilization_noise), 0.0, 1.0);
  }
  if (params_.nic_noise > 0.0) {
    observed_nic = true_nic * std::max(0.0, rng_.normal(1.0, params_.nic_noise));
  }

  NodeSample s;
  s.node = node_;
  s.time = now;
  s.cpu_utilization = observed_cpu;
  s.mem_used = Bytes{node.mem_used()};
  s.nic_bytes = Bytes{observed_nic};
  s.level = node.level();
  s.estimated_power =
      node.estimated_power_observed(observed_cpu, observed_nic);
  // Reading a temperature is what fast-forwards the node's lazy thermal
  // state: quiescent nodes integrate the RC exponential only when someone
  // actually looks.
  s.temperature = node.temperature_at(now);
  s.busy = node.busy();
  return s;
}

}  // namespace pcap::telemetry
