// Management-plane fault injection.
//
// At Tianhe-1A scale the telemetry plane is itself a distributed system:
// profiling agents die and restart, whole nodes crash and come back, and
// counters read mid-update arrive as garbage. The injector drives those
// failure modes per monitored node so the consuming layers (collector,
// manager, capping engine) can be exercised — and hardened — against them.
//
// Determinism contract: every per-node fault process draws from that
// node's own RNG stream (Rng::stream(id)), and apply() touches only state
// owned by its node id. A parallel collection sweep may therefore call
// apply() concurrently for distinct nodes and produce results that are
// bit-identical to a serial sweep. Shared counters are relaxed atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "telemetry/sample.hpp"

namespace pcap::telemetry {

struct FaultParams {
  /// Per-cycle probability that a healthy node's agent stops reporting
  /// (process died, /proc reader wedged). While down, no samples leave
  /// the node.
  double agent_dropout_rate = 0.0;
  /// Per-cycle probability that a down agent restarts and reports again.
  double agent_recovery_rate = 0.25;
  /// Per-cycle probability that a healthy node crashes outright.
  double crash_rate = 0.0;
  /// How long a crash window lasts before the node rejoins, in collection
  /// cycles. A crash also silences the node's agent for the window.
  int crash_duration_cycles = 60;
  /// Probability that a report that does get out carries a corrupted
  /// power estimate (counter torn mid-update, byte-swapped payload). The
  /// corruption is *implausible* — negative or far above the board's
  /// ceiling — so consumers can and must sanity-check.
  double corruption_rate = 0.0;

  /// True when any fault channel is active; the collector skips the
  /// injector entirely otherwise, keeping the healthy path unchanged.
  [[nodiscard]] bool enabled() const {
    return agent_dropout_rate > 0.0 || crash_rate > 0.0 ||
           corruption_rate > 0.0;
  }
  /// Throws std::invalid_argument on out-of-range rates/durations.
  void validate() const;
};

class FaultInjector {
 public:
  /// What the injector did to one node's report this cycle.
  struct Outcome {
    bool suppressed = false;     ///< no report left the node this cycle
    bool corrupted = false;      ///< report left, but with a mangled payload
    bool crash_started = false;  ///< node entered a crash window this cycle
    bool recovered = false;      ///< node rejoined this cycle
  };

  FaultInjector(FaultParams params, common::Rng rng);

  /// Registers the nodes the collector monitors. Serial — call from
  /// candidate-set changes, never from inside a sweep. Per-node fault
  /// state persists across candidate churn (a crashed node that leaves
  /// and re-enters the candidate set is still crashed).
  void ensure_nodes(const std::vector<hw::NodeId>& ids);

  /// Advances node `sample.node`'s fault process by one cycle and applies
  /// the disposition to the freshly taken sample (possibly corrupting its
  /// power estimate in place). Thread-safe across DISTINCT node ids.
  Outcome apply(NodeSample& sample);

  /// Agent or node currently silent (down agent or open crash window)?
  [[nodiscard]] bool is_silent(hw::NodeId id) const;
  /// Number of monitored nodes currently silent.
  [[nodiscard]] std::size_t silent_count() const;

  // Cumulative ground-truth counters (relaxed atomics: sweeps update them
  // concurrently; read them only between sweeps).
  [[nodiscard]] std::uint64_t samples_suppressed() const {
    return samples_suppressed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t samples_corrupted() const {
    return samples_corrupted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t agent_dropouts() const {
    return agent_dropouts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t crash_events() const {
    return crash_events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t recovery_events() const {
    return recovery_events_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const FaultParams& params() const { return params_; }

 private:
  /// One node's fault process. Only apply() for this node's id touches it.
  struct NodeState {
    common::Rng rng{0};
    bool known = false;      ///< registered via ensure_nodes()
    bool agent_up = true;
    /// Crash windows count down in cycles; 0 = healthy. Decremented once
    /// per apply(), i.e. per collection cycle the node is monitored.
    int crash_cycles_left = 0;
  };

  FaultParams params_;
  common::Rng root_;
  std::vector<NodeState> states_;  ///< indexed by node id
  std::atomic<std::uint64_t> samples_suppressed_{0};
  std::atomic<std::uint64_t> samples_corrupted_{0};
  std::atomic<std::uint64_t> agent_dropouts_{0};
  std::atomic<std::uint64_t> crash_events_{0};
  std::atomic<std::uint64_t> recovery_events_{0};
};

}  // namespace pcap::telemetry
