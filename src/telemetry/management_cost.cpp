#include "telemetry/management_cost.hpp"

#include <cmath>
#include <stdexcept>

namespace pcap::telemetry {

ManagementCostModel::ManagementCostModel(ManagementCostParams params)
    : params_(params) {
  if (params_.base_us < 0.0 || params_.collect_us_per_node < 0.0 ||
      params_.history_us_per_node < 0.0 || params_.sort_us_per_nlogn < 0.0 ||
      params_.jobmap_us_per_node_job < 0.0) {
    throw std::invalid_argument("ManagementCostModel: negative coefficient");
  }
}

double ManagementCostModel::cycle_cost_us(std::size_t candidate_nodes,
                                          std::size_t monitored_jobs) const {
  const auto n = static_cast<double>(candidate_nodes);
  const auto j = static_cast<double>(monitored_jobs);
  const double nlogn = n > 1.0 ? n * std::log2(n) : n;
  return params_.base_us + params_.collect_us_per_node * n +
         params_.history_us_per_node * n + params_.sort_us_per_nlogn * nlogn +
         params_.jobmap_us_per_node_job * n * j;
}

double ManagementCostModel::cpu_utilization(std::size_t candidate_nodes,
                                            std::size_t monitored_jobs,
                                            Seconds cycle_period) const {
  if (cycle_period <= Seconds{0.0}) {
    throw std::invalid_argument("ManagementCostModel: bad cycle period");
  }
  const double cost_s = cycle_cost_us(candidate_nodes, monitored_jobs) * 1e-6;
  return cost_s / cycle_period.value();
}

}  // namespace pcap::telemetry
