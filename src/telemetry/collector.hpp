// Global telemetry collector.
//
// Owns one profiling agent per candidate node and keeps a short history of
// samples per node so the manager can compute both state-based quantities
// (current estimated power) and change-based ones (ΔP between the last two
// samples, §IV.B). The candidate set can change at runtime (§II.A: the set
// "may vary during the execution of the system").
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "telemetry/agent.hpp"
#include "telemetry/management_cost.hpp"
#include "telemetry/sample.hpp"

namespace pcap::telemetry {

/// Management-plane transport model. Agent reports travel over the same
/// interconnect the jobs use; on a loaded fabric they arrive late or not
/// at all, and the manager must act on the freshest sample it has.
struct TransportParams {
  double loss_rate = 0.0;  ///< probability an agent report is dropped
  int delay_cycles = 0;    ///< cycles between sampling and delivery
};

struct CollectorParams {
  AgentParams agent;
  std::size_t history_depth = 8;
  ManagementCostParams cost;
  TransportParams transport;
};

class Collector {
 public:
  Collector(CollectorParams params, common::Rng rng);

  /// Replaces the candidate set; agents for new nodes are created,
  /// agents (and histories) for removed nodes are dropped.
  void set_candidate_set(const std::vector<hw::NodeId>& nodes);
  [[nodiscard]] const std::vector<hw::NodeId>& candidate_set() const {
    return candidates_;
  }
  [[nodiscard]] bool is_candidate(hw::NodeId id) const {
    return agents_.count(id) != 0;
  }

  /// Samples every candidate node present in `nodes` (indexed by id) and
  /// appends to histories. Also records the cost-model accounting for this
  /// cycle given the number of currently monitored jobs.
  void collect(const std::vector<hw::Node>& nodes, Seconds now,
               std::size_t monitored_jobs);

  /// Latest sample of a node; nullopt if never sampled / not a candidate.
  [[nodiscard]] std::optional<NodeSample> latest(hw::NodeId id) const;
  /// Sample before the latest one (for rate-of-change policies).
  [[nodiscard]] std::optional<NodeSample> previous(hw::NodeId id) const;

  /// Sum of the latest estimated powers over the candidate set.
  [[nodiscard]] Watts estimated_candidate_power() const;

  /// Modelled CPU utilisation of the management node in the last cycle.
  [[nodiscard]] double last_cycle_manager_utilization() const {
    return last_manager_utilization_;
  }
  /// Reports dropped by the transport so far.
  [[nodiscard]] std::uint64_t samples_lost() const { return samples_lost_; }
  /// Reports delivered into histories so far.
  [[nodiscard]] std::uint64_t samples_delivered() const {
    return samples_delivered_;
  }
  [[nodiscard]] const ManagementCostModel& cost_model() const {
    return cost_model_;
  }
  void set_cycle_period(Seconds period) { cycle_period_ = period; }

 private:
  CollectorParams params_;
  common::Rng rng_;
  ManagementCostModel cost_model_;
  Seconds cycle_period_{1.0};
  std::vector<hw::NodeId> candidates_;
  std::unordered_map<hw::NodeId, ProfilingAgent> agents_;
  std::unordered_map<hw::NodeId, common::RingBuffer<NodeSample>> histories_;
  struct InFlight {
    std::uint64_t deliver_at_cycle;
    NodeSample sample;
  };
  std::unordered_map<hw::NodeId, std::deque<InFlight>> in_flight_;
  std::uint64_t cycle_counter_ = 0;
  std::uint64_t samples_lost_ = 0;
  std::uint64_t samples_delivered_ = 0;
  double last_manager_utilization_ = 0.0;
};

}  // namespace pcap::telemetry
