// Global telemetry collector.
//
// Owns one profiling agent per candidate node and keeps a short history of
// samples per node so the manager can compute both state-based quantities
// (current estimated power) and change-based ones (ΔP between the last two
// samples, §IV.B). The candidate set can change at runtime (§II.A: the set
// "may vary during the execution of the system").
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/agent.hpp"
#include "telemetry/fault_injector.hpp"
#include "telemetry/management_cost.hpp"
#include "telemetry/sample.hpp"

namespace pcap::telemetry {

/// Management-plane transport model. Agent reports travel over the same
/// interconnect the jobs use; on a loaded fabric they arrive late or not
/// at all, and the manager must act on the freshest sample it has.
struct TransportParams {
  double loss_rate = 0.0;  ///< probability an agent report is dropped
  int delay_cycles = 0;    ///< cycles between sampling and delivery
};

struct CollectorParams {
  AgentParams agent;
  std::size_t history_depth = 8;
  ManagementCostParams cost;
  TransportParams transport;
  /// Agent dropout / node crash / sample corruption injection. All off by
  /// default; the healthy path pays nothing.
  FaultParams faults;
  /// Candidate-set size at which collect() fans the sweep out over the
  /// attached thread pool (no pool, or fewer candidates: serial). Every
  /// per-candidate draw comes from that candidate's own RNG stream, so
  /// the sweep order — and therefore the worker count — cannot change
  /// the result.
  std::size_t parallel_threshold = 2048;
  /// Candidates per pool chunk in a parallel sweep.
  std::size_t parallel_grain = 256;
};

/// Read-only window over one node's sample history. Histories live in a
/// single depth-striped arena (`store[d * candidate_count + slot]`), so a
/// collect cycle writes one contiguous stripe instead of scattering into
/// per-node ring buffers; the view re-presents a slot's strided column
/// with the ring-buffer indexing consumers already use (oldest-first
/// operator[], front/back).
class SampleHistoryView {
 public:
  SampleHistoryView() = default;
  SampleHistoryView(const NodeSample* base, std::size_t stride,
                    std::uint32_t head, std::uint32_t size,
                    std::uint32_t depth)
      : base_(base), stride_(stride), head_(head), size_(size),
        depth_(depth) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return depth_; }
  /// k-th sample, oldest first (k < size()).
  [[nodiscard]] const NodeSample& operator[](std::size_t k) const {
    std::uint32_t stripe =
        head_ + depth_ - size_ + static_cast<std::uint32_t>(k);
    if (stripe >= depth_) stripe -= depth_;
    return base_[static_cast<std::size_t>(stripe) * stride_];
  }
  [[nodiscard]] const NodeSample& front() const { return (*this)[0]; }
  [[nodiscard]] const NodeSample& back() const { return (*this)[size_ - 1]; }

 private:
  const NodeSample* base_ = nullptr;
  std::size_t stride_ = 1;
  std::uint32_t head_ = 0;
  std::uint32_t size_ = 0;
  std::uint32_t depth_ = 1;
};

class Collector {
 public:
  Collector(CollectorParams params, common::Rng rng);

  /// Replaces the candidate set; agents for new nodes are created,
  /// agents (and histories) for removed nodes are dropped.
  void set_candidate_set(const std::vector<hw::NodeId>& nodes);
  [[nodiscard]] const std::vector<hw::NodeId>& candidate_set() const {
    return candidates_;
  }
  [[nodiscard]] bool is_candidate(hw::NodeId id) const {
    return slot_of(id) != kNoSlot;
  }

  /// Samples every candidate node present in `nodes` (indexed by id) and
  /// appends to histories. Also records the cost-model accounting for this
  /// cycle given the number of currently monitored jobs.
  void collect(const std::vector<hw::Node>& nodes, Seconds now,
               std::size_t monitored_jobs);

  /// Advances the collection clock without sweeping any agent — the
  /// manager's steady-green collect stride. Sample ages and reconciler
  /// deadlines keep counting (they are denominated in cycles), but no
  /// agent samples, no transport draws, no fault-process steps happen.
  /// In-flight delayed reports stay queued; the manager only reads
  /// histories on cycles it collected, so deferring their delivery to the
  /// next real sweep is invisible. Cost accounting records a sweep of
  /// zero nodes (the manager woke up, decoded nothing).
  void skip_cycle(std::size_t monitored_jobs);

  /// Latest sample of a node; nullopt if never sampled / not a candidate.
  [[nodiscard]] std::optional<NodeSample> latest(hw::NodeId id) const;
  /// Sample before the latest one (for rate-of-change policies).
  [[nodiscard]] std::optional<NodeSample> previous(hw::NodeId id) const;
  /// A node's whole sample history in one lookup (nullopt if not a
  /// candidate) — the manager's context builder reads latest and previous
  /// together, and one slot probe beats two.
  [[nodiscard]] std::optional<SampleHistoryView> history(hw::NodeId id) const;
  /// History of candidate_set()[slot]. For sweeps that already walk the
  /// candidate array in order: indexes straight into the arena, no
  /// id->slot translation at all.
  [[nodiscard]] SampleHistoryView history_at_slot(std::size_t slot) const {
    return SampleHistoryView(hist_store_.data() + slot, hist_stride_,
                             hist_head_[slot], hist_size_[slot], hist_depth_);
  }
  /// Largest candidate id (0 when the set is empty). The candidate array
  /// is kept sorted, so consumers validate a whole sweep against a node
  /// table with one comparison instead of one bounds check per candidate.
  [[nodiscard]] hw::NodeId max_candidate_id() const {
    return candidates_.empty() ? hw::NodeId{0} : candidates_.back();
  }

  /// Attaches (or detaches, with nullptr) the pool used to parallelise
  /// collect(). The collector does not own the pool.
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

  /// Enables per-slot change tracking (and, when the transport is exact,
  /// sample deduplication) for the manager's incremental context plane.
  ///
  /// With `track` on, every delivery is compared against the slot's
  /// previous newest entry on the fields a `NodeView` actually consumes
  /// (level, busy, estimated_power — plus temperature iff
  /// `temperature_sensitive`); `change_cycle(slot)` advances when they
  /// differ, so the manager can refill only slots whose view could have
  /// changed.
  ///
  /// Dedup — skipping the agent sample entirely when the node's raw
  /// counters are unchanged — additionally self-gates on the transport
  /// being exact and draw-free: zero agent noise, zero loss, zero delay,
  /// no fault process. Under any of those the per-candidate RNG streams
  /// must advance every sweep (skipping a draw would shift every later
  /// draw), so suppression stays off and tracking degrades to the
  /// delivery-time compare.
  void configure_dedup(bool track, bool temperature_sensitive);
  /// True when raw-counter suppression is actually armed (see above).
  [[nodiscard]] bool dedup_active() const { return dedup_active_; }
  /// Cycle of the last delivery that changed the slot's view-visible
  /// content (or followed such a change — see last-delivery-changed
  /// catch-up in collect_one). 0 until the first delivery.
  [[nodiscard]] std::uint64_t change_cycle(std::size_t slot) const {
    return change_cycle_[slot];
  }
  /// Freshness stamp of the slot's newest history entry: the delivered
  /// sample's cycle, or — when dedup suppressed the sample because the
  /// raw counters were unchanged — the cycle of the suppression check
  /// itself. Staleness of the newest entry must be measured against this,
  /// not `back().cycle`, which freezes under suppression.
  [[nodiscard]] std::uint64_t confirm_cycle(std::size_t slot) const {
    return confirm_cycle_[slot];
  }
  /// Marks the nodes that must be sampled and delivered every sweep
  /// regardless of dedup — the manager's reconciler/watchdog watch set
  /// (pending acks, unresponsive probing, adoption detection all read the
  /// sample stream, not the content). Replaces the previous watch set.
  void set_watch(const std::vector<hw::NodeId>& ids);

  /// Sum of the latest estimated powers over the candidate set.
  [[nodiscard]] Watts estimated_candidate_power() const;

  /// Modelled CPU utilisation of the management node in the last cycle.
  [[nodiscard]] double last_cycle_manager_utilization() const {
    return last_manager_utilization_;
  }
  /// Reports dropped by the transport so far.
  [[nodiscard]] std::uint64_t samples_lost() const { return samples_lost_; }
  /// Reports delivered into histories so far.
  [[nodiscard]] std::uint64_t samples_delivered() const {
    return samples_delivered_;
  }
  /// Reports that never left their node (down agent / crashed node).
  [[nodiscard]] std::uint64_t samples_suppressed() const {
    return fault_injector_.samples_suppressed();
  }
  /// The fault process driving dropout/crash/corruption (counters live
  /// there; inert when params.faults is all-zero).
  [[nodiscard]] const FaultInjector& fault_injector() const {
    return fault_injector_;
  }
  /// Collection cycles run so far. Samples are stamped with the cycle at
  /// which they were taken, so `cycle_count() - sample.cycle` is a
  /// sample's age in cycles.
  [[nodiscard]] std::uint64_t cycle_count() const { return cycle_counter_; }
  [[nodiscard]] const ManagementCostModel& cost_model() const {
    return cost_model_;
  }
  void set_cycle_period(Seconds period) { cycle_period_ = period; }
  /// Warm restart: resumes the cycle clock from a checkpoint. Believed/
  /// observed stamps in the manager's reconciler are in this timebase, so
  /// a restarted collector restarting from zero would skew every ack and
  /// staleness comparison until the clock caught up.
  void restore_cycle_count(std::uint64_t cycles) { cycle_counter_ = cycles; }

 private:
  struct InFlight {
    std::uint64_t deliver_at_cycle;
    NodeSample sample;
  };
  /// The sweep-local state of one candidate (histories live in the shared
  /// striped arena, see hist_store_). Two workers sampling different
  /// candidates share no state. The transport RNG is per node: report
  /// loss is drawn per candidate, not from one shared sequence, which is
  /// what makes the sweep order-independent.
  struct Monitored {
    ProfilingAgent agent;
    common::Rng transport_rng;
    std::deque<InFlight> in_flight;
  };

  /// One candidate's sweep step: sample, transport (loss/delay), deliver.
  /// Samples one node and routes the report through the transport model.
  /// Delivered/lost counts accumulate into the caller's locals so a sweep
  /// pays one atomic update per chunk instead of one per sample.
  void collect_one(std::size_t slot, const hw::Node& node, Seconds now,
                   std::uint64_t& delivered, std::uint64_t& lost);

  /// Delivers a sample into slot's history, maintaining the incremental
  /// change-tracking state first (no-op when tracking is off).
  void deliver(std::size_t slot, const NodeSample& s);

  /// Appends a delivered sample to slot's history ring in the arena.
  void push_history(std::size_t slot, const NodeSample& s) {
    hist_store_[static_cast<std::size_t>(hist_head_[slot]) * hist_stride_ +
                slot] = s;
    const std::uint32_t next = hist_head_[slot] + 1;
    hist_head_[slot] = next == hist_depth_ ? 0 : next;
    if (hist_size_[slot] < hist_depth_) ++hist_size_[slot];
  }

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// Slot index of a node in slots_/candidates_, or kNoSlot.
  [[nodiscard]] std::uint32_t slot_of(hw::NodeId id) const {
    return static_cast<std::size_t>(id) < slot_of_.size() ? slot_of_[id]
                                                          : kNoSlot;
  }

  CollectorParams params_;
  common::Rng rng_;
  ManagementCostModel cost_model_;
  FaultInjector fault_injector_;
  Seconds cycle_period_{1.0};
  common::ThreadPool* pool_ = nullptr;
  std::vector<hw::NodeId> candidates_;
  /// Per-candidate state, aligned with candidates_: the sweep indexes
  /// straight into this array — no hash probe per sample. slot_of_ maps a
  /// node id to its slot for the point lookups (history/latest/previous).
  std::vector<Monitored> slots_;
  std::vector<std::uint32_t> slot_of_;
  /// Sample histories, depth-striped: stripe d of slot s lives at
  /// hist_store_[d * hist_stride_ + s]. Heads start aligned across slots,
  /// so the common collect cycle (every candidate delivers) writes one
  /// contiguous stripe of the arena — streaming stores instead of a
  /// dependent load per node into scattered per-node ring buffers, which
  /// is what dominated the sweep at 32k+ candidates. Loss/delay/faults
  /// only ever let individual heads fall behind; correctness never
  /// depends on the alignment.
  std::vector<NodeSample> hist_store_;
  std::vector<std::uint32_t> hist_head_;  ///< next stripe to write, per slot
  std::vector<std::uint32_t> hist_size_;  ///< samples held, per slot
  /// Incremental-context change tracking (configure_dedup). All three are
  /// sized with the candidate set and carried across churn like the
  /// histories; maintenance is fully skipped when track_ is off.
  std::vector<std::uint64_t> change_cycle_;
  std::vector<std::uint64_t> confirm_cycle_;
  /// 1 when the slot's previous delivery changed its content. Forces one
  /// confirming delivery after every change, so by the time dedup can
  /// suppress, the top two history entries are content-identical and
  /// power_prev reads are bit-identical to full sampling.
  std::vector<std::uint8_t> last_delivery_changed_;
  /// NodeStatePool::state_epoch captured when the newest history entry was
  /// delivered (or confirmed) under dedup. An unchanged epoch certifies the
  /// node's sample-visible fields are unchanged, so suppression collapses
  /// to one integer compare instead of a seven-field content diff;
  /// temperature still gets its own check when a thermal policy reads it.
  /// ~0 = no recorded epoch (new slot): never matches, falls to the diff.
  std::vector<std::uint64_t> sampled_epoch_;
  std::vector<std::uint8_t> watched_;  ///< dedup-exempt slots (set_watch)
  std::vector<hw::NodeId> watch_ids_;  ///< ids behind watched_, for clearing
  bool track_ = false;
  bool dedup_temperature_ = false;
  bool dedup_active_ = false;
  std::size_t hist_stride_ = 0;           ///< == candidates_.size()
  std::uint32_t hist_depth_ = 1;          ///< == params_.history_depth
  std::uint64_t cycle_counter_ = 0;
  std::atomic<std::uint64_t> samples_lost_{0};
  std::atomic<std::uint64_t> samples_delivered_{0};
  double last_manager_utilization_ = 0.0;
};

}  // namespace pcap::telemetry
