// Telemetry sample types.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "hw/dvfs.hpp"
#include "hw/node.hpp"

namespace pcap::telemetry {

/// One observation of a node, as a profiling agent reports it to the
/// global manager: the /proc-style counters of §V.A plus the formula-(1)
/// power estimate computed locally on the node.
struct NodeSample {
  hw::NodeId node = 0;
  Seconds time{0.0};
  /// Collection cycle at which the agent took this sample (stamped by the
  /// collector). Consumers subtract it from the current cycle to know how
  /// old the data they are acting on really is — under a lossy or delayed
  /// management plane "latest" can be many cycles stale.
  std::uint64_t cycle = 0;
  double cpu_utilization = 0.0;
  Bytes mem_used{0.0};
  Bytes nic_bytes{0.0};
  hw::Level level = 0;
  Watts estimated_power{0.0};
  Celsius temperature{0.0};  ///< on-board sensor reading
  bool busy = false;
};

}  // namespace pcap::telemetry
