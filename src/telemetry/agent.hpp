// Per-node profiling agent.
//
// §II.C: "We deploy a profiling agent to each node in the candidate set to
// profile its local operation state." The agent reads the node's counters
// the way /proc and the NIC log would expose them — i.e. with a little
// sampling noise — and evaluates formula (1) locally.
#pragma once

#include "common/rng.hpp"
#include "telemetry/sample.hpp"

namespace pcap::telemetry {

struct AgentParams {
  /// Absolute gaussian noise on the CPU utilisation reading.
  double utilization_noise = 0.01;
  /// Relative gaussian noise on the NIC byte counter.
  double nic_noise = 0.02;
};

class ProfilingAgent {
 public:
  ProfilingAgent(hw::NodeId node, AgentParams params, common::Rng rng);

  [[nodiscard]] hw::NodeId node_id() const { return node_; }

  /// Samples the node at `now`. The estimated power is formula (1) applied
  /// to the (noisy) readings at the node's current level.
  NodeSample sample(const hw::Node& node, Seconds now);

 private:
  hw::NodeId node_;
  AgentParams params_;
  common::Rng rng_;
};

}  // namespace pcap::telemetry
