#include "telemetry/fault_injector.hpp"

#include <stdexcept>

namespace pcap::telemetry {

void FaultParams::validate() const {
  const auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!probability(agent_dropout_rate) || !probability(agent_recovery_rate) ||
      !probability(crash_rate) || !probability(corruption_rate)) {
    throw std::invalid_argument("FaultParams: rates must be in [0, 1]");
  }
  if (crash_rate > 0.0 && crash_duration_cycles <= 0) {
    throw std::invalid_argument(
        "FaultParams: crash windows need a positive duration");
  }
}

FaultInjector::FaultInjector(FaultParams params, common::Rng rng)
    : params_(params), root_(rng) {
  params_.validate();
}

void FaultInjector::ensure_nodes(const std::vector<hw::NodeId>& ids) {
  for (const hw::NodeId id : ids) {
    if (static_cast<std::size_t>(id) >= states_.size()) {
      states_.resize(static_cast<std::size_t>(id) + 1);
    }
    NodeState& st = states_[id];
    if (!st.known) {
      // stream(id) derives the node's fault stream as a pure function of
      // (injector seed, id): registration order cannot change the draws.
      st.rng = root_.stream(id);
      st.known = true;
    }
  }
}

FaultInjector::Outcome FaultInjector::apply(NodeSample& sample) {
  Outcome out;
  if (static_cast<std::size_t>(sample.node) >= states_.size() ||
      !states_[sample.node].known) {
    // Unregistered node (collector bug rather than injected fault): let
    // the sample through untouched.
    return out;
  }
  NodeState& st = states_[sample.node];

  // Crash process. An open window silences the node; on expiry the node
  // rejoins with its agent up (a rebooted node restarts its agent too).
  if (st.crash_cycles_left > 0) {
    if (--st.crash_cycles_left == 0) {
      out.recovered = true;
      st.agent_up = true;
      recovery_events_.fetch_add(1, std::memory_order_relaxed);
    } else {
      out.suppressed = true;
      samples_suppressed_.fetch_add(1, std::memory_order_relaxed);
      return out;
    }
  } else if (params_.crash_rate > 0.0 && st.rng.bernoulli(params_.crash_rate)) {
    st.crash_cycles_left = params_.crash_duration_cycles;
    out.crash_started = true;
    out.suppressed = true;
    crash_events_.fetch_add(1, std::memory_order_relaxed);
    samples_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  // Agent dropout process (independent of crashes).
  if (st.agent_up) {
    if (params_.agent_dropout_rate > 0.0 &&
        st.rng.bernoulli(params_.agent_dropout_rate)) {
      st.agent_up = false;
      agent_dropouts_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (st.rng.bernoulli(params_.agent_recovery_rate)) {
    st.agent_up = true;
  }
  if (!st.agent_up) {
    out.suppressed = true;
    samples_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  // Corruption: the report escapes, but its power estimate is garbage.
  // Always implausible (negative, or far beyond any board's ceiling), so a
  // sanity-checking consumer can reject it; a naive one mis-caps.
  if (params_.corruption_rate > 0.0 &&
      st.rng.bernoulli(params_.corruption_rate)) {
    out.corrupted = true;
    samples_corrupted_.fetch_add(1, std::memory_order_relaxed);
    if (st.rng.bernoulli(0.5)) {
      sample.estimated_power = -sample.estimated_power - Watts{1.0};
    } else {
      sample.estimated_power =
          (sample.estimated_power + Watts{1.0}) * st.rng.uniform(50.0, 500.0);
    }
  }
  return out;
}

bool FaultInjector::is_silent(hw::NodeId id) const {
  if (static_cast<std::size_t>(id) >= states_.size() || !states_[id].known) {
    return false;
  }
  const NodeState& st = states_[id];
  return st.crash_cycles_left > 0 || !st.agent_up;
}

std::size_t FaultInjector::silent_count() const {
  std::size_t n = 0;
  for (const NodeState& st : states_) {
    if (st.known && (st.crash_cycles_left > 0 || !st.agent_up)) ++n;
  }
  return n;
}

}  // namespace pcap::telemetry
