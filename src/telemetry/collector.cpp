#include "telemetry/collector.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::telemetry {

Collector::Collector(CollectorParams params, common::Rng rng)
    : params_(params),
      rng_(rng),
      cost_model_(params.cost),
      fault_injector_(params.faults, rng.fork("faults")) {
  if (params_.history_depth < 2) {
    throw std::invalid_argument(
        "Collector: history must hold at least two samples");
  }
  hist_depth_ = static_cast<std::uint32_t>(params_.history_depth);
  if (params_.transport.loss_rate < 0.0 ||
      params_.transport.loss_rate >= 1.0) {
    throw std::invalid_argument("Collector: loss rate must be in [0, 1)");
  }
  if (params_.transport.delay_cycles < 0) {
    throw std::invalid_argument("Collector: negative transport delay");
  }
}

void Collector::set_candidate_set(const std::vector<hw::NodeId>& nodes) {
  std::vector<hw::NodeId> next = nodes;
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());

  // Build the new slot array (and re-striped history arena) up front, so
  // the sweep itself never mutates any shared structure (a parallel sweep
  // only touches distinct pre-existing slots). Retained nodes carry their
  // state (agent RNG, history, in-flight reports) over — their history
  // column moves from the old arena stripe-by-stripe; dropped nodes lose
  // theirs.
  std::vector<Monitored> next_slots;
  next_slots.reserve(next.size());
  const std::size_t depth = params_.history_depth;
  std::vector<NodeSample> next_store(depth * next.size());
  std::vector<std::uint32_t> next_head(next.size(), 0);
  std::vector<std::uint32_t> next_size(next.size(), 0);
  for (std::size_t s = 0; s < next.size(); ++s) {
    const hw::NodeId id = next[s];
    const std::uint32_t old_slot = slot_of(id);
    if (old_slot != kNoSlot) {
      next_slots.push_back(std::move(slots_[old_slot]));
      for (std::size_t d = 0; d < depth; ++d) {
        next_store[d * next.size() + s] =
            hist_store_[d * hist_stride_ + old_slot];
      }
      next_head[s] = hist_head_[old_slot];
      next_size[s] = hist_size_[old_slot];
    } else {
      next_slots.push_back(
          Monitored{ProfilingAgent(id, params_.agent, rng_.fork(id)),
                    rng_.fork(common::hash_tag("transport") ^ id),
                    {}});
    }
  }
  candidates_ = std::move(next);
  slots_ = std::move(next_slots);
  hist_store_ = std::move(next_store);
  hist_head_ = std::move(next_head);
  hist_size_ = std::move(next_size);
  hist_stride_ = candidates_.size();
  if (params_.faults.enabled()) fault_injector_.ensure_nodes(candidates_);

  slot_of_.assign(
      candidates_.empty()
          ? 0
          : static_cast<std::size_t>(candidates_.back()) + 1,
      kNoSlot);
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    slot_of_[candidates_[i]] = static_cast<std::uint32_t>(i);
  }
}

void Collector::collect_one(std::size_t slot, const hw::Node& node,
                            Seconds now, std::uint64_t& delivered,
                            std::uint64_t& lost) {
  Monitored& m = slots_[slot];
  const TransportParams& tp = params_.transport;
  NodeSample sample = m.agent.sample(node, now);
  sample.cycle = cycle_counter_;

  // Fault disposition first: a report that never leaves the node sees no
  // transport at all. Corruption mangles the sample in place and lets it
  // travel — the consumer, not the transport, has to notice.
  if (params_.faults.enabled() &&
      fault_injector_.apply(sample).suppressed) {
    // Anything already in flight still arrives (it was sent before the
    // fault), so fall through to the delivery loop below.
  } else if (tp.loss_rate > 0.0 && m.transport_rng.bernoulli(tp.loss_rate)) {
    ++lost;
  } else if (tp.delay_cycles == 0) {
    push_history(slot, sample);
    ++delivered;
  } else {
    m.in_flight.push_back(
        InFlight{cycle_counter_ + static_cast<std::uint64_t>(tp.delay_cycles),
                 sample});
  }

  // Deliver whatever has arrived by now (in order).
  while (!m.in_flight.empty() &&
         m.in_flight.front().deliver_at_cycle <= cycle_counter_) {
    push_history(slot, m.in_flight.front().sample);
    m.in_flight.pop_front();
    ++delivered;
  }
}

void Collector::collect(const std::vector<hw::Node>& nodes, Seconds now,
                        std::size_t monitored_jobs) {
  ++cycle_counter_;
  // candidates_ is sorted, so the whole sweep is validated by its largest
  // id — one comparison, not one bounds check per candidate per cycle.
  if (!candidates_.empty() &&
      static_cast<std::size_t>(candidates_.back()) >= nodes.size()) {
    throw std::out_of_range("Collector::collect: candidate id out of range");
  }
  common::maybe_parallel_for(
      pool_, candidates_.size(), params_.parallel_threshold,
      params_.parallel_grain, [&](std::size_t begin, std::size_t end) {
        std::uint64_t delivered = 0;
        std::uint64_t lost = 0;
        for (std::size_t i = begin; i < end; ++i) {
          collect_one(i, nodes[candidates_[i]], now, delivered, lost);
        }
        samples_delivered_.fetch_add(delivered, std::memory_order_relaxed);
        samples_lost_.fetch_add(lost, std::memory_order_relaxed);
      });
  last_manager_utilization_ =
      cost_model_.cpu_utilization(candidates_.size(), monitored_jobs,
                                  cycle_period_);
}

void Collector::skip_cycle(std::size_t monitored_jobs) {
  ++cycle_counter_;
  last_manager_utilization_ =
      cost_model_.cpu_utilization(0, monitored_jobs, cycle_period_);
}

std::optional<NodeSample> Collector::latest(hw::NodeId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot || hist_size_[slot] == 0) return std::nullopt;
  return history_at_slot(slot).back();
}

std::optional<NodeSample> Collector::previous(hw::NodeId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot || hist_size_[slot] < 2) return std::nullopt;
  const SampleHistoryView h = history_at_slot(slot);
  return h[h.size() - 2];
}

std::optional<SampleHistoryView> Collector::history(hw::NodeId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) return std::nullopt;
  return history_at_slot(slot);
}

Watts Collector::estimated_candidate_power() const {
  Watts total{0.0};
  for (std::size_t slot = 0; slot < candidates_.size(); ++slot) {
    if (hist_size_[slot] == 0) continue;
    total += history_at_slot(slot).back().estimated_power;
  }
  return total;
}

}  // namespace pcap::telemetry
