#include "telemetry/collector.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::telemetry {

Collector::Collector(CollectorParams params, common::Rng rng)
    : params_(params), rng_(rng), cost_model_(params.cost) {
  if (params_.history_depth < 2) {
    throw std::invalid_argument(
        "Collector: history must hold at least two samples");
  }
  if (params_.transport.loss_rate < 0.0 ||
      params_.transport.loss_rate >= 1.0) {
    throw std::invalid_argument("Collector: loss rate must be in [0, 1)");
  }
  if (params_.transport.delay_cycles < 0) {
    throw std::invalid_argument("Collector: negative transport delay");
  }
}

void Collector::set_candidate_set(const std::vector<hw::NodeId>& nodes) {
  candidates_ = nodes;
  std::sort(candidates_.begin(), candidates_.end());
  candidates_.erase(std::unique(candidates_.begin(), candidates_.end()),
                    candidates_.end());

  // Drop agents for nodes no longer monitored.
  for (auto it = agents_.begin(); it != agents_.end();) {
    if (!std::binary_search(candidates_.begin(), candidates_.end(),
                            it->first)) {
      histories_.erase(it->first);
      in_flight_.erase(it->first);
      it = agents_.erase(it);
    } else {
      ++it;
    }
  }
  // Create agents for newly monitored nodes.
  for (const hw::NodeId id : candidates_) {
    if (agents_.count(id) == 0) {
      agents_.emplace(id, ProfilingAgent(id, params_.agent, rng_.fork(id)));
      histories_.emplace(id,
                         common::RingBuffer<NodeSample>(params_.history_depth));
    }
  }
}

void Collector::collect(const std::vector<hw::Node>& nodes, Seconds now,
                        std::size_t monitored_jobs) {
  ++cycle_counter_;
  const TransportParams& tp = params_.transport;
  for (const hw::NodeId id : candidates_) {
    if (id >= nodes.size()) {
      throw std::out_of_range("Collector::collect: candidate id out of range");
    }
    auto& agent = agents_.at(id);
    NodeSample sample = agent.sample(nodes[id], now);

    if (tp.loss_rate > 0.0 && rng_.bernoulli(tp.loss_rate)) {
      ++samples_lost_;  // report dropped on the management fabric
    } else if (tp.delay_cycles == 0) {
      histories_.at(id).push(sample);
      ++samples_delivered_;
    } else {
      in_flight_[id].push_back(
          InFlight{cycle_counter_ + static_cast<std::uint64_t>(tp.delay_cycles),
                   sample});
    }

    // Deliver whatever has arrived by now (in order).
    const auto it = in_flight_.find(id);
    if (it != in_flight_.end()) {
      auto& queue = it->second;
      while (!queue.empty() &&
             queue.front().deliver_at_cycle <= cycle_counter_) {
        histories_.at(id).push(queue.front().sample);
        queue.pop_front();
        ++samples_delivered_;
      }
    }
  }
  last_manager_utilization_ =
      cost_model_.cpu_utilization(candidates_.size(), monitored_jobs,
                                  cycle_period_);
}

std::optional<NodeSample> Collector::latest(hw::NodeId id) const {
  const auto it = histories_.find(id);
  if (it == histories_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::optional<NodeSample> Collector::previous(hw::NodeId id) const {
  const auto it = histories_.find(id);
  if (it == histories_.end() || it->second.size() < 2) return std::nullopt;
  return it->second[it->second.size() - 2];
}

Watts Collector::estimated_candidate_power() const {
  Watts total{0.0};
  for (const hw::NodeId id : candidates_) {
    if (const auto s = latest(id)) total += s->estimated_power;
  }
  return total;
}

}  // namespace pcap::telemetry
