#include "telemetry/collector.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::telemetry {

Collector::Collector(CollectorParams params, common::Rng rng)
    : params_(params),
      rng_(rng),
      cost_model_(params.cost),
      fault_injector_(params.faults, rng.fork("faults")) {
  if (params_.history_depth < 2) {
    throw std::invalid_argument(
        "Collector: history must hold at least two samples");
  }
  hist_depth_ = static_cast<std::uint32_t>(params_.history_depth);
  if (params_.transport.loss_rate < 0.0 ||
      params_.transport.loss_rate >= 1.0) {
    throw std::invalid_argument("Collector: loss rate must be in [0, 1)");
  }
  if (params_.transport.delay_cycles < 0) {
    throw std::invalid_argument("Collector: negative transport delay");
  }
}

void Collector::set_candidate_set(const std::vector<hw::NodeId>& nodes) {
  std::vector<hw::NodeId> next = nodes;
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());

  // Build the new slot array (and re-striped history arena) up front, so
  // the sweep itself never mutates any shared structure (a parallel sweep
  // only touches distinct pre-existing slots). Retained nodes carry their
  // state (agent RNG, history, in-flight reports) over — their history
  // column moves from the old arena stripe-by-stripe; dropped nodes lose
  // theirs.
  std::vector<Monitored> next_slots;
  next_slots.reserve(next.size());
  const std::size_t depth = params_.history_depth;
  std::vector<NodeSample> next_store(depth * next.size());
  std::vector<std::uint32_t> next_head(next.size(), 0);
  std::vector<std::uint32_t> next_size(next.size(), 0);
  for (std::size_t s = 0; s < next.size(); ++s) {
    const hw::NodeId id = next[s];
    const std::uint32_t old_slot = slot_of(id);
    if (old_slot != kNoSlot) {
      next_slots.push_back(std::move(slots_[old_slot]));
      for (std::size_t d = 0; d < depth; ++d) {
        next_store[d * next.size() + s] =
            hist_store_[d * hist_stride_ + old_slot];
      }
      next_head[s] = hist_head_[old_slot];
      next_size[s] = hist_size_[old_slot];
    } else {
      next_slots.push_back(
          Monitored{ProfilingAgent(id, params_.agent, rng_.fork(id)),
                    rng_.fork(common::hash_tag("transport") ^ id),
                    {}});
    }
  }
  // Change-tracking state travels with the history it describes.
  std::vector<std::uint64_t> next_change(next.size(), 0);
  std::vector<std::uint64_t> next_confirm(next.size(), 0);
  std::vector<std::uint8_t> next_changed(next.size(), 0);
  std::vector<std::uint64_t> next_epoch(next.size(), ~std::uint64_t{0});
  for (std::size_t s = 0; s < next.size(); ++s) {
    const std::uint32_t old_slot = slot_of(next[s]);
    if (old_slot != kNoSlot && old_slot < change_cycle_.size()) {
      next_change[s] = change_cycle_[old_slot];
      next_confirm[s] = confirm_cycle_[old_slot];
      next_changed[s] = last_delivery_changed_[old_slot];
      next_epoch[s] = sampled_epoch_[old_slot];
    }
  }

  candidates_ = std::move(next);
  slots_ = std::move(next_slots);
  hist_store_ = std::move(next_store);
  hist_head_ = std::move(next_head);
  hist_size_ = std::move(next_size);
  hist_stride_ = candidates_.size();
  change_cycle_ = std::move(next_change);
  confirm_cycle_ = std::move(next_confirm);
  last_delivery_changed_ = std::move(next_changed);
  sampled_epoch_ = std::move(next_epoch);
  watched_.assign(candidates_.size(), 0);
  if (params_.faults.enabled()) fault_injector_.ensure_nodes(candidates_);

  slot_of_.assign(
      candidates_.empty()
          ? 0
          : static_cast<std::size_t>(candidates_.back()) + 1,
      kNoSlot);
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    slot_of_[candidates_[i]] = static_cast<std::uint32_t>(i);
  }
  // Re-apply the watch set against the new slot layout (dropped nodes
  // simply fall out of it).
  for (const hw::NodeId id : watch_ids_) {
    const std::uint32_t s = slot_of(id);
    if (s != kNoSlot) watched_[s] = 1;
  }
}

void Collector::configure_dedup(bool track, bool temperature_sensitive) {
  track_ = track;
  dedup_temperature_ = temperature_sensitive;
  // Suppressing a sample must not skip an RNG draw some other slot (or a
  // later cycle) would then inherit: dedup arms only when no draw can
  // happen on the sample path at all.
  dedup_active_ = track && params_.agent.utilization_noise == 0.0 &&
                  params_.agent.nic_noise == 0.0 &&
                  params_.transport.loss_rate == 0.0 &&
                  params_.transport.delay_cycles == 0 &&
                  !params_.faults.enabled();
}

void Collector::set_watch(const std::vector<hw::NodeId>& ids) {
  for (const hw::NodeId id : watch_ids_) {
    const std::uint32_t s = slot_of(id);
    if (s != kNoSlot) watched_[s] = 0;
  }
  watch_ids_ = ids;
  for (const hw::NodeId id : watch_ids_) {
    const std::uint32_t s = slot_of(id);
    if (s != kNoSlot) watched_[s] = 1;
  }
}

void Collector::deliver(std::size_t slot, const NodeSample& s) {
  if (track_) {
    bool changed = true;
    if (hist_size_[slot] > 0) {
      const NodeSample& prev = history_at_slot(slot).back();
      // The fields a NodeView consumes, PLUS the raw counters the power
      // model reads: the manager re-derives P'(x) from the node's live
      // operating point, so a counter change whose contribution happens to
      // cancel at the current level (zero coefficient, clamped fraction)
      // can still move the one-level-down estimate. Temperature
      // participates only when a thermal policy will actually read it —
      // otherwise the RC model's asymptotic drift would dirty every busy
      // slot every cycle.
      changed = s.level != prev.level || s.busy != prev.busy ||
                s.estimated_power.value() != prev.estimated_power.value() ||
                s.cpu_utilization != prev.cpu_utilization ||
                s.nic_bytes.value() != prev.nic_bytes.value() ||
                s.mem_used.value() != prev.mem_used.value() ||
                (dedup_temperature_ &&
                 s.temperature.value() != prev.temperature.value());
    }
    // A changed delivery also marks the NEXT delivery dirty (the catch-up
    // bit): consumers read previous() as well as latest(), so the cycle
    // after a change still shifts power_prev even if the content repeats.
    if (changed || last_delivery_changed_[slot] != 0) {
      change_cycle_[slot] = cycle_counter_;
    }
    last_delivery_changed_[slot] = changed ? 1 : 0;
    confirm_cycle_[slot] = s.cycle;
  }
  push_history(slot, s);
}

void Collector::collect_one(std::size_t slot, const hw::Node& node,
                            Seconds now, std::uint64_t& delivered,
                            std::uint64_t& lost) {
  Monitored& m = slots_[slot];
  const TransportParams& tp = params_.transport;

  // Dedup: when the transport is exact and draw-free (dedup_active_) and
  // the node's raw counters match the newest delivered sample, a fresh
  // sample would reproduce that entry bit for bit — confirm the slot and
  // skip the agent entirely. Requires the previous delivery to have been
  // a no-change one (catch-up bit clear, so previous() is already equal
  // to latest()) and the slot to be off the manager's watch set (pending
  // acks and adoption detection consume the sample stream itself).
  if (dedup_active_ && watched_[slot] == 0 &&
      last_delivery_changed_[slot] == 0 && hist_size_[slot] >= 2) {
    // Epoch fast path: the pool bumps state_epoch on every sample-visible
    // mutation, so an unchanged epoch since the slot's newest delivery
    // certifies the whole content diff below would pass — one integer
    // compare replaces seven field reads. Temperature drifts with
    // sim-time without a mutator, so it keeps its own check.
    if (node.state_epoch() == sampled_epoch_[slot] &&
        (!dedup_temperature_ ||
         node.temperature_at(now).value() ==
             history_at_slot(slot).back().temperature.value())) {
      confirm_cycle_[slot] = cycle_counter_;
      ++delivered;
      return;
    }
    const NodeSample& prev = history_at_slot(slot).back();
    if (node.cpu_utilization() == prev.cpu_utilization &&
        node.nic_bytes() == prev.nic_bytes.value() &&
        node.mem_used() == prev.mem_used.value() &&
        node.level() == prev.level && node.busy() == prev.busy &&
        // Raw counters equal but a denominator (mem_total, tau, NIC
        // bandwidth) moved: the memoised estimate sees it where the
        // counters cannot.
        node.estimated_power().value() == prev.estimated_power.value() &&
        (!dedup_temperature_ ||
         node.temperature_at(now).value() == prev.temperature.value())) {
      confirm_cycle_[slot] = cycle_counter_;
      // The content is unchanged even though the epoch moved (a mutator
      // rewrote identical values): re-arm the fast path for next cycle.
      sampled_epoch_[slot] = node.state_epoch();
      // The sample WOULD have been delivered (exact transport, no loss),
      // so the externally visible counter must say so — `samples_delivered`
      // is exported and has to stay bit-identical with dedup off.
      ++delivered;
      return;  // dedup_active_ implies delay==0: nothing can be in flight
    }
  }

  NodeSample sample = m.agent.sample(node, now);
  sample.cycle = cycle_counter_;

  // Fault disposition first: a report that never leaves the node sees no
  // transport at all. Corruption mangles the sample in place and lets it
  // travel — the consumer, not the transport, has to notice.
  if (params_.faults.enabled() &&
      fault_injector_.apply(sample).suppressed) {
    // Anything already in flight still arrives (it was sent before the
    // fault), so fall through to the delivery loop below.
  } else if (tp.loss_rate > 0.0 && m.transport_rng.bernoulli(tp.loss_rate)) {
    ++lost;
  } else if (tp.delay_cycles == 0) {
    deliver(slot, sample);
    // Under dedup the transport is exact, so the delivered entry mirrors
    // the node's state at this epoch — the next sweep can certify "still
    // identical" from the epoch alone.
    if (dedup_active_) sampled_epoch_[slot] = node.state_epoch();
    ++delivered;
  } else {
    m.in_flight.push_back(
        InFlight{cycle_counter_ + static_cast<std::uint64_t>(tp.delay_cycles),
                 sample});
  }

  // Deliver whatever has arrived by now (in order).
  while (!m.in_flight.empty() &&
         m.in_flight.front().deliver_at_cycle <= cycle_counter_) {
    deliver(slot, m.in_flight.front().sample);
    m.in_flight.pop_front();
    ++delivered;
  }
}

void Collector::collect(const std::vector<hw::Node>& nodes, Seconds now,
                        std::size_t monitored_jobs) {
  ++cycle_counter_;
  // candidates_ is sorted, so the whole sweep is validated by its largest
  // id — one comparison, not one bounds check per candidate per cycle.
  if (!candidates_.empty() &&
      static_cast<std::size_t>(candidates_.back()) >= nodes.size()) {
    throw std::out_of_range("Collector::collect: candidate id out of range");
  }
  common::maybe_parallel_for(
      pool_, candidates_.size(), params_.parallel_threshold,
      params_.parallel_grain, [&](std::size_t begin, std::size_t end) {
        std::uint64_t delivered = 0;
        std::uint64_t lost = 0;
        for (std::size_t i = begin; i < end; ++i) {
          collect_one(i, nodes[candidates_[i]], now, delivered, lost);
        }
        samples_delivered_.fetch_add(delivered, std::memory_order_relaxed);
        samples_lost_.fetch_add(lost, std::memory_order_relaxed);
      });
  last_manager_utilization_ =
      cost_model_.cpu_utilization(candidates_.size(), monitored_jobs,
                                  cycle_period_);
}

void Collector::skip_cycle(std::size_t monitored_jobs) {
  ++cycle_counter_;
  last_manager_utilization_ =
      cost_model_.cpu_utilization(0, monitored_jobs, cycle_period_);
}

std::optional<NodeSample> Collector::latest(hw::NodeId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot || hist_size_[slot] == 0) return std::nullopt;
  return history_at_slot(slot).back();
}

std::optional<NodeSample> Collector::previous(hw::NodeId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot || hist_size_[slot] < 2) return std::nullopt;
  const SampleHistoryView h = history_at_slot(slot);
  return h[h.size() - 2];
}

std::optional<SampleHistoryView> Collector::history(hw::NodeId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) return std::nullopt;
  return history_at_slot(slot);
}

Watts Collector::estimated_candidate_power() const {
  Watts total{0.0};
  for (std::size_t slot = 0; slot < candidates_.size(); ++slot) {
    if (hist_size_[slot] == 0) continue;
    total += history_at_slot(slot).back().estimated_power;
  }
  return total;
}

}  // namespace pcap::telemetry
