#include "telemetry/collector.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::telemetry {

Collector::Collector(CollectorParams params, common::Rng rng)
    : params_(params),
      rng_(rng),
      cost_model_(params.cost),
      fault_injector_(params.faults, rng.fork("faults")) {
  if (params_.history_depth < 2) {
    throw std::invalid_argument(
        "Collector: history must hold at least two samples");
  }
  if (params_.transport.loss_rate < 0.0 ||
      params_.transport.loss_rate >= 1.0) {
    throw std::invalid_argument("Collector: loss rate must be in [0, 1)");
  }
  if (params_.transport.delay_cycles < 0) {
    throw std::invalid_argument("Collector: negative transport delay");
  }
}

void Collector::set_candidate_set(const std::vector<hw::NodeId>& nodes) {
  std::vector<hw::NodeId> next = nodes;
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());

  // Build the new slot array up front, so the sweep itself never mutates
  // any shared structure (a parallel sweep only touches distinct
  // pre-existing slots). Retained nodes carry their state (agent RNG,
  // history, in-flight reports) over; dropped nodes lose theirs.
  std::vector<Monitored> next_slots;
  next_slots.reserve(next.size());
  for (const hw::NodeId id : next) {
    const std::uint32_t old_slot = slot_of(id);
    if (old_slot != kNoSlot) {
      next_slots.push_back(std::move(slots_[old_slot]));
    } else {
      next_slots.push_back(
          Monitored{ProfilingAgent(id, params_.agent, rng_.fork(id)),
                    rng_.fork(common::hash_tag("transport") ^ id),
                    common::RingBuffer<NodeSample>(params_.history_depth),
                    {}});
    }
  }
  candidates_ = std::move(next);
  slots_ = std::move(next_slots);
  if (params_.faults.enabled()) fault_injector_.ensure_nodes(candidates_);

  slot_of_.assign(
      candidates_.empty()
          ? 0
          : static_cast<std::size_t>(candidates_.back()) + 1,
      kNoSlot);
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    slot_of_[candidates_[i]] = static_cast<std::uint32_t>(i);
  }
}

void Collector::collect_one(Monitored& m, const hw::Node& node, Seconds now,
                            std::uint64_t& delivered, std::uint64_t& lost) {
  const TransportParams& tp = params_.transport;
  NodeSample sample = m.agent.sample(node, now);
  sample.cycle = cycle_counter_;

  // Fault disposition first: a report that never leaves the node sees no
  // transport at all. Corruption mangles the sample in place and lets it
  // travel — the consumer, not the transport, has to notice.
  if (params_.faults.enabled() &&
      fault_injector_.apply(sample).suppressed) {
    // Anything already in flight still arrives (it was sent before the
    // fault), so fall through to the delivery loop below.
  } else if (tp.loss_rate > 0.0 && m.transport_rng.bernoulli(tp.loss_rate)) {
    ++lost;
  } else if (tp.delay_cycles == 0) {
    m.history.push(sample);
    ++delivered;
  } else {
    m.in_flight.push_back(
        InFlight{cycle_counter_ + static_cast<std::uint64_t>(tp.delay_cycles),
                 sample});
  }

  // Deliver whatever has arrived by now (in order).
  while (!m.in_flight.empty() &&
         m.in_flight.front().deliver_at_cycle <= cycle_counter_) {
    m.history.push(m.in_flight.front().sample);
    m.in_flight.pop_front();
    ++delivered;
  }
}

void Collector::collect(const std::vector<hw::Node>& nodes, Seconds now,
                        std::size_t monitored_jobs) {
  ++cycle_counter_;
  // candidates_ is sorted, so the whole sweep is validated by its largest
  // id — one comparison, not one bounds check per candidate per cycle.
  if (!candidates_.empty() &&
      static_cast<std::size_t>(candidates_.back()) >= nodes.size()) {
    throw std::out_of_range("Collector::collect: candidate id out of range");
  }
  common::maybe_parallel_for(
      pool_, candidates_.size(), params_.parallel_threshold,
      params_.parallel_grain, [&](std::size_t begin, std::size_t end) {
        std::uint64_t delivered = 0;
        std::uint64_t lost = 0;
        for (std::size_t i = begin; i < end; ++i) {
          collect_one(slots_[i], nodes[candidates_[i]], now, delivered, lost);
        }
        samples_delivered_.fetch_add(delivered, std::memory_order_relaxed);
        samples_lost_.fetch_add(lost, std::memory_order_relaxed);
      });
  last_manager_utilization_ =
      cost_model_.cpu_utilization(candidates_.size(), monitored_jobs,
                                  cycle_period_);
}

std::optional<NodeSample> Collector::latest(hw::NodeId id) const {
  const auto* h = history(id);
  if (h == nullptr || h->empty()) return std::nullopt;
  return h->back();
}

std::optional<NodeSample> Collector::previous(hw::NodeId id) const {
  const auto* h = history(id);
  if (h == nullptr || h->size() < 2) return std::nullopt;
  return (*h)[h->size() - 2];
}

const common::RingBuffer<NodeSample>* Collector::history(hw::NodeId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) return nullptr;
  return &slots_[slot].history;
}

Watts Collector::estimated_candidate_power() const {
  Watts total{0.0};
  for (const hw::NodeId id : candidates_) {
    if (const auto s = latest(id)) total += s->estimated_power;
  }
  return total;
}

}  // namespace pcap::telemetry
