// Builds experiment configurations from INI-style config files, so runs
// can be described declaratively (see examples/configs/*.ini and the
// pcapsim driver).
//
// Recognised keys (all optional; defaults come from paper_scenario()):
//
//   [cluster]
//   nodes = 128                 node count (homogeneous Tianhe boards)
//   seed = 42
//   tick_s = 1.0                simulation step
//   control_period_s = 4.0      manager cycle
//   npb_class = D               C or D
//   max_procs_per_node = 3      rank placement width
//   privileged_fraction = 0.0   fraction of jobs marked privileged
//   idle_utilization = 0.02
//   utilization_noise = 0.02
//   ramp_tau_s = 45
//
//   [manager]
//   policy = mpc                none|mpc|mpc-c|lpc|lpc-c|bfp|hri|hri-c|
//                               uniform|sla|feedback
//   candidate_count = -1        -1 = all controllable nodes
//   dynamic_candidates = false  use the §III.A selection algorithm
//   tg_cycles = 10              steady-green timer T_g
//   red_margin = 0.07
//   yellow_margin = 0.16
//   adjust_period_cycles = 3600 t_p
//   feedback_gain = 1.0
//
//   [experiment]
//   training_h = 4
//   measured_h = 12
//   calibration_h = 2
//   provision_w = 0             explicit P_Max (0 = calibrate)
//   provision_fraction = 0.84   calibration factor
//
//   [telemetry]
//   loss_rate = 0.0             agent-report loss probability
//   delay_cycles = 0            agent-report delivery delay
//   agent_dropout_rate = 0.0    per-cycle P(healthy agent stops reporting)
//   agent_recovery_rate = 0.25  per-cycle P(down agent restarts)
//   crash_rate = 0.0            per-cycle P(node crashes)
//   crash_duration_cycles = 60  length of a crash window
//   corruption_rate = 0.0       P(delivered report has a garbage power)
//   max_sample_age_cycles = 5   older views are stale (fallback estimate)
//   stale_margin = 0.10         stale power = last known × (1 + margin)
#pragma once

#include <string>

#include "cluster/experiment.hpp"
#include "common/config.hpp"

namespace pcap::cluster {

/// Applies config keys on top of `base` (typically paper_scenario()).
/// Unknown keys are rejected with std::runtime_error so typos do not
/// silently produce default-valued experiments.
ExperimentConfig apply_config(ExperimentConfig base,
                              const common::Config& cfg);

/// Convenience: paper_scenario() + apply_config(load_file(path)).
ExperimentConfig experiment_from_file(const std::string& path);

}  // namespace pcap::cluster
