#include "cluster/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "hw/node_spec.hpp"
#include "workload/phase.hpp"

namespace pcap::cluster {

using workload::Job;
using workload::JobId;
using workload::JobState;

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      meter_(config_.meter, rng_.fork("meter")),
      watchdog_(std::make_unique<hw::FailsafeWatchdog>(config_.watchdog)),
      manager_(std::make_unique<power::NoCappingManager>()) {
  if (config_.tick <= Seconds{0.0}) {
    throw std::invalid_argument("Cluster: non-positive tick");
  }
  if (config_.control_period < config_.tick) {
    throw std::invalid_argument("Cluster: control period shorter than tick");
  }
  if (config_.util_refresh_ticks < 1) {
    throw std::invalid_argument("Cluster: util_refresh_ticks must be >= 1");
  }
  if (config_.util_snap_eps < 0.0) {
    throw std::invalid_argument("Cluster: negative util_snap_eps");
  }
  if (config_.parallel_grain == 0) config_.parallel_grain = 1;
  control_every_ = static_cast<std::uint64_t>(
      std::llround(config_.control_period.value() / config_.tick.value()));
  if (control_every_ == 0) control_every_ = 1;
  refresh_every_ = config_.util_refresh_ticks;
  noise_on_ = config_.utilization_noise_sigma > 0.0;
  fabric_enabled_ = config_.interconnect.enabled;

  // Build the node population: SoA pool first, then the Node views.
  std::vector<hw::NodeSpecPtr> specs = config_.node_specs;
  if (specs.empty()) {
    const hw::NodeSpecPtr spec =
        config_.spec ? config_.spec : hw::tianhe1a_node_spec();
    specs.assign(config_.num_nodes, spec);
  }
  if (specs.empty()) throw std::invalid_argument("Cluster: no nodes");
  const std::size_t n = specs.size();
  node_pool_ = std::make_unique<hw::NodeStatePool>(n);
  node_pool_->enable_change_tracking();
  common::Rng variation_rng = rng_.fork("variation");
  common::Rng noise_root = rng_.fork("util-noise");
  nodes_.reserve(n);
  noise_rngs_.reserve(n);
  std::vector<int> cores;
  cores.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.emplace_back(static_cast<hw::NodeId>(i), specs[i], node_pool_.get(),
                        static_cast<std::uint32_t>(i), &variation_rng);
    cores.push_back(specs[i]->total_cores());
    util_noise_.emplace_back(0.0, config_.utilization_noise_sigma,
                             config_.utilization_noise_tau_s, 0.0);
    smoothed_util_.push_back(config_.idle_utilization);
    noise_rngs_.push_back(noise_root.stream(i));
  }

  // Sweep pool: only populations worth fanning out ever spawn workers.
  if (config_.worker_threads != 1 && n >= config_.parallel_node_threshold) {
    pool_ = std::make_unique<common::ThreadPool>(config_.worker_threads);
  }
  manager_->set_thread_pool(pool_.get());

  sched_ = std::make_unique<sched::Scheduler>(cores, config_.scheduler,
                                              rng_.fork("alloc"));
  fabric_ = std::make_unique<interconnect::Interconnect>(config_.interconnect,
                                                         n);
  delivered_.assign(n, 1.0);
  offered_.assign(n, 0.0);
  last_refresh_tick_.assign(n, -1);
  util_active_.assign(n, 1);
  block_active_.assign((n + kBlock - 1) / kBlock, 0);
  for (std::size_t i = 0; i < n; ++i) ++block_active_[i / kBlock];
  forced_mark_.assign(n, 0);
  owner_slot_.assign(n, kNoJob);
  node_procs_.assign(n, 0.0);
  accounted_.reset(n);

  // Ramp decay table: d^k for k staircase steps at once. ramp_tau <= 0
  // means "snap within one tick" (legacy ramp = 1), i.e. d = 0 — with
  // d^0 = 1 pinned so a zero-step advance is the identity.
  const double d =
      config_.utilization_ramp_tau_s > 0.0
          ? std::exp(-config_.tick.value() / config_.utilization_ramp_tau_s)
          : 0.0;
  ramp_decay_pow_.assign(static_cast<std::size_t>(refresh_every_) + 1, 1.0);
  for (std::size_t k = 1; k < ramp_decay_pow_.size(); ++k) {
    ramp_decay_pow_[k] = ramp_decay_pow_[k - 1] * d;
  }

  // OU k-step coefficient table (every process shares sigma/tau, so one
  // table serves all nodes). A staircase gap can only exceed R while a
  // node is quiescent, which requires noise off — so with noise on, every
  // transition is a table hit; advance_util_to still falls back to the
  // exact step() for defensive completeness.
  if (noise_on_ && !util_noise_.empty()) {
    ou_step_.resize(static_cast<std::size_t>(refresh_every_) + 1);
    for (std::size_t k = 1; k < ou_step_.size(); ++k) {
      ou_step_[k] = util_noise_[0].coeffs(static_cast<double>(k) *
                                          config_.tick.value());
    }
  }

  // Initial operating state: every node idles at the construction instant.
  // The first staircase rotation (within R ticks) layers ramp + noise on
  // top; until then the ledger carries this clean idle draw.
  targets_.assign(n, UsageTarget{});
  for (std::size_t i = 0; i < n; ++i) {
    targets_[i].cpu = config_.idle_utilization;
    const hw::NodeSpec& spec = *specs[i];
    node_pool_->set_static_op(i, spec.mem_total.value() * 0.02, 0.0,
                              config_.tick.value(), spec.nic_bandwidth);
    node_pool_->set_cpu_utilization(i, config_.idle_utilization);
    accounted_.set_leaf(i, node_pool_->true_power(i).value());
  }

  if (config_.auto_generate_jobs) {
    if (config_.app_suite.empty()) {
      generator_ = workload::JobGenerator::paper_default(
          rng_.fork("jobs"), sched_->max_job_width(), config_.npb_class,
          config_.privileged_job_fraction);
    } else {
      generator_ = workload::JobGenerator(
          config_.app_suite, workload::npb_nprocs_choices(),
          rng_.fork("jobs"), sched_->max_job_width(),
          config_.privileged_job_fraction);
    }
  }

  // Observability: the cluster owns the registry; the engine publishes
  // into it, managers bind into it (set_manager), and it freezes at the
  // first tick so no series creation ever reaches the hot path.
  metrics_.set_timing_enabled(config_.obs_timing);
  sim_.attach_metrics(metrics_);
  power_gauge_ = metrics_.gauge("pcap_cluster_power_watts",
                                "Wall-socket power at the last tick");
  running_gauge_ = metrics_.gauge("pcap_cluster_running_jobs",
                                  "Jobs currently running");
  queued_gauge_ = metrics_.gauge("pcap_cluster_queued_jobs",
                                 "Jobs waiting in the queue");
  pool_depth_gauge_ = metrics_.gauge("pcap_pool_queue_depth",
                                     "Worker-pool tasks queued at tick end");
  refreshed_gauge_ =
      metrics_.gauge("pcap_cluster_nodes_refreshed",
                     "Due-set size of the last tick's refresh pass");
  watchdog_engaged_gauge_ =
      metrics_.gauge("pcap_watchdog_engaged_nodes",
                     "Nodes currently holding their failsafe level");
  watchdog_pending_gauge_ =
      metrics_.gauge("pcap_watchdog_pending_adoptions",
                     "Failsafe level changes the controller has not yet "
                     "adopted");
  watchdog_engagements_counter_ =
      metrics_.counter("pcap_watchdog_engagements_total",
                       "Nodes that entered failsafe after controller silence");
  watchdog_transitions_counter_ =
      metrics_.counter("pcap_watchdog_failsafe_transitions_total",
                       "DVFS steps applied autonomously by node watchdogs");
  ticks_counter_ = metrics_.counter("pcap_cluster_ticks_total",
                                    "Simulation ticks executed");
  jobs_finished_counter_ = metrics_.counter("pcap_cluster_jobs_finished_total",
                                            "Jobs run to completion");
  node_refreshes_counter_ =
      metrics_.counter("pcap_cluster_node_refreshes_total",
                       "Node refresh evaluations (due-set visits)");
  const std::string span = "pcap_cycle_phase_seconds";
  const std::string span_help = "Wall-clock time per control-loop phase";
  tick_span_.bind(metrics_, span, span_help, "phase=\"tick\"");
  node_sweep_span_.bind(metrics_, span, span_help, "phase=\"node_sweep\"");
  launch_span_.bind(metrics_, span, span_help, "phase=\"launch\"");
  jobs_span_.bind(metrics_, span, span_help, "phase=\"jobs\"");
  manager_->bind_metrics(metrics_);
  manager_->set_watchdog(watchdog_.get());

  // The per-tick process drives everything.
  sim_.every(config_.tick, config_.tick, [this](Seconds) { tick(); });
}

void Cluster::set_manager(std::unique_ptr<power::PowerManagerBase> manager) {
  if (!manager) throw std::invalid_argument("Cluster: null manager");
  manager_ = std::move(manager);
  manager_->set_thread_pool(pool_.get());
  // Registration is idempotent per key, so re-installing the same manager
  // type against the (possibly frozen) registry reuses the existing slots;
  // only a new manager type after the first tick would add series, and
  // the freeze turns that into a loud error rather than a hot-path alloc.
  manager_->bind_metrics(metrics_);
  manager_->set_watchdog(watchdog_.get());
}

void Cluster::submit(Job job) {
  generated_trace_.add(workload::TraceEntry{
      .submit_time_s = job.submit_time().value(),
      .app_name = job.app().name,
      .nprocs = job.nprocs()});
  sched_->submit(std::move(job));
}

void Cluster::load_trace(const workload::WorkloadTrace& trace) {
  for (Job& job : trace.materialize(config_.npb_class)) {
    const Seconds at = job.submit_time();
    auto shared = std::make_shared<Job>(std::move(job));
    sim_.schedule_at(at, [this, shared]() mutable {
      submit(std::move(*shared));
    });
  }
}

void Cluster::run(Seconds duration) {
  sim_.run_until(sim_.now() + duration);
}

std::vector<hw::NodeId> Cluster::controllable_nodes() const {
  std::vector<hw::NodeId> out;
  for (const hw::Node& n : nodes_) {
    if (n.controllable()) out.push_back(n.id());
  }
  return out;
}

Watts Cluster::theoretical_peak() const {
  Watts total{0.0};
  for (const hw::Node& n : nodes_) {
    total += n.spec().power_model.theoretical_max();
  }
  return total / config_.meter.psu_efficiency;
}

void Cluster::start_recording() {
  recording_ = true;
  if (!recorder_) {
    recorder_ = std::make_unique<metrics::TraceRecorder>(config_.tick);
  }
}

const metrics::TraceRecorder& Cluster::recorder() const {
  if (!recorder_) throw std::logic_error("Cluster: recording never started");
  return *recorder_;
}

void Cluster::clear_recording() {
  if (recorder_) *recorder_ = metrics::TraceRecorder(config_.tick);
  finished_records_.clear();
}

void Cluster::ensure_queue_nonempty() {
  if (!generator_) return;
  // "An evaluation job is added to the job queue whenever the queue is
  // empty" (§V.C).
  if (sched_->queue_length() == 0) {
    submit(generator_->next(sim_.now()));
  }
}

void Cluster::advance_util_to(std::size_t i, std::int64_t tk) {
  const std::int64_t k = tk - last_refresh_tick_[i];
  if (k <= 0) return;
  last_refresh_tick_[i] = tk;
  const double target = targets_[i].cpu;
  double s = smoothed_util_[i];
  if (s != target) {
    // k > R only happens when reinstalling a quiescent node, and a node
    // only quiesces converged (s == target) — so this clamp never touches
    // a live trajectory.
    const auto ki = static_cast<std::size_t>(
        std::min<std::int64_t>(k, refresh_every_));
    s = target + (s - target) * ramp_decay_pow_[ki];
    if (std::abs(s - target) <= config_.util_snap_eps) s = target;
    smoothed_util_[i] = s;
  }
  double u = s;
  if (noise_on_ && targets_[i].busy) {
    // One exact k-step OU transition — same law as k per-tick steps,
    // drawn from node i's own stream, so the draw count depends only on
    // this node's refresh history, never on sweep order or mode. Noise
    // rides on *busy* nodes only: the OU models workload-phase
    // fluctuation, and a ±sigma band on an idle node's ~2 % utilisation
    // is unphysical (it clips at zero) — idle nodes instead converge and
    // quiesce, which is what makes a mostly-idle machine tick at
    // O(busy/R) instead of O(N/R). A busy node is always on the
    // staircase, so k <= R here and the table covers every gap; step()
    // recomputes the same exp/sqrt, so both branches agree bitwise.
    u += k <= refresh_every_
             ? util_noise_[i].step_with(ou_step_[static_cast<std::size_t>(k)],
                                        noise_rngs_[i])
             : util_noise_[i].step(
                   static_cast<double>(k) * config_.tick.value(),
                   noise_rngs_[i]);
  } else if (s == target && util_active_[i] == 1) {
    // Converged and noiseless (idle, or sigma == 0): nothing will ever
    // move this utilisation again until an install — request quiescence
    // (committed serially).
    util_active_[i] = 2;
  }
  node_pool_->set_cpu_utilization(i, std::clamp(u, 0.0, 1.0));
}

void Cluster::install_target(std::size_t i, std::int64_t tk, double now_s) {
  // Order matters for exactness: heat through the previous tick boundary
  // at the old power, walk the ramp through tick tk-1 under the old
  // target, and only then let the new target land (its first ramp step is
  // this tick's refresh — exactly when the legacy per-tick sweep applied
  // a fresh phase's target for the first time).
  node_pool_->advance_temperature_to(i, now_s - config_.tick.value());
  advance_util_to(i, tk - 1);

  UsageTarget t;
  const std::uint32_t owner = owner_slot_[i];
  if (owner != kNoJob) {
    const workload::Phase& phase = *phases_scratch_[owner];
    t.cpu = phase.cpu_utilization;
    t.mem_fraction = phase.mem_fraction;
    t.nic_bytes = phase.comm_bytes_per_proc_per_s * node_procs_[i] *
                  config_.tick.value();
    t.busy = true;
  } else {
    t.cpu = config_.idle_utilization;
  }
  targets_[i] = t;
  offered_[i] = t.nic_bytes;
  const hw::NodeSpec& spec = node_pool_->spec(i);
  node_pool_->set_static_op(i, spec.mem_total.value() * t.mem_fraction,
                            t.nic_bytes, config_.tick.value(),
                            spec.nic_bandwidth);
  node_pool_->set_busy(i, t.busy);

  if (util_active_[i] == 0) {
    util_active_[i] = 1;
    ++block_active_[i / kBlock];
  } else {
    util_active_[i] = 1;  // cancel any in-flight deactivation request
  }
  if ((forced_mark_[i] & 1) == 0) {
    if (forced_mark_[i] == 0) {
      forced_list_.push_back(static_cast<std::uint32_t>(i));
    }
    forced_mark_[i] |= 1;
  }
}

void Cluster::drain_level_changes() {
  std::vector<std::uint32_t>& changed = node_pool_->changed_slots();
  if (changed.empty()) return;
  for (const std::uint32_t i : changed) {
    if (forced_mark_[i] == 0) forced_list_.push_back(i);
    forced_mark_[i] |= 2;
    // A level change moves relative speed, so the hosted job's bottleneck
    // rate must be recomputed.
    const std::uint32_t owner = owner_slot_[i];
    if (owner != kNoJob) job_rate_dirty_[owner] = 1;
  }
  node_pool_->clear_changed();
}

void Cluster::drain_pending_installs(std::int64_t tk, double now_s) {
  if (pending_installs_.empty()) return;
  for (const std::uint32_t i : pending_installs_) {
    install_target(i, tk, now_s);
  }
  pending_installs_.clear();
}

void Cluster::launch_jobs(Seconds now, std::int64_t tk) {
  const std::vector<JobId> started = sched_->try_launch(now);
  for (const JobId id : started) {
    Job* job = sched_->find(id);
    assert(job != nullptr);
    const auto j = static_cast<std::uint32_t>(jobs_scratch_.size());
    jobs_scratch_.push_back(job);
    phases_scratch_.push_back(&job->current_phase());
    job_rate_.push_back(1.0);
    job_rate_dirty_.push_back(1);
    job_energy_acc_.push_back(0.0);
    const std::vector<hw::NodeId>& members = job->nodes();
    double power = 0.0;
    for (std::size_t k = 0; k < members.size(); ++k) {
      const hw::NodeId nid = members[k];
      owner_slot_[nid] = j;
      node_procs_[nid] = static_cast<double>(job->placement()[k]);
      // Pre-install ledger values: this tick's refresh pass moves both
      // the leaves and (through the serial fold's deltas) this sum to the
      // phase's real draw, keeping job power ≡ Σ member leaves.
      power += accounted_.leaf(nid);
    }
    job_power_w_.push_back(power);
    // Launch installs take effect this very tick (the legacy sweep set a
    // just-started job's targets in the same tick's pass 1).
    for (const hw::NodeId nid : members) {
      install_target(nid, tk, now.value());
    }
  }
  assert(jobs_scratch_.size() == sched_->running_jobs().size());
}

void Cluster::advance_jobs(Seconds now, Seconds dt) {
  const std::size_t jobs = jobs_scratch_.size();
  job_done_.assign(jobs, 0);
  for (std::size_t j = 0; j < jobs; ++j) {
    Job* job = jobs_scratch_[j];
    const workload::Phase& phase = *phases_scratch_[j];
    if (job_rate_dirty_[j] != 0 || fabric_enabled_) {
      // Bottleneck rate over the members (§IV.A): the slowest node gates
      // progress. With the fabric disabled delivered ≡ 1 and the network
      // factor is exactly 1, so the rate only moves on phase changes and
      // member level changes — which is when the dirty bit is set.
      double rate = 1.0;
      if (fabric_enabled_) {
        for (const hw::NodeId nid : job->nodes()) {
          const double freq_rate = workload::frequency_progress_rate(
              phase.frequency_sensitivity, node_pool_->relative_speed(nid));
          const double net_rate = workload::network_progress_rate(
              phase.network_sensitivity, delivered_[nid]);
          rate = std::min(rate, freq_rate * net_rate);
        }
      } else {
        for (const hw::NodeId nid : job->nodes()) {
          rate = std::min(rate,
                          workload::frequency_progress_rate(
                              phase.frequency_sensitivity,
                              node_pool_->relative_speed(nid)));
        }
      }
      job_rate_[j] = rate;
      job_rate_dirty_[j] = 0;
    }
    // A job launched this very tick has run for zero time; it only sets
    // its nodes' usage targets and starts progressing next tick.
    if (job->start_time() >= now) continue;
    if (job->advance(dt, job_rate_[j], now)) {
      job_done_[j] = 1;
      continue;
    }
    if (&job->current_phase() != phases_scratch_[j]) {
      // Phase crossed during this advance. The new phase's targets land
      // next tick (legacy pass 1 read the phase at the tick after the
      // crossing); a multi-phase skip installs only the final phase, just
      // as the per-tick sweep only ever saw the phase du jour.
      phases_scratch_[j] = &job->current_phase();
      job_rate_dirty_[j] = 1;
      for (const hw::NodeId nid : job->nodes()) {
        pending_installs_.push_back(static_cast<std::uint32_t>(nid));
      }
    }
  }
}

void Cluster::retire_finished() {
  const std::vector<JobId>& running = sched_->running_jobs();
  const std::size_t jobs = jobs_scratch_.size();
  assert(jobs == running.size());
  finished_scratch_.clear();
  finished_energy_scratch_.clear();
  std::size_t write = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    if (job_done_[j] != 0) {
      finished_scratch_.push_back(running[j]);
      // Flushed energy excludes the finishing tick (accumulation runs
      // after retirement), matching the legacy attribution window.
      finished_energy_scratch_.push_back(job_energy_acc_[j]);
      for (const hw::NodeId nid : jobs_scratch_[j]->nodes()) {
        owner_slot_[nid] = kNoJob;
        node_procs_[nid] = 0.0;
        // Freed nodes fall back to idle starting next tick (the legacy
        // sweep's idle reset also only showed at the tick after retire).
        pending_installs_.push_back(static_cast<std::uint32_t>(nid));
      }
      continue;
    }
    if (write != j) {
      jobs_scratch_[write] = jobs_scratch_[j];
      phases_scratch_[write] = phases_scratch_[j];
      job_power_w_[write] = job_power_w_[j];
      job_energy_acc_[write] = job_energy_acc_[j];
      job_rate_[write] = job_rate_[j];
      job_rate_dirty_[write] = job_rate_dirty_[j];
      for (const hw::NodeId nid : jobs_scratch_[write]->nodes()) {
        owner_slot_[nid] = static_cast<std::uint32_t>(write);
      }
    }
    ++write;
  }
  jobs_scratch_.resize(write);
  phases_scratch_.resize(write);
  job_power_w_.resize(write);
  job_energy_acc_.resize(write);
  job_rate_.resize(write);
  job_rate_dirty_.resize(write);

  metrics_.add(jobs_finished_counter_, finished_scratch_.size());
  for (std::size_t f = 0; f < finished_scratch_.size(); ++f) {
    const JobId jid = finished_scratch_[f];
    sched_->on_job_finished(jid);
    if (recording_) {
      metrics::JobRecord rec = metrics::make_record(*sched_->find(jid));
      rec.energy_j = finished_energy_scratch_[f];
      finished_records_.push_back(std::move(rec));
    }
  }
}

void Cluster::build_due_set(std::int64_t tk) {
  due_scratch_.clear();
  std::sort(forced_list_.begin(), forced_list_.end());
  const std::size_t n = nodes_.size();
  const std::size_t forced = forced_list_.size();

  // Each due entry carries its node id in the low 31 bits and the
  // "utilisation refresh due" predicate in the top bit, evaluated here
  // once — the refresh pass just decodes it instead of recomputing the
  // grid/forced predicate per node (kUtilDue clear = thermal/power-only
  // wake, e.g. a DVFS level change).
  constexpr std::uint32_t kUtilDue = 0x80000000u;

  if (!config_.event_driven_ticks) {
    // Reference mode: scan every node, applying the *same* per-node
    // predicates the event-driven path uses. The due set — and therefore
    // every downstream draw, leaf write and fold — is bit-identical; only
    // the cost of discovering it differs. CI's A/B gate runs both.
    for (std::size_t i = 0; i < n; ++i) {
      const bool grid_due =
          (tk + static_cast<std::int64_t>(i / kBlock)) % refresh_every_ == 0;
      const bool util_due = (forced_mark_[i] & 1) != 0 ||
                            (grid_due && util_active_[i] != 0);
      if (forced_mark_[i] != 0 || (grid_due && util_active_[i] != 0)) {
        due_scratch_.push_back(static_cast<std::uint32_t>(i) |
                               (util_due ? kUtilDue : 0u));
      }
    }
    return;
  }

  // Event-driven mode: ascending two-pointer merge of (a) the awake nodes
  // of the staircase blocks due this tick and (b) the sorted forced list
  // (installs + level changes). Blocks with no awake node are skipped
  // whole — that skip is the entire O(active) claim.
  std::size_t fi = 0;
  const std::size_t nblocks = block_active_.size();
  for (std::size_t b = 0; b < nblocks; ++b) {
    if ((tk + static_cast<std::int64_t>(b)) % refresh_every_ != 0 ||
        block_active_[b] == 0) {
      continue;
    }
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(n, lo + kBlock);
    while (fi < forced && forced_list_[fi] < lo) {
      const std::uint32_t f = forced_list_[fi++];
      due_scratch_.push_back(f | ((forced_mark_[f] & 1) != 0 ? kUtilDue : 0u));
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const bool forced_here = fi < forced && forced_list_[fi] == i;
      if (forced_here) ++fi;
      if (forced_here || util_active_[i] != 0) {
        // In a due block grid_due is true, so the utilisation predicate
        // reduces to: forced-install bit or awake on the grid.
        const bool util_due =
            (forced_mark_[i] & 1) != 0 || util_active_[i] != 0;
        due_scratch_.push_back(static_cast<std::uint32_t>(i) |
                               (util_due ? kUtilDue : 0u));
      }
    }
  }
  while (fi < forced) {
    const std::uint32_t f = forced_list_[fi++];
    due_scratch_.push_back(f | ((forced_mark_[f] & 1) != 0 ? kUtilDue : 0u));
  }
}

void Cluster::refresh_due_nodes(std::int64_t tk, double now_s, double dt_s) {
  const double prev_s = now_s - dt_s;
  const std::size_t due = due_scratch_.size();

  // Same criterion maybe_parallel_for applies: below it the sweep runs
  // inline, so fuse per-slot work and the ledger fold into one pass over
  // the due list instead of touching every slot's state twice.
  const bool fan_out = pool_ != nullptr &&
                       due >= config_.parallel_node_threshold &&
                       due >= 2 * config_.parallel_grain;

  if (fan_out) {
    // Phase A — per-slot state only, so the due list shards freely:
    // thermal fast-forward through the previous tick boundary at the old
    // power, closed-form utilisation staircase where the tag says so,
    // then re-evaluate the slot's true power into its memo cache.
    common::maybe_parallel_for(
        pool_.get(), due, config_.parallel_node_threshold,
        config_.parallel_grain, [&](std::size_t begin, std::size_t end) {
          for (std::size_t d = begin; d < end; ++d) {
            const std::uint32_t e = due_scratch_[d];
            const std::uint32_t i = e & 0x7fffffffu;
            node_pool_->advance_temperature_to(i, prev_s);
            if ((e & 0x80000000u) != 0) advance_util_to(i, tk);
            // Populate the slot's power memo from the shard; the serial
            // fold below reads the cached value.
            (void)node_pool_->true_power(i);
          }
        });

    // Phase B — serial fold in ascending node order: commit quiescence
    // requests, push changed powers into the ledger, and stream the
    // deltas into the owning jobs' power sums. Everything order-sensitive
    // lives here, which is what keeps worker counts out of the results.
    for (std::size_t d = 0; d < due; ++d) {
      const std::uint32_t i = due_scratch_[d] & 0x7fffffffu;
      if (util_active_[i] == 2) {
        util_active_[i] = 0;
        --block_active_[i / kBlock];
      }
      const double p = node_pool_->true_power(i).value();
      const double old = accounted_.leaf(i);
      if (p != old) {
        accounted_.set_leaf(i, p);
        const std::uint32_t owner = owner_slot_[i];
        if (owner != kNoJob) job_power_w_[owner] += p - old;
      }
    }
  } else {
    // Fused serial pass — per-node work is independent and the fold is
    // ascending either way, so this is the two-phase loop with the
    // intermediate pass over due_scratch_ deleted, bit for bit.
    for (std::size_t d = 0; d < due; ++d) {
      const std::uint32_t e = due_scratch_[d];
      const std::uint32_t i = e & 0x7fffffffu;
      node_pool_->advance_temperature_to(i, prev_s);
      if ((e & 0x80000000u) != 0) advance_util_to(i, tk);
      if (util_active_[i] == 2) {
        util_active_[i] = 0;
        --block_active_[i / kBlock];
      }
      const double p = node_pool_->true_power(i).value();
      const double old = accounted_.leaf(i);
      if (p != old) {
        accounted_.set_leaf(i, p);
        const std::uint32_t owner = owner_slot_[i];
        if (owner != kNoJob) job_power_w_[owner] += p - old;
      }
    }
  }

  for (const std::uint32_t i : forced_list_) forced_mark_[i] = 0;
  forced_list_.clear();
  last_refreshed_ = due;
}

void Cluster::tick() {
  if (!metrics_.frozen()) metrics_.freeze();
  const obs::SpanTimer::Scope tick_scope = tick_span_.start();
  const Seconds dt = config_.tick;
  const Seconds now = sim_.now();
  const auto tk = static_cast<std::int64_t>(ticks_);
  node_pool_->set_now(now.value());

  // Deferred effects of last tick's events: actuation-plane level changes
  // (manager cycle, reboots) wake their nodes for a power re-evaluation;
  // phase changes and retirements install their new targets now.
  drain_level_changes();
  drain_pending_installs(tk, now.value());

  // Launches take effect this very tick.
  {
    const obs::SpanTimer::Scope s2 = launch_span_.start();
  ensure_queue_nonempty();
  launch_jobs(now, tk);
  }

  // Interconnect contention: offered traffic is maintained by installs,
  // so the disabled default pays nothing and delivered_ stays pinned at
  // 1.0 (the value the rate math treats as an exact no-op).
  if (fabric_enabled_) {
    fabric_->delivered_fractions_into(offered_, dt, delivered_);
  }

  // Job progress at cached bottleneck rates, then retirement (serial, in
  // running order — records append deterministically).
  {
    const obs::SpanTimer::Scope s3 = jobs_span_.start();
  advance_jobs(now, dt);
  retire_finished();
  }

  // Node refresh pass over the due set.
  {
    const obs::SpanTimer::Scope sweep_scope = node_sweep_span_.start();
    build_due_set(tk);
    refresh_due_nodes(tk, now.value(), dt.value());
  }

  // Energy attribution (per-job E, ExD): job power sums are maintained by
  // the refresh fold, so a tick pays O(running jobs), not O(nodes).
  for (std::size_t j = 0; j < jobs_scratch_.size(); ++j) {
    job_energy_acc_[j] += job_power_w_[j] * dt.value();
  }

  // The ledger fold is a pure function of the leaves — refolded blocks
  // first, then one serial pass over block sums — so the meter reading is
  // identical whatever subset of nodes this tick actually touched.
  last_power_ = meter_.measure_sum(Watts{accounted_.total()});

  ++ticks_;
  const bool control_tick = ticks_ % control_every_ == 0;
  if (control_tick) {
    last_report_ = manager_->cycle(last_power_, nodes_, *sched_, now);
    // Node-local failsafes run after the controller had its chance to
    // talk: a cycle's heartbeats/deliveries land first, then silence is
    // judged. Level changes go through the tracked pool, so next tick's
    // drain_level_changes re-prices the affected nodes like any actuation.
    watchdog_->tick(nodes_);
  }

  // Publish cluster-level series — all pure array stores against frozen
  // slots, from the serial tail of the tick.
  metrics_.set_total(ticks_counter_, ticks_);
  metrics_.set(power_gauge_, last_power_.value());
  metrics_.set(running_gauge_, static_cast<double>(sched_->running_count()));
  metrics_.set(queued_gauge_, static_cast<double>(sched_->queue_length()));
  metrics_.set(pool_depth_gauge_,
               pool_ ? static_cast<double>(pool_->queue_depth()) : 0.0);
  metrics_.set(refreshed_gauge_, static_cast<double>(last_refreshed_));
  metrics_.add(node_refreshes_counter_, last_refreshed_);
  metrics_.set(watchdog_engaged_gauge_,
               static_cast<double>(watchdog_->engaged_count()));
  metrics_.set(watchdog_pending_gauge_,
               static_cast<double>(watchdog_->pending_count()));
  metrics_.set_total(watchdog_engagements_counter_, watchdog_->engagements());
  metrics_.set_total(watchdog_transitions_counter_,
                     watchdog_->failsafe_transitions());

  if (recording_) {
    metrics::CyclePoint p;
    p.time_s = now.value();
    p.power_w = last_power_.value();
    p.p_low_w = last_report_.p_low.value();
    p.p_high_w = last_report_.p_high.value();
    p.state = static_cast<int>(last_report_.state);
    p.running_jobs = sched_->running_count();
    p.targets = control_tick ? last_report_.targets : 0;
    p.transitions = control_tick ? last_report_.transitions : 0;
    p.manager_utilization = last_report_.manager_utilization;
    p.stale_nodes = control_tick ? last_report_.stale_nodes : 0;
    p.fallback_nodes = control_tick ? last_report_.fallback_nodes : 0;
    p.skipped_targets = control_tick ? last_report_.skipped_targets : 0;
    p.retries = control_tick ? last_report_.retries : 0;
    p.divergences = control_tick ? last_report_.divergences : 0;
    p.heals = control_tick ? last_report_.heals : 0;
    recorder_->record(p);
  }
}

}  // namespace pcap::cluster
