#include "cluster/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "hw/node_spec.hpp"
#include "workload/phase.hpp"

namespace pcap::cluster {

using workload::Job;
using workload::JobId;
using workload::JobState;

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      meter_(config_.meter, rng_.fork("meter")),
      manager_(std::make_unique<power::NoCappingManager>()) {
  if (config_.tick <= Seconds{0.0}) {
    throw std::invalid_argument("Cluster: non-positive tick");
  }
  if (config_.control_period < config_.tick) {
    throw std::invalid_argument("Cluster: control period shorter than tick");
  }
  if (config_.parallel_grain == 0) config_.parallel_grain = 1;
  control_every_ = static_cast<std::uint64_t>(
      std::llround(config_.control_period.value() / config_.tick.value()));
  if (control_every_ == 0) control_every_ = 1;

  // Build the node population.
  std::vector<hw::NodeSpecPtr> specs = config_.node_specs;
  if (specs.empty()) {
    const hw::NodeSpecPtr spec =
        config_.spec ? config_.spec : hw::tianhe1a_node_spec();
    specs.assign(config_.num_nodes, spec);
  }
  if (specs.empty()) throw std::invalid_argument("Cluster: no nodes");
  common::Rng variation_rng = rng_.fork("variation");
  common::Rng noise_root = rng_.fork("util-noise");
  nodes_.reserve(specs.size());
  noise_rngs_.reserve(specs.size());
  std::vector<int> cores;
  cores.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    nodes_.emplace_back(static_cast<hw::NodeId>(i), specs[i], &variation_rng);
    cores.push_back(specs[i]->total_cores());
    util_noise_.emplace_back(0.0, config_.utilization_noise_sigma,
                             config_.utilization_noise_tau_s, 0.0);
    smoothed_util_.push_back(config_.idle_utilization);
    noise_rngs_.push_back(noise_root.stream(i));
  }

  // Sweep pool: only populations worth fanning out ever spawn workers.
  if (config_.worker_threads != 1 &&
      nodes_.size() >= config_.parallel_node_threshold) {
    pool_ = std::make_unique<common::ThreadPool>(config_.worker_threads);
  }
  manager_->set_thread_pool(pool_.get());

  sched_ = std::make_unique<sched::Scheduler>(cores, config_.scheduler,
                                              rng_.fork("alloc"));
  fabric_ = std::make_unique<interconnect::Interconnect>(config_.interconnect,
                                                         nodes_.size());
  delivered_.assign(nodes_.size(), 1.0);
  targets_.resize(nodes_.size());
  offered_.assign(nodes_.size(), 0.0);
  node_power_.assign(nodes_.size(), 0.0);
  if (config_.auto_generate_jobs) {
    if (config_.app_suite.empty()) {
      generator_ = workload::JobGenerator::paper_default(
          rng_.fork("jobs"), sched_->max_job_width(), config_.npb_class,
          config_.privileged_job_fraction);
    } else {
      generator_ = workload::JobGenerator(
          config_.app_suite, workload::npb_nprocs_choices(),
          rng_.fork("jobs"), sched_->max_job_width(),
          config_.privileged_job_fraction);
    }
  }

  // Observability: the cluster owns the registry; the engine publishes
  // into it, managers bind into it (set_manager), and it freezes at the
  // first tick so no series creation ever reaches the hot path.
  metrics_.set_timing_enabled(config_.obs_timing);
  sim_.attach_metrics(metrics_);
  power_gauge_ = metrics_.gauge("pcap_cluster_power_watts",
                                "Wall-socket power at the last tick");
  running_gauge_ = metrics_.gauge("pcap_cluster_running_jobs",
                                  "Jobs currently running");
  queued_gauge_ = metrics_.gauge("pcap_cluster_queued_jobs",
                                 "Jobs waiting in the queue");
  pool_depth_gauge_ = metrics_.gauge("pcap_pool_queue_depth",
                                     "Worker-pool tasks queued at tick end");
  ticks_counter_ = metrics_.counter("pcap_cluster_ticks_total",
                                    "Simulation ticks executed");
  jobs_finished_counter_ = metrics_.counter("pcap_cluster_jobs_finished_total",
                                            "Jobs run to completion");
  const std::string span = "pcap_cycle_phase_seconds";
  const std::string span_help = "Wall-clock time per control-loop phase";
  tick_span_.bind(metrics_, span, span_help, "phase=\"tick\"");
  node_sweep_span_.bind(metrics_, span, span_help, "phase=\"node_sweep\"");
  manager_->bind_metrics(metrics_);

  // The per-tick process drives everything.
  sim_.every(config_.tick, config_.tick, [this](Seconds) { tick(); });
}

void Cluster::set_manager(std::unique_ptr<power::PowerManagerBase> manager) {
  if (!manager) throw std::invalid_argument("Cluster: null manager");
  manager_ = std::move(manager);
  manager_->set_thread_pool(pool_.get());
  // Registration is idempotent per key, so re-installing the same manager
  // type against the (possibly frozen) registry reuses the existing slots;
  // only a new manager type after the first tick would add series, and
  // the freeze turns that into a loud error rather than a hot-path alloc.
  manager_->bind_metrics(metrics_);
}

void Cluster::submit(Job job) {
  generated_trace_.add(workload::TraceEntry{
      .submit_time_s = job.submit_time().value(),
      .app_name = job.app().name,
      .nprocs = job.nprocs()});
  sched_->submit(std::move(job));
}

void Cluster::load_trace(const workload::WorkloadTrace& trace) {
  for (Job& job : trace.materialize(config_.npb_class)) {
    const Seconds at = job.submit_time();
    auto shared = std::make_shared<Job>(std::move(job));
    sim_.schedule_at(at, [this, shared]() mutable {
      submit(std::move(*shared));
    });
  }
}

void Cluster::run(Seconds duration) {
  sim_.run_until(sim_.now() + duration);
}

std::vector<hw::NodeId> Cluster::controllable_nodes() const {
  std::vector<hw::NodeId> out;
  for (const hw::Node& n : nodes_) {
    if (n.controllable()) out.push_back(n.id());
  }
  return out;
}

Watts Cluster::theoretical_peak() const {
  Watts total{0.0};
  for (const hw::Node& n : nodes_) {
    total += n.spec().power_model.theoretical_max();
  }
  return total / config_.meter.psu_efficiency;
}

void Cluster::start_recording() {
  recording_ = true;
  if (!recorder_) {
    recorder_ = std::make_unique<metrics::TraceRecorder>(config_.tick);
  }
}

const metrics::TraceRecorder& Cluster::recorder() const {
  if (!recorder_) throw std::logic_error("Cluster: recording never started");
  return *recorder_;
}

void Cluster::clear_recording() {
  if (recorder_) *recorder_ = metrics::TraceRecorder(config_.tick);
  finished_records_.clear();
}

void Cluster::ensure_queue_nonempty() {
  if (!generator_) return;
  // "An evaluation job is added to the job queue whenever the queue is
  // empty" (§V.C).
  if (sched_->queue_length() == 0) {
    submit(generator_->next(sim_.now()));
  }
}

void Cluster::tick() {
  if (!metrics_.frozen()) metrics_.freeze();
  const obs::SpanTimer::Scope tick_scope = tick_span_.start();
  const Seconds dt = config_.tick;
  const Seconds now = sim_.now();

  ensure_queue_nonempty();
  sched_->try_launch(now);

  {
    const obs::SpanTimer::Scope sweep_scope = node_sweep_span_.start();
    refresh_workload(dt);
  }

  // One true-power evaluation per node per tick fills the ledger; the
  // energy attribution, the facility meter and the thermal step all read
  // it. The meter thereby reports the power that heated the machine over
  // the tick that just elapsed (temperatures entering the tick), which
  // keeps the three consumers mutually consistent.
  sweep(nodes_.size(), [&](std::size_t i) {
    node_power_[i] = nodes_[i].true_power().value();
  });

  // Attribute each busy node's energy to the job it runs (per-job E, ExD).
  // Partial sums go to per-job slots so the sweep shares no state; the
  // merge into the ledger stays serial, in running order. jobs_scratch_
  // was compacted to the surviving jobs when refresh_workload retired the
  // finished ones, so it aligns with running_jobs() here.
  const std::vector<JobId>& running = sched_->running_jobs();
  job_energy_scratch_.assign(running.size(), 0.0);
  sweep(running.size(), [&](std::size_t j) {
    const Job* job = jobs_scratch_[j];
    double joules = 0.0;
    for (const hw::NodeId nid : job->nodes()) {
      joules += node_power_[nid] * dt.value();
    }
    job_energy_scratch_[j] = joules;
  });
  for (std::size_t j = 0; j < running.size(); ++j) {
    job_energy_j_[running[j]] += job_energy_scratch_[j];
  }

  // Advance thermals off the ledger power. The meter folds the ledger
  // serially in node order, so the worker count cannot perturb the
  // reading.
  sweep(nodes_.size(), [&](std::size_t i) { nodes_[i].advance_thermal(dt); });
  double it_power = 0.0;
  for (const double p : node_power_) it_power += p;
  last_power_ = meter_.measure_sum(Watts{it_power});

  ++ticks_;
  const bool control_tick = ticks_ % control_every_ == 0;
  if (control_tick) {
    last_report_ = manager_->cycle(last_power_, nodes_, *sched_, now);
  }

  // Publish cluster-level series — all pure array stores against frozen
  // slots, from the serial tail of the tick.
  metrics_.set_total(ticks_counter_, ticks_);
  metrics_.set(power_gauge_, last_power_.value());
  metrics_.set(running_gauge_, static_cast<double>(sched_->running_count()));
  metrics_.set(queued_gauge_, static_cast<double>(sched_->queue_length()));
  metrics_.set(pool_depth_gauge_,
               pool_ ? static_cast<double>(pool_->queue_depth()) : 0.0);

  if (recording_) {
    metrics::CyclePoint p;
    p.time_s = now.value();
    p.power_w = last_power_.value();
    p.p_low_w = last_report_.p_low.value();
    p.p_high_w = last_report_.p_high.value();
    p.state = static_cast<int>(last_report_.state);
    p.running_jobs = sched_->running_count();
    p.targets = control_tick ? last_report_.targets : 0;
    p.transitions = control_tick ? last_report_.transitions : 0;
    p.manager_utilization = last_report_.manager_utilization;
    p.stale_nodes = control_tick ? last_report_.stale_nodes : 0;
    p.fallback_nodes = control_tick ? last_report_.fallback_nodes : 0;
    p.skipped_targets = control_tick ? last_report_.skipped_targets : 0;
    p.retries = control_tick ? last_report_.retries : 0;
    p.divergences = control_tick ? last_report_.divergences : 0;
    p.heals = control_tick ? last_report_.heals : 0;
    recorder_->record(p);
  }
}

void Cluster::refresh_workload(Seconds dt) {
  const Seconds now = sim_.now();

  // Reset every node's usage target (and offered traffic) to idle.
  sweep(nodes_.size(), [&](std::size_t i) {
    UsageTarget t;
    t.cpu = config_.idle_utilization;
    targets_[i] = t;
    offered_[i] = 0.0;
  });

  // Resolve each running job once. jobs_scratch_ mirrors running order
  // across ticks: launches append to the tail and retirement compacted the
  // survivors in place last tick, so only the tail needs a scheduler
  // lookup (Job slots in the scheduler's map are address-stable). The
  // phase, by contrast, moves with progress, so it resolves every tick.
  const std::vector<JobId>& running = sched_->running_jobs();
  const std::size_t known = jobs_scratch_.size();
  jobs_scratch_.resize(running.size());
  phases_scratch_.resize(running.size());
  for (std::size_t j = known; j < running.size(); ++j) {
    jobs_scratch_[j] = sched_->find(running[j]);
  }
  for (std::size_t j = 0; j < running.size(); ++j) {
    assert(jobs_scratch_[j] != nullptr && jobs_scratch_[j]->id() == running[j]);
    phases_scratch_[j] = &jobs_scratch_[j]->current_phase();
  }

  // Pass 1: set device-usage targets from each running job's phase.
  // Whole-node exclusive allocation means no two jobs share a node, so
  // jobs fan out with no write conflicts.
  sweep(running.size(), [&](std::size_t j) {
    const Job* job = jobs_scratch_[j];
    const workload::Phase& phase = *phases_scratch_[j];
    for (std::size_t k = 0; k < job->nodes().size(); ++k) {
      const hw::NodeId nid = job->nodes()[k];
      // Whole-node exclusive allocation: an allocated node runs the phase
      // at its stated intensity regardless of how many ranks landed on it
      // (memory-bandwidth-bound ranks saturate a node's power-relevant
      // resources well below full core occupancy).
      UsageTarget& t = targets_[nid];
      t.cpu = phase.cpu_utilization;
      t.mem_fraction = phase.mem_fraction;
      t.nic_bytes = phase.comm_bytes_per_proc_per_s *
                    static_cast<double>(job->placement()[k]) * dt.value();
      t.busy = true;
      offered_[nid] = t.nic_bytes;
    }
  });

  // Interconnect contention: per-node delivered traffic fractions.
  fabric_->delivered_fractions_into(offered_, dt, delivered_);

  // Pass 2: advance each job at its bottleneck rate — the slowest node
  // gates progress (§IV.A), accounting for both its DVFS level and the
  // network contention its traffic sees.
  job_done_.assign(running.size(), 0);
  sweep(running.size(), [&](std::size_t j) {
    Job* job = jobs_scratch_[j];
    // A job launched this very tick has run for zero time; it only sets
    // its nodes' usage targets and starts progressing next tick.
    const bool launched_now = job->start_time() >= now;
    const workload::Phase& phase = *phases_scratch_[j];

    double bottleneck = 1.0;
    for (const hw::NodeId nid : job->nodes()) {
      const double freq_rate = workload::frequency_progress_rate(
          phase.frequency_sensitivity, nodes_[nid].relative_speed());
      const double net_rate = workload::network_progress_rate(
          phase.network_sensitivity, delivered_[nid]);
      bottleneck = std::min(bottleneck, freq_rate * net_rate);
    }

    if (!launched_now && job->advance(dt, bottleneck, now)) {
      job_done_[j] = 1;
    }
  });

  // Apply targets: utilisation ramps towards the phase target (thousands
  // of MPI ranks do not switch phases within one sampling interval, so
  // aggregate power ramps rather than steps), then OU noise on top —
  // drawn from node i's own stream.
  const double ramp =
      config_.utilization_ramp_tau_s > 0.0
          ? 1.0 - std::exp(-dt.value() / config_.utilization_ramp_tau_s)
          : 1.0;
  sweep(nodes_.size(), [&](std::size_t i) {
    hw::Node& node = nodes_[i];
    const UsageTarget& t = targets_[i];
    smoothed_util_[i] += (t.cpu - smoothed_util_[i]) * ramp;
    const double noise = util_noise_[i].step(dt.value(), noise_rngs_[i]);
    hw::OperatingPoint op;
    op.cpu_utilization = std::clamp(smoothed_util_[i] + noise, 0.0, 1.0);
    op.mem_used = node.spec().mem_total * t.mem_fraction;
    op.mem_total = node.spec().mem_total;
    op.nic_bytes = Bytes{t.nic_bytes};
    op.tau = dt;
    op.nic_bandwidth = node.spec().nic_bandwidth;
    node.set_operating_point(op);
    node.set_busy(t.busy);
  });

  // Retire finished jobs — serial and in running order, so records append
  // deterministically whatever the sweep's worker count was. Survivors are
  // compacted in jobs_scratch_ (the scheduler's erase keeps order), which
  // the energy attribution in tick() indexes next.
  finished_scratch_.clear();
  std::size_t write = 0;
  for (std::size_t j = 0; j < running.size(); ++j) {
    if (job_done_[j] != 0) {
      finished_scratch_.push_back(running[j]);
    } else {
      jobs_scratch_[write++] = jobs_scratch_[j];
    }
  }
  jobs_scratch_.resize(write);
  metrics_.add(jobs_finished_counter_, finished_scratch_.size());
  for (const JobId jid : finished_scratch_) {
    sched_->on_job_finished(jid);
    if (recording_) {
      metrics::JobRecord rec = metrics::make_record(*sched_->find(jid));
      if (const auto it = job_energy_j_.find(jid);
          it != job_energy_j_.end()) {
        rec.energy_j = it->second;
      }
      finished_records_.push_back(std::move(rec));
    }
    job_energy_j_.erase(jid);
  }
}

}  // namespace pcap::cluster
