// Canned experiment scenarios.
#pragma once

#include "cluster/experiment.hpp"

namespace pcap::cluster {

/// The paper's testbed (§V.A): 128 Tianhe-1A nodes (2x X5670, 10-level
/// DVFS), NPB class-D workload generated whenever the queue drains,
/// 1 s sampling/control cycle. Training/measurement durations are set to
/// bench-friendly values (4 h / 12 h simulated); callers can override.
ExperimentConfig paper_scenario(std::uint64_t seed = 42);

/// A small, fast configuration for unit and integration tests: 16 nodes,
/// class-C workloads, minutes-long phases.
ExperimentConfig small_scenario(std::uint64_t seed = 7);

/// A mixed-hardware cluster: 2/3 Tianhe boards, 1/3 low-power nodes with a
/// different (4-level) ladder — exercising the heterogeneous claim of
/// §III.B property 1.
ExperimentConfig heterogeneous_scenario(std::uint64_t seed = 11);

/// small_scenario under a degraded management plane: lossy and delayed
/// transport, agents dropping out and recovering, occasional node crash
/// windows, and a sprinkle of corrupted power estimates. The provision is
/// calibrated tighter than usual so capping decisions keep mattering while
/// the controller is partially blind.
ExperimentConfig faulty_telemetry_scenario(std::uint64_t seed = 23);

/// small_scenario under a degraded *actuation* plane: 10% of level
/// commands vanish in transit, survivors land two control cycles late,
/// transitions occasionally fail or stall part-way, and nodes reboot —
/// resetting to their highest level mid-degradation. Telemetry stays
/// healthy: the point is isolating the command path, which the manager
/// must close the loop around with acks, retries and healing commands.
ExperimentConfig lossy_actuation_scenario(std::uint64_t seed = 31);

/// small_scenario under a failing *controller*: the whole control plane
/// blacks out for stretches of cycles, individual zone shards crash on
/// their own windows, and cycles occasionally stall. Node-local failsafe
/// watchdogs step silent nodes down to a safe level; when the controller
/// returns, its reconciler adopts the watchdog-imposed levels instead of
/// fighting them. Two zones, so zone-shard crashes and orphan-zone
/// accounting are exercised alongside root blackouts.
ExperimentConfig controller_outage_scenario(std::uint64_t seed = 47);

}  // namespace pcap::cluster
