#include "cluster/scenario.hpp"

#include "hw/node_spec.hpp"

namespace pcap::cluster {

ExperimentConfig paper_scenario(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.cluster.num_nodes = 128;
  cfg.cluster.spec = hw::tianhe1a_node_spec();
  cfg.cluster.tick = Seconds{1.0};
  cfg.cluster.seed = seed;
  cfg.cluster.npb_class = workload::NpbClass::kD;
  // Wide rank placement (3 ranks per dual-socket board): class-D NPB is
  // memory-bandwidth bound, so launchers spread ranks across boards.
  cfg.cluster.scheduler.max_procs_per_node = 3;
  cfg.manager = "mpc";
  cfg.candidate_count = -1;  // all 128 nodes
  cfg.training = Seconds{4 * 3600.0};
  cfg.measured = Seconds{12 * 3600.0};
  cfg.capping.steady_green_cycles = 10;  // T_g = 10 (§V.C)
  return cfg;
}

ExperimentConfig small_scenario(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.cluster.num_nodes = 16;
  cfg.cluster.spec = hw::tianhe1a_node_spec();
  cfg.cluster.tick = Seconds{1.0};
  cfg.cluster.seed = seed;
  cfg.cluster.npb_class = workload::NpbClass::kC;
  cfg.cluster.scheduler.max_procs_per_node = 3;
  cfg.manager = "mpc";
  cfg.candidate_count = -1;
  cfg.calibration_duration = Seconds{1800.0};
  cfg.training = Seconds{1800.0};
  cfg.measured = Seconds{3600.0};
  cfg.capping.steady_green_cycles = 10;
  return cfg;
}

ExperimentConfig faulty_telemetry_scenario(std::uint64_t seed) {
  ExperimentConfig cfg = small_scenario(seed);
  cfg.provision_fraction = 0.95;  // capped peak must stay under provision
  cfg.transport.loss_rate = 0.02;
  cfg.transport.delay_cycles = 1;
  cfg.faults.agent_dropout_rate = 0.01;
  cfg.faults.agent_recovery_rate = 0.2;
  cfg.faults.crash_rate = 1e-4;
  cfg.faults.crash_duration_cycles = 60;
  cfg.faults.corruption_rate = 0.005;
  cfg.max_sample_age_cycles = 5;
  cfg.stale_power_margin = 0.10;
  return cfg;
}

ExperimentConfig lossy_actuation_scenario(std::uint64_t seed) {
  ExperimentConfig cfg = small_scenario(seed);
  cfg.provision_fraction = 0.95;  // capped peak must stay under provision
  cfg.actuation.command_loss_rate = 0.10;
  cfg.actuation.delivery_delay_cycles = 2;
  cfg.actuation.transition_failure_rate = 0.02;
  cfg.actuation.partial_transition_rate = 0.05;
  cfg.actuation.reboot_rate = 2e-4;
  cfg.actuation.reboot_duration_cycles = 30;
  // First retry two cycles after issue: above the ack latency (2-cycle
  // delivery delay + 1 collection cycle) doubled backoff reaches quickly,
  // and the 5-retry budget spans a full reboot window before abandoning.
  cfg.reconciliation.max_retries = 5;
  cfg.reconciliation.retry_backoff_base_cycles = 2;
  cfg.reconciliation.retry_backoff_cap_cycles = 16;
  return cfg;
}

ExperimentConfig controller_outage_scenario(std::uint64_t seed) {
  ExperimentConfig cfg = small_scenario(seed);
  cfg.provision_fraction = 0.95;  // capped peak must stay under provision
  cfg.zone_count = 2;
  cfg.control.outage_rate = 2e-3;
  cfg.control.outage_duration_cycles = 40;
  cfg.control.zone_outage_rate = 2e-3;
  cfg.control.zone_outage_duration_cycles = 30;
  cfg.control.delay_rate = 5e-3;
  cfg.control.delay_max_cycles = 3;
  // Failsafe well inside an outage window: 8 silent cycles trip the node
  // to level 2 (a deep but not floor step on the 10-level ladder), so a
  // 40-cycle blackout spends most of its span capped.
  cfg.cluster.watchdog.timeout_cycles = 8;
  cfg.cluster.watchdog.safe_level = 2;
  return cfg;
}

ExperimentConfig heterogeneous_scenario(std::uint64_t seed) {
  ExperimentConfig cfg = small_scenario(seed);
  cfg.cluster.num_nodes = 0;
  cfg.cluster.node_specs.clear();
  for (int i = 0; i < 24; ++i) {
    cfg.cluster.node_specs.push_back(i % 3 == 2 ? hw::low_power_node_spec()
                                                : hw::tianhe1a_node_spec());
  }
  return cfg;
}

}  // namespace pcap::cluster
