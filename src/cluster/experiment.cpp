#include "cluster/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baselines/budget_manager.hpp"
#include "baselines/feedback_manager.hpp"
#include "baselines/sla_policy.hpp"
#include "baselines/uniform_policy.hpp"
#include "common/logging.hpp"
#include "power/policy_registry.hpp"
#include "power/zone_manager.hpp"

namespace pcap::cluster {

namespace {

bool is_registry_policy(const std::string& name) {
  const auto names = power::policy_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

power::PolicyPtr make_policy_any(const std::string& name,
                                 const power::PiTuning& pi) {
  if (name == "uniform") {
    return std::make_unique<baselines::UniformAllNodesPolicy>();
  }
  if (name == "sla") return std::make_unique<baselines::SlaPriorityPolicy>();
  return power::make_policy(name, pi);
}

}  // namespace

Watts probe_uncapped_peak(const ClusterConfig& cluster, Seconds duration) {
  Cluster probe(cluster);
  probe.start_recording();
  probe.run(duration);
  return metrics::peak_power(probe.recorder().power_trace());
}

std::unique_ptr<power::PowerManagerBase> make_manager(
    const ExperimentConfig& config, const ClusterConfig& cluster,
    Watts provision, const std::vector<hw::NodeId>& candidates) {
  common::Rng rng(cluster.seed ^ 0x9d2c5680u);

  if (config.zone_count >= 2 &&
      (config.manager == "none" || config.manager == "budget" ||
       config.manager == "feedback")) {
    throw std::invalid_argument(
        "make_manager: zones.count >= 2 requires a capping-policy manager "
        "(got '" + config.manager + "')");
  }
  if (config.control.enabled() &&
      (config.manager == "none" || config.manager == "budget" ||
       config.manager == "feedback")) {
    throw std::invalid_argument(
        "make_manager: control-plane fault injection requires a "
        "capping-policy manager (got '" + config.manager + "')");
  }
  if (config.manager == "none" || candidates.empty()) {
    return std::make_unique<power::NoCappingManager>();
  }

  if (config.manager == "budget") {
    baselines::BudgetParams p;
    // The meter reads wall power; node budgets are IT-side watts.
    p.global_budget = provision * cluster.meter.psu_efficiency;
    p.cycle_period = cluster.control_period;
    p.collector.transport = config.transport;
    p.collector.faults = config.faults;
    auto mgr = std::make_unique<baselines::BudgetManager>(p, rng);
    mgr->set_candidate_set(candidates);
    return mgr;
  }

  if (config.manager == "feedback") {
    baselines::FeedbackParams p;
    // The feedback baseline regulates to the same yellow threshold the
    // capping architecture would learn, approximated by the provision.
    p.setpoint = provision;
    p.gain = config.feedback_gain;
    p.cycle_period = cluster.control_period;
    p.collector.transport = config.transport;
    p.collector.faults = config.faults;
    auto mgr = std::make_unique<baselines::FeedbackManager>(p, rng);
    mgr->set_candidate_set(candidates);
    return mgr;
  }

  if (!is_registry_policy(config.manager) && config.manager != "uniform" &&
      config.manager != "sla") {
    throw std::invalid_argument("make_manager: unknown manager '" +
                                config.manager + "'");
  }

  power::CappingManagerParams p;
  if (config.dynamic_candidates) {
    if (config.zone_count >= 2) {
      throw std::invalid_argument(
          "make_manager: zones.count >= 2 is incompatible with dynamic "
          "candidate selection");
    }
    power::CandidateSelectorParams sel;
    sel.max_candidates = config.candidate_count;
    p.selector = sel;
  }
  p.thresholds.provision = provision;
  p.thresholds.red_margin = config.red_margin;
  p.thresholds.yellow_margin = config.yellow_margin;
  p.thresholds.training_cycles =
      static_cast<std::int64_t>(config.training / cluster.control_period);
  p.thresholds.adjust_period_cycles = config.adjust_period_cycles;
  p.thresholds.freeze_at_provision = config.thresholds_from_provision;
  p.capping = config.capping;
  p.cycle_period = cluster.control_period;
  p.collector.transport = config.transport;
  p.collector.faults = config.faults;
  p.max_sample_age_cycles = config.max_sample_age_cycles;
  p.stale_power_margin = config.stale_power_margin;
  p.incremental_context = config.incremental_context;
  p.actuation = config.actuation;
  p.reconciliation = config.reconciliation;
  p.control = config.control;
  p.prediction = config.prediction;
  if (!p.prediction.enabled &&
      (config.manager == "pi-c" || config.manager == "pred-c")) {
    // The predictive policies are inert without a forecast: selecting one
    // opts into the default predictor (the explicit [prediction] section
    // still overrides every knob).
    p.prediction.enabled = true;
  }
  if (config.zone_count >= 2) {
    power::ZoneTreeParams zp;
    zp.zone_count = static_cast<std::size_t>(config.zone_count);
    zp.assignment = power::parse_zone_assignment(config.zone_assignment);
    zp.redistribution =
        power::parse_zone_redistribution(config.zone_redistribution);
    const std::string policy_name = config.manager;
    const power::PiTuning pi = config.pi;
    auto mgr = std::make_unique<power::ZoneTreeManager>(
        zp, p, [policy_name, pi] { return make_policy_any(policy_name, pi); },
        rng);
    mgr->set_candidate_set(candidates);
    return mgr;
  }
  auto mgr = std::make_unique<power::CappingManager>(
      p, make_policy_any(config.manager, config.pi), rng);
  mgr->set_candidate_set(candidates);
  return mgr;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  // 1. Provision calibration.
  Watts provision = config.provision;
  if (provision <= Watts{0.0}) {
    const Watts peak =
        probe_uncapped_peak(config.cluster, config.calibration_duration);
    provision = peak * config.provision_fraction;
    PCAP_INFO("experiment: calibrated provision to %.0f W (peak %.0f W)",
              provision.value(), peak.value());
  }

  // 2. Build the cluster and manager.
  Cluster cl(config.cluster);
  std::vector<hw::NodeId> candidates = cl.controllable_nodes();
  if (config.candidate_count >= 0 &&
      static_cast<std::size_t>(config.candidate_count) < candidates.size()) {
    candidates.resize(static_cast<std::size_t>(config.candidate_count));
  }
  cl.set_manager(make_manager(config, config.cluster, provision, candidates));

  // 3. Training phase (thresholds learn; no job/power metrics recorded).
  if (config.training > Seconds{0.0}) cl.run(config.training);

  // 4. Measured phase. The manager's per-cycle counters accumulate over
  // the whole run (training included), so snapshot them here: the
  // measured-window totals below are registry deltas against this
  // baseline. Managers that bind no metrics (none, baselines) simply have
  // no series — counter_value() yields nullopt and the delta stays 0,
  // matching their all-zero report columns.
  const auto counter_at = [&cl](const std::string& key) -> std::uint64_t {
    return cl.metrics().counter_value(key).value_or(0);
  };
  const std::uint64_t base_stale =
      counter_at("pcap_manager_stale_node_cycles_total");
  const std::uint64_t base_fallback =
      counter_at("pcap_manager_fallback_node_cycles_total");
  const std::uint64_t base_skipped =
      counter_at("pcap_manager_skipped_targets_total");
  const std::uint64_t base_retries = counter_at("pcap_manager_retries_total");
  const std::uint64_t base_divergences =
      counter_at("pcap_manager_divergences_total");
  const std::uint64_t base_heals = counter_at("pcap_manager_heals_total");
  const std::uint64_t base_adoptions =
      counter_at("pcap_watchdog_adoptions_total");
  cl.start_recording();
  cl.run(config.measured);

  // 5. Extract metrics.
  ExperimentResult r;
  r.manager = config.manager;
  r.candidate_count = candidates.size();
  r.provision = provision;

  const auto trace = cl.recorder().power_trace();
  r.p_max = metrics::peak_power(trace);
  r.mean_power = metrics::mean_power(trace);
  r.energy = metrics::total_energy(trace);
  r.delta_pxt = metrics::accumulated_overspend(trace, provision);
  r.perf = metrics::summarize_performance(cl.finished_records());

  r.green_cycles = cl.recorder().state_count(0);
  r.yellow_cycles = cl.recorder().state_count(1);
  r.red_cycles = cl.recorder().state_count(2);
  r.never_red = r.red_cycles == 0;

  double util_sum = 0.0;
  std::size_t transitions = 0;
  for (const auto& p : cl.recorder().points()) {
    util_sum += p.manager_utilization;
    transitions += p.transitions;
  }
  // Telemetry-health and reconciliation totals come from the registry
  // (delta over the measured window), not from re-summing CSV columns —
  // the recorder and this result are two views over the same counters.
  r.stale_node_cycles = static_cast<std::size_t>(
      counter_at("pcap_manager_stale_node_cycles_total") - base_stale);
  r.fallback_node_cycles = static_cast<std::size_t>(
      counter_at("pcap_manager_fallback_node_cycles_total") - base_fallback);
  r.skipped_targets = static_cast<std::size_t>(
      counter_at("pcap_manager_skipped_targets_total") - base_skipped);
  r.command_retries = static_cast<std::size_t>(
      counter_at("pcap_manager_retries_total") - base_retries);
  r.divergences = static_cast<std::size_t>(
      counter_at("pcap_manager_divergences_total") - base_divergences);
  r.heals =
      static_cast<std::size_t>(counter_at("pcap_manager_heals_total") -
                               base_heals);
  r.samples_lost = cl.last_report().samples_lost;
  r.samples_suppressed = cl.last_report().samples_suppressed;
  r.samples_corrupted = cl.last_report().samples_corrupted;
  r.crash_events = cl.last_report().crash_events;
  r.recovery_events = cl.last_report().recovery_events;
  r.commands_lost = cl.last_report().commands_lost;
  r.commands_rebooting = cl.last_report().commands_rebooting;
  r.transitions_failed = cl.last_report().transitions_failed;
  r.transitions_partial = cl.last_report().transitions_partial;
  r.reboot_events = cl.last_report().reboot_events;
  r.commands_abandoned = cl.last_report().commands_abandoned;
  r.commands_clamped = cl.last_report().commands_clamped;
  r.ctrl_outages = cl.last_report().ctrl_outages;
  r.ctrl_outage_cycles = cl.last_report().ctrl_outage_cycles;
  r.ctrl_delayed_cycles = cl.last_report().ctrl_delayed_cycles;
  r.ctrl_zone_outage_cycles = cl.last_report().ctrl_zone_outage_cycles;
  r.predictor_overshoots = cl.last_report().predictor_overshoots;
  r.predictor_misses = cl.last_report().predictor_misses;
  r.predictive_elevations = cl.last_report().predictive_elevations;
  r.watchdog_engagements = cl.watchdog().engagements();
  r.watchdog_transitions = cl.watchdog().failsafe_transitions();
  r.watchdog_adoptions = static_cast<std::size_t>(
      counter_at("pcap_watchdog_adoptions_total") - base_adoptions);
  const std::size_t cycles = cl.recorder().size();
  r.mean_manager_utilization =
      cycles > 0 ? util_sum / static_cast<double>(cycles) : 0.0;
  r.transitions = transitions;
  r.p_low = cl.last_report().p_low;
  r.p_high = cl.last_report().p_high;
  r.metrics_prometheus = cl.metrics().prometheus_text();
  r.metrics_json = cl.metrics().json_snapshot();
  return r;
}

}  // namespace pcap::cluster
