// Experiment runner: training phase + measured phase + metric extraction.
//
// One ExperimentConfig fully determines a run (seeded), so benches sweep
// configs and compare results. Managers are selected by name:
//   "none"                      — no power management (the baseline runs)
//   "mpc","mpc-c","lpc","lpc-c","bfp","hri","hri-c"
//                               — the paper's architecture with that policy
//   "uniform", "sla"            — related-work policies inside Algorithm 1
//   "feedback"                  — Wang-style proportional controller
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "metrics/performance.hpp"
#include "power/actuation_channel.hpp"
#include "power/capping.hpp"
#include "power/policies_predictive.hpp"
#include "power/predictor.hpp"
#include "power/reconciler.hpp"
#include "power/thresholds.hpp"

namespace pcap::cluster {

struct ExperimentConfig {
  ClusterConfig cluster;

  std::string manager = "mpc";

  /// Size of A_candidate: the first N controllable nodes. Negative = all.
  int candidate_count = -1;

  /// Use the dynamic candidate selector (§III.A algorithm (c)) instead of
  /// a fixed candidate set: privileged jobs' nodes are excluded while
  /// they run, and |A_candidate| stays capped at candidate_count.
  bool dynamic_candidates = false;

  /// Power provision capability P_Max (wall watts). When unset (<= 0) it
  /// is calibrated as `provision_fraction` x the peak of a short uncapped
  /// probe run with the same seed.
  Watts provision{0.0};
  double provision_fraction = 0.84;
  Seconds calibration_duration{7200.0};

  Seconds training{4 * 3600.0};  ///< paper: 24 h; benches default to 4 h
  Seconds measured{12 * 3600.0};

  power::CappingParams capping;      ///< T_g etc.
  double red_margin = 0.07;          ///< P_H factor (§III.A)
  double yellow_margin = 0.16;       ///< P_L factor
  /// Administrator mode: derive P_L/P_H from the provision instead of
  /// learning P_peak (no training phase).
  bool thresholds_from_provision = false;
  std::int64_t adjust_period_cycles = 3600;  ///< t_p

  double feedback_gain = 1.0;  ///< only for manager == "feedback"

  /// Management-plane fault model: agent reports may be lost or delayed.
  telemetry::TransportParams transport;
  /// Telemetry-plane fault injection: agent dropout, node crash windows,
  /// corrupted power estimates. All-zero (off) by default.
  telemetry::FaultParams faults;
  /// Manager-side staleness policy (see CappingManagerParams).
  std::int64_t max_sample_age_cycles = 5;
  double stale_power_margin = 0.10;
  /// Delta-maintained per-zone policy contexts (`context.incremental`):
  /// persist each shard's PolicyContext across cycles and fold in only
  /// changed slots. Off = full rebuild every active cycle (A/B reference).
  bool incremental_context = true;
  /// Actuation-plane fault model: command loss/delay, failed or partial
  /// DVFS transitions, node reboots. All-zero (off) by default. Only the
  /// capping managers route commands through the channel; the baselines
  /// keep their perfect actuators.
  power::ActuationFaultParams actuation;
  /// Manager-side ack/retry/divergence policy for the lossy channel.
  power::ReconcilerParams reconciliation;
  /// Control-plane fault model: whole-controller blackouts, per-zone
  /// shard crash windows, control-cycle delay. All-zero (off) by default;
  /// only the capping managers support it (the baselines throw).
  power::ControlFaultParams control;

  /// System-power forecasting (power/predictor.hpp). Off by default; the
  /// predictive policies (pi-c/pred-c) auto-enable it with these params —
  /// they are inert without a forecast.
  power::PredictionParams prediction;
  /// PI controller tuning; consumed only by manager == "pi-c".
  power::PiTuning pi;

  /// Hierarchical control plane: with zone_count >= 2 the capping-policy
  /// managers run as a ZoneTreeManager (Z zone shards + a root learner /
  /// headroom redistributor) instead of one flat CappingManager. 1 = the
  /// flat controller. Incompatible with dynamic_candidates and with the
  /// budget/feedback/none baselines.
  int zone_count = 1;
  std::string zone_assignment = "block";        ///< block | stride
  std::string zone_redistribution = "uniform";  ///< uniform | proportional
};

struct ExperimentResult {
  std::string manager;
  std::size_t candidate_count = 0;

  metrics::PerformanceSummary perf;
  Watts p_max{0.0};          ///< peak wall power in the measured window
  Watts mean_power{0.0};
  Joules energy{0.0};
  double delta_pxt = 0.0;    ///< ΔP×T against the provision threshold
  Watts provision{0.0};
  Watts p_low{0.0};          ///< final learned thresholds
  Watts p_high{0.0};

  std::size_t green_cycles = 0;
  std::size_t yellow_cycles = 0;
  std::size_t red_cycles = 0;
  bool never_red = true;     ///< §V.D: power never entered the red state
  double mean_manager_utilization = 0.0;
  std::size_t transitions = 0;  ///< DVFS actuations during measurement

  // Telemetry-health accounting over the measured window.
  std::size_t stale_node_cycles = 0;     ///< Σ per-cycle stale views
  std::size_t fallback_node_cycles = 0;  ///< Σ per-cycle substituted views
  std::size_t skipped_targets = 0;       ///< Σ targets the engine refused
  // Actuation reconciliation over the measured window.
  std::size_t command_retries = 0;       ///< Σ per-cycle re-sent commands
  std::size_t divergences = 0;           ///< Σ per-cycle believed≠observed
  std::size_t heals = 0;                 ///< Σ per-cycle healing commands
  // Fault/transport ground truth (lifetime totals at the end of the run).
  std::uint64_t samples_lost = 0;
  std::uint64_t samples_suppressed = 0;
  std::uint64_t samples_corrupted = 0;
  std::uint64_t crash_events = 0;
  std::uint64_t recovery_events = 0;
  // Actuation-plane ground truth (lifetime totals at the end of the run).
  std::uint64_t commands_lost = 0;
  std::uint64_t commands_rebooting = 0;
  std::uint64_t transitions_failed = 0;
  std::uint64_t transitions_partial = 0;
  std::uint64_t reboot_events = 0;
  std::uint64_t commands_abandoned = 0;
  std::uint64_t commands_clamped = 0;
  // Control-plane fault ground truth (lifetime totals at the end of the
  // run) and failsafe-watchdog activity.
  std::uint64_t ctrl_outages = 0;
  std::uint64_t ctrl_outage_cycles = 0;
  std::uint64_t ctrl_delayed_cycles = 0;
  std::uint64_t ctrl_zone_outage_cycles = 0;
  // Predictor ground truth (lifetime totals at the end of the run;
  // all-zero for managers without a forecaster).
  std::uint64_t predictor_overshoots = 0;
  std::uint64_t predictor_misses = 0;
  std::uint64_t predictive_elevations = 0;
  std::uint64_t watchdog_engagements = 0;
  std::uint64_t watchdog_transitions = 0;
  std::size_t watchdog_adoptions = 0;  ///< measured-window delta

  // Final registry exports (obs/registry.hpp): every series the engine,
  // cluster and manager published, including the cycle-phase span
  // histograms. The telemetry/actuation totals above are themselves
  // derived from this registry (counter deltas over the measured window).
  std::string metrics_prometheus;  ///< Prometheus text exposition
  std::string metrics_json;        ///< JSON snapshot
};

/// Runs calibration (if needed), training and measurement; returns the
/// metrics of the measured window.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Probes the uncapped peak power of the configured cluster/workload over
/// `duration` (used for provision calibration; deterministic given seed).
Watts probe_uncapped_peak(const ClusterConfig& cluster, Seconds duration);

/// Builds the manager named in the config (exposed for examples/tests).
std::unique_ptr<power::PowerManagerBase> make_manager(
    const ExperimentConfig& config, const ClusterConfig& cluster,
    Watts provision, const std::vector<hw::NodeId>& candidates);

}  // namespace pcap::cluster
