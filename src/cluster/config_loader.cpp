#include "cluster/config_loader.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

#include "cluster/scenario.hpp"
#include "common/string_util.hpp"
#include "power/zone_manager.hpp"

namespace pcap::cluster {

namespace {

const std::set<std::string>& known_keys() {
  static const std::set<std::string> keys = {
      "cluster.nodes",
      "cluster.seed",
      "cluster.tick_s",
      "cluster.control_period_s",
      "cluster.npb_class",
      "cluster.max_procs_per_node",
      "cluster.privileged_fraction",
      "cluster.idle_utilization",
      "cluster.utilization_noise",
      "cluster.ramp_tau_s",
      "manager.policy",
      "manager.candidate_count",
      "manager.dynamic_candidates",
      "manager.tg_cycles",
      "manager.red_margin",
      "manager.yellow_margin",
      "manager.adjust_period_cycles",
      "manager.feedback_gain",
      "experiment.training_h",
      "experiment.measured_h",
      "experiment.calibration_h",
      "experiment.provision_w",
      "experiment.provision_fraction",
      "telemetry.loss_rate",
      "telemetry.delay_cycles",
      "telemetry.agent_dropout_rate",
      "telemetry.agent_recovery_rate",
      "telemetry.crash_rate",
      "telemetry.crash_duration_cycles",
      "telemetry.corruption_rate",
      "telemetry.max_sample_age_cycles",
      "telemetry.stale_margin",
      "context.incremental",
      "actuation.loss_rate",
      "actuation.delay_cycles",
      "actuation.failure_rate",
      "actuation.partial_rate",
      "actuation.reboot_rate",
      "actuation.reboot_duration_cycles",
      "actuation.max_retries",
      "actuation.retry_backoff_cycles",
      "actuation.retry_backoff_cap_cycles",
      "zones.count",
      "zones.assignment",
      "zones.redistribution",
      "prediction.enabled",
      "prediction.kind",
      "prediction.horizon_cycles",
      "prediction.ewma_alpha",
      "prediction.ewma_beta",
      "prediction.window_cycles",
      "prediction.refresh_cycles",
      "pi.kp",
      "pi.ki",
      "pi.integral_cap",
      "control.outage_rate",
      "control.outage_duration_cycles",
      "control.zone_outage_rate",
      "control.zone_outage_duration_cycles",
      "control.delay_rate",
      "control.delay_max_cycles",
      "watchdog.timeout_cycles",
      "watchdog.safe_level",
  };
  return keys;
}

/// Fault-model knobs must be real, non-negative numbers: a stray "nan",
/// "-0.1" or "1e999" in an ini would otherwise sail through into the
/// params structs (whose own validation cannot name the offending key —
/// and [0,1]-range checks pass NaN through every comparison).
double checked_double(const common::Config& cfg, const std::string& key,
                      double fallback) {
  const double v = cfg.get_double(key, fallback);
  if (!std::isfinite(v) || v < 0.0) {
    throw std::runtime_error("experiment config: '" + key +
                             "' must be a finite non-negative number");
  }
  return v;
}

std::int64_t checked_int(const common::Config& cfg, const std::string& key,
                         std::int64_t fallback) {
  const std::int64_t v = cfg.get_int(key, fallback);
  if (v < 0) {
    throw std::runtime_error("experiment config: '" + key +
                             "' must be >= 0");
  }
  return v;
}

}  // namespace

ExperimentConfig apply_config(ExperimentConfig base,
                              const common::Config& cfg) {
  for (const std::string& key : cfg.keys()) {
    if (known_keys().count(key) == 0) {
      throw std::runtime_error("experiment config: unknown key '" + key +
                               "'");
    }
  }

  ExperimentConfig out = std::move(base);

  // [cluster]
  out.cluster.num_nodes = static_cast<std::size_t>(cfg.get_int(
      "cluster.nodes", static_cast<std::int64_t>(out.cluster.num_nodes)));
  out.cluster.seed = static_cast<std::uint64_t>(
      cfg.get_int("cluster.seed",
                  static_cast<std::int64_t>(out.cluster.seed)));
  out.cluster.tick =
      Seconds{cfg.get_double("cluster.tick_s", out.cluster.tick.value())};
  out.cluster.control_period = Seconds{cfg.get_double(
      "cluster.control_period_s", out.cluster.control_period.value())};
  const std::string cls =
      common::to_lower(cfg.get_string("cluster.npb_class", "d"));
  if (cls == "c") {
    out.cluster.npb_class = workload::NpbClass::kC;
  } else if (cls == "d") {
    out.cluster.npb_class = workload::NpbClass::kD;
  } else {
    throw std::runtime_error("experiment config: npb_class must be C or D");
  }
  out.cluster.scheduler.max_procs_per_node = static_cast<int>(cfg.get_int(
      "cluster.max_procs_per_node",
      out.cluster.scheduler.max_procs_per_node));
  out.cluster.privileged_job_fraction = cfg.get_double(
      "cluster.privileged_fraction", out.cluster.privileged_job_fraction);
  out.cluster.idle_utilization =
      cfg.get_double("cluster.idle_utilization", out.cluster.idle_utilization);
  out.cluster.utilization_noise_sigma = cfg.get_double(
      "cluster.utilization_noise", out.cluster.utilization_noise_sigma);
  out.cluster.utilization_ramp_tau_s =
      cfg.get_double("cluster.ramp_tau_s", out.cluster.utilization_ramp_tau_s);

  // [manager]
  out.manager = cfg.get_string("manager.policy", out.manager);
  out.candidate_count = static_cast<int>(
      cfg.get_int("manager.candidate_count", out.candidate_count));
  out.dynamic_candidates =
      cfg.get_bool("manager.dynamic_candidates", out.dynamic_candidates);
  out.capping.steady_green_cycles =
      cfg.get_int("manager.tg_cycles", out.capping.steady_green_cycles);
  out.red_margin = cfg.get_double("manager.red_margin", out.red_margin);
  out.yellow_margin =
      cfg.get_double("manager.yellow_margin", out.yellow_margin);
  out.adjust_period_cycles = cfg.get_int("manager.adjust_period_cycles",
                                         out.adjust_period_cycles);
  out.feedback_gain =
      cfg.get_double("manager.feedback_gain", out.feedback_gain);

  // [experiment]
  out.training = Seconds{
      cfg.get_double("experiment.training_h", out.training.value() / 3600.0) *
      3600.0};
  out.measured = Seconds{
      cfg.get_double("experiment.measured_h", out.measured.value() / 3600.0) *
      3600.0};
  out.calibration_duration =
      Seconds{cfg.get_double("experiment.calibration_h",
                             out.calibration_duration.value() / 3600.0) *
              3600.0};
  out.provision =
      Watts{cfg.get_double("experiment.provision_w", out.provision.value())};
  out.provision_fraction = cfg.get_double("experiment.provision_fraction",
                                          out.provision_fraction);

  // [telemetry]
  out.transport.loss_rate =
      checked_double(cfg, "telemetry.loss_rate", out.transport.loss_rate);
  out.transport.delay_cycles = static_cast<int>(
      checked_int(cfg, "telemetry.delay_cycles", out.transport.delay_cycles));
  out.faults.agent_dropout_rate = checked_double(
      cfg, "telemetry.agent_dropout_rate", out.faults.agent_dropout_rate);
  out.faults.agent_recovery_rate = checked_double(
      cfg, "telemetry.agent_recovery_rate", out.faults.agent_recovery_rate);
  out.faults.crash_rate =
      checked_double(cfg, "telemetry.crash_rate", out.faults.crash_rate);
  out.faults.crash_duration_cycles = static_cast<int>(
      checked_int(cfg, "telemetry.crash_duration_cycles",
                  out.faults.crash_duration_cycles));
  out.faults.corruption_rate = checked_double(cfg, "telemetry.corruption_rate",
                                              out.faults.corruption_rate);
  out.faults.validate();
  out.max_sample_age_cycles = checked_int(
      cfg, "telemetry.max_sample_age_cycles", out.max_sample_age_cycles);
  out.stale_power_margin =
      checked_double(cfg, "telemetry.stale_margin", out.stale_power_margin);

  // [context]
  out.incremental_context =
      cfg.get_bool("context.incremental", out.incremental_context);

  // [actuation]
  out.actuation.command_loss_rate = checked_double(
      cfg, "actuation.loss_rate", out.actuation.command_loss_rate);
  out.actuation.delivery_delay_cycles = static_cast<int>(checked_int(
      cfg, "actuation.delay_cycles", out.actuation.delivery_delay_cycles));
  out.actuation.transition_failure_rate = checked_double(
      cfg, "actuation.failure_rate", out.actuation.transition_failure_rate);
  out.actuation.partial_transition_rate = checked_double(
      cfg, "actuation.partial_rate", out.actuation.partial_transition_rate);
  out.actuation.reboot_rate =
      checked_double(cfg, "actuation.reboot_rate", out.actuation.reboot_rate);
  out.actuation.reboot_duration_cycles = static_cast<int>(
      checked_int(cfg, "actuation.reboot_duration_cycles",
                  out.actuation.reboot_duration_cycles));
  out.actuation.validate();
  out.reconciliation.max_retries = static_cast<int>(
      checked_int(cfg, "actuation.max_retries", out.reconciliation.max_retries));
  out.reconciliation.retry_backoff_base_cycles = static_cast<int>(
      checked_int(cfg, "actuation.retry_backoff_cycles",
                  out.reconciliation.retry_backoff_base_cycles));
  out.reconciliation.retry_backoff_cap_cycles = static_cast<int>(
      checked_int(cfg, "actuation.retry_backoff_cap_cycles",
                  out.reconciliation.retry_backoff_cap_cycles));
  out.reconciliation.validate();

  // [zones]
  out.zone_count =
      static_cast<int>(checked_int(cfg, "zones.count", out.zone_count));
  if (out.zone_count < 1) {
    throw std::runtime_error("experiment config: 'zones.count' must be >= 1");
  }
  out.zone_assignment = common::to_lower(
      cfg.get_string("zones.assignment", out.zone_assignment));
  power::parse_zone_assignment(out.zone_assignment);  // validate early
  out.zone_redistribution = common::to_lower(
      cfg.get_string("zones.redistribution", out.zone_redistribution));
  power::parse_zone_redistribution(out.zone_redistribution);

  // [prediction] — system-power forecasting for the predictive policies.
  out.prediction.enabled =
      cfg.get_bool("prediction.enabled", out.prediction.enabled);
  out.prediction.kind = common::to_lower(
      cfg.get_string("prediction.kind", out.prediction.kind));
  out.prediction.horizon_cycles = checked_int(
      cfg, "prediction.horizon_cycles", out.prediction.horizon_cycles);
  out.prediction.ewma_alpha =
      checked_double(cfg, "prediction.ewma_alpha", out.prediction.ewma_alpha);
  out.prediction.ewma_beta =
      checked_double(cfg, "prediction.ewma_beta", out.prediction.ewma_beta);
  out.prediction.window_cycles = checked_int(
      cfg, "prediction.window_cycles", out.prediction.window_cycles);
  out.prediction.refresh_cycles = checked_int(
      cfg, "prediction.refresh_cycles", out.prediction.refresh_cycles);
  out.prediction.validate();  // validated even while disabled: fail early

  // [pi] — PI-C controller tuning.
  out.pi.kp = checked_double(cfg, "pi.kp", out.pi.kp);
  out.pi.ki = checked_double(cfg, "pi.ki", out.pi.ki);
  out.pi.integral_cap =
      checked_double(cfg, "pi.integral_cap", out.pi.integral_cap);
  out.pi.validate();

  // [control] — controller-failure injection + the node-local failsafe.
  out.control.outage_rate =
      checked_double(cfg, "control.outage_rate", out.control.outage_rate);
  out.control.outage_duration_cycles = static_cast<int>(
      checked_int(cfg, "control.outage_duration_cycles",
                  out.control.outage_duration_cycles));
  out.control.zone_outage_rate = checked_double(
      cfg, "control.zone_outage_rate", out.control.zone_outage_rate);
  out.control.zone_outage_duration_cycles = static_cast<int>(
      checked_int(cfg, "control.zone_outage_duration_cycles",
                  out.control.zone_outage_duration_cycles));
  out.control.delay_rate =
      checked_double(cfg, "control.delay_rate", out.control.delay_rate);
  out.control.delay_max_cycles = static_cast<int>(checked_int(
      cfg, "control.delay_max_cycles", out.control.delay_max_cycles));
  out.control.validate();
  out.cluster.watchdog.timeout_cycles = checked_int(
      cfg, "watchdog.timeout_cycles", out.cluster.watchdog.timeout_cycles);
  out.cluster.watchdog.safe_level = static_cast<hw::Level>(checked_int(
      cfg, "watchdog.safe_level", out.cluster.watchdog.safe_level));
  out.cluster.watchdog.validate();

  return out;
}

ExperimentConfig experiment_from_file(const std::string& path) {
  return apply_config(paper_scenario(), common::Config::load_file(path));
}

}  // namespace pcap::cluster
