#include "cluster/config_loader.hpp"

#include <set>
#include <stdexcept>

#include "cluster/scenario.hpp"
#include "common/string_util.hpp"

namespace pcap::cluster {

namespace {

const std::set<std::string>& known_keys() {
  static const std::set<std::string> keys = {
      "cluster.nodes",
      "cluster.seed",
      "cluster.tick_s",
      "cluster.control_period_s",
      "cluster.npb_class",
      "cluster.max_procs_per_node",
      "cluster.privileged_fraction",
      "cluster.idle_utilization",
      "cluster.utilization_noise",
      "cluster.ramp_tau_s",
      "manager.policy",
      "manager.candidate_count",
      "manager.dynamic_candidates",
      "manager.tg_cycles",
      "manager.red_margin",
      "manager.yellow_margin",
      "manager.adjust_period_cycles",
      "manager.feedback_gain",
      "experiment.training_h",
      "experiment.measured_h",
      "experiment.calibration_h",
      "experiment.provision_w",
      "experiment.provision_fraction",
      "telemetry.loss_rate",
      "telemetry.delay_cycles",
      "telemetry.agent_dropout_rate",
      "telemetry.agent_recovery_rate",
      "telemetry.crash_rate",
      "telemetry.crash_duration_cycles",
      "telemetry.corruption_rate",
      "telemetry.max_sample_age_cycles",
      "telemetry.stale_margin",
  };
  return keys;
}

}  // namespace

ExperimentConfig apply_config(ExperimentConfig base,
                              const common::Config& cfg) {
  for (const std::string& key : cfg.keys()) {
    if (known_keys().count(key) == 0) {
      throw std::runtime_error("experiment config: unknown key '" + key +
                               "'");
    }
  }

  ExperimentConfig out = std::move(base);

  // [cluster]
  out.cluster.num_nodes = static_cast<std::size_t>(cfg.get_int(
      "cluster.nodes", static_cast<std::int64_t>(out.cluster.num_nodes)));
  out.cluster.seed = static_cast<std::uint64_t>(
      cfg.get_int("cluster.seed",
                  static_cast<std::int64_t>(out.cluster.seed)));
  out.cluster.tick =
      Seconds{cfg.get_double("cluster.tick_s", out.cluster.tick.value())};
  out.cluster.control_period = Seconds{cfg.get_double(
      "cluster.control_period_s", out.cluster.control_period.value())};
  const std::string cls =
      common::to_lower(cfg.get_string("cluster.npb_class", "d"));
  if (cls == "c") {
    out.cluster.npb_class = workload::NpbClass::kC;
  } else if (cls == "d") {
    out.cluster.npb_class = workload::NpbClass::kD;
  } else {
    throw std::runtime_error("experiment config: npb_class must be C or D");
  }
  out.cluster.scheduler.max_procs_per_node = static_cast<int>(cfg.get_int(
      "cluster.max_procs_per_node",
      out.cluster.scheduler.max_procs_per_node));
  out.cluster.privileged_job_fraction = cfg.get_double(
      "cluster.privileged_fraction", out.cluster.privileged_job_fraction);
  out.cluster.idle_utilization =
      cfg.get_double("cluster.idle_utilization", out.cluster.idle_utilization);
  out.cluster.utilization_noise_sigma = cfg.get_double(
      "cluster.utilization_noise", out.cluster.utilization_noise_sigma);
  out.cluster.utilization_ramp_tau_s =
      cfg.get_double("cluster.ramp_tau_s", out.cluster.utilization_ramp_tau_s);

  // [manager]
  out.manager = cfg.get_string("manager.policy", out.manager);
  out.candidate_count = static_cast<int>(
      cfg.get_int("manager.candidate_count", out.candidate_count));
  out.dynamic_candidates =
      cfg.get_bool("manager.dynamic_candidates", out.dynamic_candidates);
  out.capping.steady_green_cycles =
      cfg.get_int("manager.tg_cycles", out.capping.steady_green_cycles);
  out.red_margin = cfg.get_double("manager.red_margin", out.red_margin);
  out.yellow_margin =
      cfg.get_double("manager.yellow_margin", out.yellow_margin);
  out.adjust_period_cycles = cfg.get_int("manager.adjust_period_cycles",
                                         out.adjust_period_cycles);
  out.feedback_gain =
      cfg.get_double("manager.feedback_gain", out.feedback_gain);

  // [experiment]
  out.training = Seconds{
      cfg.get_double("experiment.training_h", out.training.value() / 3600.0) *
      3600.0};
  out.measured = Seconds{
      cfg.get_double("experiment.measured_h", out.measured.value() / 3600.0) *
      3600.0};
  out.calibration_duration =
      Seconds{cfg.get_double("experiment.calibration_h",
                             out.calibration_duration.value() / 3600.0) *
              3600.0};
  out.provision =
      Watts{cfg.get_double("experiment.provision_w", out.provision.value())};
  out.provision_fraction = cfg.get_double("experiment.provision_fraction",
                                          out.provision_fraction);

  // [telemetry]
  out.transport.loss_rate =
      cfg.get_double("telemetry.loss_rate", out.transport.loss_rate);
  out.transport.delay_cycles = static_cast<int>(
      cfg.get_int("telemetry.delay_cycles", out.transport.delay_cycles));
  out.faults.agent_dropout_rate = cfg.get_double(
      "telemetry.agent_dropout_rate", out.faults.agent_dropout_rate);
  out.faults.agent_recovery_rate = cfg.get_double(
      "telemetry.agent_recovery_rate", out.faults.agent_recovery_rate);
  out.faults.crash_rate =
      cfg.get_double("telemetry.crash_rate", out.faults.crash_rate);
  out.faults.crash_duration_cycles = static_cast<int>(cfg.get_int(
      "telemetry.crash_duration_cycles", out.faults.crash_duration_cycles));
  out.faults.corruption_rate =
      cfg.get_double("telemetry.corruption_rate", out.faults.corruption_rate);
  out.faults.validate();
  out.max_sample_age_cycles = cfg.get_int("telemetry.max_sample_age_cycles",
                                          out.max_sample_age_cycles);
  out.stale_power_margin =
      cfg.get_double("telemetry.stale_margin", out.stale_power_margin);

  return out;
}

ExperimentConfig experiment_from_file(const std::string& path) {
  return apply_config(paper_scenario(), common::Config::load_file(path));
}

}  // namespace pcap::cluster
