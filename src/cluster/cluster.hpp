// The cluster façade: nodes + scheduler + workload engine + power manager,
// stepped on the discrete-event kernel.
//
// Every tick (the sampling interval τ, default 1 s) the cluster:
//   1. keeps the job queue non-empty (the paper's arrival rule) or feeds a
//      recorded trace,
//   2. launches queued jobs onto free nodes,
//   3. refreshes every node's operating point from its job's current phase
//      (with OU utilisation noise) and advances job progress at the
//      bottleneck-node rate,
//   4. integrates node thermals,
//   5. reads the facility power meter, and
//   6. runs one control cycle of the installed power manager.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "hw/node.hpp"
#include "hw/power_meter.hpp"
#include "interconnect/interconnect.hpp"
#include "metrics/performance.hpp"
#include "metrics/trace_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/spans.hpp"
#include "power/manager.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulation.hpp"
#include "workload/job_generator.hpp"
#include "workload/trace.hpp"

namespace pcap::cluster {

struct ClusterConfig {
  /// Node population: `num_nodes` copies of `spec`, or an explicit
  /// per-node list in `node_specs` (which wins when non-empty).
  std::size_t num_nodes = 128;
  hw::NodeSpecPtr spec;  ///< defaults to tianhe1a_node_spec() when null
  std::vector<hw::NodeSpecPtr> node_specs;

  Seconds tick{1.0};  ///< simulation step / meter sampling interval
  /// Leaf-switch uplink contention (disabled by default; the paper's
  /// evaluation numbers are calibrated without it).
  interconnect::InterconnectParams interconnect;
  /// Control cycle period: the manager collects, classifies and actuates
  /// once per control period (a multiple of tick). A few seconds matches
  /// a real central manager sweeping /proc on hundreds of nodes, and sets
  /// the τ over which change-based policies compute ΔP.
  Seconds control_period{4.0};
  hw::PowerMeterParams meter;
  sched::SchedulerOptions scheduler;

  /// OU noise on per-node CPU utilisation (stationary sigma / relaxation).
  double utilization_noise_sigma = 0.02;
  double utilization_noise_tau_s = 30.0;
  /// Idle nodes hover at this mean utilisation.
  double idle_utilization = 0.02;
  /// Phase-transition ramp: node utilisation approaches its phase target
  /// with this time constant (seconds). Models the fact that thousands of
  /// MPI ranks do not switch phases within one sampling interval, so
  /// system power ramps rather than steps — which is what gives the
  /// 1 Hz control loop its reaction window. 0 disables ramping.
  double utilization_ramp_tau_s = 45.0;

  std::uint64_t seed = 42;

  /// Worker threads for intra-tick node/job sweeps: 0 = hardware
  /// concurrency, 1 = fully serial (no pool is ever created). Results are
  /// bit-identical for every setting: all randomness is drawn from
  /// per-node streams and every reduction runs serially in index order.
  std::size_t worker_threads = 0;
  /// Clusters below this node count never create a pool, and sweeps over
  /// fewer indices than this run inline even when a pool exists — fan-out
  /// overhead beats the win on small populations (BENCH_tick.json: the
  /// pool still loses at 1024 nodes on one core; aligned with the
  /// collector's parallel_threshold).
  std::size_t parallel_node_threshold = 2048;
  /// Indices per pool chunk in a parallel sweep.
  std::size_t parallel_grain = 256;

  /// Paper arrival rule: submit a fresh random job whenever the queue is
  /// empty. When false, jobs come only from submit()/a trace.
  bool auto_generate_jobs = true;
  workload::NpbClass npb_class = workload::NpbClass::kD;
  /// Fraction of generated jobs marked privileged (§II.A): their nodes
  /// are excluded from A_candidate by the dynamic candidate selector.
  double privileged_job_fraction = 0.0;
  /// Override the generated application mix (empty = the paper's five
  /// NPB benchmarks). npb_extended_suite() adds MG/FT/IS.
  std::vector<workload::AppModel> app_suite;

  /// Gates the wall-clock cycle-phase span timers (obs/spans.hpp). Off,
  /// the registry still accumulates every deterministic counter/gauge but
  /// tick/cycle scopes skip their clock reads — the configuration the
  /// bench uses to price the instrumentation.
  bool obs_timing = true;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  /// Installs the power manager (defaults to NoCappingManager). The
  /// cluster owns it.
  void set_manager(std::unique_ptr<power::PowerManagerBase> manager);
  [[nodiscard]] power::PowerManagerBase& manager() { return *manager_; }

  /// Submits an externally created job (used by trace replay).
  void submit(workload::Job job);
  /// Loads a whole trace; entries are submitted at their recorded times.
  void load_trace(const workload::WorkloadTrace& trace);

  /// Advances simulated time by `duration` (must be a multiple of tick).
  void run(Seconds duration);

  // -- state ------------------------------------------------------------------
  [[nodiscard]] Seconds now() const { return sim_.now(); }
  [[nodiscard]] const std::vector<hw::Node>& nodes() const { return nodes_; }
  [[nodiscard]] std::vector<hw::Node>& nodes() { return nodes_; }
  [[nodiscard]] const sched::Scheduler& scheduler() const { return *sched_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  /// Wall-socket power at the last tick.
  [[nodiscard]] Watts last_power() const { return last_power_; }
  /// Report from the manager's last control cycle.
  [[nodiscard]] const power::ManagerReport& last_report() const {
    return last_report_;
  }

  /// All controllable node ids (the natural A_candidate pool).
  [[nodiscard]] std::vector<hw::NodeId> controllable_nodes() const;

  /// Sum over nodes of per-node theoretical maxima (P_thy, §II.D) at the
  /// wall socket.
  [[nodiscard]] Watts theoretical_peak() const;

  /// Per-node delivered traffic fractions from the last tick (all 1.0
  /// when interconnect contention is disabled).
  [[nodiscard]] const std::vector<double>& last_delivered_fractions() const {
    return delivered_;
  }

  /// The worker pool driving intra-tick sweeps — shared with the manager's
  /// telemetry collector, and available to callers running their own
  /// cluster-level sweeps. nullptr when the cluster runs serial (small
  /// population or worker_threads == 1).
  [[nodiscard]] common::ThreadPool* thread_pool() const {
    return pool_.get();
  }

  // -- measurement ------------------------------------------------------------
  /// Starts/stops recording per-cycle points and finished-job records.
  void start_recording();
  [[nodiscard]] const metrics::TraceRecorder& recorder() const;
  [[nodiscard]] const std::vector<metrics::JobRecord>& finished_records()
      const {
    return finished_records_;
  }
  /// Clears recorded data (not simulation state).
  void clear_recording();

  /// Record of jobs generated so far (submit time/app/nprocs) — exportable
  /// as a workload trace for replay experiments.
  [[nodiscard]] const workload::WorkloadTrace& generated_trace() const {
    return generated_trace_;
  }

  /// The cluster-owned metrics registry: engine + cluster + manager series
  /// all live here. Frozen at the first tick, so install managers first.
  /// Export with metrics().prometheus_text() / metrics().json_snapshot().
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

 private:
  /// Per-node device-usage target for one tick; idle unless a job's phase
  /// overwrites it in pass 1.
  struct UsageTarget {
    double cpu = 0.0;
    double mem_fraction = 0.02;
    double nic_bytes = 0.0;
    bool busy = false;
  };

  void tick();
  void refresh_workload(Seconds dt);
  void ensure_queue_nonempty();

  /// Runs fn(i) for i in [0, n): over the pool in fixed-size chunks when
  /// one exists and n is big enough to amortise the fan-out, else inline.
  /// Callers must only write to slots owned by index i; every reduction
  /// over the results happens serially in index order afterwards — that
  /// discipline is what keeps serial and parallel runs bit-identical.
  template <typename Fn>
  void sweep(std::size_t n, Fn&& fn) {
    common::maybe_parallel_for(pool_.get(), n, config_.parallel_node_threshold,
                               config_.parallel_grain,
                               [&fn](std::size_t begin, std::size_t end) {
                                 for (std::size_t i = begin; i < end; ++i) {
                                   fn(i);
                                 }
                               });
  }

  ClusterConfig config_;
  common::Rng rng_;
  sim::Simulation sim_;
  std::vector<hw::Node> nodes_;
  std::vector<common::OrnsteinUhlenbeck> util_noise_;
  std::vector<double> smoothed_util_;
  std::vector<double> delivered_;
  /// One independent noise stream per node (root fork "util-noise",
  /// child = stream(node id)): draws are a pure function of (seed, node),
  /// never of sweep order — the precondition for parallel ticks.
  std::vector<common::Rng> noise_rngs_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<sched::Scheduler> sched_;
  std::unique_ptr<interconnect::Interconnect> fabric_;
  std::optional<workload::JobGenerator> generator_;
  hw::SystemPowerMeter meter_;
  std::unique_ptr<power::PowerManagerBase> manager_;

  // Preallocated per-tick scratch: steady-state ticks never allocate.
  std::vector<UsageTarget> targets_;
  std::vector<double> offered_;
  std::vector<double> node_power_;  ///< IT-side true power, refreshed per tick
  std::vector<double> job_energy_scratch_;   ///< per running job, one tick
  std::vector<unsigned char> job_done_;      ///< pass-2 finished flags
  /// One scheduler lookup and one phase resolution per job per tick —
  /// pass 1, pass 2 and energy attribution all read these.
  std::vector<workload::Job*> jobs_scratch_;
  std::vector<const workload::Phase*> phases_scratch_;
  std::vector<workload::JobId> finished_scratch_;

  Watts last_power_{0.0};
  power::ManagerReport last_report_;
  std::uint64_t ticks_ = 0;
  std::uint64_t control_every_ = 1;

  /// Owned registry plus the cluster's own series; managers bind into the
  /// same registry via set_manager.
  obs::Registry metrics_;
  obs::GaugeHandle power_gauge_;
  obs::GaugeHandle running_gauge_;
  obs::GaugeHandle queued_gauge_;
  obs::GaugeHandle pool_depth_gauge_;
  obs::CounterHandle ticks_counter_;
  obs::CounterHandle jobs_finished_counter_;
  obs::SpanTimer tick_span_;
  obs::SpanTimer node_sweep_span_;

  bool recording_ = false;
  std::unordered_map<workload::JobId, double> job_energy_j_;
  std::unique_ptr<metrics::TraceRecorder> recorder_;
  std::vector<metrics::JobRecord> finished_records_;
  workload::WorkloadTrace generated_trace_;
};

}  // namespace pcap::cluster
