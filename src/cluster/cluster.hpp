// The cluster façade: nodes + scheduler + workload engine + power manager,
// stepped on the discrete-event kernel.
//
// Every tick (the sampling interval τ, default 1 s) the cluster:
//   1. applies deferred workload events from the previous tick (phase
//      changes, retirements, actuation-plane level changes),
//   2. keeps the job queue non-empty (the paper's arrival rule) or feeds a
//      recorded trace, and launches queued jobs onto free nodes,
//   3. advances job progress at each job's cached bottleneck rate,
//   4. refreshes the *due* nodes — the utilisation staircase grid plus
//      anything an event touched — analytically fast-forwarding ramp,
//      OU noise and RC thermal state across the skipped ticks,
//   5. folds the accounted-power ledger and reads the facility meter, and
//   6. runs one control cycle of the installed power manager.
//
// Hot per-node state lives in a structure-of-arrays pool (hw::NodeStatePool);
// hw::Node is a view. Steady-state ticks cost O(due set), not O(N): a node
// whose job sits in a long phase is touched only on its staircase slot
// (every util_refresh_ticks ticks), and — with noise disabled — not at all
// once its ramp converges. Serial, parallel, event-driven and full-scan
// modes produce bit-identical trajectories; see DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "hw/node.hpp"
#include "hw/node_pool.hpp"
#include "hw/power_meter.hpp"
#include "hw/watchdog.hpp"
#include "interconnect/interconnect.hpp"
#include "metrics/performance.hpp"
#include "metrics/trace_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/spans.hpp"
#include "power/manager.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulation.hpp"
#include "workload/job_generator.hpp"
#include "workload/trace.hpp"

namespace pcap::cluster {

struct ClusterConfig {
  /// Node population: `num_nodes` copies of `spec`, or an explicit
  /// per-node list in `node_specs` (which wins when non-empty).
  std::size_t num_nodes = 128;
  hw::NodeSpecPtr spec;  ///< defaults to tianhe1a_node_spec() when null
  std::vector<hw::NodeSpecPtr> node_specs;

  Seconds tick{1.0};  ///< simulation step / meter sampling interval
  /// Leaf-switch uplink contention (disabled by default; the paper's
  /// evaluation numbers are calibrated without it).
  interconnect::InterconnectParams interconnect;
  /// Control cycle period: the manager collects, classifies and actuates
  /// once per control period (a multiple of tick). A few seconds matches
  /// a real central manager sweeping /proc on hundreds of nodes, and sets
  /// the τ over which change-based policies compute ΔP.
  Seconds control_period{4.0};
  hw::PowerMeterParams meter;
  sched::SchedulerOptions scheduler;
  /// Node-local failsafe: after this many silent control cycles a node
  /// autonomously steps down to the safe level (0 = disabled). The cluster
  /// owns the watchdog and ticks it once per control cycle, right after
  /// the manager; the manager feeds it heartbeats/contacts and absorbs
  /// its level changes through the reconciler's adoption path.
  hw::WatchdogParams watchdog;

  /// OU noise on per-node CPU utilisation (stationary sigma / relaxation).
  /// Applied to busy nodes only: it models workload-phase fluctuation, and
  /// a noise band on an idle node's ~2 % utilisation is unphysical (it
  /// clips at zero). Idle nodes converge to idle_utilization and quiesce.
  double utilization_noise_sigma = 0.02;
  double utilization_noise_tau_s = 30.0;
  /// Idle nodes hover at this mean utilisation.
  double idle_utilization = 0.02;
  /// Phase-transition ramp: node utilisation approaches its phase target
  /// with this time constant (seconds). Models the fact that thousands of
  /// MPI ranks do not switch phases within one sampling interval, so
  /// system power ramps rather than steps — which is what gives the
  /// 1 Hz control loop its reaction window. 0 disables ramping.
  double utilization_ramp_tau_s = 45.0;

  /// Utilisation staircase period R: each node's ramp + OU noise are
  /// re-evaluated every R ticks (64-node blocks rotate through the grid,
  /// so ~N/R nodes refresh per tick). The closed-form k-step ramp and the
  /// exact k-step OU transition make the staircase a coarser *sampling* of
  /// the same process, not a different one. 1 restores per-tick refresh.
  /// 16 keeps the staircase well inside the 4 s default control period's
  /// effective sampling (the manager reads the meter, not the per-node
  /// signals) while quartering the sweep cost versus per-4-tick refresh.
  std::int64_t util_refresh_ticks = 16;
  /// Once |smoothed - target| falls below this, the ramp snaps to its
  /// target; with noise disabled the node then quiesces entirely (drops
  /// out of the staircase grid) until the next install wakes it.
  double util_snap_eps = 1e-4;
  /// Event-driven refresh (default): build the due set from the staircase
  /// grid + wake events. false = reference mode: scan all N nodes per tick
  /// applying identical per-node predicates — same results, no skipping —
  /// used by the determinism A/B gate in CI.
  bool event_driven_ticks = true;

  std::uint64_t seed = 42;

  /// Worker threads for intra-tick node/job sweeps: 0 = hardware
  /// concurrency, 1 = fully serial (no pool is ever created). Results are
  /// bit-identical for every setting: all randomness is drawn from
  /// per-node streams and every reduction runs serially in index order.
  std::size_t worker_threads = 0;
  /// Clusters below this node count never create a pool, and sweeps over
  /// fewer indices than this run inline even when a pool exists — fan-out
  /// overhead beats the win on small populations (BENCH_tick.json: the
  /// pool still loses at 1024 nodes on one core; aligned with the
  /// collector's parallel_threshold).
  std::size_t parallel_node_threshold = 2048;
  /// Indices per pool chunk in a parallel sweep.
  std::size_t parallel_grain = 256;

  /// Paper arrival rule: submit a fresh random job whenever the queue is
  /// empty. When false, jobs come only from submit()/a trace.
  bool auto_generate_jobs = true;
  workload::NpbClass npb_class = workload::NpbClass::kD;
  /// Fraction of generated jobs marked privileged (§II.A): their nodes
  /// are excluded from A_candidate by the dynamic candidate selector.
  double privileged_job_fraction = 0.0;
  /// Override the generated application mix (empty = the paper's five
  /// NPB benchmarks). npb_extended_suite() adds MG/FT/IS.
  std::vector<workload::AppModel> app_suite;

  /// Gates the wall-clock cycle-phase span timers (obs/spans.hpp). Off,
  /// the registry still accumulates every deterministic counter/gauge but
  /// tick/cycle scopes skip their clock reads — the configuration the
  /// bench uses to price the instrumentation.
  bool obs_timing = true;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  /// Installs the power manager (defaults to NoCappingManager). The
  /// cluster owns it.
  void set_manager(std::unique_ptr<power::PowerManagerBase> manager);
  [[nodiscard]] power::PowerManagerBase& manager() { return *manager_; }

  /// Submits an externally created job (used by trace replay).
  void submit(workload::Job job);
  /// Loads a whole trace; entries are submitted at their recorded times.
  void load_trace(const workload::WorkloadTrace& trace);

  /// Advances simulated time by `duration` (must be a multiple of tick).
  void run(Seconds duration);

  // -- state ------------------------------------------------------------------
  [[nodiscard]] Seconds now() const { return sim_.now(); }
  [[nodiscard]] const std::vector<hw::Node>& nodes() const { return nodes_; }
  [[nodiscard]] std::vector<hw::Node>& nodes() { return nodes_; }
  [[nodiscard]] const sched::Scheduler& scheduler() const { return *sched_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  /// Wall-socket power at the last tick.
  [[nodiscard]] Watts last_power() const { return last_power_; }
  /// Report from the manager's last control cycle.
  [[nodiscard]] const power::ManagerReport& last_report() const {
    return last_report_;
  }

  /// All controllable node ids (the natural A_candidate pool).
  [[nodiscard]] std::vector<hw::NodeId> controllable_nodes() const;

  /// Sum over nodes of per-node theoretical maxima (P_thy, §II.D) at the
  /// wall socket.
  [[nodiscard]] Watts theoretical_peak() const;

  /// Per-node delivered traffic fractions from the last tick (all 1.0
  /// when interconnect contention is disabled).
  [[nodiscard]] const std::vector<double>& last_delivered_fractions() const {
    return delivered_;
  }

  /// Nodes re-evaluated by the last tick's refresh pass (the due set:
  /// staircase grid + wake events). The quiescence tests and the
  /// pcap_cluster_nodes_refreshed gauge read this.
  [[nodiscard]] std::size_t last_refreshed_nodes() const {
    return last_refreshed_;
  }

  /// The SoA pool backing every node's hot state; exposed for tests and
  /// benchmarks that assert on pool-level invariants.
  [[nodiscard]] const hw::NodeStatePool& node_pool() const {
    return *node_pool_;
  }

  /// The node-local failsafe watchdog (always constructed; inert unless
  /// config.watchdog.timeout_cycles > 0).
  [[nodiscard]] const hw::FailsafeWatchdog& watchdog() const {
    return *watchdog_;
  }

  /// The worker pool driving intra-tick sweeps — shared with the manager's
  /// telemetry collector, and available to callers running their own
  /// cluster-level sweeps. nullptr when the cluster runs serial (small
  /// population or worker_threads == 1).
  [[nodiscard]] common::ThreadPool* thread_pool() const {
    return pool_.get();
  }

  // -- measurement ------------------------------------------------------------
  /// Starts/stops recording per-cycle points and finished-job records.
  void start_recording();
  [[nodiscard]] const metrics::TraceRecorder& recorder() const;
  [[nodiscard]] const std::vector<metrics::JobRecord>& finished_records()
      const {
    return finished_records_;
  }
  /// Clears recorded data (not simulation state).
  void clear_recording();

  /// Record of jobs generated so far (submit time/app/nprocs) — exportable
  /// as a workload trace for replay experiments.
  [[nodiscard]] const workload::WorkloadTrace& generated_trace() const {
    return generated_trace_;
  }

  /// The cluster-owned metrics registry: engine + cluster + manager series
  /// all live here. Frozen at the first tick, so install managers first.
  /// Export with metrics().prometheus_text() / metrics().json_snapshot().
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

 private:
  /// Per-node device-usage target, rewritten only when an install event
  /// (launch, phase change, retirement) lands on the node.
  struct UsageTarget {
    double cpu = 0.0;
    double mem_fraction = 0.02;
    double nic_bytes = 0.0;
    bool busy = false;
  };

  static constexpr std::uint32_t kNoJob = 0xffffffffu;
  /// Nodes per staircase block; blocks rotate through the refresh grid so
  /// the due set stays cache-linear runs of 64 slots.
  static constexpr std::size_t kBlock = 64;

  void tick();
  void ensure_queue_nonempty();

  // -- tick stages (see tick() for ordering rationale) -----------------------
  void drain_level_changes();
  void drain_pending_installs(std::int64_t tk, double now_s);
  void launch_jobs(Seconds now, std::int64_t tk);
  void advance_jobs(Seconds now, Seconds dt);
  void retire_finished();
  void build_due_set(std::int64_t tk);
  void refresh_due_nodes(std::int64_t tk, double now_s, double dt_s);

  /// Re-points node `i` at its owner's current phase (or idle), after
  /// fast-forwarding ramp/noise through tick tk-1 under the *old* target
  /// and temperature through the previous tick boundary under the old
  /// power — the new target only shapes ticks >= tk, exactly as if every
  /// tick had been stepped. Wakes the node (staircase + forced list).
  void install_target(std::size_t i, std::int64_t tk, double now_s);
  /// Closed-form staircase step: k = tk - last_refresh ramp steps at once
  /// plus one exact k-step OU transition, writing the pool utilisation.
  void advance_util_to(std::size_t i, std::int64_t tk);

  ClusterConfig config_;
  common::Rng rng_;
  sim::Simulation sim_;
  /// SoA storage for all hot per-node state; nodes_ are views into it.
  /// Declared before nodes_ so the views never dangle.
  std::unique_ptr<hw::NodeStatePool> node_pool_;
  std::vector<hw::Node> nodes_;
  std::vector<common::OrnsteinUhlenbeck> util_noise_;
  std::vector<double> smoothed_util_;
  std::vector<double> delivered_;
  /// One independent noise stream per node (root fork "util-noise",
  /// child = stream(node id)): draws are a pure function of (seed, node,
  /// refresh history), never of sweep order or worker count — the
  /// precondition for parallel and event-driven ticks alike.
  std::vector<common::Rng> noise_rngs_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<sched::Scheduler> sched_;
  std::unique_ptr<interconnect::Interconnect> fabric_;
  std::optional<workload::JobGenerator> generator_;
  hw::SystemPowerMeter meter_;
  /// Declared before manager_: managers hold a raw pointer into it.
  std::unique_ptr<hw::FailsafeWatchdog> watchdog_;
  std::unique_ptr<power::PowerManagerBase> manager_;

  // -- per-node event/staircase state ----------------------------------------
  std::vector<UsageTarget> targets_;
  std::vector<double> offered_;
  /// Last tick (0-based) node i's utilisation was refreshed at; -1 before
  /// the first. The staircase guarantees gaps of at most R ticks while a
  /// node is awake, which bounds the ramp power table.
  std::vector<std::int64_t> last_refresh_tick_;
  /// 0 = quiescent (converged, noiseless), 1 = on the staircase grid,
  /// 2 = transient deactivate request from the parallel refresh shards,
  /// committed (and counted out of block_active_) by the serial fold.
  std::vector<std::uint8_t> util_active_;
  /// Awake-node count per kBlock slots: a due block with count 0 is
  /// skipped whole — the O(active) part of the event-driven claim.
  std::vector<std::uint32_t> block_active_;
  /// bit0: utilisation install forced this tick; bit1: power-only wake
  /// (DVFS level moved). Either bit puts the node in the due set.
  std::vector<std::uint8_t> forced_mark_;
  std::vector<std::uint32_t> forced_list_;
  std::vector<std::uint32_t> due_scratch_;
  /// Nodes whose install takes effect next tick (phase changes and
  /// retirements detected this tick — the legacy sweep also applied a new
  /// phase's targets one tick after the crossing).
  std::vector<std::uint32_t> pending_installs_;
  /// Running-slot of the job occupying each node (kNoJob when idle) and
  /// the MPI ranks placed there (NIC traffic scales with it).
  std::vector<std::uint32_t> owner_slot_;
  std::vector<double> node_procs_;
  /// d^k for the ramp decay d = exp(-tick/ramp_tau), k in [0, R].
  std::vector<double> ramp_decay_pow_;
  /// Exact OU k-step coefficients for k in [0, R] (index 0 unused): the
  /// staircase bounds awake gaps at R ticks, so every hot-path transition
  /// hits this table instead of recomputing exp/sqrt per node.
  std::vector<common::OrnsteinUhlenbeck::StepCoeffs> ou_step_;

  /// Block partial-sum ledger over per-node true power: leaves are the
  /// accounted power, total() is the meter's IT-side input. Pure function
  /// of the leaves — identical across modes and worker counts.
  hw::PowerSumTree accounted_;

  // -- per-running-job state (aligned with scheduler running order) ----------
  std::vector<workload::Job*> jobs_scratch_;
  std::vector<const workload::Phase*> phases_scratch_;
  std::vector<double> job_power_w_;    ///< Σ accounted leaves over members
  std::vector<double> job_energy_acc_; ///< ∫ job_power dt, flushed at retire
  std::vector<double> job_rate_;       ///< cached bottleneck progress rate
  std::vector<std::uint8_t> job_rate_dirty_;
  std::vector<unsigned char> job_done_;
  std::vector<workload::JobId> finished_scratch_;
  std::vector<double> finished_energy_scratch_;

  Watts last_power_{0.0};
  power::ManagerReport last_report_;
  std::uint64_t ticks_ = 0;
  std::uint64_t control_every_ = 1;
  std::int64_t refresh_every_ = 8;
  bool noise_on_ = true;
  bool fabric_enabled_ = false;
  std::size_t last_refreshed_ = 0;

  /// Owned registry plus the cluster's own series; managers bind into the
  /// same registry via set_manager.
  obs::Registry metrics_;
  obs::GaugeHandle power_gauge_;
  obs::GaugeHandle running_gauge_;
  obs::GaugeHandle queued_gauge_;
  obs::GaugeHandle pool_depth_gauge_;
  obs::GaugeHandle refreshed_gauge_;
  obs::GaugeHandle watchdog_engaged_gauge_;
  obs::GaugeHandle watchdog_pending_gauge_;
  obs::CounterHandle watchdog_engagements_counter_;
  obs::CounterHandle watchdog_transitions_counter_;
  obs::CounterHandle ticks_counter_;
  obs::CounterHandle jobs_finished_counter_;
  obs::CounterHandle node_refreshes_counter_;
  obs::SpanTimer tick_span_;
  obs::SpanTimer node_sweep_span_;
  obs::SpanTimer launch_span_;
  obs::SpanTimer jobs_span_;

  bool recording_ = false;
  std::unique_ptr<metrics::TraceRecorder> recorder_;
  std::vector<metrics::JobRecord> finished_records_;
  workload::WorkloadTrace generated_trace_;
};

}  // namespace pcap::cluster
