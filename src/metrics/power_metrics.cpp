#include "metrics/power_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pcap::metrics {

Watts peak_power(const PowerTrace& trace) {
  if (trace.empty()) return Watts{0.0};
  return Watts{*std::max_element(trace.watts.begin(), trace.watts.end())};
}

Watts mean_power(const PowerTrace& trace) {
  if (trace.empty()) return Watts{0.0};
  double sum = 0.0;
  for (const double w : trace.watts) sum += w;
  return Watts{sum / static_cast<double>(trace.size())};
}

Joules total_energy(const PowerTrace& trace) {
  return mean_power(trace) * trace.duration();
}

Joules overspent_energy(const PowerTrace& trace, Watts threshold) {
  double over = 0.0;
  for (const double w : trace.watts) {
    over += std::max(0.0, w - threshold.value());
  }
  return Joules{over * trace.dt.value()};
}

Seconds time_above(const PowerTrace& trace, Watts threshold) {
  std::size_t n = 0;
  for (const double w : trace.watts) {
    if (w > threshold.value()) ++n;
  }
  return trace.dt * static_cast<double>(n);
}

double accumulated_overspend(const PowerTrace& trace, Watts threshold) {
  const Joules total = total_energy(trace);
  if (total <= Joules{0.0}) return 0.0;
  return overspent_energy(trace, threshold) / total;
}

double fraction_above(const PowerTrace& trace, Watts threshold) {
  if (trace.empty()) return 0.0;
  // Strict comparison, like time_above and overspent_energy: a sample
  // exactly at the threshold is not overspending.
  std::size_t n = 0;
  for (const double w : trace.watts) {
    if (w > threshold.value()) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(trace.size());
}

double energy_delay_product(Joules energy, Seconds delay, int n) {
  if (n < 0) throw std::invalid_argument("energy_delay_product: n < 0");
  return energy.value() * std::pow(delay.value(), n);
}

double work_per_watt(double work_units, Joules energy, Seconds duration) {
  if (duration <= Seconds{0.0} || energy <= Joules{0.0}) return 0.0;
  const Watts mean = energy / duration;
  return work_units / duration.value() / mean.value();
}

double pue(Watts facility, Watts it_equipment) {
  if (it_equipment <= Watts{0.0}) {
    throw std::invalid_argument("pue: IT power must be positive");
  }
  return facility / it_equipment;
}

}  // namespace pcap::metrics
