// Performance metrics over finished jobs (§V.C):
//
//   Performance(cap) = (1/J) * sum_j T_j / T_cap,j
//
// where T_j is the job's full-speed (uncapped) duration and T_cap,j its
// duration under the capping policy. CPLJ counts jobs whose capped time
// equals their uncapped time (within a tolerance: the simulation advances
// in discrete ticks and finish times interpolate inside a tick).
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "workload/job.hpp"

namespace pcap::metrics {

struct JobRecord {
  workload::JobId id = 0;
  std::string app;
  int nprocs = 0;
  double baseline_s = 0.0;  ///< T_j
  double actual_s = 0.0;    ///< T_cap,j
  double energy_j = 0.0;    ///< energy attributed to the job's nodes
  bool privileged = false;

  /// T_j / T_cap,j; degenerates to 0 when actual_s <= 0 — callers that
  /// aggregate (summarize_performance) treat such jobs as lossless
  /// (ratio 1) instead.
  [[nodiscard]] double speed_ratio() const {
    return actual_s > 0.0 ? baseline_s / actual_s : 0.0;
  }
  [[nodiscard]] double slowdown_percent() const {
    return baseline_s > 0.0 ? (actual_s / baseline_s - 1.0) * 100.0 : 0.0;
  }
  /// E x D^n (Penzes & Martin), the per-job energy-delay trade-off.
  [[nodiscard]] double energy_delay(int n = 1) const;
};

/// Per-application aggregation of finished-job records.
struct AppEnergySummary {
  std::string app;
  std::size_t jobs = 0;
  double mean_energy_j = 0.0;
  double mean_duration_s = 0.0;
  double mean_slowdown_percent = 0.0;
};

/// Groups records by application name (sorted by name).
std::vector<AppEnergySummary> summarize_by_app(
    const std::vector<JobRecord>& jobs);

/// Extracts a record from a finished job. Throws if not finished.
JobRecord make_record(const workload::Job& job);

struct PerformanceSummary {
  std::size_t finished_jobs = 0;
  double performance = 1.0;       ///< Performance(cap), in (0, 1]
  std::size_t lossless_jobs = 0;  ///< CPLJ
  double lossless_fraction = 1.0;
  double mean_slowdown_percent = 0.0;
  double worst_slowdown_percent = 0.0;
  /// Jobs with actual_s <= 0 (finished within one tick-interpolation),
  /// counted as lossless with ratio 1.0 and a logged warning.
  std::size_t zero_duration_jobs = 0;
};

/// `lossless_tolerance` is the relative slack under which a job counts as
/// performance-lossless (default 0.5%: within measurement granularity).
PerformanceSummary summarize_performance(const std::vector<JobRecord>& jobs,
                                         double lossless_tolerance = 0.005);

}  // namespace pcap::metrics
