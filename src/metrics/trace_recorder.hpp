// Records per-cycle system state into analysable traces.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "metrics/power_metrics.hpp"

namespace pcap::metrics {

/// One control cycle's observations.
struct CyclePoint {
  double time_s = 0.0;
  double power_w = 0.0;
  double p_low_w = 0.0;
  double p_high_w = 0.0;
  int state = 0;  ///< 0 green, 1 yellow, 2 red
  std::size_t running_jobs = 0;
  std::size_t targets = 0;
  std::size_t transitions = 0;        ///< DVFS changes actually applied
  double manager_utilization = 0.0;   ///< Fig.5 cost model, this cycle
  // Telemetry health for this cycle (zero when healthy / steady green).
  std::size_t stale_nodes = 0;     ///< views past the sample-age bound
  std::size_t fallback_nodes = 0;  ///< views on a substituted estimate
  std::size_t skipped_targets = 0; ///< policy targets the engine refused
  // Actuation reconciliation for this cycle (zero with a perfect channel).
  std::size_t retries = 0;      ///< unacked commands re-sent
  std::size_t divergences = 0;  ///< observed level != believed level
  std::size_t heals = 0;        ///< healing commands emitted
};

class TraceRecorder {
 public:
  explicit TraceRecorder(Seconds dt);

  void record(const CyclePoint& point);

  [[nodiscard]] const std::vector<CyclePoint>& points() const {
    return points_;
  }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// The power trace view used by the power metrics.
  [[nodiscard]] PowerTrace power_trace() const;

  /// Counts of cycles per state {green, yellow, red}.
  [[nodiscard]] std::size_t state_count(int state) const;

  /// CSV export ("time_s,power_w,p_low_w,p_high_w,state,jobs,targets,
  /// stale,skipped,retries,divergences,heals").
  [[nodiscard]] std::string to_csv() const;
  void save(const std::string& path) const;

 private:
  Seconds dt_;
  std::vector<CyclePoint> points_;
};

}  // namespace pcap::metrics
