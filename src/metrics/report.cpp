#include "metrics/report.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/string_util.hpp"

namespace pcap::metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

Table& Table::cell(const std::string& value) {
  pending_.push_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(common::strprintf("%.*f", precision, value));
}

Table& Table::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

Table& Table::cell_percent(double fraction, int precision) {
  return cell(common::strprintf("%.*f%%", precision, fraction * 100.0));
}

void Table::end_row() {
  if (pending_.size() != header_.size()) {
    throw std::logic_error("Table: row width mismatch");
  }
  rows_.push_back(std::move(pending_));
  pending_.clear();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += common::strprintf("%-*s", static_cast<int>(widths[c]) + 2,
                               row[c].c_str());
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace pcap::metrics
