// Power-behaviour metrics (§V.C), including the paper's new
// "accumulative effect of overspending" ΔP×T:
//
//   ΔP×T = ∫_{P > P_th} (P(t) - P_th) dt  /  ∫ P(t) dt
//
// i.e. the overspent energy above the provision threshold relative to the
// total energy — a proxy for the accumulated thermal impact of power
// overload. Also provides the classic survey metrics the paper reviews
// (E×Dⁿ, throughput/W, PUE) for completeness.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace pcap::metrics {

/// A uniformly sampled power trace: sample i is the (piecewise-constant)
/// power over [i*dt, (i+1)*dt).
struct PowerTrace {
  Seconds dt{1.0};
  std::vector<double> watts;

  [[nodiscard]] std::size_t size() const { return watts.size(); }
  [[nodiscard]] bool empty() const { return watts.empty(); }
  [[nodiscard]] Seconds duration() const {
    return dt * static_cast<double>(watts.size());
  }
  void add(Watts p) { watts.push_back(p.value()); }
};

// Threshold-boundary convention: a sample sitting EXACTLY at the
// threshold is not "above" it. overspent_energy contributes zero there
// (max(0, P - th) == 0), so time_above, fraction_above and
// accumulated_overspend all use the same strict P > th comparison — a
// trace pinned at the threshold reports zero overspend, zero time above
// and zero fraction above, never a mix.

/// Peak power P_max of the trace (0 for an empty trace).
Watts peak_power(const PowerTrace& trace);

/// Time-weighted mean power.
Watts mean_power(const PowerTrace& trace);

/// Total energy ∫ P dt.
Joules total_energy(const PowerTrace& trace);

/// Energy spent above the threshold: ∫_{P>th} (P - th) dt.
Joules overspent_energy(const PowerTrace& trace, Watts threshold);

/// Total time spent strictly above the threshold.
Seconds time_above(const PowerTrace& trace, Watts threshold);

/// The paper's ΔP×T metric. Returns 0 for an empty trace or zero total
/// energy.
double accumulated_overspend(const PowerTrace& trace, Watts threshold);

/// Fraction of samples strictly above the threshold (0 for an empty
/// trace). Agrees with time_above on every sample:
/// fraction_above * duration == time_above.
double fraction_above(const PowerTrace& trace, Watts threshold);

// -- survey metrics (§I.B) ---------------------------------------------------

/// E×Dⁿ: energy times delay^n (Penzes & Martin).
double energy_delay_product(Joules energy, Seconds delay, int n = 1);

/// Green500-style efficiency: useful work per watt.
double work_per_watt(double work_units, Joules energy, Seconds duration);

/// Power Usage Effectiveness: facility power over IT power (>= 1).
double pue(Watts facility, Watts it_equipment);

}  // namespace pcap::metrics
