// Power-trace structure analysis: excursions (spikes above a threshold)
// and control-state episodes. Used by the spike-analysis bench to show
// *how* capping changes the power behaviour — shorter, flatter excursions
// — beyond the scalar ΔP×T number.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "metrics/power_metrics.hpp"
#include "metrics/trace_recorder.hpp"

namespace pcap::metrics {

/// A maximal run of consecutive samples strictly above the threshold.
struct Excursion {
  std::size_t start = 0;   ///< index of the first sample above
  std::size_t length = 0;  ///< number of samples above
  double peak_w = 0.0;     ///< maximum power within the excursion
  double area_js = 0.0;    ///< energy above the threshold (joules)

  [[nodiscard]] double duration_s(Seconds dt) const {
    return static_cast<double>(length) * dt.value();
  }
};

/// All excursions of the trace above `threshold`, in time order.
std::vector<Excursion> find_excursions(const PowerTrace& trace,
                                       Watts threshold);

struct ExcursionStats {
  std::size_t count = 0;
  double total_time_s = 0.0;
  double mean_duration_s = 0.0;
  double max_duration_s = 0.0;
  double mean_peak_w = 0.0;
  double max_peak_w = 0.0;
  double total_overspend_j = 0.0;
};

ExcursionStats summarize_excursions(const PowerTrace& trace, Watts threshold);

/// A maximal run of consecutive cycles in one power state.
struct Episode {
  int state = 0;
  std::size_t start = 0;
  std::size_t length = 0;
};

/// All state episodes of a recorded run, in time order.
std::vector<Episode> find_episodes(const std::vector<CyclePoint>& points);

struct EpisodeStats {
  std::size_t count = 0;
  double mean_length = 0.0;
  std::size_t max_length = 0;
};

/// Statistics over all episodes of the given state.
EpisodeStats summarize_episodes(const std::vector<CyclePoint>& points,
                                int state);

/// Counts yellow episodes that re-start within `window` cycles of the
/// previous yellow episode's end — the green/yellow oscillation the LPC
/// policy is claimed to minimise (§IV.A).
std::size_t count_rethrottle_oscillations(
    const std::vector<CyclePoint>& points, std::size_t window);

}  // namespace pcap::metrics
