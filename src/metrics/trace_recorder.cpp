#include "metrics/trace_recorder.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/csv.hpp"

namespace pcap::metrics {

TraceRecorder::TraceRecorder(Seconds dt) : dt_(dt) {
  if (dt <= Seconds{0.0}) {
    throw std::invalid_argument("TraceRecorder: non-positive dt");
  }
}

void TraceRecorder::record(const CyclePoint& point) {
  points_.push_back(point);
}

PowerTrace TraceRecorder::power_trace() const {
  PowerTrace trace;
  trace.dt = dt_;
  trace.watts.reserve(points_.size());
  for (const auto& p : points_) trace.watts.push_back(p.power_w);
  return trace;
}

std::size_t TraceRecorder::state_count(int state) const {
  std::size_t n = 0;
  for (const auto& p : points_) {
    if (p.state == state) ++n;
  }
  return n;
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream out;
  common::CsvWriter w(out, {"time_s", "power_w", "p_low_w", "p_high_w",
                            "state", "jobs", "targets", "stale", "skipped",
                            "retries", "divergences", "heals"});
  for (const auto& p : points_) {
    w.cell(p.time_s)
        .cell(p.power_w)
        .cell(p.p_low_w)
        .cell(p.p_high_w)
        .cell(static_cast<std::int64_t>(p.state))
        .cell(p.running_jobs)
        .cell(p.targets)
        .cell(p.stale_nodes)
        .cell(p.skipped_targets)
        .cell(p.retries)
        .cell(p.divergences)
        .cell(p.heals);
    w.end_row();
  }
  return out.str();
}

void TraceRecorder::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TraceRecorder: cannot write " + path);
  out << to_csv();
}

}  // namespace pcap::metrics
