#include "metrics/trace_analysis.hpp"

#include <algorithm>

namespace pcap::metrics {

std::vector<Excursion> find_excursions(const PowerTrace& trace,
                                       Watts threshold) {
  std::vector<Excursion> out;
  const double th = threshold.value();
  Excursion current;
  bool open = false;
  for (std::size_t i = 0; i < trace.watts.size(); ++i) {
    const double w = trace.watts[i];
    if (w > th) {
      if (!open) {
        current = Excursion{};
        current.start = i;
        open = true;
      }
      ++current.length;
      current.peak_w = std::max(current.peak_w, w);
      current.area_js += (w - th) * trace.dt.value();
    } else if (open) {
      out.push_back(current);
      open = false;
    }
  }
  if (open) out.push_back(current);
  return out;
}

ExcursionStats summarize_excursions(const PowerTrace& trace,
                                    Watts threshold) {
  ExcursionStats s;
  const auto excursions = find_excursions(trace, threshold);
  s.count = excursions.size();
  if (excursions.empty()) return s;
  for (const Excursion& e : excursions) {
    const double d = e.duration_s(trace.dt);
    s.total_time_s += d;
    s.max_duration_s = std::max(s.max_duration_s, d);
    s.mean_peak_w += e.peak_w;
    s.max_peak_w = std::max(s.max_peak_w, e.peak_w);
    s.total_overspend_j += e.area_js;
  }
  s.mean_duration_s = s.total_time_s / static_cast<double>(s.count);
  s.mean_peak_w /= static_cast<double>(s.count);
  return s;
}

std::vector<Episode> find_episodes(const std::vector<CyclePoint>& points) {
  std::vector<Episode> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (out.empty() || out.back().state != points[i].state) {
      out.push_back(Episode{points[i].state, i, 1});
    } else {
      ++out.back().length;
    }
  }
  return out;
}

EpisodeStats summarize_episodes(const std::vector<CyclePoint>& points,
                                int state) {
  EpisodeStats s;
  double total = 0.0;
  for (const Episode& e : find_episodes(points)) {
    if (e.state != state) continue;
    ++s.count;
    total += static_cast<double>(e.length);
    s.max_length = std::max(s.max_length, e.length);
  }
  if (s.count > 0) s.mean_length = total / static_cast<double>(s.count);
  return s;
}

std::size_t count_rethrottle_oscillations(
    const std::vector<CyclePoint>& points, std::size_t window) {
  std::size_t oscillations = 0;
  bool have_previous_yellow_end = false;
  std::size_t previous_yellow_end = 0;
  for (const Episode& e : find_episodes(points)) {
    if (e.state != 1) continue;  // yellow
    if (have_previous_yellow_end &&
        e.start - previous_yellow_end <= window) {
      ++oscillations;
    }
    previous_yellow_end = e.start + e.length;
    have_previous_yellow_end = true;
  }
  return oscillations;
}

}  // namespace pcap::metrics
