// Fixed-width console tables for the benchmark harness, so every bench
// binary prints paper-style rows without hand-rolled formatting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pcap::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& cell(const std::string& value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::int64_t value);
  Table& cell(std::size_t value);
  /// Percent formatting, e.g. cell_percent(0.0213) -> "2.13%".
  Table& cell_percent(double fraction, int precision = 2);
  void end_row();

  /// Renders with column alignment and a rule under the header.
  [[nodiscard]] std::string to_string() const;
  /// Renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

}  // namespace pcap::metrics
