#include "metrics/performance.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace pcap::metrics {

double JobRecord::energy_delay(int n) const {
  if (n < 0) throw std::invalid_argument("JobRecord::energy_delay: n < 0");
  double d = 1.0;
  for (int i = 0; i < n; ++i) d *= actual_s;
  return energy_j * d;
}

std::vector<AppEnergySummary> summarize_by_app(
    const std::vector<JobRecord>& jobs) {
  std::map<std::string, AppEnergySummary> by_app;
  for (const JobRecord& j : jobs) {
    AppEnergySummary& s = by_app[j.app];
    s.app = j.app;
    ++s.jobs;
    s.mean_energy_j += j.energy_j;
    s.mean_duration_s += j.actual_s;
    s.mean_slowdown_percent += j.slowdown_percent();
  }
  std::vector<AppEnergySummary> out;
  out.reserve(by_app.size());
  for (auto& [name, s] : by_app) {
    const auto n = static_cast<double>(s.jobs);
    s.mean_energy_j /= n;
    s.mean_duration_s /= n;
    s.mean_slowdown_percent /= n;
    out.push_back(std::move(s));
  }
  return out;
}

JobRecord make_record(const workload::Job& job) {
  if (job.state() != workload::JobState::kFinished) {
    throw std::invalid_argument("make_record: job not finished");
  }
  JobRecord r;
  r.id = job.id();
  r.app = job.app().name;
  r.nprocs = job.nprocs();
  r.baseline_s = job.baseline_duration().value();
  r.actual_s = job.actual_duration().value();
  r.privileged = job.privileged();
  return r;
}

PerformanceSummary summarize_performance(const std::vector<JobRecord>& jobs,
                                         double lossless_tolerance) {
  if (lossless_tolerance < 0.0) {
    throw std::invalid_argument("summarize_performance: negative tolerance");
  }
  PerformanceSummary s;
  s.finished_jobs = jobs.size();
  if (jobs.empty()) return s;

  double ratio_sum = 0.0;
  double slowdown_sum = 0.0;
  double worst = 0.0;
  std::size_t lossless = 0;
  for (const JobRecord& j : jobs) {
    ratio_sum += j.speed_ratio();
    const double slowdown = j.slowdown_percent();
    slowdown_sum += slowdown;
    worst = std::max(worst, slowdown);
    if (j.actual_s <= j.baseline_s * (1.0 + lossless_tolerance)) {
      ++lossless;
    }
  }
  const auto n = static_cast<double>(jobs.size());
  s.performance = ratio_sum / n;
  s.lossless_jobs = lossless;
  s.lossless_fraction = static_cast<double>(lossless) / n;
  s.mean_slowdown_percent = slowdown_sum / n;
  s.worst_slowdown_percent = worst;
  return s;
}

}  // namespace pcap::metrics
