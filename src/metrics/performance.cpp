#include "metrics/performance.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "common/logging.hpp"

namespace pcap::metrics {

double JobRecord::energy_delay(int n) const {
  if (n < 0) throw std::invalid_argument("JobRecord::energy_delay: n < 0");
  double d = 1.0;
  for (int i = 0; i < n; ++i) d *= actual_s;
  return energy_j * d;
}

std::vector<AppEnergySummary> summarize_by_app(
    const std::vector<JobRecord>& jobs) {
  // Accumulate into local sums and divide only when building the output:
  // an AppEnergySummary never holds a half-built sum in its mean_* fields,
  // whatever happens between accumulation and division.
  struct Accum {
    std::size_t jobs = 0;
    double energy_j = 0.0;
    double duration_s = 0.0;
    double slowdown_percent = 0.0;
  };
  std::map<std::string, Accum> by_app;
  for (const JobRecord& j : jobs) {
    Accum& a = by_app[j.app];
    ++a.jobs;
    a.energy_j += j.energy_j;
    a.duration_s += j.actual_s;
    a.slowdown_percent += j.slowdown_percent();
  }
  std::vector<AppEnergySummary> out;
  out.reserve(by_app.size());
  for (const auto& [name, a] : by_app) {
    const auto n = static_cast<double>(a.jobs);
    AppEnergySummary s;
    s.app = name;
    s.jobs = a.jobs;
    s.mean_energy_j = a.energy_j / n;
    s.mean_duration_s = a.duration_s / n;
    s.mean_slowdown_percent = a.slowdown_percent / n;
    out.push_back(std::move(s));
  }
  return out;
}

JobRecord make_record(const workload::Job& job) {
  if (job.state() != workload::JobState::kFinished) {
    throw std::invalid_argument("make_record: job not finished");
  }
  JobRecord r;
  r.id = job.id();
  r.app = job.app().name;
  r.nprocs = job.nprocs();
  r.baseline_s = job.baseline_duration().value();
  r.actual_s = job.actual_duration().value();
  r.privileged = job.privileged();
  return r;
}

PerformanceSummary summarize_performance(const std::vector<JobRecord>& jobs,
                                         double lossless_tolerance) {
  if (lossless_tolerance < 0.0) {
    throw std::invalid_argument("summarize_performance: negative tolerance");
  }
  PerformanceSummary s;
  s.finished_jobs = jobs.size();
  if (jobs.empty()) return s;

  double ratio_sum = 0.0;
  double slowdown_sum = 0.0;
  double worst = 0.0;
  std::size_t lossless = 0;
  std::size_t zero_duration = 0;
  for (const JobRecord& j : jobs) {
    if (j.actual_s <= 0.0) {
      // A job whose capped duration interpolated to (or below) zero within
      // one tick finished at least as fast as its baseline: speed_ratio()
      // would degenerate to 0 and drag Performance(cap) toward 0, so count
      // it as lossless with ratio 1 and zero slowdown instead.
      ++zero_duration;
      ratio_sum += 1.0;
      ++lossless;
      continue;
    }
    ratio_sum += j.speed_ratio();
    const double slowdown = j.slowdown_percent();
    slowdown_sum += slowdown;
    worst = std::max(worst, slowdown);
    if (j.actual_s <= j.baseline_s * (1.0 + lossless_tolerance)) {
      ++lossless;
    }
  }
  if (zero_duration > 0) {
    PCAP_WARN("summarize_performance: %zu zero-duration job(s) counted as "
              "lossless (ratio 1.0)",
              zero_duration);
  }
  const auto n = static_cast<double>(jobs.size());
  s.zero_duration_jobs = zero_duration;
  s.performance = ratio_sum / n;
  s.lossless_jobs = lossless;
  s.lossless_fraction = static_cast<double>(lossless) / n;
  s.mean_slowdown_percent = slowdown_sum / n;
  s.worst_slowdown_percent = worst;
  return s;
}

}  // namespace pcap::metrics
