#include "sim/simulation.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>

namespace pcap::sim {

void PeriodicHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool PeriodicHandle::active() const { return state_ && !state_->cancelled; }

EventId Simulation::schedule_in(Seconds delay, EventFn fn) {
  if (delay < Seconds{0.0}) {
    throw std::invalid_argument("Simulation::schedule_in: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(Seconds t, EventFn fn) {
  if (t < now_) {
    throw std::invalid_argument("Simulation::schedule_at: time in the past");
  }
  return queue_.schedule(t, std::move(fn));
}

PeriodicHandle Simulation::every(Seconds period, Seconds offset,
                                 std::function<void(Seconds)> fn) {
  if (period <= Seconds{0.0}) {
    throw std::invalid_argument("Simulation::every: non-positive period");
  }
  auto state = std::make_shared<PeriodicHandle::State>();
  auto shared_fn =
      std::make_shared<std::function<void(Seconds)>>(std::move(fn));
  schedule_periodic(now_ + offset, period, state, shared_fn);
  return PeriodicHandle{state};
}

void Simulation::schedule_periodic(
    Seconds first, Seconds period,
    std::shared_ptr<PeriodicHandle::State> state,
    std::shared_ptr<std::function<void(Seconds)>> fn) {
  queue_.schedule(first, [this, first, period, state, fn] {
    if (state->cancelled) return;
    (*fn)(first);
    if (!state->cancelled) {
      schedule_periodic(first + period, period, state, fn);
    }
  });
}

void Simulation::run_until(Seconds end) {
  if (end < now_) {
    throw std::invalid_argument("Simulation::run_until: end in the past");
  }
  while (!queue_.empty() && queue_.next_time() <= end) {
    Event ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
    ++processed_;
  }
  now_ = end;
  publish_metrics();
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.pop();
  if (ev.time < now_) {
    throw std::logic_error("Simulation::step: event time before now");
  }
  now_ = ev.time;
  ev.fn();
  ++processed_;
  publish_metrics();
  return true;
}

void Simulation::reset() {
  queue_.clear();
  now_ = Seconds{0.0};
  processed_ = 0;
  publish_metrics();
}

void Simulation::attach_metrics(obs::Registry& reg) {
  metrics_ = &reg;
  events_counter_ = reg.counter("pcap_sim_events_total",
                                "Discrete events processed by the engine");
  pending_gauge_ = reg.gauge("pcap_sim_pending_events",
                             "Events waiting in the queue");
  publish_metrics();
}

}  // namespace pcap::sim
