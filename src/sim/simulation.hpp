// Discrete-event simulation engine.
//
// The engine owns the clock and the event queue. Components register
// one-shot events or periodic processes; run_until() advances the clock to
// each event in order. All model time in the library flows from here.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "obs/registry.hpp"
#include "sim/event_queue.hpp"

namespace pcap::sim {

class Simulation;

/// Handle to a periodic process; cancel() stops future firings.
class PeriodicHandle {
 public:
  PeriodicHandle() = default;

  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class Simulation;
  struct State {
    bool cancelled = false;
  };
  explicit PeriodicHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Simulation {
 public:
  Simulation() = default;

  [[nodiscard]] Seconds now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Schedules `fn` after a relative delay (>= 0).
  EventId schedule_in(Seconds delay, EventFn fn);

  /// Schedules `fn` at an absolute time (>= now()).
  EventId schedule_at(Seconds t, EventFn fn);

  /// Registers `fn(now)` to fire every `period`, first at now()+offset.
  /// The callback runs until cancelled or the simulation ends.
  PeriodicHandle every(Seconds period, Seconds offset,
                       std::function<void(Seconds)> fn);

  /// Runs events until the queue is empty or the clock would pass `end`.
  /// The clock finishes exactly at `end`.
  void run_until(Seconds end);

  /// Runs a single event if one is pending; returns false otherwise.
  bool step();

  /// Drops all pending events and resets the clock to zero.
  void reset();

  /// Registers the engine's series (events processed, pending events) in
  /// `reg` and publishes them at the end of every run_until()/step().
  /// The registry must outlive the simulation.
  void attach_metrics(obs::Registry& reg);

 private:
  void publish_metrics() {
    if (metrics_ == nullptr) return;
    metrics_->set_total(events_counter_, processed_);
    metrics_->set(pending_gauge_, static_cast<double>(queue_.size()));
  }

  void schedule_periodic(Seconds first, Seconds period,
                         std::shared_ptr<PeriodicHandle::State> state,
                         std::shared_ptr<std::function<void(Seconds)>> fn);

  EventQueue queue_;
  Seconds now_{0.0};
  std::uint64_t processed_ = 0;
  obs::Registry* metrics_ = nullptr;
  obs::CounterHandle events_counter_;
  obs::GaugeHandle pending_gauge_;
};

}  // namespace pcap::sim
