#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace pcap::sim {

EventId EventQueue::schedule(Seconds t, EventFn fn) {
  const EventId id = next_id_++;
  cancelled_.push_back(false);
  heap_.push(Event{t, next_sequence_++, id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id]) return false;
  cancelled_[id] = true;
  if (live_count_ == 0) return false;
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && cancelled_[heap_.top().id]) {
    // const_cast is confined here: popping a cancelled entry does not
    // change the queue's observable (live) state.
    const_cast<std::priority_queue<Event, std::vector<Event>, Later>&>(heap_)
        .pop();
  }
}

Seconds EventQueue::next_time() const {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty");
  return heap_.top().time;
}

Event EventQueue::pop() {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty");
  // priority_queue::top() is const; moving out then popping is the standard
  // idiom for move-only payloads.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  cancelled_[ev.id] = true;  // fired events cannot be cancelled again
  assert(live_count_ > 0);
  --live_count_;
  return ev;
}

void EventQueue::clear() {
  heap_ = {};
  cancelled_.clear();
  live_count_ = 0;
}

}  // namespace pcap::sim
