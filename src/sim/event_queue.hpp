// Priority queue of timed events with stable FIFO ordering at equal times.
//
// Stability matters: the cluster schedules the telemetry tick, the job tick
// and the manager cycle at the same instants, and their relative order must
// be the insertion order, deterministically, or experiments would not be
// reproducible across platforms.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace pcap::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

struct Event {
  Seconds time{0.0};
  std::uint64_t sequence = 0;  // tie-breaker: insertion order
  EventId id = 0;
  EventFn fn;
};

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`; returns a handle for cancel().
  EventId schedule(Seconds t, EventFn fn);

  /// Lazily cancels an event; it stays queued but will not fire.
  /// Returns false if the id was never issued or already fired/cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] Seconds next_time() const;

  /// Pops and returns the earliest live event. Requires !empty().
  Event pop();

  void clear();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
  mutable std::vector<bool> cancelled_;  // indexed by EventId
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace pcap::sim
