#include "power/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pcap::power {

namespace {

constexpr double kPi = 3.14159265358979323846;

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

void PredictionParams::validate() const {
  require(kind == "ewma" || kind == "fft",
          "prediction.kind must be \"ewma\" or \"fft\"");
  require(horizon_cycles >= 1, "prediction.horizon_cycles must be >= 1");
  require(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
          "prediction.ewma_alpha must be in (0, 1]");
  require(ewma_beta > 0.0 && ewma_beta <= 1.0,
          "prediction.ewma_beta must be in (0, 1]");
  require(window_cycles >= 8, "prediction.window_cycles must be >= 8");
  require(refresh_cycles >= 0, "prediction.refresh_cycles must be >= 0");
}

// -- EwmaTrendPredictor --------------------------------------------------

EwmaTrendPredictor::EwmaTrendPredictor(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {}

void EwmaTrendPredictor::observe(Watts system_power) {
  const double x = system_power.value();
  if (seen_ == 0) {
    level_ = x;
  } else if (seen_ == 1) {
    // Classic Holt initialisation: the first trend estimate is the first
    // observed difference, not a smoothed zero that would lag every ramp.
    trend_ = x - level_;
    level_ = x;
  } else {
    const double prev_level = level_;
    level_ = alpha_ * x + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  }
  ++seen_;
}

std::optional<Watts> EwmaTrendPredictor::forecast(std::int64_t h) const {
  if (seen_ < 2) return std::nullopt;
  return Watts{std::max(0.0, level_ + static_cast<double>(h) * trend_)};
}

std::vector<double> EwmaTrendPredictor::checkpoint_state() const {
  return {level_, trend_, static_cast<double>(seen_)};
}

void EwmaTrendPredictor::restore_state(const std::vector<double>& state) {
  require(state.size() == 3, "ewma predictor state must have 3 entries");
  level_ = state[0];
  trend_ = state[1];
  seen_ = static_cast<std::int64_t>(state[2]);
  require(seen_ >= 0, "ewma predictor sample count must be >= 0");
}

// -- PeriodicityPredictor ------------------------------------------------

PeriodicityPredictor::PeriodicityPredictor(std::int64_t window,
                                           double ewma_alpha,
                                           double ewma_beta)
    : window_(window), fallback_(ewma_alpha, ewma_beta) {
  require(window_ >= 8, "periodicity window must be >= 8");
  ring_.assign(static_cast<std::size_t>(window_), 0.0);
}

void PeriodicityPredictor::observe(Watts system_power) {
  ring_[static_cast<std::size_t>(next_)] = system_power.value();
  next_ = (next_ + 1) % window_;
  ++count_;
  fallback_.observe(system_power);
}

void PeriodicityPredictor::refresh() {
  if (count_ < window_) return;
  const auto n = static_cast<std::size_t>(window_);
  // Unroll the ring into chronological order: x[0] is the oldest sample
  // in the window, x[n-1] the newest (observed at count_ - 1).
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = ring_[static_cast<std::size_t>((next_ + static_cast<std::int64_t>(
                                                       i)) %
                                          window_)];
  }
  // Least-squares line through the window: x[t] ≈ mean + trend·(t - t̄).
  const double nd = static_cast<double>(n);
  const double t_bar = (nd - 1.0) / 2.0;
  double sum = 0.0;
  for (double v : x) sum += v;
  const double mean = sum / nd;
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dt = static_cast<double>(i) - t_bar;
    sxy += dt * (x[i] - mean);
    sxx += dt * dt;
  }
  const double trend = sxx > 0.0 ? sxy / sxx : 0.0;
  // Dominant DFT bin of the detrended residual. Bin k corresponds to
  // period n/k samples; k ranges over [1, n/2] — anything slower than the
  // window is the trend's job, anything faster than 2 samples aliases.
  double best_power = 0.0;
  double best_re = 0.0;
  double best_im = 0.0;
  std::size_t best_k = 0;
  for (std::size_t k = 1; k <= n / 2; ++k) {
    double re = 0.0;
    double im = 0.0;
    const double w = 2.0 * kPi * static_cast<double>(k) / nd;
    for (std::size_t i = 0; i < n; ++i) {
      const double r =
          x[i] - mean - trend * (static_cast<double>(i) - t_bar);
      const double a = w * static_cast<double>(i);
      re += r * std::cos(a);
      im -= r * std::sin(a);
    }
    const double p = re * re + im * im;
    if (p > best_power) {
      best_power = p;
      best_re = re;
      best_im = im;
      best_k = k;
    }
  }
  mean_ = mean;
  trend_ = trend;
  fit_at_ = count_;
  if (best_k == 0) {
    // Flat residual (constant input): pure mean + trend model.
    amp_ = 0.0;
    phase_ = 0.0;
    period_ = 0.0;
  } else {
    // X_k = Σ r[i]·e^{-jwi}; the bin's contribution to r[i] is
    // (2/n)·|X_k|·cos(w·i + arg X_k).
    amp_ = 2.0 / nd * std::sqrt(best_power);
    phase_ = std::atan2(best_im, best_re);
    period_ = nd / static_cast<double>(best_k);
  }
  model_valid_ = true;
}

std::optional<Watts> PeriodicityPredictor::forecast(std::int64_t h) const {
  if (!model_valid_) return fallback_.forecast(h);
  // The window used at fit time covered observation indices
  // [fit_at_ - window_, fit_at_); its local index i maps to observation
  // fit_at_ - window_ + i. The forecast target is observation
  // count_ - 1 + h, i.e. local index:
  const double i = static_cast<double>(count_ - 1 + h - (fit_at_ - window_));
  const double t_bar = (static_cast<double>(window_) - 1.0) / 2.0;
  double v = mean_ + trend_ * (i - t_bar);
  if (period_ > 0.0) {
    v += amp_ * std::cos(2.0 * kPi * i / period_ + phase_);
  }
  return Watts{std::max(0.0, v)};
}

std::vector<double> PeriodicityPredictor::checkpoint_state() const {
  std::vector<double> s;
  s.reserve(ring_.size() + 11);
  s.push_back(static_cast<double>(window_));
  s.push_back(static_cast<double>(next_));
  s.push_back(static_cast<double>(count_));
  s.push_back(model_valid_ ? 1.0 : 0.0);
  s.push_back(mean_);
  s.push_back(trend_);
  s.push_back(amp_);
  s.push_back(phase_);
  s.push_back(period_);
  s.push_back(static_cast<double>(fit_at_));
  for (double fb : fallback_.checkpoint_state()) s.push_back(fb);
  s.insert(s.end(), ring_.begin(), ring_.end());
  return s;
}

void PeriodicityPredictor::restore_state(const std::vector<double>& state) {
  const std::size_t header = 13;  // 10 model doubles + 3 fallback doubles
  require(state.size() == header + ring_.size(),
          "periodicity predictor state has the wrong length");
  require(static_cast<std::int64_t>(state[0]) == window_,
          "periodicity predictor window mismatch");
  next_ = static_cast<std::int64_t>(state[1]);
  count_ = static_cast<std::int64_t>(state[2]);
  require(next_ >= 0 && next_ < window_ && count_ >= 0,
          "periodicity predictor cursor out of range");
  model_valid_ = state[3] != 0.0;
  mean_ = state[4];
  trend_ = state[5];
  amp_ = state[6];
  phase_ = state[7];
  period_ = state[8];
  fit_at_ = static_cast<std::int64_t>(state[9]);
  fallback_.restore_state({state[10], state[11], state[12]});
  std::copy(state.begin() + static_cast<std::ptrdiff_t>(header), state.end(),
            ring_.begin());
}

PredictorPtr make_predictor(const PredictionParams& params) {
  params.validate();
  if (params.kind == "ewma") {
    return std::make_unique<EwmaTrendPredictor>(params.ewma_alpha,
                                                params.ewma_beta);
  }
  return std::make_unique<PeriodicityPredictor>(
      params.window_cycles, params.ewma_alpha, params.ewma_beta);
}

// -- ForecastScorer ------------------------------------------------------

void ForecastScorer::reset(std::int64_t horizon) {
  horizon_ = std::max<std::int64_t>(1, horizon);
  pending_.assign(static_cast<std::size_t>(horizon_), 0.0);
  valid_.assign(static_cast<std::size_t>(horizon_), 0);
  pos_ = 0;
  filled_ = 0;
  overshoots_ = 0;
  misses_ = 0;
  scored_ = 0;
}

std::optional<ForecastScorer::Score> ForecastScorer::step(
    double realized, double p_low, const std::optional<double>& forecast) {
  if (horizon_ == 0) reset(1);
  std::optional<Score> out;
  // The slot about to be overwritten holds the forecast made h cycles
  // ago whose target is the present cycle.
  if (filled_ >= horizon_ && valid_[static_cast<std::size_t>(pos_)] != 0) {
    const double predicted = pending_[static_cast<std::size_t>(pos_)];
    Score s;
    s.abs_error = std::abs(predicted - realized);
    s.overshoot = predicted >= p_low && realized < p_low;
    s.miss = predicted < p_low && realized >= p_low;
    if (s.overshoot) ++overshoots_;
    if (s.miss) ++misses_;
    ++scored_;
    out = s;
  }
  pending_[static_cast<std::size_t>(pos_)] = forecast.value_or(0.0);
  valid_[static_cast<std::size_t>(pos_)] = forecast.has_value() ? 1 : 0;
  pos_ = (pos_ + 1) % horizon_;
  if (filled_ < horizon_) ++filled_;
  return out;
}

}  // namespace pcap::power
