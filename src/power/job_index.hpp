// Persistent job -> candidate-node index for the control plane.
//
// The manager's context assembly needs, per running job, the job's nodes
// restricted to A_candidate. Rebuilding that from
// scheduler.running_jobs() x job->nodes() costs one hash probe per job
// plus a full membership scan per node on every non-green cycle; at
// Tianhe-1A candidate counts that rebuild rivals the telemetry sweep
// itself. This index instead mirrors the scheduler's running set
// incrementally: it replays the scheduler's append-only JobEvent log from
// a cursor (O(churn) per cycle, not O(jobs)), captures each job's node
// list once at start, and refilters against the candidate set only when
// the set actually changes.
//
// Invariants (pinned by tests/test_job_index.cpp):
//   * entries() mirrors scheduler.running_jobs() element-for-element, in
//     order, after every sync() — starts append, finishes erase in place.
//   * Entry::candidate_nodes is Nodes(J) ∩ A_candidate in Nodes(J) order —
//     the exact order the serial rebuild aggregated per-job power in, so
//     the switch to the index cannot move a single floating-point add.
//   * Entry capacity is recycled through a spare pool: steady-state churn
//     allocates nothing once the working set has been seen.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hw/node.hpp"
#include "sched/scheduler.hpp"
#include "workload/job.hpp"

namespace pcap::power {

class JobIndex {
 public:
  struct Entry {
    workload::JobId id = 0;
    /// Nodes(J) as allocated at job start (immutable for a job's life).
    std::vector<hw::NodeId> nodes;
    /// Nodes(J) ∩ A_candidate, preserving Nodes(J) order.
    std::vector<hw::NodeId> candidate_nodes;
  };

  /// Declares A_candidate. Marks every entry's filtered list dirty; the
  /// refilter itself happens on the next sync(), once.
  void set_candidate_set(const std::vector<hw::NodeId>& candidates);

  /// Replays scheduler events past the cursor and refilters after
  /// candidate churn. Idempotent: calling twice without intervening
  /// scheduler activity is a no-op.
  void sync(const sched::Scheduler& scheduler);

  /// One entry per running job, in scheduler running order (valid after
  /// sync()).
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Events consumed so far (diagnostics / tests).
  [[nodiscard]] std::size_t event_cursor() const { return event_cursor_; }

  /// Monotonic stamp bumped whenever entries() could have changed shape —
  /// any replayed start/finish or candidate refilter. The incremental
  /// context plane compares epochs across builds: equal epochs mean the
  /// job list (ids, order, candidate_nodes) is byte-for-byte the one the
  /// previous context was assembled from.
  [[nodiscard]] std::uint64_t change_epoch() const { return change_epoch_; }

 private:
  void refilter(Entry& entry) const;
  [[nodiscard]] bool is_candidate(hw::NodeId id) const {
    return static_cast<std::size_t>(id) < is_candidate_.size() &&
           is_candidate_[id] != 0;
  }

  std::vector<Entry> entries_;
  std::vector<Entry> spare_;  ///< retired entries, kept for their capacity
  std::size_t event_cursor_ = 0;
  std::vector<unsigned char> is_candidate_;  ///< node id -> membership
  bool filter_dirty_ = false;
  std::uint64_t change_epoch_ = 0;
};

}  // namespace pcap::power
