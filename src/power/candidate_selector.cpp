#include "power/candidate_selector.hpp"

#include <stdexcept>
#include <unordered_set>

namespace pcap::power {

CandidateSelector::CandidateSelector(CandidateSelectorParams params)
    : params_(params) {
  if (params_.reselect_period_cycles <= 0) {
    throw std::invalid_argument(
        "CandidateSelector: re-selection period must be positive");
  }
}

std::vector<hw::NodeId> CandidateSelector::select(
    const std::vector<hw::Node>& nodes,
    const sched::Scheduler& scheduler) const {
  // Nodes hosting privileged jobs are off limits for the job's lifetime.
  std::unordered_set<hw::NodeId> privileged_nodes;
  if (params_.exclude_privileged) {
    for (const workload::JobId jid : scheduler.running_jobs()) {
      const workload::Job* job = scheduler.find(jid);
      if (job == nullptr || !job->privileged()) continue;
      privileged_nodes.insert(job->nodes().begin(), job->nodes().end());
    }
  }

  std::vector<hw::NodeId> out;
  for (const hw::Node& node : nodes) {
    if (!node.controllable()) continue;
    if (privileged_nodes.count(node.id()) != 0) continue;
    out.push_back(node.id());
    if (params_.max_candidates > 0 &&
        out.size() >= static_cast<std::size_t>(params_.max_candidates)) {
      break;
    }
  }
  return out;
}

bool CandidateSelector::due() {
  if (!ever_selected_) {
    ever_selected_ = true;
    cycles_since_selection_ = 0;
    return true;
  }
  if (++cycles_since_selection_ >= params_.reselect_period_cycles) {
    cycles_since_selection_ = 0;
    return true;
  }
  return false;
}

}  // namespace pcap::power
