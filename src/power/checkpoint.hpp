// Controller checkpoint/warm-restart (§II carried into the failure
// domain).
//
// A restarted controller that relearns thresholds from scratch spends a
// whole training period uncapped — at 93 % provisioning that is an
// unacceptable window. These structs capture the control plane's learned
// and believed state — threshold learner window, Algorithm 1's A_degraded
// and green timer, the reconciler's shadow tables, the collector's cycle
// clock, and (for the zone tree) per-zone quiescence hints — so a fresh
// manager restored from a checkpoint resumes capped behaviour on its
// first cycle.
//
// Encoding is line-oriented text with doubles in C99 hexfloat ("%a"), so
// a decode → encode round trip is bit-exact: the restored learner
// thresholds are the checkpointed ones to the last ulp, which is what
// makes warm-restart runs bit-identical across worker counts and across
// the save/load boundary. Not checkpointed (by design): RNG fault-stream
// positions (the injectors model the outside world, which does not
// rewind), policy selection scratch (rebuilt from the first context), and
// lifetime observability counters (process-scoped, a restart starts new
// series).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/node.hpp"

namespace pcap::power {

struct LearnerCheckpoint {
  double p_peak = 0.0;
  double running_peak = 0.0;
  double window_peak = 0.0;
  std::int64_t cycles = 0;
  std::int64_t cycles_since_adjust = 0;
  std::int64_t adjustments = 0;
  bool frozen = false;
  /// Training ended early via set_manual_peak() (v2).
  bool training_done = false;
};

struct EngineCheckpoint {
  std::int64_t time_g = 0;
  std::vector<hw::NodeId> degraded;  ///< A_degraded, ascending
};

struct ReconcilerSlotCheckpoint {
  hw::NodeId node = 0;
  hw::Level pending_target = 0;
  std::uint64_t issued_cycle = 0;
  std::uint64_t next_retry_cycle = 0;
  int pending_retries = 0;
  hw::Level believed_level = 0;
  std::uint64_t observed_cycle = 0;
  bool has_pending = false;
  bool has_believed = false;
  bool unresponsive = false;
};

struct ReconcilerCheckpoint {
  /// Non-empty slots only, ascending node id.
  std::vector<ReconcilerSlotCheckpoint> slots;
};

/// One CappingManager's restorable state (flat manager or zone shard).
struct ShardCheckpoint {
  LearnerCheckpoint learner;
  EngineCheckpoint engine;
  ReconcilerCheckpoint reconciler;
  /// Collector cycle clock: believed/observed stamps above are in this
  /// timebase, so the restored collector must resume from it or every
  /// ack comparison would be skewed.
  std::uint64_t collector_cycles = 0;
  /// Opaque PowerPredictor::checkpoint_state() image (v2); empty when the
  /// manager runs without a predictor. A warm-restarted predictor must
  /// resume bit-identically or the first post-restart forecast (and thus
  /// the first predictive elevation) would diverge from the uninterrupted
  /// run.
  std::vector<double> predictor_state;
  /// Opaque TargetSelectionPolicy::checkpoint_state() image (v2); empty
  /// for stateless policies. Carries e.g. PI-C's integral term.
  std::vector<double> policy_state;
};

struct ZoneHintCheckpoint {
  bool hints_valid = false;
  double power = 0.0;
  double capacity = 0.0;
  bool floored = false;
  bool ever_measured = false;
};

/// The whole zone tree: root learner + per-shard state + quiescence hints.
struct TreeCheckpoint {
  LearnerCheckpoint learner;  ///< the root's (only live) learner
  std::vector<ShardCheckpoint> shards;
  std::vector<ZoneHintCheckpoint> hints;  ///< parallel to shards
  int last_state = 0;                     ///< root dirty-trigger state
  std::uint64_t job_events_seen = 0;
  /// Root predictor image (v2); the shards' own predictor_state vectors
  /// stay empty — prediction runs at the root only.
  std::vector<double> predictor_state;
};

// Text codecs. decode_* throws std::runtime_error on a malformed or
// version-mismatched image.
[[nodiscard]] std::string encode_checkpoint(const ShardCheckpoint& cp);
[[nodiscard]] ShardCheckpoint decode_shard_checkpoint(const std::string& text);
[[nodiscard]] std::string encode_checkpoint(const TreeCheckpoint& cp);
[[nodiscard]] TreeCheckpoint decode_tree_checkpoint(const std::string& text);

}  // namespace pcap::power
