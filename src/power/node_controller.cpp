#include "power/node_controller.hpp"

#include <stdexcept>

namespace pcap::power {

std::size_t NodeController::apply(const std::vector<LevelCommand>& commands,
                                  std::vector<hw::Node>& nodes) {
  std::size_t changed = 0;
  for (const LevelCommand& cmd : commands) {
    ++received_;
    if (cmd.node >= nodes.size()) {
      throw std::out_of_range("NodeController: command for unknown node");
    }
    hw::Node& node = nodes[cmd.node];
    const hw::Level before = node.level();
    const hw::Level after = node.set_level(cmd.level);
    if (after != cmd.level) ++clamped_;
    if (after != before) {
      ++applied_;
      ++changed;
    }
  }
  return changed;
}

void NodeController::reset_counters() {
  received_ = 0;
  applied_ = 0;
  clamped_ = 0;
}

}  // namespace pcap::power
