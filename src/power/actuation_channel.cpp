#include "power/actuation_channel.hpp"

#include <cstdlib>
#include <stdexcept>

namespace pcap::power {

void ActuationFaultParams::validate() const {
  const auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!probability(command_loss_rate) ||
      !probability(transition_failure_rate) ||
      !probability(partial_transition_rate) || !probability(reboot_rate)) {
    throw std::invalid_argument(
        "ActuationFaultParams: rates must be in [0, 1]");
  }
  if (delivery_delay_cycles < 0) {
    throw std::invalid_argument(
        "ActuationFaultParams: delivery delay must be >= 0 cycles");
  }
  if (reboot_rate > 0.0 && reboot_duration_cycles <= 0) {
    throw std::invalid_argument(
        "ActuationFaultParams: reboot windows need a positive duration");
  }
}

ActuationChannel::ActuationChannel(ActuationFaultParams params,
                                   common::Rng rng)
    : params_(params), root_(rng) {
  params_.validate();
}

void ActuationChannel::ensure_nodes(const std::vector<hw::NodeId>& ids) {
  for (const hw::NodeId id : ids) {
    if (static_cast<std::size_t>(id) >= states_.size()) {
      states_.resize(static_cast<std::size_t>(id) + 1);
    }
    NodeState& st = states_[id];
    if (!st.known) {
      // stream(id) derives the node's fault stream as a pure function of
      // (channel seed, id): registration order cannot change the draws.
      st.rng = root_.stream(id);
      st.known = true;
    }
  }
}

void ActuationChannel::deliver(NodeState& st, hw::NodeId id,
                               hw::Level target, const hw::Node& node,
                               std::vector<LevelCommand>& delivered) {
  if (params_.transition_failure_rate > 0.0 &&
      st.rng.bernoulli(params_.transition_failure_rate)) {
    ++failed_;
    return;
  }
  const hw::Level current = node.level();
  if (std::abs(target - current) > 1 &&
      params_.partial_transition_rate > 0.0 &&
      st.rng.bernoulli(params_.partial_transition_rate)) {
    // The transition stalls one step in: the node ends up between where
    // it was and where it was told to go — exactly the state a believed-
    // level table would get wrong without telemetry-based reconciliation.
    ++partial_;
    const hw::Level step = current + (target > current ? 1 : -1);
    delivered.push_back(LevelCommand{id, step});
    return;
  }
  delivered.push_back(LevelCommand{id, target});
}

void ActuationChannel::begin_cycle(std::vector<hw::Node>& nodes,
                                   std::vector<LevelCommand>& delivered) {
  ++cycle_;
  if (!params_.enabled()) return;

  for (std::size_t id = 0; id < states_.size(); ++id) {
    NodeState& st = states_[id];
    if (!st.known) continue;

    // Reboot process. An open window counts down; on a fresh draw the
    // node resets to its highest level (a hardware event, applied here
    // directly rather than emitted as a command) and everything queued
    // for it dies with the old kernel.
    if (st.reboot_cycles_left > 0) {
      --st.reboot_cycles_left;
    } else if (params_.reboot_rate > 0.0 &&
               st.rng.bernoulli(params_.reboot_rate)) {
      st.reboot_cycles_left = params_.reboot_duration_cycles;
      ++reboots_;
      if (id < nodes.size()) {
        nodes[id].set_level(nodes[id].spec().ladder.highest());
      }
      dropped_rebooting_ += st.queue.size();
      in_flight_ -= st.queue.size();
      st.queue.clear();
    }

    // Delayed deliveries whose time has come. Failure/partial draws
    // happen now, at delivery: what matters is the node's level when the
    // command finally lands, not when it was sent.
    std::size_t kept = 0;
    for (QueuedCommand& qc : st.queue) {
      if (qc.deliver_at_cycle > cycle_) {
        st.queue[kept++] = qc;
        continue;
      }
      --in_flight_;
      if (st.reboot_cycles_left > 0) {
        ++dropped_rebooting_;
        continue;
      }
      if (id < nodes.size()) {
        deliver(st, static_cast<hw::NodeId>(id), qc.level, nodes[id],
                delivered);
      }
    }
    st.queue.resize(kept);
  }
}

void ActuationChannel::send(const std::vector<LevelCommand>& commands,
                            const std::vector<hw::Node>& nodes,
                            std::vector<LevelCommand>& delivered) {
  if (!params_.enabled()) {
    delivered.insert(delivered.end(), commands.begin(), commands.end());
    return;
  }
  for (const LevelCommand& cmd : commands) {
    if (static_cast<std::size_t>(cmd.node) >= states_.size() ||
        !states_[cmd.node].known) {
      // Unregistered node (manager bug rather than injected fault): pass
      // the command through untouched.
      delivered.push_back(cmd);
      continue;
    }
    NodeState& st = states_[cmd.node];
    if (st.reboot_cycles_left > 0) {
      ++dropped_rebooting_;
      continue;
    }
    if (params_.command_loss_rate > 0.0 &&
        st.rng.bernoulli(params_.command_loss_rate)) {
      ++lost_;
      continue;
    }
    if (params_.delivery_delay_cycles > 0) {
      st.queue.push_back(QueuedCommand{
          cycle_ + static_cast<std::uint64_t>(params_.delivery_delay_cycles),
          cmd.level});
      ++in_flight_;
      continue;
    }
    if (static_cast<std::size_t>(cmd.node) < nodes.size()) {
      deliver(st, cmd.node, cmd.level, nodes[cmd.node], delivered);
    }
  }
}

bool ActuationChannel::rebooting(hw::NodeId id) const {
  return static_cast<std::size_t>(id) < states_.size() &&
         states_[id].known && states_[id].reboot_cycles_left > 0;
}

}  // namespace pcap::power
