#include "power/policies_thermal.hpp"

#include <algorithm>

namespace pcap::power {

double mean_job_temperature(const PolicyContext& ctx, const JobView& job) {
  if (job.nodes.empty()) return 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (const hw::NodeId id : job.nodes) {
    if (const NodeView* nv = ctx.node(id)) {
      sum += nv->temperature.value();
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

namespace {

/// Replaces each ref's default ranking key (ΔP^t(J)) with the job's mean
/// board temperature.
void score_by_temperature(const PolicyContext& ctx,
                          SelectionScratch& scratch) {
  for (SelectionScratch::Ref& r : scratch.refs()) {
    r.score = mean_job_temperature(ctx, *r.job);
  }
}

}  // namespace

std::vector<hw::NodeId> HottestJob::select(const PolicyContext& ctx) {
  scratch_.build(ctx);
  score_by_temperature(ctx, scratch_);
  const auto& jobs = scratch_.refs();
  if (jobs.empty()) return {};
  const auto it =
      std::max_element(jobs.begin(), jobs.end(),
                       [](const SelectionScratch::Ref& a,
                          const SelectionScratch::Ref& b) {
                         return a.score < b.score;
                       });
  return scratch_.targets_of(*it);
}

std::vector<hw::NodeId> HottestJobCollection::select(
    const PolicyContext& ctx) {
  // accumulate_collection rebuilds the scratch itself, which would wipe
  // the temperature scores, so this collection runs the skeleton inline:
  // build, score, stable sort (ties keep context order), accumulate.
  scratch_.build(ctx);
  score_by_temperature(ctx, scratch_);
  auto& jobs = scratch_.refs();
  if (jobs.empty()) return {};
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const SelectionScratch::Ref& a,
                      const SelectionScratch::Ref& b) {
                     return a.score > b.score;  // hottest first
                   });

  const Watts needed = ctx.required_saving();
  std::vector<hw::NodeId> targets;
  scratch_.begin_visit();
  Watts saved{0.0};
  for (const SelectionScratch::Ref& rj : jobs) {
    for (std::uint32_t i = rj.begin; i < rj.end; ++i) {
      const hw::NodeId id = scratch_.node_buf()[i];
      if (!scratch_.visit(id)) continue;
      targets.push_back(id);
      const NodeView* nv = ctx.node(id);
      saved += nv->power - nv->power_one_level_down;
    }
    if (saved >= needed) break;
  }
  return targets;
}

}  // namespace pcap::power
