#include "power/policies_thermal.hpp"

#include <algorithm>
#include <unordered_set>

namespace pcap::power {

double mean_job_temperature(const PolicyContext& ctx, const JobView& job) {
  if (job.nodes.empty()) return 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (const hw::NodeId id : job.nodes) {
    if (const NodeView* nv = ctx.node(id)) {
      sum += nv->temperature.value();
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

namespace {

struct RatedJob {
  const JobView* job;
  std::vector<hw::NodeId> nodes;
  double temperature;
};

std::vector<RatedJob> rated_jobs(const PolicyContext& ctx) {
  std::vector<RatedJob> out;
  out.reserve(ctx.jobs.size());
  for (const JobView& j : ctx.jobs) {
    auto nodes = throttleable_nodes(ctx, j);
    if (nodes.empty()) continue;
    out.push_back(RatedJob{&j, std::move(nodes),
                           mean_job_temperature(ctx, j)});
  }
  return out;
}

}  // namespace

std::vector<hw::NodeId> HottestJob::select(const PolicyContext& ctx) {
  const auto jobs = rated_jobs(ctx);
  if (jobs.empty()) return {};
  const auto it = std::max_element(jobs.begin(), jobs.end(),
                                   [](const RatedJob& a, const RatedJob& b) {
                                     return a.temperature < b.temperature;
                                   });
  return it->nodes;
}

std::vector<hw::NodeId> HottestJobCollection::select(
    const PolicyContext& ctx) {
  auto jobs = rated_jobs(ctx);
  if (jobs.empty()) return {};
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const RatedJob& a, const RatedJob& b) {
                     return a.temperature > b.temperature;
                   });

  const Watts needed = ctx.required_saving();
  std::vector<hw::NodeId> targets;
  std::unordered_set<hw::NodeId> seen;
  Watts saved{0.0};
  for (const auto& rj : jobs) {
    for (const hw::NodeId id : rj.nodes) {
      if (!seen.insert(id).second) continue;
      targets.push_back(id);
      const NodeView* nv = ctx.node(id);
      saved += nv->power - nv->power_one_level_down;
    }
    if (saved >= needed) break;
  }
  return targets;
}

}  // namespace pcap::power
