// Node-side actuation of level commands.
//
// The manager "sends commands to all nodes in A_target and tells them to
// regulate their power state to the corresponding target level" (§III.A).
// The controller is the receiving end: it clamps to each node's ladder,
// skips uncontrollable nodes, and keeps actuation statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/node.hpp"
#include "power/capping.hpp"

namespace pcap::power {

class NodeController {
 public:
  NodeController() = default;

  /// Applies a batch of commands against the node array (indexed by id).
  /// Returns the number of nodes whose level actually changed.
  std::size_t apply(const std::vector<LevelCommand>& commands,
                    std::vector<hw::Node>& nodes);

  [[nodiscard]] std::uint64_t commands_received() const { return received_; }
  [[nodiscard]] std::uint64_t transitions_applied() const { return applied_; }
  [[nodiscard]] std::uint64_t commands_ignored() const {
    return received_ - applied_;
  }
  /// Commands whose requested level the node clamped (off-ladder request,
  /// or an uncontrollable node pinning itself to the top). Disjoint
  /// bookkeeping from commands_ignored(): a clamped command may still
  /// change the level, and an ignored one may simply have been a no-op.
  [[nodiscard]] std::uint64_t commands_clamped() const { return clamped_; }

  void reset_counters();

 private:
  std::uint64_t received_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t clamped_ = 0;
};

}  // namespace pcap::power
