// The global power manager (§II, Figure 1).
//
// One instance runs on the management node. Each control cycle it:
//   1. collects samples from the candidate set's profiling agents,
//   2. feeds the facility meter reading to the threshold learner,
//   3. (after training) runs Algorithm 1 with the configured target set
//      selection policy, and
//   4. dispatches the resulting level commands to the node controllers.
//
// PowerManagerBase is the interface the cluster drives; the baselines
// library provides alternative implementations behind the same interface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "hw/watchdog.hpp"
#include "obs/registry.hpp"
#include "obs/spans.hpp"
#include "power/actuation_channel.hpp"
#include "power/candidate_selector.hpp"
#include "power/capping.hpp"
#include "power/control_fault_injector.hpp"
#include "power/job_index.hpp"
#include "power/node_controller.hpp"
#include "power/policy.hpp"
#include "power/predictor.hpp"
#include "power/reconciler.hpp"
#include "power/state.hpp"
#include "power/thresholds.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/collector.hpp"

namespace pcap::power {

struct ShardCheckpoint;  // power/checkpoint.hpp

/// What one control cycle did — recorded by experiments per cycle.
struct ManagerReport {
  PowerState state = PowerState::kGreen;
  Watts measured{0.0};
  Watts p_low{0.0};
  Watts p_high{0.0};
  bool training = false;
  std::size_t targets = 0;      ///< |A_target| this cycle
  std::size_t transitions = 0;  ///< level changes actually applied
  double manager_utilization = 0.0;  ///< Fig.5 cost model, this cycle

  // Telemetry health, this cycle. Zero on the steady-green fast path
  // (no context is built there — nothing was selected against).
  std::size_t stale_nodes = 0;       ///< views past the sample-age bound
  std::size_t missing_nodes = 0;     ///< candidates with no usable sample
  std::size_t fallback_nodes = 0;    ///< views on a substituted estimate
  std::size_t rejected_samples = 0;  ///< implausible samples skipped
  std::size_t skipped_targets = 0;   ///< policy targets the engine refused
  std::size_t deferred_targets = 0;  ///< targets passed over: command in flight

  // Actuation reconciliation, this cycle. Zero whenever no context was
  // built (steady green with nothing pending).
  std::size_t acks = 0;         ///< commands confirmed by telemetry
  std::size_t retries = 0;      ///< unacked commands re-sent
  std::size_t divergences = 0;  ///< observed level != believed level
  std::size_t heals = 0;        ///< healing commands emitted
  std::size_t commands_in_flight = 0;  ///< unacked commands after actuation
  std::size_t unresponsive_nodes = 0;  ///< candidates dropped: no acks left

  // Cumulative fault/transport ground truth (collector + injector
  // lifetime totals; filled every cycle, including steady green).
  std::uint64_t samples_lost = 0;        ///< dropped by the transport
  std::uint64_t samples_suppressed = 0;  ///< never left the node
  std::uint64_t samples_corrupted = 0;   ///< delivered with garbage power
  std::uint64_t crash_events = 0;
  std::uint64_t recovery_events = 0;
  std::size_t agents_down = 0;  ///< nodes currently silent

  // Cumulative actuation-plane ground truth (channel + reconciler +
  // controller lifetime totals; filled every cycle).
  std::uint64_t commands_lost = 0;       ///< dropped in transit
  std::uint64_t commands_rebooting = 0;  ///< dropped at a rebooting node
  std::uint64_t transitions_failed = 0;  ///< delivered, DVFS switch failed
  std::uint64_t transitions_partial = 0; ///< delivered, landed part-way
  std::uint64_t reboot_events = 0;
  std::uint64_t commands_abandoned = 0;  ///< retry budget exhausted
  std::uint64_t commands_clamped = 0;    ///< request clamped by the node

  // Forecasting (managers running a PowerPredictor; all-zero otherwise).
  bool has_forecast = false;  ///< a forecast informed this cycle
  Watts forecast{0.0};        ///< predicted P, horizon cycles ahead
  /// |forecast - realised| for the forecast that targeted THIS cycle
  /// (made horizon cycles ago); valid only when forecast_scored.
  double forecast_abs_error = 0.0;
  bool forecast_scored = false;
  // Cumulative predictor ground truth (scorer/engine lifetime totals).
  std::uint64_t predictor_overshoots = 0;  ///< false alarms (pred>=P_L, real<P_L)
  std::uint64_t predictor_misses = 0;      ///< unseen ramps (pred<P_L, real>=P_L)
  std::uint64_t predictive_elevations = 0; ///< green cycles promoted to yellow

  // Control-plane failure domain (see power/control_fault_injector.hpp).
  bool controller_down = false;  ///< root controller silent this cycle
  std::size_t zones_down = 0;    ///< zone shards silent this cycle
  /// Failsafe watchdog levels the reconciler adopted as reality this
  /// cycle (zero divergence warnings for them by construction).
  std::size_t watchdog_adoptions = 0;
  // Cumulative control-fault ground truth (injector lifetime totals).
  std::uint64_t ctrl_outages = 0;  ///< root outage windows started
  std::uint64_t ctrl_outage_cycles = 0;
  std::uint64_t ctrl_delayed_cycles = 0;
  std::uint64_t ctrl_zone_outage_cycles = 0;
};

/// Registry bindings shared by every capping-style manager (the flat
/// CappingManager and the zone tree publish the same series, so
/// experiment extraction reads one schema whichever control plane ran).
/// Handles are preregistered by bind(), so publish() performs only array
/// stores; everything is inert until a registry is bound.
struct ManagerMetrics {
  obs::Registry* reg = nullptr;
  // Per-cycle accumulators (counter += report value each cycle).
  obs::CounterHandle cycles_green, cycles_yellow, cycles_red, training_cycles;
  obs::CounterHandle targets, transitions, skipped_targets, deferred_targets;
  obs::CounterHandle stale_nodes, missing_nodes, fallback_nodes,
      rejected_samples, unresponsive_node_cycles;
  obs::CounterHandle acks, retries, divergences, heals;
  // Mirrored lifetime ground truth (collector/injector/channel own it).
  obs::CounterHandle samples_lost, samples_suppressed, samples_corrupted,
      crash_events, recovery_events;
  obs::CounterHandle commands_lost, commands_rebooting, transitions_failed,
      transitions_partial, reboot_events, commands_abandoned,
      commands_clamped;
  obs::CounterHandle ctrl_outage_events, ctrl_outage_cycles,
      ctrl_delayed_cycles, ctrl_zone_outage_cycles;
  obs::CounterHandle watchdog_adoptions;
  obs::CounterHandle predictor_overshoots, predictor_misses,
      predictive_elevations;
  // Instantaneous state.
  obs::GaugeHandle measured_watts, p_low_watts, p_high_watts,
      commands_in_flight, unresponsive_nodes, agents_down, orphan_zones;
  obs::GaugeHandle predictor_forecast_watts, predictor_abs_error_watts;
  // Control-loop stage timers.
  obs::SpanTimer collect_span, context_span, policy_span, actuate_span;

  void bind(obs::Registry& registry);
  /// Pushes one cycle's report into the registry (no-op when unbound).
  /// `unresponsive_now` is the instantaneous reconciler tally (summed
  /// across shards by the zone tree).
  void publish(const ManagerReport& report, std::size_t unresponsive_now);
};

class PowerManagerBase {
 public:
  virtual ~PowerManagerBase() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Runs one control cycle against the live node array and scheduler
  /// state. `measured` is the facility meter reading (Algorithm 1's P).
  virtual ManagerReport cycle(Watts measured, std::vector<hw::Node>& nodes,
                              const sched::Scheduler& scheduler,
                              Seconds now) = 0;

  /// Offers a worker pool for intra-cycle sweeps (telemetry collection on
  /// large candidate sets). Managers that cannot use one ignore it; the
  /// pool is owned by the caller (the cluster) and outlives the manager's
  /// use of it. nullptr detaches.
  virtual void set_thread_pool(common::ThreadPool* /*pool*/) {}

  /// Offers a metrics registry (owned by the caller, outliving the
  /// manager's use of it). Managers preregister their series here so the
  /// per-cycle publish is pure array stores; the default implementation
  /// publishes nothing.
  virtual void bind_metrics(obs::Registry& /*reg*/) {}

  /// Offers the cluster's node-local failsafe watchdog (owned by the
  /// caller, outliving the manager's use of it; nullptr detaches). A live
  /// manager heartbeats it every cycle and stamps per-node contacts on
  /// command delivery; managers that model no controller liveness (the
  /// baselines) ignore it — the watchdog then never times out because it
  /// has no groups.
  virtual void set_watchdog(hw::FailsafeWatchdog* /*wd*/) {}
};

struct CappingManagerParams {
  ThresholdParams thresholds;
  CappingParams capping;
  telemetry::CollectorParams collector;
  Seconds cycle_period{1.0};
  /// A node view older than this many collection cycles is stale: it gets
  /// a conservative fallback power estimate and is excluded from target
  /// selection. Delayed transport alone ages samples by delay_cycles, so
  /// keep this above the configured delay.
  std::int64_t max_sample_age_cycles = 5;
  /// Fallback inflation for stale views: last-known power × (1 + margin).
  /// Overstating a blind node's draw keeps the aggregate estimate — and
  /// therefore capping — on the safe side of the provision.
  double stale_power_margin = 0.10;
  /// Steady-green telemetry stride: when the classified state is green and
  /// nothing is degraded, pending, unresponsive or in flight, the full
  /// agent sweep runs only every this many cycles (1 = sweep every cycle,
  /// the legacy cadence). Any cycle that will build a policy context
  /// collects first — the gate is evaluated before the sweep and can only
  /// shrink between then and the context build — so decisions never act
  /// across a strided gap, and max_sample_age_cycles never has to cover
  /// the stride: staleness only matters on deciding cycles, which always
  /// just collected. The meter (the classification input) is read every
  /// cycle regardless.
  std::int64_t green_collect_stride = 16;
  /// When set, A_candidate is recomputed dynamically (§III.A algorithm
  /// (c)) instead of being fixed by set_candidate_set().
  std::optional<CandidateSelectorParams> selector;
  /// Command-side fault model. Default-constructed = perfect actuation;
  /// the manager then bypasses the channel and the healthy path is
  /// byte-for-byte what it was without one.
  ActuationFaultParams actuation;
  /// Ack/retry/divergence bookkeeping for the lossy channel. Always on:
  /// with perfect actuation every command acks on the next cycle's
  /// telemetry, so the reconciler never emits anything.
  ReconcilerParams reconciliation;
  /// Controller-failure model (outage/stall windows). Default-constructed
  /// = an immortal controller; the injector then draws nothing and the
  /// healthy path is byte-for-byte what it was without one. Under the
  /// zone tree the root owns all windows and clears this on the shards.
  ControlFaultParams control;
  /// System-power forecasting. Disabled by default; when enabled the
  /// manager runs a PowerPredictor over the facility meter stream, stamps
  /// its forecast into every policy context, and lets forecast-driven
  /// policies act before P_L is crossed. refresh_cycles == 0 resolves to
  /// thresholds.adjust_period_cycles (the learner's t_p cadence).
  PredictionParams prediction;
  /// Incremental context plane: keep the policy context, per-slot view
  /// records and per-job aggregates alive across cycles and re-derive only
  /// what changed — telemetry deltas from the collector's change cursors,
  /// job churn from the JobIndex epoch, actuation state from the
  /// reconciler/watchdog watch set. Decisions, counters and exports are
  /// bit-identical to the full rebuild (`off` = rebuild every cycle, the
  /// A/B baseline); only reconciler observed-cycle stamps may lag, since a
  /// content-identical confirmation carries no new information.
  bool incremental_context = true;
};

/// The paper's architecture: candidate-set telemetry + threshold learning
/// + Algorithm 1 + a pluggable target selection policy.
class CappingManager final : public PowerManagerBase {
 public:
  CappingManager(CappingManagerParams params, PolicyPtr policy,
                 common::Rng rng);

  [[nodiscard]] std::string name() const override;

  /// Defines A_candidate. Uncontrollable nodes are filtered out by the
  /// caller or tolerated here (their commands are no-ops), but monitoring
  /// them wastes management budget, so prefer passing controllable ids.
  void set_candidate_set(const std::vector<hw::NodeId>& ids);
  [[nodiscard]] const std::vector<hw::NodeId>& candidate_set() const {
    return collector_.candidate_set();
  }

  ManagerReport cycle(Watts measured, std::vector<hw::Node>& nodes,
                      const sched::Scheduler& scheduler,
                      Seconds now) override;

  /// Preregisters every manager series (counters, gauges, cycle-phase
  /// spans) in `reg`. ManagerReport and the trace CSV then become views
  /// over the values the registry accumulates — see DESIGN.md §11.
  void bind_metrics(obs::Registry& reg) override;

  /// The pool parallelises both the telemetry sweep and context assembly
  /// (sharded over candidate slots; see build_context_with). Results are
  /// bit-identical with or without it.
  void set_thread_pool(common::ThreadPool* pool) override {
    pool_ = pool;
    collector_.set_thread_pool(pool);
  }

  [[nodiscard]] const ThresholdLearner& thresholds() const {
    return learner_;
  }
  [[nodiscard]] ThresholdLearner& thresholds() { return learner_; }
  [[nodiscard]] const CappingEngine& engine() const { return engine_; }
  [[nodiscard]] const telemetry::Collector& collector() const {
    return collector_;
  }
  [[nodiscard]] const NodeController& controller() const {
    return controller_;
  }
  [[nodiscard]] const ActuationChannel& actuation_channel() const {
    return channel_;
  }
  [[nodiscard]] const ActuationReconciler& reconciler() const {
    return reconciler_;
  }
  [[nodiscard]] const ControlFaultInjector& control_faults() const {
    return ctrl_faults_;
  }
  /// Mutable access for drills: inject a forced outage window from a test
  /// or an operator console. Serial with cycle().
  [[nodiscard]] ControlFaultInjector& control_faults() {
    return ctrl_faults_;
  }
  [[nodiscard]] const TargetSelectionPolicy& policy() const {
    return *policy_;
  }
  /// The forecaster, or nullptr when params.prediction is disabled.
  [[nodiscard]] const PowerPredictor* predictor() const {
    return predictor_.get();
  }
  /// The forecast made this cycle for horizon cycles ahead (empty before
  /// the predictor warms up, on dead cycles, or without a predictor).
  [[nodiscard]] std::optional<Watts> current_forecast() const {
    return forecast_;
  }
  [[nodiscard]] const ForecastScorer& forecast_scorer() const {
    return scorer_;
  }

  /// Which path each context build took (lifetime totals). Lets tests and
  /// benches assert the delta plane actually engages instead of inferring
  /// it from wall time.
  struct IncrementalStats {
    std::uint64_t full_builds = 0;   ///< sharded O(candidates) assemblies
    std::uint64_t delta_builds = 0;  ///< delta path (includes no-ops)
    std::uint64_t noop_builds = 0;   ///< empty dirty set + unchanged jobs
    std::uint64_t dirty_slots = 0;   ///< Σ dirty slots over delta builds
  };
  [[nodiscard]] const IncrementalStats& incremental_stats() const {
    return inc_stats_;
  }

  /// Cluster-owned watchdog: this manager becomes group 0 and (re)groups
  /// the watchdog over its candidate set now and on every
  /// set_candidate_set.
  void set_watchdog(hw::FailsafeWatchdog* wd) override;
  /// Tree-driven variant: attach as group `group` without touching the
  /// watchdog's grouping (the zone tree owns the partition).
  void attach_watchdog(hw::FailsafeWatchdog* wd, std::size_t group);
  /// Any failsafe-changed levels in this manager's group still awaiting
  /// reconciler adoption? Forces a context build — adoption only happens
  /// through one.
  [[nodiscard]] bool watchdog_pending() const {
    return watchdog_ != nullptr &&
           watchdog_->adoption_pending_in_group(watchdog_group_);
  }

  /// Captures/restores the warm-restart state (learner, engine,
  /// reconciler shadow tables, collector clock). Restore into a freshly
  /// constructed manager AFTER set_candidate_set: policy scratch and the
  /// job index rebuild from the first context, and injector fault streams
  /// restart — the outside world does not rewind with the controller.
  [[nodiscard]] ShardCheckpoint checkpoint() const;
  void restore(const ShardCheckpoint& cp);

  /// Builds the policy context from current telemetry and scheduler state;
  /// public so benchmarks can measure selection cost in isolation.
  PolicyContext build_context(Watts measured,
                              const std::vector<hw::Node>& nodes,
                              const sched::Scheduler& scheduler) const;

  /// In-place variant: refills `ctx` reusing its existing node/job buffer
  /// capacity, so a steady-state control cycle performs no allocation for
  /// context assembly. cycle() feeds its persistent context through here.
  void build_context_into(PolicyContext& ctx, Watts measured,
                          const std::vector<hw::Node>& nodes,
                          const sched::Scheduler& scheduler) const;

  // --- Shard phase API -------------------------------------------------
  // cycle() is expressed through these phases; the zone tree drives the
  // same phases per shard with the learner/classification hoisted to the
  // root. Call order within one cycle: context_gate (once!) →
  // collect_phase → begin_actuation_phase → [apply_deliveries on the
  // training path | context_phase → select_phase → actuate_phase].

  /// The single context/collect gate: true when this cycle must build a
  /// policy context (and therefore must have collected first). Evaluate
  /// exactly ONCE per cycle, before begin_actuation_phase — that call
  /// processes reboots and delayed deliveries, which can shrink
  /// in_flight/pending state; re-evaluating after it can disagree with
  /// the collect decision made before it (collect skipped, context built
  /// on stale views).
  [[nodiscard]] bool context_gate(PowerState state) const {
    return state != PowerState::kGreen || !engine_.degraded().empty() ||
           reconciler_.pending_count() > 0 ||
           reconciler_.unresponsive_count() > 0 ||
           channel_.in_flight_count() > 0 || watchdog_pending();
  }

  /// True when the steady-green stride schedule says the upcoming cycle
  /// sweeps anyway (keeps per-slot staleness clocks bounded).
  [[nodiscard]] bool collect_due() const {
    return collect_stride_ <= 1 ||
           (collector_.cycle_count() + 1) % collect_stride_ == 0;
  }

  /// Runs (or stride-skips) the telemetry sweep; either way the
  /// collector's cycle clock advances so staleness stays well-defined.
  void collect_phase(bool collect_now, const std::vector<hw::Node>& nodes,
                     Seconds now, std::size_t monitored_jobs);

  /// Opens the actuation cycle: clears per-cycle scratch, then lets the
  /// channel process reboots and due delayed deliveries (mutates nodes —
  /// serialise across shards). Deliveries land in delivered_scratch_ for
  /// apply_deliveries / actuate_phase.
  void begin_actuation_phase(std::vector<hw::Node>& nodes);

  /// Builds the persistent policy context through the reconciler and
  /// closes the observation window (retries/abandons into recon_work_).
  /// Fills the telemetry-health and per-cycle reconciliation fields of
  /// `report`.
  void context_phase(Watts measured, const std::vector<hw::Node>& nodes,
                     const sched::Scheduler& scheduler, ManagerReport& report);

  /// Runs Algorithm 1 against the context built by context_phase,
  /// overriding the classification inputs: the zone tree passes synthetic
  /// thresholds that encode (global state, zone deficit share).
  [[nodiscard]] CycleDecision select_phase(Watts measured, Watts p_low,
                                           Watts p_high);

  /// Admits the decision through the reconciler, sends via the channel,
  /// applies everything delivered (mutates nodes — serialise across
  /// shards). Returns the number of level transitions applied.
  std::size_t actuate_phase(const CycleDecision& decision,
                            std::vector<hw::Node>& nodes);

  /// Training-path tail: applies only the channel's due deliveries (no
  /// new commands). Returns transitions applied.
  std::size_t apply_deliveries(std::vector<hw::Node>& nodes);

  /// Zero-decision non-green cycle (zone skipped by the tree): the green
  /// timer resets exactly as if a yellow/red decision had run.
  void note_non_green_cycle() { engine_.note_non_green_cycle(); }

  /// The context select_phase decided against (persistent scratch).
  [[nodiscard]] const PolicyContext& context() const { return scratch_ctx_; }
  /// This cycle's reconciler work (valid after context_phase).
  [[nodiscard]] const ActuationReconciler::CycleWork& recon_work() const {
    return recon_work_;
  }
  [[nodiscard]] const CappingManagerParams& params() const { return params_; }

 private:
  /// The outage path: the controller is silent this cycle. No meter read
  /// reaches the learner, no heartbeat, no sweep, no decision — but
  /// hardware keeps moving (reboots, due deliveries land and stamp
  /// watchdog contacts) and the collector clock ticks so staleness stays
  /// well-defined. The report still classifies against the last-learned
  /// thresholds: the band is physically real whether or not anyone is
  /// watching it.
  ManagerReport dead_cycle(Watts measured, std::vector<hw::Node>& nodes,
                           const sched::Scheduler& scheduler, Seconds now);

  /// Feeds the meter reading through the predictor (model update, t_p
  /// spectrum refresh, fresh forecast, accuracy scoring) and stamps the
  /// forecast fields of `report`. No-op without a predictor. Runs only on
  /// live cycles — a dead controller reads no meter, so the predictor's
  /// window freezes mid-outage exactly like the learner's.
  void predictor_phase(Watts measured, ManagerReport& report);

  /// Report-filling helpers shared by the live and dead paths.
  void fill_telemetry_totals(ManagerReport& report) const;
  void fill_actuation_totals(ManagerReport& report) const;
  void fill_control_totals(ManagerReport& report) const;
  void fill_predictor_totals(ManagerReport& report) const;

  /// Stamps watchdog contact for every command in delivered_scratch_ —
  /// a delivery is the one controller signal a node can see directly.
  void stamp_delivery_contacts();

  /// The real context assembly. When `rec` is non-null, each fresh node
  /// view is fed through the reconciler (acks/divergences/heals into
  /// `work`), in-flight commands mark their views, and the safe-side
  /// power accounting is applied. The public const overloads pass
  /// nullptr: pure read-only assembly for benchmarks.
  ///
  /// Two-phase: a sharded pass builds one ViewRecord per candidate slot
  /// from strictly per-node inputs (telemetry history, node table,
  /// per-node reconciler state — all read-only there), then a serial
  /// merge in candidate order applies everything order-sensitive
  /// (reconciler mutation, counters, safe-side pending accounting). The
  /// merge sees the same values in the same order the old single serial
  /// loop did, so output is bit-identical across worker counts.
  void build_context_with(PolicyContext& ctx, Watts measured,
                          const std::vector<hw::Node>& nodes,
                          const sched::Scheduler& scheduler,
                          ActuationReconciler* rec,
                          ActuationReconciler::CycleWork* work) const;

  /// One candidate slot's output from the sharded assembly pass.
  struct ViewRecord {
    enum class Status : std::uint8_t {
      kMissing,              ///< no plausible sample in the window
      kMissingUnresponsive,  ///< ditto, and the node is abandoned
      kExcludedUnresponsive, ///< abandoned and stale: out of the context
      kOk,
    };
    NodeView view;                  ///< valid only when status == kOk
    std::uint64_t sample_cycle = 0; ///< cycle stamp of the chosen sample
    std::uint32_t rejected = 0;     ///< implausible samples skipped
    Status status = Status::kMissing;
    bool substituted = false;  ///< fresh only after skipping corrupt ones
  };

  /// Phase-1 body for one slot: derives view_records_[slot] from strictly
  /// per-node inputs. Shared by the full sharded pass and the delta
  /// refill.
  void fill_view_record(std::size_t slot,
                        const std::vector<hw::NodeId>& candidates,
                        const std::vector<hw::Node>& nodes,
                        const ActuationReconciler* rec,
                        std::uint64_t now_cycle, std::uint64_t max_age) const;

  /// The serial order-sensitive merge over ALL persisted records, plus
  /// index_nodes(). Resets and re-accumulates the context tallies. When
  /// `inc_track` it also rebuilds inc_pos_/inc_degraded_.
  void merge_records_full(PolicyContext& ctx,
                          const std::vector<hw::Node>& nodes,
                          ActuationReconciler* rec,
                          ActuationReconciler::CycleWork* work,
                          std::uint64_t now_cycle, bool inc_track) const;

  /// Phase 2 over every job entry (parallel stage + serial compaction).
  /// When `inc_track` it records entry -> ctx.jobs positions.
  void job_pass_full(PolicyContext& ctx, bool inc_track) const;

  /// Computes one entry's JobView against the current ctx.nodes — the
  /// exact arithmetic of the staged job pass, reused by the delta path.
  static void fill_job_view(const JobIndex::Entry& e, const PolicyContext& ctx,
                            JobView& jv);

  /// Rebuilds the node-id -> job-entry CSR used to map dirty slots to the
  /// job views they feed.
  void rebuild_job_csr() const;

  /// The delta path: dirty-slot scan, tally retraction, parallel refill,
  /// in-place serial merge of dirty slots and per-entry job refresh.
  /// Falls back to merge_records_full/job_pass_full on presence flips.
  void build_context_delta(PolicyContext& ctx, Watts measured,
                           const std::vector<hw::Node>& nodes,
                           const sched::Scheduler& scheduler,
                           ActuationReconciler* rec,
                           ActuationReconciler::CycleWork* work,
                           std::uint64_t now_cycle,
                           std::uint64_t max_age) const;

  CappingManagerParams params_;
  PolicyPtr policy_;
  // collector_ is declared (and therefore initialised) before channel_:
  // the rng fork order "collector" then "actuation" is part of the seed
  // compatibility contract — reordering would reshuffle every stream.
  telemetry::Collector collector_;
  ThresholdLearner learner_;
  CappingEngine engine_;
  NodeController controller_;
  ActuationChannel channel_;
  ActuationReconciler reconciler_;
  // ctrl_faults_'s rng fork ("control") is appended strictly after
  // "collector" and "actuation": the new stream must not perturb either
  // existing one, or every pre-PR-8 seed would replay differently.
  ControlFaultInjector ctrl_faults_;
  /// Forecasting (params_.prediction.enabled). The predictor is fed the
  /// facility meter on every live cycle; forecast_ is this cycle's output.
  PredictorPtr predictor_;
  ForecastScorer scorer_;
  std::optional<Watts> forecast_;
  /// Resolved spectrum refresh cadence (params value, or the learner's
  /// t_p when configured 0); counts live observations.
  std::int64_t predictor_refresh_cycles_ = 0;
  std::int64_t predictor_observations_ = 0;
  hw::FailsafeWatchdog* watchdog_ = nullptr;
  std::size_t watchdog_group_ = 0;
  /// True when this manager owns the watchdog's grouping (flat mode);
  /// false when the zone tree partitioned it and shards merely attach.
  bool owns_watchdog_groups_ = false;
  std::optional<CandidateSelector> selector_;
  /// Effective steady-green sweep stride (param clamped against the
  /// staleness bound at construction).
  std::int64_t collect_stride_ = 1;
  common::ThreadPool* pool_ = nullptr;
  ManagerMetrics metrics_;
  /// Per-slot staging for the sharded assembly pass; persists across
  /// cycles so the steady state allocates nothing.
  mutable std::vector<ViewRecord> view_records_;
  /// Incremental mirror of the scheduler's running set; synced (O(churn))
  /// at the top of every context build. Mutable because assembly is
  /// logically const — the index is a cache of scheduler state. Assumes
  /// one manager observes one scheduler, as cycle() guarantees.
  mutable JobIndex job_index_;
  /// Per-entry JobView staging for the job pass; compacted into ctx.jobs
  /// by swap so per-job node vectors keep their capacity on both sides.
  mutable std::vector<JobView> job_stage_;
  /// Reused across cycles by cycle(); holds its capacity.
  PolicyContext scratch_ctx_;
  /// Per-cycle scratch, reused: commands that reached hardware this cycle
  /// and the reconciler's outgoing work.
  std::vector<LevelCommand> delivered_scratch_;
  ActuationReconciler::CycleWork recon_work_;

  // --- Incremental context plane (params_.incremental_context) ---------
  // Valid only between builds of the persistent scratch_ctx_ through the
  // reconciler; any structural change (candidate churn, warm restart)
  // drops inc_valid_ and the next build is a full one.
  static constexpr std::uint32_t kNoPos = 0xffffffffu;
  mutable bool inc_valid_ = false;
  mutable std::uint64_t inc_build_cycle_ = 0;  ///< collector cycle of last build
  mutable std::uint64_t inc_job_epoch_ = 0;    ///< JobIndex epoch of last build
  mutable std::vector<std::uint32_t> inc_pos_;  ///< slot -> ctx.nodes index
  /// Slot's record was not clean-and-fresh at the last build (missing,
  /// unresponsive, stale, substituted, rejected deliveries, or carrying
  /// in-flight inflation): must be re-derived even without a telemetry
  /// content change, because its view depends on state that moves with
  /// the clock.
  mutable std::vector<std::uint8_t> inc_degraded_;
  mutable std::vector<std::uint32_t> inc_dirty_;        ///< scratch: dirty slots
  mutable std::vector<std::uint8_t> inc_old_present_;   ///< scratch, per dirty
  mutable std::vector<std::uint32_t> inc_job_pos_;  ///< entry -> ctx.jobs index
  mutable std::vector<std::uint32_t> inc_csr_off_;  ///< node id -> csr offset
  mutable std::vector<std::uint32_t> inc_csr_;      ///< job-entry indices
  mutable std::vector<std::uint8_t> inc_job_dirty_; ///< scratch, per entry
  mutable JobView inc_job_scratch_;
  mutable IncrementalStats inc_stats_;
  /// Reconciler + watchdog watch set handed to the collector pre-sweep.
  std::vector<hw::NodeId> watch_scratch_;
};

/// A null manager: monitors nothing, throttles nothing. The |A_candidate|=0
/// baseline every normalised figure divides by.
class NoCappingManager final : public PowerManagerBase {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }
  ManagerReport cycle(Watts measured, std::vector<hw::Node>& nodes,
                      const sched::Scheduler& scheduler,
                      Seconds now) override;
};

}  // namespace pcap::power
