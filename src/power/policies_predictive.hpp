// Forecast-driven target set selection policies (ROADMAP "Predictive
// capping").
//
// Both policies read PolicyContext::forecast_power — the system power the
// manager's PowerPredictor expects h control cycles ahead — instead of
// waiting for the meter to cross P_L:
//   PI-C   — Cerf-style proportional-integral controller on the predicted
//            relative threshold error, with integral anti-windup. The
//            controller output is a continuous demanded saving in watts,
//            mapped onto the discrete DVFS ladder by accumulating whole
//            jobs (descending power) until their one-level savings cover
//            it — the repo's continuous-to-discrete throttle mapping.
//   PRED-C — MPC-C's state-based collection, but keyed on the forecast:
//            accumulate until the saving covers forecast - P_L.
//
// Both return forecast_driven() == true, which lets the capping engine
// elevate a green cycle onto the yellow path when the forecast crosses
// P_L (acting before the threshold is crossed). Without a forecast in the
// context they degrade gracefully to their reactive equivalents.
//
// Zone-shard compatibility: ZoneTreeManager drives shards with synthetic
// contexts whose p_low is 0 and whose system_power is the zone's deficit
// share; required_saving() == share is the contract. Both policies detect
// that mode (p_low <= 0) and honour the share verbatim — no PI state
// update, since the root controller already shaped the demand.
#pragma once

#include "power/policy.hpp"

namespace pcap::power {

/// PI-C gains. The controller runs on the *relative* error
/// e = (P_pred - P_L) / P_L, so the gains are dimensionless and one
/// tuning works across cluster sizes; the output is scaled back by P_L
/// into watts of demanded saving.
struct PiTuning {
  double kp = 1.0;           ///< proportional gain
  double ki = 0.05;          ///< integral gain (per control cycle)
  double integral_cap = 0.5; ///< anti-windup clamp on the integral term

  void validate() const;
};

class PiCollection final : public TargetSelectionPolicy {
 public:
  explicit PiCollection(PiTuning tuning = {});

  [[nodiscard]] std::string name() const override { return "pi-c"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override;
  [[nodiscard]] bool forecast_driven() const override { return true; }
  [[nodiscard]] std::vector<double> checkpoint_state() const override;
  void restore_state(const std::vector<double>& state) override;

  [[nodiscard]] double integral() const { return integral_; }

 private:
  PiTuning tuning_;
  /// Accumulated relative error, clamped to [0, integral_cap]. The zero
  /// floor is the anti-windup: sustained green (negative error) bleeds
  /// the integral instead of charging a debt that would delay the next
  /// capping response.
  double integral_ = 0.0;
  SelectionScratch scratch_;
};

class PredictiveCollection final : public TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "pred-c"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override;
  [[nodiscard]] bool forecast_driven() const override { return true; }

 private:
  SelectionScratch scratch_;
};

}  // namespace pcap::power
