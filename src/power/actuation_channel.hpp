// Actuation-plane fault injection: the lossy path from manager to node.
//
// PR 2 made the sensing side survive a degraded telemetry plane; this is
// the mirror image for commands. At Tianhe-1A scale the actuation path is
// itself a distributed system: level commands get lost or arrive cycles
// late, a DVFS transition can fail outright or land only part-way, and
// nodes reboot mid-degradation — silently resetting to their highest
// power state while the manager still believes them throttled.
//
// The channel sits between the capping manager's decision and the
// NodeController: commands go in, the subset that actually reaches
// hardware (possibly late, possibly altered) comes out. It never touches
// node levels itself except for reboots, which are hardware events, not
// commands.
//
// Determinism contract: every per-node fault process draws from that
// node's own RNG stream (Rng::stream(id)). The channel runs serially
// inside the manager's control cycle and iterates nodes in id order, so
// a run is bit-identical regardless of how many worker threads the
// cluster's node sweeps use.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "hw/node.hpp"
#include "power/capping.hpp"

namespace pcap::power {

struct ActuationFaultParams {
  /// Probability that a sent command never reaches its node.
  double command_loss_rate = 0.0;
  /// Commands that are not lost land this many control cycles late.
  int delivery_delay_cycles = 0;
  /// Probability that a delivered command's DVFS transition fails: the
  /// node acknowledges nothing and stays at its current level.
  double transition_failure_rate = 0.0;
  /// Probability that a delivered multi-level command (|target - current|
  /// > 1, e.g. a red-state floor or a healing command) lands only one
  /// step toward the target instead of all the way.
  double partial_transition_rate = 0.0;
  /// Per-cycle probability that a node reboots. A rebooting node resets
  /// to its highest level (firmware default), drops its queued commands,
  /// and is unreachable for the reboot window.
  double reboot_rate = 0.0;
  /// Reboot window length in control cycles.
  int reboot_duration_cycles = 30;

  /// True when any fault channel is active; the manager bypasses the
  /// channel entirely otherwise, keeping the healthy path unchanged.
  [[nodiscard]] bool enabled() const {
    return command_loss_rate > 0.0 || delivery_delay_cycles > 0 ||
           transition_failure_rate > 0.0 || partial_transition_rate > 0.0 ||
           reboot_rate > 0.0;
  }
  /// Throws std::invalid_argument on out-of-range rates/durations.
  void validate() const;
};

class ActuationChannel {
 public:
  ActuationChannel(ActuationFaultParams params, common::Rng rng);

  /// Registers nodes commands may address. Serial — call on candidate-set
  /// changes, never mid-sweep. Per-node fault state (reboot windows,
  /// queued commands) persists across candidate churn: a node that leaves
  /// the candidate set mid-reboot is still rebooting when it returns.
  void ensure_nodes(const std::vector<hw::NodeId>& ids);

  /// Advances every node's fault process by one control cycle: ticks and
  /// starts reboot windows (resetting rebooting nodes to their highest
  /// level — the one place the channel touches hardware directly) and
  /// appends commands whose delivery delay expired this cycle to
  /// `delivered`, applying failure/partial draws at delivery time.
  void begin_cycle(std::vector<hw::Node>& nodes,
                   std::vector<LevelCommand>& delivered);

  /// Pushes this cycle's commands through the channel. Immediate
  /// deliveries (delay 0) are appended to `delivered` after loss and
  /// failure/partial draws; delayed ones are queued for a later
  /// begin_cycle(). Commands to rebooting nodes are dropped and counted.
  void send(const std::vector<LevelCommand>& commands,
            const std::vector<hw::Node>& nodes,
            std::vector<LevelCommand>& delivered);

  /// Node currently inside a reboot window (unreachable)?
  [[nodiscard]] bool rebooting(hw::NodeId id) const;
  /// Commands queued inside the channel awaiting their delivery cycle.
  [[nodiscard]] std::size_t in_flight_count() const { return in_flight_; }

  // Cumulative ground-truth counters over the channel's lifetime.
  [[nodiscard]] std::uint64_t commands_lost() const { return lost_; }
  [[nodiscard]] std::uint64_t commands_dropped_rebooting() const {
    return dropped_rebooting_;
  }
  [[nodiscard]] std::uint64_t transitions_failed() const { return failed_; }
  [[nodiscard]] std::uint64_t transitions_partial() const { return partial_; }
  [[nodiscard]] std::uint64_t reboot_events() const { return reboots_; }

  [[nodiscard]] const ActuationFaultParams& params() const { return params_; }

 private:
  /// A command inside the delivery pipe.
  struct QueuedCommand {
    std::uint64_t deliver_at_cycle = 0;
    hw::Level level = 0;
  };
  /// One node's actuation fault process, touched only serially.
  struct NodeState {
    common::Rng rng{0};
    bool known = false;  ///< registered via ensure_nodes()
    /// Reboot windows count down per begin_cycle(); 0 = up.
    int reboot_cycles_left = 0;
    std::vector<QueuedCommand> queue;  ///< delayed commands, FIFO order
  };

  void deliver(NodeState& st, hw::NodeId id, hw::Level target,
               const hw::Node& node, std::vector<LevelCommand>& delivered);

  ActuationFaultParams params_;
  common::Rng root_;
  std::uint64_t cycle_ = 0;
  std::size_t in_flight_ = 0;
  std::vector<NodeState> states_;  ///< indexed by node id
  std::uint64_t lost_ = 0;
  std::uint64_t dropped_rebooting_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t partial_ = 0;
  std::uint64_t reboots_ = 0;
};

}  // namespace pcap::power
