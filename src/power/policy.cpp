#include "power/policy.hpp"

#include <algorithm>

namespace pcap::power {

Watts PolicyContext::required_saving() const {
  const Watts gap = system_power - p_low;
  return gap > Watts{0.0} ? gap : Watts{0.0};
}

const NodeView* PolicyContext::node(hw::NodeId id) const {
  if (static_cast<std::size_t>(id) >= node_index_.size()) return nullptr;
  const std::uint32_t idx = node_index_[id];
  return idx == kNoIndex ? nullptr : &nodes[idx];
}

void PolicyContext::index_nodes() {
  hw::NodeId max_id = 0;
  for (const NodeView& nv : nodes) max_id = std::max(max_id, nv.id);
  node_index_.assign(nodes.empty() ? 0 : static_cast<std::size_t>(max_id) + 1,
                     kNoIndex);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    node_index_[nodes[i].id] = static_cast<std::uint32_t>(i);
  }
}

void SelectionScratch::build(const PolicyContext& ctx) {
  refs_.clear();
  node_buf_.clear();
  if (ctx.jobs_have_throttleable) {
    // The job pass already filtered each job's nodes and accumulated the
    // one-level saving over exactly that sequence: building the scratch is
    // a range copy per job, O(jobs + targets) instead of a ctx.node()
    // probe per node of every job.
    for (const JobView& j : ctx.jobs) {
      if (j.throttleable.empty()) continue;
      const auto begin = static_cast<std::uint32_t>(node_buf_.size());
      node_buf_.insert(node_buf_.end(), j.throttleable.begin(),
                       j.throttleable.end());
      const auto end = static_cast<std::uint32_t>(node_buf_.size());
      refs_.push_back(
          Ref{&j, begin, end, j.saving_one_level, j.rate_of_increase()});
    }
    return;
  }
  for (const JobView& j : ctx.jobs) {
    const auto begin = static_cast<std::uint32_t>(node_buf_.size());
    Watts saving{0.0};
    for (const hw::NodeId id : j.nodes) {
      const NodeView* nv = ctx.node(id);
      if (nv != nullptr && nv->busy && !nv->at_lowest && !nv->stale &&
          !nv->command_in_flight) {
        node_buf_.push_back(id);
        saving += nv->power - nv->power_one_level_down;
      }
    }
    const auto end = static_cast<std::uint32_t>(node_buf_.size());
    if (end == begin) continue;  // nothing throttleable in this job
    refs_.push_back(Ref{&j, begin, end, saving, j.rate_of_increase()});
  }
}

std::vector<hw::NodeId> throttleable_nodes(const PolicyContext& ctx,
                                           const JobView& job) {
  std::vector<hw::NodeId> out;
  out.reserve(job.nodes.size());
  for (const hw::NodeId id : job.nodes) {
    const NodeView* nv = ctx.node(id);
    if (nv != nullptr && nv->busy && !nv->at_lowest && !nv->stale &&
        !nv->command_in_flight) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace pcap::power
