#include "power/policy.hpp"

#include <algorithm>

namespace pcap::power {

Watts PolicyContext::required_saving() const {
  const Watts gap = system_power - p_low;
  return gap > Watts{0.0} ? gap : Watts{0.0};
}

const NodeView* PolicyContext::node(hw::NodeId id) const {
  const auto it = node_index_.find(id);
  if (it == node_index_.end()) return nullptr;
  return &nodes[it->second];
}

void PolicyContext::index_nodes() {
  node_index_.clear();
  node_index_.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    node_index_.emplace(nodes[i].id, i);
  }
}

std::vector<hw::NodeId> throttleable_nodes(const PolicyContext& ctx,
                                           const JobView& job) {
  std::vector<hw::NodeId> out;
  out.reserve(job.nodes.size());
  for (const hw::NodeId id : job.nodes) {
    const NodeView* nv = ctx.node(id);
    if (nv != nullptr && nv->busy && !nv->at_lowest) out.push_back(id);
  }
  return out;
}

}  // namespace pcap::power
