#include "power/policies_state_based.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace pcap::power {

namespace {

/// Jobs that still have at least one throttleable node, paired with those
/// nodes. Jobs whose every node already sits at the floor cannot help.
struct ThrottleableJob {
  const JobView* job;
  std::vector<hw::NodeId> nodes;
  Watts saving{0.0};
};

std::vector<ThrottleableJob> throttleable_jobs(const PolicyContext& ctx) {
  std::vector<ThrottleableJob> out;
  out.reserve(ctx.jobs.size());
  for (const JobView& j : ctx.jobs) {
    auto nodes = throttleable_nodes(ctx, j);
    if (nodes.empty()) continue;
    Watts saving{0.0};
    for (const hw::NodeId id : nodes) {
      const NodeView* nv = ctx.node(id);
      saving += nv->power - nv->power_one_level_down;
    }
    out.push_back(ThrottleableJob{&j, std::move(nodes), saving});
  }
  return out;
}

/// Collection policies share one skeleton: order the throttleable jobs by
/// a comparator, then accumulate savings until the required shed amount is
/// covered (Algorithm 2 with a pluggable order). Nodes shared between the
/// selected jobs are deduplicated, matching the Nodes(J_i) - A term.
template <typename Compare>
std::vector<hw::NodeId> accumulate_collection(const PolicyContext& ctx,
                                              Compare cmp) {
  auto jobs = throttleable_jobs(ctx);
  if (jobs.empty()) return {};
  std::stable_sort(jobs.begin(), jobs.end(), cmp);

  const Watts needed = ctx.required_saving();
  std::vector<hw::NodeId> targets;
  std::unordered_set<hw::NodeId> seen;
  Watts saved{0.0};
  for (const auto& tj : jobs) {
    for (const hw::NodeId id : tj.nodes) {
      if (!seen.insert(id).second) continue;  // Nodes(J_i) - A
      targets.push_back(id);
      const NodeView* nv = ctx.node(id);
      saved += nv->power - nv->power_one_level_down;
    }
    if (saved >= needed) break;  // "if Saved >= P - P_L then exit"
  }
  return targets;
}

}  // namespace

std::vector<hw::NodeId> MostPowerConsumingJob::select(
    const PolicyContext& ctx) {
  const auto jobs = throttleable_jobs(ctx);
  if (jobs.empty()) return {};
  const auto it = std::max_element(
      jobs.begin(), jobs.end(), [](const auto& a, const auto& b) {
        return a.job->power < b.job->power;
      });
  return it->nodes;
}

std::vector<hw::NodeId> MostPowerConsumingCollection::select(
    const PolicyContext& ctx) {
  return accumulate_collection(ctx, [](const auto& a, const auto& b) {
    return a.job->power > b.job->power;  // descending power
  });
}

std::vector<hw::NodeId> LeastPowerConsumingJob::select(
    const PolicyContext& ctx) {
  const auto jobs = throttleable_jobs(ctx);
  if (jobs.empty()) return {};
  const auto it = std::min_element(
      jobs.begin(), jobs.end(), [](const auto& a, const auto& b) {
        return a.job->power < b.job->power;
      });
  return it->nodes;
}

std::vector<hw::NodeId> LeastPowerConsumingCollection::select(
    const PolicyContext& ctx) {
  return accumulate_collection(ctx, [](const auto& a, const auto& b) {
    return a.job->power < b.job->power;  // ascending power
  });
}

std::vector<hw::NodeId> BestFitJob::select(const PolicyContext& ctx) {
  const auto jobs = throttleable_jobs(ctx);
  if (jobs.empty()) return {};

  const Watts needed = ctx.required_saving();
  // Prefer the job whose saving is the smallest one >= needed ("just
  // above the difference"); if none covers the gap, take the largest
  // available saving to make the most progress this cycle.
  const ThrottleableJob* best_above = nullptr;
  const ThrottleableJob* best_below = nullptr;
  for (const auto& tj : jobs) {
    if (tj.saving >= needed) {
      if (best_above == nullptr || tj.saving < best_above->saving) {
        best_above = &tj;
      }
    } else if (best_below == nullptr || tj.saving > best_below->saving) {
      best_below = &tj;
    }
  }
  const ThrottleableJob* chosen =
      best_above != nullptr ? best_above : best_below;
  return chosen->nodes;
}

}  // namespace pcap::power
