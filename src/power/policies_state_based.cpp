#include "power/policies_state_based.hpp"

#include <algorithm>

namespace pcap::power {

// All five policies rank the scratch refs (jobs with at least one
// throttleable node, rebuilt allocation-free per call); comparisons read
// the JobView aggregates through Ref::job.

std::vector<hw::NodeId> MostPowerConsumingJob::select(
    const PolicyContext& ctx) {
  scratch_.build(ctx);
  const auto& jobs = scratch_.refs();
  if (jobs.empty()) return {};
  const auto it = std::max_element(
      jobs.begin(), jobs.end(), [](const auto& a, const auto& b) {
        return a.job->power < b.job->power;
      });
  return scratch_.targets_of(*it);
}

std::vector<hw::NodeId> MostPowerConsumingCollection::select(
    const PolicyContext& ctx) {
  return accumulate_collection(
      ctx, scratch_, [](const auto& a, const auto& b) {
        return a.job->power > b.job->power;  // descending power
      });
}

std::vector<hw::NodeId> LeastPowerConsumingJob::select(
    const PolicyContext& ctx) {
  scratch_.build(ctx);
  const auto& jobs = scratch_.refs();
  if (jobs.empty()) return {};
  const auto it = std::min_element(
      jobs.begin(), jobs.end(), [](const auto& a, const auto& b) {
        return a.job->power < b.job->power;
      });
  return scratch_.targets_of(*it);
}

std::vector<hw::NodeId> LeastPowerConsumingCollection::select(
    const PolicyContext& ctx) {
  return accumulate_collection(
      ctx, scratch_, [](const auto& a, const auto& b) {
        return a.job->power < b.job->power;  // ascending power
      });
}

std::vector<hw::NodeId> BestFitJob::select(const PolicyContext& ctx) {
  scratch_.build(ctx);
  const auto& jobs = scratch_.refs();
  if (jobs.empty()) return {};

  const Watts needed = ctx.required_saving();
  // Prefer the job whose saving is the smallest one >= needed ("just
  // above the difference"); if none covers the gap, take the largest
  // available saving to make the most progress this cycle. Strict
  // comparisons keep ties on the earliest job in context order.
  const SelectionScratch::Ref* best_above = nullptr;
  const SelectionScratch::Ref* best_below = nullptr;
  for (const auto& tj : jobs) {
    if (tj.saving >= needed) {
      if (best_above == nullptr || tj.saving < best_above->saving) {
        best_above = &tj;
      }
    } else if (best_below == nullptr || tj.saving > best_below->saving) {
      best_below = &tj;
    }
  }
  const SelectionScratch::Ref* chosen =
      best_above != nullptr ? best_above : best_below;
  if (chosen == nullptr) return {};  // unreachable with jobs non-empty,
                                     // but never dereference on faith
  return scratch_.targets_of(*chosen);
}

}  // namespace pcap::power
