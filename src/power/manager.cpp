#include "power/manager.hpp"

#include <stdexcept>

namespace pcap::power {

CappingManager::CappingManager(CappingManagerParams params, PolicyPtr policy,
                               common::Rng rng)
    : params_(params),
      policy_(std::move(policy)),
      collector_(params.collector, rng.fork("collector")),
      learner_(params.thresholds),
      engine_(params.capping) {
  if (!policy_) throw std::invalid_argument("CappingManager: null policy");
  if (params_.cycle_period <= Seconds{0.0}) {
    throw std::invalid_argument("CappingManager: bad cycle period");
  }
  collector_.set_cycle_period(params_.cycle_period);
  if (params_.selector) selector_.emplace(*params_.selector);
}

std::string CappingManager::name() const {
  return "capping:" + policy_->name();
}

void CappingManager::set_candidate_set(const std::vector<hw::NodeId>& ids) {
  collector_.set_candidate_set(ids);
}

PolicyContext CappingManager::build_context(
    Watts measured, const std::vector<hw::Node>& nodes,
    const sched::Scheduler& scheduler) const {
  PolicyContext ctx;
  build_context_into(ctx, measured, nodes, scheduler);
  return ctx;
}

void CappingManager::build_context_into(
    PolicyContext& ctx, Watts measured, const std::vector<hw::Node>& nodes,
    const sched::Scheduler& scheduler) const {
  ctx.system_power = measured;
  ctx.p_low = learner_.p_low();

  // Node views from the latest telemetry. clear() keeps the capacity, so
  // after the first cycle this fills existing storage.
  ctx.nodes.clear();
  for (const hw::NodeId id : collector_.candidate_set()) {
    const auto* hist = collector_.history(id);
    if (hist == nullptr || hist->empty()) continue;  // not yet sampled
    const telemetry::NodeSample& latest = hist->back();
    const hw::Node& node = nodes.at(id);
    NodeView nv;
    nv.id = id;
    nv.level = latest.level;
    nv.highest_level = node.spec().ladder.highest();
    nv.at_lowest = latest.level == node.spec().ladder.lowest();
    nv.busy = latest.busy;
    nv.power = latest.estimated_power;
    nv.temperature = latest.temperature;
    if (hist->size() >= 2) {
      nv.power_prev = (*hist)[hist->size() - 2].estimated_power;
    }
    nv.power_one_level_down = node.estimated_power_at(latest.level - 1);
    ctx.nodes.push_back(nv);
  }
  ctx.index_nodes();

  // Job views restricted to candidate nodes. JobView slots — including
  // their per-job node-id vectors — are recycled in place.
  std::size_t used = 0;
  for (const workload::JobId jid : scheduler.running_jobs()) {
    const workload::Job* job = scheduler.find(jid);
    if (job == nullptr) continue;
    if (used == ctx.jobs.size()) ctx.jobs.emplace_back();
    JobView& jv = ctx.jobs[used];
    jv.id = jid;
    jv.nodes.clear();
    jv.power = Watts{0.0};
    jv.power_prev = Watts{0.0};
    jv.saving_one_level = Watts{0.0};
    bool have_all_prev = true;
    for (const hw::NodeId nid : job->nodes()) {
      const NodeView* nv = ctx.node(nid);
      if (nv == nullptr) continue;  // node outside A_candidate
      jv.nodes.push_back(nid);
      jv.power += nv->power;
      if (nv->power_prev > Watts{0.0}) {
        jv.power_prev += nv->power_prev;
      } else {
        have_all_prev = false;
      }
      if (nv->busy && !nv->at_lowest) {
        jv.saving_one_level += nv->power - nv->power_one_level_down;
      }
    }
    if (jv.nodes.empty()) continue;  // slot stays free for the next job
    if (!have_all_prev) jv.power_prev = Watts{0.0};  // no rate this cycle
    ++used;
  }
  ctx.jobs.erase(ctx.jobs.begin() + static_cast<std::ptrdiff_t>(used),
                 ctx.jobs.end());
}

ManagerReport CappingManager::cycle(Watts measured,
                                    std::vector<hw::Node>& nodes,
                                    const sched::Scheduler& scheduler,
                                    Seconds now) {
  // 0. Candidate set re-selection (§III.A algorithm (c)).
  if (selector_ && selector_->due()) {
    collector_.set_candidate_set(selector_->select(nodes, scheduler));
  }

  // 1. Telemetry sweep over A_candidate.
  collector_.collect(nodes, now, scheduler.running_count());

  // 2. Threshold learning / adjustment.
  learner_.observe(measured);

  ManagerReport report;
  report.measured = measured;
  report.p_low = learner_.p_low();
  report.p_high = learner_.p_high();
  report.training = learner_.training();
  report.manager_utilization = collector_.last_cycle_manager_utilization();
  report.state = classify_power(measured, report.p_low, report.p_high);

  // 3. During training the system runs unmanaged (§V.C).
  if (report.training) return report;

  // 4. Algorithm 1 + actuation. A green cycle with nothing degraded never
  // consults the context (the pruning loop and the restore walk both
  // iterate A_degraded), so the dominant assembly cost is skipped on the
  // steady-state path; when it does run, the persistent buffers make it
  // allocation-free.
  if (report.state != PowerState::kGreen || !engine_.degraded().empty()) {
    build_context_into(scratch_ctx_, measured, nodes, scheduler);
  }
  const PolicyContext& ctx = scratch_ctx_;
  const CycleDecision decision =
      engine_.cycle(measured, report.p_low, report.p_high, *policy_, ctx);
  report.state = decision.state;
  report.targets = decision.commands.size();
  report.transitions = controller_.apply(decision.commands, nodes);
  return report;
}

ManagerReport NoCappingManager::cycle(Watts measured,
                                      std::vector<hw::Node>& /*nodes*/,
                                      const sched::Scheduler& /*scheduler*/,
                                      Seconds /*now*/) {
  ManagerReport report;
  report.measured = measured;
  return report;
}

}  // namespace pcap::power
