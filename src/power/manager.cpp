#include "power/manager.hpp"

#include <cmath>
#include <stdexcept>

#include "power/checkpoint.hpp"

namespace pcap::power {

namespace {

/// Sanity bound for a reported power estimate. Formula-(1) estimates can
/// legitimately sit a little above the table entries (interpolation,
/// utilisation overshoot), so allow headroom over the board's theoretical
/// ceiling; anything negative, non-finite, or far beyond it is a torn or
/// byte-swapped counter, not a measurement.
bool plausible_sample(const telemetry::NodeSample& s, const hw::Node& node) {
  const double w = s.estimated_power.value();
  return std::isfinite(w) && w >= 0.0 &&
         s.estimated_power <= node.spec().power_model.theoretical_max() * 1.5;
}

}  // namespace

CappingManager::CappingManager(CappingManagerParams params, PolicyPtr policy,
                               common::Rng rng)
    : params_(params),
      policy_(std::move(policy)),
      // Fork order ("collector" first, then "actuation") is part of the
      // seed-compatibility contract: swapping it would reshuffle every
      // telemetry fault stream from earlier experiments.
      collector_(params.collector, rng.fork("collector")),
      learner_(params.thresholds),
      engine_(params.capping),
      channel_(params.actuation, rng.fork("actuation")),
      reconciler_(params.reconciliation),
      // "control" is forked LAST: appending the new stream after the two
      // existing forks leaves every pre-existing seed's collector and
      // actuation streams untouched.
      ctrl_faults_(params.control, rng.fork("control")) {
  if (!policy_) throw std::invalid_argument("CappingManager: null policy");
  if (params_.cycle_period <= Seconds{0.0}) {
    throw std::invalid_argument("CappingManager: bad cycle period");
  }
  if (params_.max_sample_age_cycles < 0) {
    throw std::invalid_argument("CappingManager: bad max sample age");
  }
  if (params_.stale_power_margin < 0.0) {
    throw std::invalid_argument("CappingManager: bad stale power margin");
  }
  if (params_.green_collect_stride < 1) {
    throw std::invalid_argument("CappingManager: bad green collect stride");
  }
  // No staleness clamp: any cycle that will build a policy context
  // collects first (the gate runs before the sweep), so a strided skip
  // run can never feed a decision; max_sample_age_cycles keeps governing
  // in-context transport-delay staleness only.
  collect_stride_ = params_.green_collect_stride;
  collector_.set_cycle_period(params_.cycle_period);
  if (params_.prediction.enabled) {
    params_.prediction.validate();
    predictor_ = make_predictor(params_.prediction);
    predictor_refresh_cycles_ = params_.prediction.refresh_cycles > 0
                                    ? params_.prediction.refresh_cycles
                                    : params_.thresholds.adjust_period_cycles;
    scorer_.reset(params_.prediction.horizon_cycles);
  }
  // The incremental context plane needs the collector's per-slot change
  // cursors; whether a pure temperature drift counts as a change depends
  // on whether this manager's policy will ever read it.
  collector_.configure_dedup(params_.incremental_context,
                             policy_->temperature_sensitive());
  if (params_.selector) selector_.emplace(*params_.selector);
}

std::string CappingManager::name() const {
  return "capping:" + policy_->name();
}

void CappingManager::set_candidate_set(const std::vector<hw::NodeId>& ids) {
  collector_.set_candidate_set(ids);
  channel_.ensure_nodes(ids);
  // The collector's copy is sorted/deduplicated; hand that one to the job
  // index so both agree on membership. The refilter itself is deferred to
  // the next context build.
  job_index_.set_candidate_set(collector_.candidate_set());
  // Slot layout and context positions are stale now: the next context
  // build must be a full one.
  inc_valid_ = false;
  if (owns_watchdog_groups_ && watchdog_ != nullptr) {
    watchdog_->set_groups({collector_.candidate_set()});
  }
}

void CappingManager::set_watchdog(hw::FailsafeWatchdog* wd) {
  watchdog_ = wd;
  watchdog_group_ = 0;
  owns_watchdog_groups_ = wd != nullptr;
  if (wd != nullptr) {
    wd->set_groups({collector_.candidate_set()});
  }
}

void CappingManager::attach_watchdog(hw::FailsafeWatchdog* wd,
                                     std::size_t group) {
  watchdog_ = wd;
  watchdog_group_ = group;
  owns_watchdog_groups_ = false;
}

void ManagerMetrics::bind(obs::Registry& reg) {
  ManagerMetrics& m = *this;
  m.reg = &reg;

  const std::string cycles = "pcap_manager_cycles_total";
  const std::string cycles_help = "Control cycles by resulting power state";
  m.cycles_green = reg.counter(cycles, cycles_help, "state=\"green\"");
  m.cycles_yellow = reg.counter(cycles, cycles_help, "state=\"yellow\"");
  m.cycles_red = reg.counter(cycles, cycles_help, "state=\"red\"");
  m.training_cycles = reg.counter("pcap_manager_training_cycles_total",
                                  "Cycles spent in threshold training");

  m.targets = reg.counter("pcap_manager_targets_total",
                          "Nodes selected as throttle/restore targets");
  m.transitions = reg.counter("pcap_manager_transitions_total",
                              "Level changes actually applied at nodes");
  m.skipped_targets =
      reg.counter("pcap_manager_skipped_targets_total",
                  "Policy targets the capping engine refused");
  m.deferred_targets =
      reg.counter("pcap_manager_deferred_targets_total",
                  "Targets passed over because a command was in flight");

  m.stale_nodes = reg.counter("pcap_manager_stale_node_cycles_total",
                              "Node-cycles served past the sample-age bound");
  m.missing_nodes = reg.counter("pcap_manager_missing_node_cycles_total",
                                "Node-cycles with no usable sample");
  m.fallback_nodes =
      reg.counter("pcap_manager_fallback_node_cycles_total",
                  "Node-cycles served from a substituted estimate");
  m.rejected_samples = reg.counter("pcap_manager_rejected_samples_total",
                                   "Implausible telemetry samples skipped");
  m.unresponsive_node_cycles =
      reg.counter("pcap_manager_unresponsive_node_cycles_total",
                  "Node-cycles excluded: retry budget exhausted");

  m.acks = reg.counter("pcap_manager_acks_total",
                       "Commands confirmed by telemetry");
  m.retries = reg.counter("pcap_manager_retries_total",
                          "Unacked commands re-sent");
  m.divergences = reg.counter("pcap_manager_divergences_total",
                              "Observed level != believed level");
  m.heals = reg.counter("pcap_manager_heals_total",
                        "Healing commands emitted");

  m.samples_lost = reg.counter("pcap_telemetry_samples_lost_total",
                               "Samples dropped by the transport");
  m.samples_suppressed = reg.counter("pcap_telemetry_samples_suppressed_total",
                                     "Samples that never left the node");
  m.samples_corrupted = reg.counter("pcap_telemetry_samples_corrupted_total",
                                    "Samples delivered with garbage power");
  m.crash_events = reg.counter("pcap_telemetry_crash_events_total",
                               "Profiling agent crash events");
  m.recovery_events = reg.counter("pcap_telemetry_recovery_events_total",
                                  "Profiling agent recovery events");

  m.commands_lost = reg.counter("pcap_actuation_commands_lost_total",
                                "Commands dropped in transit");
  m.commands_rebooting =
      reg.counter("pcap_actuation_commands_rebooting_total",
                  "Commands dropped at a rebooting node");
  m.transitions_failed =
      reg.counter("pcap_actuation_transitions_failed_total",
                  "Delivered commands whose DVFS switch failed");
  m.transitions_partial =
      reg.counter("pcap_actuation_transitions_partial_total",
                  "Delivered commands that landed part-way");
  m.reboot_events = reg.counter("pcap_actuation_reboot_events_total",
                                "Node reboot events");
  m.commands_abandoned = reg.counter("pcap_actuation_commands_abandoned_total",
                                     "Commands whose retry budget ran out");
  m.commands_clamped = reg.counter("pcap_actuation_commands_clamped_total",
                                   "Requests clamped by the node controller");

  m.ctrl_outage_events = reg.counter("pcap_ctrl_outage_events_total",
                                     "Root controller outage windows started");
  m.ctrl_outage_cycles = reg.counter("pcap_ctrl_outage_cycles_total",
                                     "Cycles the root controller was down");
  m.ctrl_delayed_cycles =
      reg.counter("pcap_ctrl_delayed_cycles_total",
                  "Cycles the root controller lost to stalls");
  m.ctrl_zone_outage_cycles =
      reg.counter("pcap_ctrl_zone_outage_cycles_total",
                  "Zone-cycles lost to zone-shard crashes");
  m.watchdog_adoptions =
      reg.counter("pcap_watchdog_adoptions_total",
                  "Failsafe level changes adopted by the reconciler");

  m.predictor_overshoots =
      reg.counter("pcap_predictor_overshoots_total",
                  "Forecasts that called a P_L crossing that never came");
  m.predictor_misses =
      reg.counter("pcap_predictor_misses_total",
                  "P_L crossings the forecast did not see coming");
  m.predictive_elevations =
      reg.counter("pcap_manager_predictive_elevations_total",
                  "Green cycles promoted to the yellow path by a forecast");

  m.measured_watts = reg.gauge("pcap_manager_measured_watts",
                               "Facility meter reading at the last cycle");
  m.p_low_watts = reg.gauge("pcap_manager_p_low_watts",
                            "Learned lower power threshold");
  m.p_high_watts = reg.gauge("pcap_manager_p_high_watts",
                             "Learned upper power threshold");
  m.commands_in_flight = reg.gauge("pcap_manager_commands_in_flight",
                                   "Unacked commands after actuation");
  m.unresponsive_nodes = reg.gauge("pcap_manager_unresponsive_nodes",
                                   "Candidates currently abandoned");
  m.agents_down = reg.gauge("pcap_telemetry_agents_down",
                            "Profiling agents currently silent");
  m.orphan_zones = reg.gauge("pcap_ctrl_orphan_zones",
                             "Zone shards down at the last cycle");
  m.predictor_forecast_watts =
      reg.gauge("pcap_predictor_forecast_watts",
                "Predicted system power, horizon cycles ahead");
  m.predictor_abs_error_watts =
      reg.gauge("pcap_predictor_abs_error_watts",
                "Absolute error of the forecast that targeted this cycle");

  const std::string span = "pcap_cycle_phase_seconds";
  const std::string span_help = "Wall-clock time per control-loop phase";
  m.collect_span.bind(reg, span, span_help, "phase=\"collect\"");
  m.context_span.bind(reg, span, span_help, "phase=\"context\"");
  m.policy_span.bind(reg, span, span_help, "phase=\"policy\"");
  m.actuate_span.bind(reg, span, span_help, "phase=\"actuate\"");
}

void ManagerMetrics::publish(const ManagerReport& report,
                             std::size_t unresponsive_now) {
  ManagerMetrics& m = *this;
  obs::Registry* reg = m.reg;
  if (reg == nullptr) return;

  switch (report.state) {
    case PowerState::kGreen: reg->add(m.cycles_green); break;
    case PowerState::kYellow: reg->add(m.cycles_yellow); break;
    case PowerState::kRed: reg->add(m.cycles_red); break;
  }
  if (report.training) reg->add(m.training_cycles);

  reg->add(m.targets, report.targets);
  reg->add(m.transitions, report.transitions);
  reg->add(m.skipped_targets, report.skipped_targets);
  reg->add(m.deferred_targets, report.deferred_targets);

  reg->add(m.stale_nodes, report.stale_nodes);
  reg->add(m.missing_nodes, report.missing_nodes);
  reg->add(m.fallback_nodes, report.fallback_nodes);
  reg->add(m.rejected_samples, report.rejected_samples);
  reg->add(m.unresponsive_node_cycles, report.unresponsive_nodes);

  reg->add(m.acks, report.acks);
  reg->add(m.retries, report.retries);
  reg->add(m.divergences, report.divergences);
  reg->add(m.heals, report.heals);

  // Lifetime ground truth owned by the collector/injector/channel: mirror,
  // don't accumulate, or resets and replays would double-count.
  reg->set_total(m.samples_lost, report.samples_lost);
  reg->set_total(m.samples_suppressed, report.samples_suppressed);
  reg->set_total(m.samples_corrupted, report.samples_corrupted);
  reg->set_total(m.crash_events, report.crash_events);
  reg->set_total(m.recovery_events, report.recovery_events);
  reg->set_total(m.commands_lost, report.commands_lost);
  reg->set_total(m.commands_rebooting, report.commands_rebooting);
  reg->set_total(m.transitions_failed, report.transitions_failed);
  reg->set_total(m.transitions_partial, report.transitions_partial);
  reg->set_total(m.reboot_events, report.reboot_events);
  reg->set_total(m.commands_abandoned, report.commands_abandoned);
  reg->set_total(m.commands_clamped, report.commands_clamped);
  reg->set_total(m.ctrl_outage_events, report.ctrl_outages);
  reg->set_total(m.ctrl_outage_cycles, report.ctrl_outage_cycles);
  reg->set_total(m.ctrl_delayed_cycles, report.ctrl_delayed_cycles);
  reg->set_total(m.ctrl_zone_outage_cycles, report.ctrl_zone_outage_cycles);

  reg->add(m.watchdog_adoptions, report.watchdog_adoptions);

  reg->set_total(m.predictor_overshoots, report.predictor_overshoots);
  reg->set_total(m.predictor_misses, report.predictor_misses);
  reg->set_total(m.predictive_elevations, report.predictive_elevations);
  reg->set(m.predictor_forecast_watts,
           report.has_forecast ? report.forecast.value() : 0.0);
  reg->set(m.predictor_abs_error_watts,
           report.forecast_scored ? report.forecast_abs_error : 0.0);

  reg->set(m.measured_watts, report.measured.value());
  reg->set(m.p_low_watts, report.p_low.value());
  reg->set(m.p_high_watts, report.p_high.value());
  reg->set(m.commands_in_flight,
           static_cast<double>(report.commands_in_flight));
  reg->set(m.unresponsive_nodes, static_cast<double>(unresponsive_now));
  reg->set(m.agents_down, static_cast<double>(report.agents_down));
  reg->set(m.orphan_zones, static_cast<double>(report.zones_down));
}

void CappingManager::bind_metrics(obs::Registry& reg) { metrics_.bind(reg); }

PolicyContext CappingManager::build_context(
    Watts measured, const std::vector<hw::Node>& nodes,
    const sched::Scheduler& scheduler) const {
  PolicyContext ctx;
  build_context_into(ctx, measured, nodes, scheduler);
  return ctx;
}

void CappingManager::build_context_into(
    PolicyContext& ctx, Watts measured, const std::vector<hw::Node>& nodes,
    const sched::Scheduler& scheduler) const {
  build_context_with(ctx, measured, nodes, scheduler, nullptr, nullptr);
}

void CappingManager::build_context_with(
    PolicyContext& ctx, Watts measured, const std::vector<hw::Node>& nodes,
    const sched::Scheduler& scheduler, ActuationReconciler* rec,
    ActuationReconciler::CycleWork* work) const {
  const std::uint64_t now_cycle = collector_.cycle_count();
  const auto max_age = static_cast<std::uint64_t>(params_.max_sample_age_cycles);
  const std::vector<hw::NodeId>& candidates = collector_.candidate_set();

  // The candidate set is sorted, so its maximum id validates the whole
  // sweep against the node table in one comparison; every per-candidate
  // access below then indexes unchecked.
  if (!candidates.empty() &&
      static_cast<std::size_t>(collector_.max_candidate_id()) >=
          nodes.size()) {
    throw std::out_of_range(
        "CappingManager::build_context: candidate id out of range");
  }

  // Delta dispatch: only the persistent reconciled context carries valid
  // incremental state — benchmark builds into caller-owned contexts (and
  // read-only builds with rec == nullptr) always assemble from scratch.
  if (params_.incremental_context && rec != nullptr && &ctx == &scratch_ctx_ &&
      inc_valid_ && view_records_.size() == candidates.size()) {
    build_context_delta(ctx, measured, nodes, scheduler, rec, work, now_cycle,
                        max_age);
    return;
  }

  ctx.system_power = measured;
  ctx.p_low = learner_.p_low();

  // Phase 1 — sharded view assembly. One ViewRecord per candidate slot,
  // from strictly per-node inputs: this slot's telemetry history, this
  // node's spec/power model (its memoisation caches are touched by
  // exactly one worker), and this node's reconciler entries (read-only
  // here — unresponsive(id) never changes while the shards run, because
  // all reconciler mutation is deferred to the serial merge, and
  // observe_node(j) only ever touches node j's state). Chunk boundaries
  // are fixed by the grain, so the records are identical for any worker
  // count.
  view_records_.resize(candidates.size());
  common::maybe_parallel_for(
      pool_, candidates.size(), params_.collector.parallel_threshold,
      params_.collector.parallel_grain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t slot = begin; slot < end; ++slot) {
          fill_view_record(slot, candidates, nodes, rec, now_cycle, max_age);
        }
      });

  const bool inc_track =
      params_.incremental_context && rec != nullptr && &ctx == &scratch_ctx_;
  if (rec != nullptr && &ctx == &scratch_ctx_) ++inc_stats_.full_builds;

  merge_records_full(ctx, nodes, rec, work, now_cycle, inc_track);

  // Phase 2 — job views from the persistent index. entries() mirrors
  // scheduler.running_jobs() in order, and each entry's candidate_nodes
  // keeps Nodes(J) order, so every per-job power sum adds the same values
  // in the same order the full rebuild did.
  job_index_.sync(scheduler);
  job_pass_full(ctx, inc_track);

  if (inc_track) {
    rebuild_job_csr();
    inc_build_cycle_ = now_cycle;
    inc_job_epoch_ = job_index_.change_epoch();
    inc_valid_ = true;
  }
}

void CappingManager::fill_view_record(std::size_t slot,
                                      const std::vector<hw::NodeId>& candidates,
                                      const std::vector<hw::Node>& nodes,
                                      const ActuationReconciler* rec,
                                      std::uint64_t now_cycle,
                                      std::uint64_t max_age) const {
  ViewRecord& vr = view_records_[slot];
  const hw::NodeId id = candidates[slot];
  const auto& hist = collector_.history_at_slot(slot);
  const hw::Node& node = nodes[id];
  const bool unresponsive = rec != nullptr && rec->unresponsive(id);
  vr.rejected = 0;
  vr.substituted = false;

  // Walk the history newest-to-oldest for a sample that passes the sanity
  // check; corrupted deliveries are skipped, not trusted.
  std::size_t chosen = 0;
  bool found = false;
  for (std::size_t i = hist.size(); i-- > 0;) {
    if (plausible_sample(hist[i], node)) {
      chosen = i;
      found = true;
      break;
    }
    ++vr.rejected;
  }
  if (!found) {
    // Never sampled, or nothing in the window survived the sanity check.
    // With no level/busy state to act on, the node cannot be a target;
    // the facility meter still sees its real draw, so the thresholds
    // remain grounded even while we are blind.
    vr.status = unresponsive ? ViewRecord::Status::kMissingUnresponsive
                             : ViewRecord::Status::kMissing;
    return;
  }

  const telemetry::NodeSample& latest = hist[chosen];
  NodeView nv;
  nv.id = id;
  nv.level = latest.level;
  nv.highest_level = node.spec().ladder.highest();
  nv.at_lowest = latest.level == node.spec().ladder.lowest();
  nv.busy = latest.busy;
  nv.power = latest.estimated_power;
  nv.temperature = latest.temperature;
  // Freshness base: the chosen sample's stamp — or, when the newest
  // delivery has since been confirmed unchanged by the collector's dedup
  // (which freezes the history), the confirmation cycle. A suppressed
  // sweep attests the live counters still reproduce this entry bit for
  // bit, which is exactly what a fresh delivery would have proven.
  std::uint64_t fresh_cycle = latest.cycle;
  if (chosen + 1 == hist.size()) {
    const std::uint64_t confirmed = collector_.confirm_cycle(slot);
    if (confirmed > fresh_cycle) fresh_cycle = confirmed;
  }
  nv.stale = now_cycle - fresh_cycle > max_age;
  if (unresponsive && nv.stale) {
    // Abandoned AND blind: the node stays out of the context entirely —
    // not selectable, not in A_degraded, not worth a command — until a
    // fresh sample earns it a readmission in the merge.
    vr.status = ViewRecord::Status::kExcludedUnresponsive;
    return;
  }
  if (nv.stale) {
    // Conservative fallback: assume the unseen node has drifted UP from
    // its last known draw. Overstating keeps the job totals — and thus
    // how aggressively Algorithm 1 sheds — on the safe side.
    nv.power *= 1.0 + params_.stale_power_margin;
  } else if (chosen + 1 != hist.size()) {
    // Fresh enough, but only after discarding newer corrupt deliveries:
    // still a substituted estimate.
    vr.substituted = true;
  }
  for (std::size_t i = chosen; i-- > 0;) {
    if (plausible_sample(hist[i], node)) {
      nv.power_prev = hist[i].estimated_power;
      nv.has_prev = true;
      break;
    }
  }
  // A node already at the ladder floor has no level below it:
  // estimated_power_at(level - 1) would index off the bottom of the DVFS
  // table. Clamp the hypothetical to the current draw so saving_one_level
  // contributes exactly 0 W for floored nodes — the value every consumer
  // already assumes, since they all skip at_lowest views before reading
  // it.
  nv.power_one_level_down =
      nv.at_lowest ? nv.power : node.estimated_power_at(latest.level - 1);
  vr.view = nv;
  vr.sample_cycle = latest.cycle;
  vr.status = ViewRecord::Status::kOk;
}

void CappingManager::merge_records_full(PolicyContext& ctx,
                                        const std::vector<hw::Node>& nodes,
                                        ActuationReconciler* rec,
                                        ActuationReconciler::CycleWork* work,
                                        std::uint64_t now_cycle,
                                        bool inc_track) const {
  // Serial merge, in candidate order — exactly the order the pre-shard
  // loop visited nodes, so reconciler mutations, heal emission, counters
  // and the context layout are all bit-identical to it. clear() keeps the
  // capacity, so after the first cycle this fills existing storage.
  //
  // Also correct as the delta path's fallback over persisted records:
  // re-observing a clean slot's (unchanged) sample cycle is a reconciler
  // no-op by its staleness guard, and persisted records never carry the
  // in-flight inflation (it is applied to the copy `nv`, below).
  ctx.stale_nodes = 0;
  ctx.missing_nodes = 0;
  ctx.fallback_nodes = 0;
  ctx.rejected_samples = 0;
  ctx.unresponsive_nodes = 0;
  if (inc_track) {
    inc_pos_.assign(view_records_.size(), kNoPos);
    inc_degraded_.assign(view_records_.size(), 0);
  }
  ctx.nodes.clear();
  for (std::size_t slot = 0; slot < view_records_.size(); ++slot) {
    ViewRecord& vr = view_records_[slot];
    ctx.rejected_samples += vr.rejected;
    if (vr.status == ViewRecord::Status::kMissing) {
      ++ctx.missing_nodes;
      if (inc_track) inc_degraded_[slot] = 1;
      continue;
    }
    if (vr.status == ViewRecord::Status::kMissingUnresponsive ||
        vr.status == ViewRecord::Status::kExcludedUnresponsive) {
      ++ctx.unresponsive_nodes;
      if (inc_track) inc_degraded_[slot] = 1;
      continue;
    }
    NodeView nv = vr.view;
    if (rec != nullptr && !nv.stale) {
      if (watchdog_ != nullptr && watchdog_->adoption_pending(nv.id)) {
        // The failsafe changed this node during an outage. A fresh sample
        // showing the node's ACTUAL current level is the post-failsafe
        // truth: adopt it outright — feeding it to observe_node instead
        // would log a divergence and heal the node back UP against the
        // watchdog. A fresh-but-earlier sample (collected before the
        // failsafe stepped the node, still inside the age window) shows a
        // level the node no longer holds; holding the node out of the
        // ack machinery for one cycle is strictly safer than acting on it.
        if (nv.level == nodes[nv.id].level()) {
          rec->adopt_reality(nv.id, nv.level, vr.sample_cycle, *work);
          watchdog_->resolve_adoption(nv.id);
        }
      } else {
        // Ack/divergence/readmission processing runs on fresh views only:
        // a stale sample predates whatever is in flight and can neither
        // confirm nor contradict it.
        rec->observe_node(nv.id, nv.level, vr.sample_cycle, now_cycle, *work);
      }
    }
    if (nv.stale) {
      ++ctx.stale_nodes;
      ++ctx.fallback_nodes;
    } else if (vr.substituted) {
      ++ctx.fallback_nodes;
    }
    if (rec != nullptr) {
      // Safe-side accounting for whatever is (still) unacked after the
      // observation above. An unacked restore is assumed already applied
      // when computing headroom (the node may be drawing the higher power
      // right now); an unacked throttle claims nothing — the telemetry
      // power stands and the job-level saving below excludes the node.
      // Both errors overestimate draw, never savings.
      if (const std::optional<hw::Level> target =
              rec->pending_target(nv.id)) {
        nv.command_in_flight = true;
        if (*target > nv.level) {
          const Watts assumed = nodes[nv.id].estimated_power_at(*target);
          if (assumed > nv.power) nv.power = assumed;
        }
      }
    }
    if (inc_track) {
      inc_pos_[slot] = static_cast<std::uint32_t>(ctx.nodes.size());
      // A record whose view depends on clock or actuation state (not just
      // delivered sample content) must be re-derived every cycle even
      // without a telemetry change.
      inc_degraded_[slot] = (vr.rejected > 0 || nv.stale || vr.substituted ||
                             nv.command_in_flight)
                                ? 1
                                : 0;
    }
    ctx.nodes.push_back(nv);
  }
  ctx.index_nodes();
}

void CappingManager::fill_job_view(const JobIndex::Entry& e,
                                   const PolicyContext& ctx, JobView& jv) {
  jv.id = e.id;
  jv.nodes.clear();
  jv.throttleable.clear();
  jv.power = Watts{0.0};
  jv.power_prev = Watts{0.0};
  jv.saving_one_level = Watts{0.0};
  bool have_all_prev = true;
  for (const hw::NodeId nid : e.candidate_nodes) {
    const NodeView* nv = ctx.node(nid);
    if (nv == nullptr) continue;  // no usable view this cycle
    jv.nodes.push_back(nid);
    jv.power += nv->power;
    // has_prev, not power_prev > 0: an idle or gated node legitimately
    // reports 0.0 W, and treating that as "no history" zeroed the whole
    // job's rate-of-increase signal.
    if (nv->has_prev) {
      jv.power_prev += nv->power_prev;
    } else {
      have_all_prev = false;
    }
    // Stale or in-flight nodes contribute (inflated) power but no claimed
    // saving: a throttle command they will not be selected for cannot be
    // counted as shed watts.
    if (nv->busy && !nv->at_lowest && !nv->stale && !nv->command_in_flight) {
      jv.throttleable.push_back(nid);
      jv.saving_one_level += nv->power - nv->power_one_level_down;
    }
  }
  if (!have_all_prev) jv.power_prev = Watts{0.0};  // no rate
}

void CappingManager::job_pass_full(PolicyContext& ctx, bool inc_track) const {
  // Each stage slot is written by one worker and reads only the frozen
  // context, so this pass shards.
  const std::vector<JobIndex::Entry>& entries = job_index_.entries();
  job_stage_.resize(entries.size());
  common::maybe_parallel_for(
      pool_, entries.size(), params_.collector.parallel_threshold,
      params_.collector.parallel_grain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          fill_job_view(entries[k], ctx, job_stage_[k]);
        }
      });
  if (inc_track) inc_job_pos_.assign(entries.size(), kNoPos);
  // Serial compaction: jobs with no usable node this cycle drop out,
  // order is preserved, and swap keeps both sides' vector capacity.
  std::size_t used = 0;
  for (std::size_t k = 0; k < job_stage_.size(); ++k) {
    JobView& staged = job_stage_[k];
    if (staged.nodes.empty()) continue;
    if (inc_track) inc_job_pos_[k] = static_cast<std::uint32_t>(used);
    if (used == ctx.jobs.size()) ctx.jobs.emplace_back();
    std::swap(ctx.jobs[used], staged);
    ++used;
  }
  ctx.jobs.erase(ctx.jobs.begin() + static_cast<std::ptrdiff_t>(used),
                 ctx.jobs.end());
  ctx.jobs_have_throttleable = true;
}

void CappingManager::rebuild_job_csr() const {
  // Node id -> list of job-entry indices (ascending, since entries are
  // scanned in order): maps a dirty slot to exactly the JobViews its view
  // feeds.
  const std::vector<JobIndex::Entry>& entries = job_index_.entries();
  const std::size_t width =
      collector_.candidate_set().empty()
          ? 0
          : static_cast<std::size_t>(collector_.max_candidate_id()) + 1;
  inc_csr_off_.assign(width + 1, 0);
  std::size_t total = 0;
  for (const JobIndex::Entry& e : entries) {
    total += e.candidate_nodes.size();
    for (const hw::NodeId nid : e.candidate_nodes) ++inc_csr_off_[nid + 1];
  }
  inc_csr_.resize(total);
  for (std::size_t i = 1; i <= width; ++i) inc_csr_off_[i] += inc_csr_off_[i - 1];
  for (std::size_t k = 0; k < entries.size(); ++k) {
    for (const hw::NodeId nid : entries[k].candidate_nodes) {
      inc_csr_[inc_csr_off_[nid]++] = static_cast<std::uint32_t>(k);
    }
  }
  // The cursor fill shifted every offset to its range end; rotate back so
  // [off[id], off[id+1]) is node id's range again.
  for (std::size_t i = width; i > 0; --i) inc_csr_off_[i] = inc_csr_off_[i - 1];
  if (width > 0) inc_csr_off_[0] = 0;
}

void CappingManager::build_context_delta(
    PolicyContext& ctx, Watts measured, const std::vector<hw::Node>& nodes,
    const sched::Scheduler& scheduler, ActuationReconciler* rec,
    ActuationReconciler::CycleWork* work, std::uint64_t now_cycle,
    std::uint64_t max_age) const {
  ctx.system_power = measured;
  ctx.p_low = learner_.p_low();

  const std::vector<hw::NodeId>& candidates = collector_.candidate_set();

  job_index_.sync(scheduler);
  const bool jobs_churned = job_index_.change_epoch() != inc_job_epoch_;

  // Dirty scan: a slot must be re-derived when its telemetry content
  // changed since the last build, when its last delivery is not this
  // cycle's confirmation (lost/delayed samples age the view), when its
  // previous record depended on clock or actuation state, or when the
  // actuation plane is mid-flight on it (pending command, abandoned, or
  // awaiting watchdog adoption — those paths mutate reconciler state in
  // the merge and must keep doing so every cycle).
  inc_dirty_.clear();
  inc_old_present_.clear();
  for (std::size_t slot = 0; slot < candidates.size(); ++slot) {
    bool dirty = inc_degraded_[slot] != 0 ||
                 collector_.change_cycle(slot) > inc_build_cycle_ ||
                 collector_.confirm_cycle(slot) != now_cycle;
    if (!dirty) {
      const hw::NodeId id = candidates[slot];
      dirty = rec->in_flight(id) || rec->unresponsive(id) ||
              (watchdog_ != nullptr && watchdog_->adoption_pending(id));
    }
    if (dirty) inc_dirty_.push_back(static_cast<std::uint32_t>(slot));
  }
  ++inc_stats_.delta_builds;
  inc_stats_.dirty_slots += inc_dirty_.size();

  if (inc_dirty_.empty() && !jobs_churned) {
    ++inc_stats_.noop_builds;
    // Quiescent: the persisted context IS this cycle's context. This is
    // the empty-dirty-set special case the zone tree's quiescence hints
    // approximate from outside.
    inc_build_cycle_ = now_cycle;
    return;
  }

  // Retract the dirty slots' old tally contributions (integer running
  // totals) and remember their old presence; the refill below overwrites
  // the records in place.
  for (const std::uint32_t slot : inc_dirty_) {
    const ViewRecord& vr = view_records_[slot];
    ctx.rejected_samples -= vr.rejected;
    switch (vr.status) {
      case ViewRecord::Status::kMissing:
        --ctx.missing_nodes;
        break;
      case ViewRecord::Status::kMissingUnresponsive:
      case ViewRecord::Status::kExcludedUnresponsive:
        --ctx.unresponsive_nodes;
        break;
      case ViewRecord::Status::kOk:
        if (vr.view.stale) {
          --ctx.stale_nodes;
          --ctx.fallback_nodes;
        } else if (vr.substituted) {
          --ctx.fallback_nodes;
        }
        break;
    }
    inc_old_present_.push_back(vr.status == ViewRecord::Status::kOk ? 1 : 0);
  }

  // Parallel refill of exactly the dirty slots — the same strictly
  // per-node derivation as the full sharded pass, so chunk boundaries
  // cannot change the records.
  common::maybe_parallel_for(
      pool_, inc_dirty_.size(), params_.collector.parallel_threshold,
      params_.collector.parallel_grain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          fill_view_record(inc_dirty_[i], candidates, nodes, rec, now_cycle,
                           max_age);
        }
      });

  bool flipped = false;
  for (std::size_t i = 0; i < inc_dirty_.size() && !flipped; ++i) {
    const bool present =
        view_records_[inc_dirty_[i]].status == ViewRecord::Status::kOk;
    flipped = present != (inc_old_present_[i] != 0);
  }

  if (flipped) {
    // A slot entered or left the context, so every position after it
    // shifts: fall back to the full serial merge + job pass over the
    // persisted records (clean slots keep theirs untouched).
    merge_records_full(ctx, nodes, rec, work, now_cycle, true);
    if (jobs_churned) rebuild_job_csr();
    job_pass_full(ctx, true);
    inc_build_cycle_ = now_cycle;
    inc_job_epoch_ = job_index_.change_epoch();
    return;
  }

  // In-place serial merge of the dirty slots, ascending — the same
  // relative order the full merge visits them, so reconciler mutations
  // and heal emission stay bit-identical to it (clean slots in between
  // would all have been no-ops).
  for (const std::uint32_t slot : inc_dirty_) {
    ViewRecord& vr = view_records_[slot];
    ctx.rejected_samples += vr.rejected;
    if (vr.status != ViewRecord::Status::kOk) {
      if (vr.status == ViewRecord::Status::kMissing) {
        ++ctx.missing_nodes;
      } else {
        ++ctx.unresponsive_nodes;
      }
      inc_degraded_[slot] = 1;
      continue;
    }
    NodeView nv = vr.view;
    if (!nv.stale) {
      if (watchdog_ != nullptr && watchdog_->adoption_pending(nv.id)) {
        if (nv.level == nodes[nv.id].level()) {
          rec->adopt_reality(nv.id, nv.level, vr.sample_cycle, *work);
          watchdog_->resolve_adoption(nv.id);
        }
      } else {
        rec->observe_node(nv.id, nv.level, vr.sample_cycle, now_cycle, *work);
      }
    }
    if (nv.stale) {
      ++ctx.stale_nodes;
      ++ctx.fallback_nodes;
    } else if (vr.substituted) {
      ++ctx.fallback_nodes;
    }
    if (const std::optional<hw::Level> target = rec->pending_target(nv.id)) {
      nv.command_in_flight = true;
      if (*target > nv.level) {
        const Watts assumed = nodes[nv.id].estimated_power_at(*target);
        if (assumed > nv.power) nv.power = assumed;
      }
    }
    inc_degraded_[slot] = (vr.rejected > 0 || nv.stale || vr.substituted ||
                           nv.command_in_flight)
                              ? 1
                              : 0;
    ctx.nodes[inc_pos_[slot]] = nv;
  }

  if (jobs_churned) {
    // Job start/finish or candidate refilter: entry list shape changed,
    // recompute every JobView and the node -> entry map.
    rebuild_job_csr();
    job_pass_full(ctx, true);
    inc_build_cycle_ = now_cycle;
    inc_job_epoch_ = job_index_.change_epoch();
    return;
  }

  // Same job list as last build: refresh only the JobViews that contain a
  // dirty slot, via the CSR. Ascending entry order keeps the recompute
  // deterministic; the arithmetic is the staged pass's, so values are
  // bit-identical to a full job pass.
  const std::vector<JobIndex::Entry>& entries = job_index_.entries();
  inc_job_dirty_.assign(entries.size(), 0);
  for (const std::uint32_t slot : inc_dirty_) {
    const hw::NodeId id = candidates[slot];
    for (std::uint32_t c = inc_csr_off_[id]; c < inc_csr_off_[id + 1]; ++c) {
      inc_job_dirty_[inc_csr_[c]] = 1;
    }
  }
  bool job_flip = false;
  for (std::size_t k = 0; k < entries.size(); ++k) {
    if (inc_job_dirty_[k] == 0) continue;
    fill_job_view(entries[k], ctx, inc_job_scratch_);
    const bool now_empty = inc_job_scratch_.nodes.empty();
    if (now_empty != (inc_job_pos_[k] == kNoPos)) {
      // A job gained its first usable view or lost its last one: the
      // compacted ctx.jobs positions shift. CSR stays valid (no churn).
      job_flip = true;
      break;
    }
    if (!now_empty) std::swap(ctx.jobs[inc_job_pos_[k]], inc_job_scratch_);
  }
  if (job_flip) job_pass_full(ctx, true);

  inc_build_cycle_ = now_cycle;
}

void CappingManager::collect_phase(bool collect_now,
                                   const std::vector<hw::Node>& nodes,
                                   Seconds now, std::size_t monitored_jobs) {
  if (collect_now) {
    if (collector_.dedup_active()) {
      // Slots the actuation plane is waiting on (pending acks, abandoned
      // nodes, failsafe adoptions) consume the sample stream itself:
      // exempt them from dedup suppression so every such cycle still
      // delivers a real sample.
      watch_scratch_.clear();
      reconciler_.collect_watch(watch_scratch_);
      if (watchdog_ != nullptr) {
        watchdog_->collect_adoption_pending(watchdog_group_, watch_scratch_);
      }
      collector_.set_watch(watch_scratch_);
    }
    collector_.collect(nodes, now, monitored_jobs);
  } else {
    // Clock tick only: per-slot staleness stays well-defined and the
    // stride schedule keeps its phase.
    collector_.skip_cycle(monitored_jobs);
  }
}

void CappingManager::begin_actuation_phase(std::vector<hw::Node>& nodes) {
  delivered_scratch_.clear();
  recon_work_.clear();
  channel_.begin_cycle(nodes, delivered_scratch_);
}

void CappingManager::context_phase(Watts measured,
                                   const std::vector<hw::Node>& nodes,
                                   const sched::Scheduler& scheduler,
                                   ManagerReport& report) {
  build_context_with(scratch_ctx_, measured, nodes, scheduler, &reconciler_,
                     &recon_work_);
  reconciler_.finish_observation(collector_.cycle_count(), recon_work_);
  // Failsafe levels adopted above join A_degraded: steady green is what
  // restores them back up once the controller has been back long enough.
  // A node adopted AT its top level (uncommon — safe_level at the top)
  // has nothing to restore and stays out.
  for (const LevelCommand& adopted : recon_work_.adopted_nodes) {
    if (adopted.level < nodes[adopted.node].spec().ladder.highest()) {
      engine_.adopt_degraded(adopted.node);
    }
  }
  report.watchdog_adoptions = recon_work_.adopted_nodes.size();
  report.stale_nodes = scratch_ctx_.stale_nodes;
  report.missing_nodes = scratch_ctx_.missing_nodes;
  report.fallback_nodes = scratch_ctx_.fallback_nodes;
  report.rejected_samples = scratch_ctx_.rejected_samples;
  report.unresponsive_nodes = scratch_ctx_.unresponsive_nodes;
}

CycleDecision CappingManager::select_phase(Watts measured, Watts p_low,
                                           Watts p_high) {
  // Keep the context's classification inputs consistent with the decision
  // being made: the flat cycle passes the same values the context was
  // built with (a no-op overwrite), while the zone tree re-aims the
  // shard's context at synthetic thresholds encoding its deficit share,
  // so ctx.required_saving() must track (system_power, p_low) here.
  scratch_ctx_.system_power = measured;
  scratch_ctx_.p_low = p_low;
  return engine_.cycle(measured, p_low, p_high, *policy_, scratch_ctx_);
}

std::size_t CappingManager::actuate_phase(const CycleDecision& decision,
                                          std::vector<hw::Node>& nodes) {
  // Heals and due retries are already in recon_work_.commands; the
  // engine's fresh decisions join them after the unresponsive filter and
  // pending dedup. Everything then goes through the (possibly lossy)
  // channel, and only what the channel delivered reaches hardware.
  reconciler_.admit(decision.commands, collector_.cycle_count(), recon_work_);
  channel_.send(recon_work_.commands, nodes, delivered_scratch_);
  stamp_delivery_contacts();
  return controller_.apply(delivered_scratch_, nodes);
}

std::size_t CappingManager::apply_deliveries(std::vector<hw::Node>& nodes) {
  if (delivered_scratch_.empty()) return 0;
  stamp_delivery_contacts();
  return controller_.apply(delivered_scratch_, nodes);
}

void CappingManager::stamp_delivery_contacts() {
  if (watchdog_ == nullptr) return;
  // A delivery is controller traffic the node itself can see, so it
  // resets that node's silence clock — even when it is a leftover delayed
  // command landing mid-outage (the node cannot tell the sender is dead;
  // the timeout budget has to absorb such stragglers).
  for (const LevelCommand& cmd : delivered_scratch_) {
    watchdog_->contact(cmd.node);
  }
}

void CappingManager::fill_telemetry_totals(ManagerReport& report) const {
  // Fault/transport ground truth is cumulative collector state — cheap to
  // read and meaningful on every path, including training, steady green
  // and controller outages where no context is assembled.
  report.samples_lost = collector_.samples_lost();
  report.samples_suppressed = collector_.samples_suppressed();
  const telemetry::FaultInjector& faults = collector_.fault_injector();
  report.samples_corrupted = faults.samples_corrupted();
  report.crash_events = faults.crash_events();
  report.recovery_events = faults.recovery_events();
  report.agents_down = faults.silent_count();
}

void CappingManager::fill_actuation_totals(ManagerReport& report) const {
  report.commands_lost = channel_.commands_lost();
  report.commands_rebooting = channel_.commands_dropped_rebooting();
  report.transitions_failed = channel_.transitions_failed();
  report.transitions_partial = channel_.transitions_partial();
  report.reboot_events = channel_.reboot_events();
  report.commands_abandoned = reconciler_.total_abandoned();
  report.commands_clamped = controller_.commands_clamped();
  report.commands_in_flight = reconciler_.pending_count();
}

void CappingManager::predictor_phase(Watts measured, ManagerReport& report) {
  if (!predictor_) return;
  predictor_->observe(measured);
  ++predictor_observations_;
  if (auto* periodic = dynamic_cast<PeriodicityPredictor*>(predictor_.get());
      periodic != nullptr &&
      predictor_observations_ % predictor_refresh_cycles_ == 0) {
    // The only super-O(1) model work, scheduled on the learner's t_p
    // cadence — never on the per-cycle hot path.
    periodic->refresh();
  }
  forecast_ = predictor_->forecast(params_.prediction.horizon_cycles);
  std::optional<double> raw;
  if (forecast_) raw = forecast_->value();
  const std::optional<ForecastScorer::Score> score =
      scorer_.step(measured.value(), learner_.p_low().value(), raw);
  if (score) {
    report.forecast_abs_error = score->abs_error;
    report.forecast_scored = true;
  }
  report.has_forecast = forecast_.has_value();
  if (forecast_) report.forecast = *forecast_;
}

void CappingManager::fill_predictor_totals(ManagerReport& report) const {
  report.predictor_overshoots = scorer_.overshoots();
  report.predictor_misses = scorer_.misses();
  report.predictive_elevations = engine_.predictive_elevations();
}

void CappingManager::fill_control_totals(ManagerReport& report) const {
  report.ctrl_outages = ctrl_faults_.outages_started();
  report.ctrl_outage_cycles = ctrl_faults_.outage_cycles();
  report.ctrl_delayed_cycles = ctrl_faults_.delayed_cycles();
  report.ctrl_zone_outage_cycles = ctrl_faults_.zone_outage_cycles();
  report.zones_down = ctrl_faults_.zones_down();
}

ManagerReport CappingManager::dead_cycle(Watts measured,
                                         std::vector<hw::Node>& nodes,
                                         const sched::Scheduler& scheduler,
                                         Seconds now) {
  ManagerReport report;
  report.controller_down = true;
  report.measured = measured;
  report.p_low = learner_.p_low();
  report.p_high = learner_.p_high();
  report.training = learner_.training();
  // The band is physical reality whether or not the controller sees it —
  // classify against the last-learned thresholds so observers (and the
  // chaos invariant) keep an honest green/yellow/red record of the
  // outage. The learner itself observes nothing: a dead controller reads
  // no meter, so its observation window freezes mid-outage.
  report.state = classify_power(measured, report.p_low, report.p_high);
  // No heartbeat (that is the whole point), no sweep — but the collector
  // clock ticks so per-slot sample ages stay well-defined at recovery.
  collect_phase(false, nodes, now, scheduler.running_count());
  report.manager_utilization = collector_.last_cycle_manager_utilization();
  fill_telemetry_totals(report);
  // Hardware does not pause with the controller: reboots happen and
  // already-sent delayed commands still land (stamping watchdog contacts
  // — the node cannot tell the sender is dead).
  begin_actuation_phase(nodes);
  report.transitions = apply_deliveries(nodes);
  fill_actuation_totals(report);
  fill_control_totals(report);
  fill_predictor_totals(report);
  metrics_.publish(report, reconciler_.unresponsive_count());
  return report;
}

ManagerReport CappingManager::cycle(Watts measured,
                                    std::vector<hw::Node>& nodes,
                                    const sched::Scheduler& scheduler,
                                    Seconds now) {
  // 0. Control-plane fault process. A blacked-out (or stalled) controller
  // contributes nothing this cycle — the dead path models exactly what
  // still happens without it. With faults disabled begin_cycle() draws
  // nothing and the healthy path below is bit-identical to pre-fault
  // builds.
  if (ctrl_faults_.begin_cycle()) {
    return dead_cycle(measured, nodes, scheduler, now);
  }
  // A live cycle IS the liveness beacon: every node in this manager's
  // group hears from its controller this control period.
  if (watchdog_ != nullptr) watchdog_->heartbeat(watchdog_group_);

  // 0b. Candidate set re-selection (§III.A algorithm (c)). Routed through
  // set_candidate_set so the actuation channel learns new nodes too.
  if (selector_ && selector_->due()) {
    set_candidate_set(selector_->select(nodes, scheduler));
  }

  // 1. Threshold learning / classification first: whether this cycle
  // needs a full telemetry sweep depends on the classified state, and the
  // learner reads only the facility meter, never the collector.
  learner_.observe(measured);

  ManagerReport report;
  report.measured = measured;
  report.p_low = learner_.p_low();
  report.p_high = learner_.p_high();
  report.training = learner_.training();
  report.state = classify_power(measured, report.p_low, report.p_high);

  // 1b. Forecasting: model update + this cycle's forecast. Runs during
  // training too (the model is warm the moment capping starts), but only
  // arms the predictive path once training is over.
  predictor_phase(measured, report);
  const bool predictive_alarm =
      !report.training && forecast_.has_value() &&
      policy_->forecast_driven() && *forecast_ >= report.p_low;

  // 2. Telemetry sweep over A_candidate — or, on a quiet green cycle
  // between stride marks, just a clock tick. The context/collect gate is
  // evaluated exactly ONCE, here, strictly before begin_actuation_phase:
  // that call processes reboots and due deliveries and can shrink the
  // in-flight set, so a second evaluation after it could disagree with
  // the collect decision made now — skipping the sweep yet building a
  // context, or (worse) collecting and then not consuming the acks. A
  // predictive alarm forces the build the same way a non-green state
  // does: the elevated yellow path selects against this context, so it
  // must be fresh.
  const bool needs_context = context_gate(report.state) || predictive_alarm;
  const bool collect_now = needs_context || collect_due();
  {
    const obs::SpanTimer::Scope span = metrics_.collect_span.start();
    collect_phase(collect_now, nodes, now, scheduler.running_count());
  }
  report.manager_utilization = collector_.last_cycle_manager_utilization();

  fill_telemetry_totals(report);

  // 2b. Actuation-plane hardware events happen whether or not the manager
  // is ready to react: nodes reboot (resetting to their highest level)
  // and commands whose delivery delay expired land now — even during
  // training, when the arrivals are leftovers from before a reset.
  begin_actuation_phase(nodes);

  // 3. During training the system runs unmanaged (§V.C).
  if (report.training) {
    apply_deliveries(nodes);
    fill_actuation_totals(report);
    fill_control_totals(report);
    fill_predictor_totals(report);
    metrics_.publish(report, reconciler_.unresponsive_count());
    return report;
  }

  // 4. Algorithm 1 + reconciliation + actuation. A green cycle with
  // nothing degraded and nothing in flight never consults the context
  // (the pruning loop and the restore walk both iterate A_degraded), so
  // the dominant assembly cost is skipped on the steady-state path; when
  // it does run, the persistent buffers make it allocation-free. Unacked
  // or abandoned commands force the build: acks arrive through it, and
  // unresponsive nodes can only be readmitted by looking at telemetry.
  if (needs_context) {
    const obs::SpanTimer::Scope span = metrics_.context_span.start();
    context_phase(measured, nodes, scheduler, report);
  }
  // Stamp THIS cycle's forecast into the context (clearing any stale
  // stamp from a previous build): the engine's predictive elevation and
  // the forecast-driven policies read it from here. When the alarm is
  // armed the context above was just rebuilt, so the selection acts on
  // data as fresh as any reactive yellow cycle's.
  scratch_ctx_.has_forecast = !report.training && forecast_.has_value();
  scratch_ctx_.forecast_power =
      forecast_.has_value() ? *forecast_ : Watts{0.0};
  CycleDecision decision;
  {
    const obs::SpanTimer::Scope span = metrics_.policy_span.start();
    decision = select_phase(measured, report.p_low, report.p_high);
  }
  report.state = decision.state;
  report.targets = decision.commands.size();
  report.skipped_targets = decision.skipped;
  report.deferred_targets = decision.deferred_in_flight;

  {
    const obs::SpanTimer::Scope span = metrics_.actuate_span.start();
    report.transitions = actuate_phase(decision, nodes);
  }

  report.acks = recon_work_.acks;
  report.retries = recon_work_.retries;
  report.divergences = recon_work_.divergences;
  report.heals = recon_work_.heals;
  fill_actuation_totals(report);
  fill_control_totals(report);
  fill_predictor_totals(report);
  metrics_.publish(report, reconciler_.unresponsive_count());
  return report;
}

ShardCheckpoint CappingManager::checkpoint() const {
  ShardCheckpoint cp;
  cp.learner = learner_.checkpoint();
  cp.engine = engine_.checkpoint();
  cp.reconciler = reconciler_.checkpoint();
  cp.collector_cycles = collector_.cycle_count();
  // The observation counter rides in front of the opaque model state so
  // the restored refresh cadence stays phase-aligned with the old run.
  if (predictor_) {
    cp.predictor_state.push_back(
        static_cast<double>(predictor_observations_));
    const std::vector<double> model = predictor_->checkpoint_state();
    cp.predictor_state.insert(cp.predictor_state.end(), model.begin(),
                              model.end());
  }
  cp.policy_state = policy_->checkpoint_state();
  return cp;
}

void CappingManager::restore(const ShardCheckpoint& cp) {
  learner_.restore(cp.learner);
  engine_.restore(cp.engine);
  reconciler_.restore(cp.reconciler);
  if (predictor_ && !cp.predictor_state.empty()) {
    predictor_observations_ =
        static_cast<std::int64_t>(cp.predictor_state[0]);
    predictor_->restore_state(std::vector<double>(
        cp.predictor_state.begin() + 1, cp.predictor_state.end()));
    forecast_ = predictor_->forecast(params_.prediction.horizon_cycles);
  }
  if (!cp.policy_state.empty()) policy_->restore_state(cp.policy_state);
  // Believed/observed stamps in the restored shadow tables are in the
  // checkpointed collector timebase; resume the clock there or every ack
  // and staleness comparison would be skewed by the restart.
  collector_.restore_cycle_count(cp.collector_cycles);
  // Reconciler state just jumped wholesale; rebuild the context from
  // scratch rather than trusting pre-restore dirty bookkeeping.
  inc_valid_ = false;
}

ManagerReport NoCappingManager::cycle(Watts measured,
                                      std::vector<hw::Node>& /*nodes*/,
                                      const sched::Scheduler& /*scheduler*/,
                                      Seconds /*now*/) {
  ManagerReport report;
  report.measured = measured;
  return report;
}

}  // namespace pcap::power
