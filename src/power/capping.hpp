// Algorithm 1: the power capping algorithm (§III.B, Figure 2).
//
// Per control cycle, given the measured system power P and the thresholds:
//   green  (P <  P_L): Time_g++; once the system has been green for T_g
//                      consecutive cycles ("steady green"), restore every
//                      degraded node by one level; nodes reaching their
//                      top level leave A_degraded.
//   yellow (P_L <= P < P_H): Time_g := 0; the target selection policy
//                      picks A_target from the candidates; each target is
//                      degraded by one level and joins A_degraded.
//   red    (P >= P_H): Time_g := 0; every candidate node is commanded to
//                      its lowest level; A_degraded := A_candidate.
//
// The engine is pure decision logic: it emits (node, target level)
// commands and never touches hardware.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/units.hpp"
#include "power/policy.hpp"
#include "power/state.hpp"

namespace pcap::power {

struct EngineCheckpoint;  // power/checkpoint.hpp

struct CappingParams {
  std::int64_t steady_green_cycles = 10;  ///< T_g (the paper uses 10, §V.C)
};

/// An actuation command: set node `node` to power state `level`.
struct LevelCommand {
  hw::NodeId node = 0;
  hw::Level level = 0;

  friend bool operator==(const LevelCommand&, const LevelCommand&) = default;
};

struct CycleDecision {
  PowerState state = PowerState::kGreen;
  std::vector<LevelCommand> commands;  ///< the A_target with target levels
  /// Policy-selected targets the engine refused this cycle (unknown node,
  /// idle, already floored, or stale telemetry). A healthy
  /// policy keeps this at 0; under telemetry faults it quantifies how
  /// often selection ran ahead of the data.
  std::size_t skipped = 0;
  /// Targets passed over because a prior command is still unacked. Unlike
  /// `skipped` this is routine under a lossy actuation plane — the
  /// reconciler's retry clock owns those nodes — so it is counted
  /// separately and never warned about.
  std::size_t deferred_in_flight = 0;
};

class CappingEngine {
 public:
  explicit CappingEngine(CappingParams params);

  /// Runs one cycle of Algorithm 1. `ctx` must describe the current
  /// candidate set (ctx.nodes) and job aggregation; `policy` is consulted
  /// only in the yellow state. p_low/p_high are taken from ctx-independent
  /// threshold state, passed explicitly to keep the engine reusable.
  CycleDecision cycle(Watts measured, Watts p_low, Watts p_high,
                      TargetSelectionPolicy& policy, const PolicyContext& ctx);

  /// A_degraded: candidates this engine has pushed below their top level.
  [[nodiscard]] const std::set<hw::NodeId>& degraded() const {
    return degraded_;
  }
  /// Time_g: consecutive green cycles so far.
  [[nodiscard]] std::int64_t green_timer() const { return time_g_; }
  /// Invalid/stale policy targets skipped over the engine's lifetime. One
  /// bad target used to abort the whole manager cycle; now it costs one
  /// counted warning and the rest of the decision still lands.
  [[nodiscard]] std::uint64_t skipped_targets() const {
    return skipped_targets_;
  }
  /// Green cycles promoted to the yellow path because a forecast-driven
  /// policy saw the threshold crossing coming (lifetime, process-scoped
  /// like skipped_targets()).
  [[nodiscard]] std::uint64_t predictive_elevations() const {
    return predictive_elevations_;
  }
  [[nodiscard]] const CappingParams& params() const { return params_; }

  /// Forgets all throttling history (e.g. when capping is switched off).
  void reset();

  /// Records a non-green cycle without running a decision: Time_g := 0,
  /// A_degraded untouched. The zone tree calls this for shards it skips
  /// in yellow/red (no capacity left / already floored), so a later green
  /// period still has to re-earn steady-green before restoring — exactly
  /// as if yellow_cycle/red_cycle had run and emitted nothing.
  void note_non_green_cycle() { time_g_ = 0; }

  /// Adopts a node into A_degraded that this engine did not lower itself
  /// — the failsafe watchdog stepped it down during a controller outage
  /// and the reconciler adopted the observed level. Membership is what
  /// lets steady-green restore the node back up; without it the failsafe
  /// level would stick forever.
  void adopt_degraded(hw::NodeId id) { degraded_.insert(id); }

  /// Captures/restores (Time_g, A_degraded) for warm restart. The
  /// lifetime skipped-target counter is process-scoped and not part of
  /// the image. See power/checkpoint.hpp.
  [[nodiscard]] EngineCheckpoint checkpoint() const;
  void restore(const EngineCheckpoint& cp);

 private:
  CycleDecision green_cycle(const PolicyContext& ctx);
  CycleDecision yellow_cycle(TargetSelectionPolicy& policy,
                             const PolicyContext& ctx);
  CycleDecision red_cycle(const PolicyContext& ctx);

  CappingParams params_;
  std::int64_t time_g_ = 0;
  std::uint64_t skipped_targets_ = 0;
  std::uint64_t predictive_elevations_ = 0;
  std::set<hw::NodeId> degraded_;  ///< A_degraded
};

}  // namespace pcap::power
