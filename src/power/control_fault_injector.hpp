// Control-plane fault injection: the controller itself as a failure
// domain.
//
// PRs 2–3 hardened the manager against a telemetry plane that lies and an
// actuation plane that drops commands — but both assumed the control loop
// itself keeps running. At scale the management node is just another
// machine: the root learner blacks out, a zone shard's process crashes,
// or a control cycle stalls behind a GC pause / NFS hiccup. This injector
// drives those failure modes so the consuming layers (CappingManager,
// ZoneTreeManager, the node-local failsafe watchdog) can be exercised —
// and hardened — against a dead loop.
//
// Domains: one root controller plus zero or more zone shards. Each domain
// runs an independent outage process; the root additionally suffers short
// delay stalls (a stall is a mini-blackout counted separately — from the
// nodes' perspective the controller is simply silent either way).
//
// Determinism contract (mirrors telemetry::FaultInjector): every domain
// draws from its own RNG stream (root_.stream(domain)), so the root's
// outage schedule depends only on the seed and zone z's schedule only on
// (seed, z) — never on the zone count, the order domains are stepped, or
// whether other domains happened to fail. begin_cycle() is serial (called
// once from the top of the manager cycle); disabled params draw nothing,
// keeping the healthy path byte-for-byte what it was without an injector.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace pcap::power {

struct ControlFaultParams {
  /// Per-cycle probability that the live root controller blacks out
  /// (management node crash, controller process killed).
  double outage_rate = 0.0;
  /// How long a root blackout lasts, in control cycles.
  int outage_duration_cycles = 60;
  /// Per-cycle probability that a live zone shard crashes (per zone).
  double zone_outage_rate = 0.0;
  /// How long a zone-shard crash window lasts, in control cycles.
  int zone_outage_duration_cycles = 45;
  /// Per-cycle probability that a live root cycle stalls (scheduling
  /// jitter, GC pause): the controller skips 1..delay_max_cycles cycles.
  double delay_rate = 0.0;
  /// Upper bound on a stall, in control cycles.
  int delay_max_cycles = 3;

  /// True when any control-fault channel is active; the managers skip the
  /// injector entirely otherwise, keeping the healthy path unchanged.
  [[nodiscard]] bool enabled() const {
    return outage_rate > 0.0 || zone_outage_rate > 0.0 || delay_rate > 0.0;
  }
  /// Throws std::invalid_argument on out-of-range rates/durations.
  void validate() const;
};

class ControlFaultInjector {
 public:
  ControlFaultInjector(ControlFaultParams params, common::Rng rng);

  /// Registers the zone shards (domain z = zone z). Serial — call at
  /// construction / reconfiguration, never mid-cycle. Zone fault state
  /// persists if the count only grows.
  void ensure_zones(std::size_t zone_count);

  /// Advances every domain's fault process by one control cycle. Returns
  /// true when the ROOT controller is down (outage or stall) this cycle.
  /// With params disabled this is a constant false and draws nothing.
  bool begin_cycle();

  /// Forces a root blackout covering the next `cycles` begin_cycle()
  /// calls. A drill hook: deterministic, draws nothing, works even with
  /// all rates zero. Extends (never shortens) an already-open window.
  void inject_outage(int cycles);
  /// Forces zone shard z down for the next `cycles` begin_cycle() calls.
  void inject_zone_outage(std::size_t z, int cycles);

  /// Root down this cycle (valid after begin_cycle)?
  [[nodiscard]] bool root_down() const { return root_down_; }
  /// Zone shard z down this cycle (valid after begin_cycle)?
  [[nodiscard]] bool zone_down(std::size_t z) const {
    return z < zones_.size() && zones_[z].down_now;
  }
  /// Number of zone shards down this cycle.
  [[nodiscard]] std::size_t zones_down() const { return zones_down_now_; }

  // Cumulative ground-truth counters over the injector's lifetime.
  [[nodiscard]] std::uint64_t outages_started() const {
    return outages_started_;
  }
  [[nodiscard]] std::uint64_t outage_cycles() const { return outage_cycles_; }
  [[nodiscard]] std::uint64_t delayed_cycles() const {
    return delayed_cycles_;
  }
  [[nodiscard]] std::uint64_t zone_outages_started() const {
    return zone_outages_started_;
  }
  [[nodiscard]] std::uint64_t zone_outage_cycles() const {
    return zone_outage_cycles_;
  }

  [[nodiscard]] const ControlFaultParams& params() const { return params_; }

 private:
  /// One domain's fault process. Stepped once per begin_cycle().
  struct Domain {
    common::Rng rng{0};
    int down_cycles_left = 0;  ///< remaining cycles of the open window
    bool stalled = false;      ///< open window is a delay, not an outage
    bool down_now = false;     ///< disposition of the current cycle
  };

  /// Advances one domain; returns whether it is down this cycle.
  bool step(Domain& d, bool is_root);

  ControlFaultParams params_;
  common::Rng root_;  ///< stream parent only; never drawn from directly
  Domain root_domain_;
  std::vector<Domain> zones_;
  bool forced_active_ = false;  ///< an injected window may still be open
  bool root_down_ = false;
  std::size_t zones_down_now_ = 0;
  std::uint64_t outages_started_ = 0;
  std::uint64_t outage_cycles_ = 0;
  std::uint64_t delayed_cycles_ = 0;
  std::uint64_t zone_outages_started_ = 0;
  std::uint64_t zone_outage_cycles_ = 0;
};

}  // namespace pcap::power
