#include "power/control_fault_injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pcap::power {

namespace {

void check_rate(double rate, const char* name) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    throw std::invalid_argument(std::string("ControlFaultParams: '") + name +
                                "' must be in [0, 1]");
  }
}

void check_duration(int cycles, const char* name) {
  if (cycles < 1) {
    throw std::invalid_argument(std::string("ControlFaultParams: '") + name +
                                "' must be >= 1");
  }
}

}  // namespace

void ControlFaultParams::validate() const {
  check_rate(outage_rate, "outage_rate");
  check_rate(zone_outage_rate, "zone_outage_rate");
  check_rate(delay_rate, "delay_rate");
  check_duration(outage_duration_cycles, "outage_duration_cycles");
  check_duration(zone_outage_duration_cycles, "zone_outage_duration_cycles");
  check_duration(delay_max_cycles, "delay_max_cycles");
}

ControlFaultInjector::ControlFaultInjector(ControlFaultParams params,
                                           common::Rng rng)
    : params_(params), root_(rng) {
  params_.validate();
  // Stream 0 is the root controller's own fault process; zone z draws from
  // stream 1 + z. stream() is pure, so adding zones later never perturbs
  // the root schedule.
  root_domain_.rng = root_.stream(0);
}

void ControlFaultInjector::ensure_zones(std::size_t zone_count) {
  while (zones_.size() < zone_count) {
    Domain d;
    d.rng = root_.stream(1 + zones_.size());
    zones_.push_back(d);
  }
}

bool ControlFaultInjector::step(Domain& d, bool is_root) {
  if (d.down_cycles_left > 0) {
    // An open window: the domain stays silent and the window shortens.
    --d.down_cycles_left;
    if (is_root) {
      if (d.stalled) {
        ++delayed_cycles_;
      } else {
        ++outage_cycles_;
      }
    } else {
      ++zone_outage_cycles_;
    }
    d.down_now = true;
    return true;
  }
  d.stalled = false;
  const double outage_rate =
      is_root ? params_.outage_rate : params_.zone_outage_rate;
  if (outage_rate > 0.0 && d.rng.uniform() < outage_rate) {
    const int duration = is_root ? params_.outage_duration_cycles
                                 : params_.zone_outage_duration_cycles;
    d.down_cycles_left = duration - 1;  // this cycle counts as the first
    if (is_root) {
      ++outages_started_;
      ++outage_cycles_;
    } else {
      ++zone_outages_started_;
      ++zone_outage_cycles_;
    }
    d.down_now = true;
    return true;
  }
  if (is_root && params_.delay_rate > 0.0 &&
      d.rng.uniform() < params_.delay_rate) {
    const int stall = static_cast<int>(
        d.rng.uniform_int(1, params_.delay_max_cycles));
    d.down_cycles_left = stall - 1;
    d.stalled = true;
    ++delayed_cycles_;
    d.down_now = true;
    return true;
  }
  d.down_now = false;
  return false;
}

bool ControlFaultInjector::begin_cycle() {
  if (!params_.enabled() && !forced_active_) {
    root_down_ = false;
    zones_down_now_ = 0;
    return false;
  }
  root_down_ = step(root_domain_, /*is_root=*/true);
  zones_down_now_ = 0;
  bool window_open = root_domain_.down_cycles_left > 0;
  for (Domain& z : zones_) {
    if (step(z, /*is_root=*/false)) {
      ++zones_down_now_;
    }
    window_open = window_open || z.down_cycles_left > 0;
  }
  // With all rates zero, step() never opens a new window, so once every
  // injected window drains the fast path above is safe again. Stay on the
  // slow path for one cycle past the last down cycle: step() is what
  // clears each domain's down_now, and the fast path never touches them.
  if (!params_.enabled()) {
    forced_active_ = window_open || root_down_ || zones_down_now_ > 0;
  }
  return root_down_;
}

void ControlFaultInjector::inject_outage(int cycles) {
  if (cycles < 1) {
    throw std::invalid_argument(
        "ControlFaultInjector::inject_outage: 'cycles' must be >= 1");
  }
  if (root_domain_.down_cycles_left == 0) {
    ++outages_started_;
  }
  root_domain_.down_cycles_left =
      std::max(root_domain_.down_cycles_left, cycles);
  root_domain_.stalled = false;
  forced_active_ = true;
}

void ControlFaultInjector::inject_zone_outage(std::size_t z, int cycles) {
  if (cycles < 1) {
    throw std::invalid_argument(
        "ControlFaultInjector::inject_zone_outage: 'cycles' must be >= 1");
  }
  ensure_zones(z + 1);
  Domain& d = zones_[z];
  if (d.down_cycles_left == 0) {
    ++zone_outages_started_;
  }
  d.down_cycles_left = std::max(d.down_cycles_left, cycles);
  forced_active_ = true;
}

}  // namespace pcap::power
