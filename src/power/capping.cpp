#include "power/capping.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hpp"
#include "power/checkpoint.hpp"

namespace pcap::power {

CappingEngine::CappingEngine(CappingParams params) : params_(params) {
  if (params_.steady_green_cycles <= 0) {
    throw std::invalid_argument("CappingEngine: T_g must be positive");
  }
}

CycleDecision CappingEngine::cycle(Watts measured, Watts p_low, Watts p_high,
                                   TargetSelectionPolicy& policy,
                                   const PolicyContext& ctx) {
  // Nodes that left the candidate set (job churn, reconfiguration) are no
  // longer ours to restore.
  for (auto it = degraded_.begin(); it != degraded_.end();) {
    if (ctx.node(*it) == nullptr) {
      it = degraded_.erase(it);
    } else {
      ++it;
    }
  }

  switch (classify_power(measured, p_low, p_high)) {
    case PowerState::kGreen:
      // Predictive elevation: the meter says green, but a forecast-driven
      // policy expects the threshold to be crossed within its horizon —
      // run the yellow path now so the saving lands before the crossing.
      // Only green→yellow: a red decision stays strictly meter-driven so
      // a bad forecast can never floor the whole cluster.
      if (ctx.has_forecast && policy.forecast_driven() &&
          ctx.forecast_power >= p_low) {
        ++predictive_elevations_;
        return yellow_cycle(policy, ctx);
      }
      return green_cycle(ctx);
    case PowerState::kYellow:
      return yellow_cycle(policy, ctx);
    case PowerState::kRed:
      return red_cycle(ctx);
  }
  throw std::logic_error("CappingEngine: unreachable");
}

CycleDecision CappingEngine::green_cycle(const PolicyContext& ctx) {
  CycleDecision d;
  d.state = PowerState::kGreen;
  ++time_g_;
  if (time_g_ < params_.steady_green_cycles || degraded_.empty()) return d;

  // Steady green: raise every degraded node by one level; nodes reaching
  // their spec's top level leave A_degraded ("if l_i + 1 is the highest
  // level for node i then remove node i from A_degraded"). A node whose
  // telemetry has gone stale — or whose previous command is still
  // unacknowledged — stays degraded but is not raised this cycle: its
  // true level is a guess, and restoring against a guess risks
  // overshooting the cap we just recovered from.
  for (auto it = degraded_.begin(); it != degraded_.end();) {
    const NodeView* nv = ctx.node(*it);
    if (nv->stale || nv->command_in_flight) {
      ++it;
      continue;
    }
    const hw::Level restored = std::min(nv->level + 1, nv->highest_level);
    d.commands.push_back(LevelCommand{*it, restored});
    if (restored >= nv->highest_level) {
      it = degraded_.erase(it);
    } else {
      ++it;
    }
  }
  return d;
}

CycleDecision CappingEngine::yellow_cycle(TargetSelectionPolicy& policy,
                                          const PolicyContext& ctx) {
  CycleDecision d;
  d.state = PowerState::kYellow;
  time_g_ = 0;

  // A policy target can be invalid for two reasons: the policy is buggy
  // (duplicate/idle/floored picks), or — far more often at scale — the
  // telemetry it acted on was stale or missing. Either way, aborting the
  // whole control cycle over one bad target means NO node gets throttled
  // while power sits above P_L, which is strictly worse than acting on
  // the valid remainder. Skip, count, warn.
  for (const hw::NodeId id : policy.select(ctx)) {
    const NodeView* nv = ctx.node(id);
    if (nv != nullptr && nv->command_in_flight) {
      // Not a bad target — the reconciler owns this node until its last
      // command acks, retries out, or is abandoned. Deferring is the
      // safe-side choice, not an anomaly, so it never warns.
      ++d.deferred_in_flight;
      continue;
    }
    if (nv == nullptr || nv->at_lowest || !nv->busy || nv->stale) {
      ++d.skipped;
      continue;
    }
    d.commands.push_back(LevelCommand{id, nv->level - 1});
    degraded_.insert(id);
  }
  if (d.skipped > 0) {
    skipped_targets_ += d.skipped;
    PCAP_WARN("capping: skipped %zu invalid/stale targets this cycle",
              d.skipped);
  }
  return d;
}

CycleDecision CappingEngine::red_cycle(const PolicyContext& ctx) {
  CycleDecision d;
  d.state = PowerState::kRed;
  time_g_ = 0;
  // Idempotent flooring: a node already at its lowest level gets no
  // command and does not (re-)enter A_degraded — repeating the red cycle
  // must not inflate target/actuation counts, and a node this engine
  // never lowered must not be "restored" above where it started. Stale
  // nodes ARE floored: red is the safety state and flooring is the one
  // command that is safe whatever the node's true level is.
  for (const NodeView& nv : ctx.nodes) {
    if (nv.at_lowest) continue;
    d.commands.push_back(LevelCommand{nv.id, 0});  // lowest power state
    degraded_.insert(nv.id);
  }
  return d;
}

void CappingEngine::reset() {
  time_g_ = 0;
  degraded_.clear();
}

EngineCheckpoint CappingEngine::checkpoint() const {
  EngineCheckpoint cp;
  cp.time_g = time_g_;
  cp.degraded.assign(degraded_.begin(), degraded_.end());  // ascending
  return cp;
}

void CappingEngine::restore(const EngineCheckpoint& cp) {
  time_g_ = cp.time_g;
  degraded_.clear();
  degraded_.insert(cp.degraded.begin(), cp.degraded.end());
}

}  // namespace pcap::power
