// Power consumption states (§II.B).
//
// Two thresholds P_L <= P_H partition the system's power reading into
// green (safe), yellow (warning: throttle mildly) and red (critical:
// throttle everything to the floor immediately).
#pragma once

#include "common/units.hpp"

namespace pcap::power {

enum class PowerState { kGreen, kYellow, kRed };

const char* power_state_name(PowerState s);

/// Classifies a measured system power against the two thresholds.
/// Green: P < P_L.  Yellow: P_L <= P < P_H.  Red: P >= P_H.
/// Requires p_low <= p_high.
PowerState classify_power(Watts p, Watts p_low, Watts p_high);

}  // namespace pcap::power
