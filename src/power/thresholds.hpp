// Threshold setting and adjustment (§III.A).
//
//   P_H = (1 - 7%)  * P_peak = 93% * P_peak
//   P_L = (1 - 16%) * P_peak = 84% * P_peak
//
// The margins come from Fan et al.'s observation of a 7%–16% gap between
// achieved and theoretical aggregate power. P_peak starts at the power
// provision capability P_Max; a training period (no capping, peak power
// recorded) replaces it with the observed peak; afterwards observation
// continues and the thresholds are re-derived every t_p control cycles
// from the running peak.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace pcap::power {

struct LearnerCheckpoint;  // power/checkpoint.hpp

struct ThresholdParams {
  Watts provision{0.0};        ///< P_Max: power provision capability.
  double red_margin = 0.07;    ///< P_H = (1 - red_margin) * P_peak.
  double yellow_margin = 0.16; ///< P_L = (1 - yellow_margin) * P_peak.
  std::int64_t training_cycles = 86'400;  ///< 24 h of 1 s cycles (§V.C).
  std::int64_t adjust_period_cycles = 3'600;  ///< t_p after training.
  /// Administrator mode (§III.A: thresholds "can be set manually"):
  /// P_peak stays pinned at the provision capability, no learning. The
  /// thresholds then scale directly with the provisioned budget.
  bool freeze_at_provision = false;
};

class ThresholdLearner {
 public:
  explicit ThresholdLearner(ThresholdParams params);

  /// Feeds one control cycle's power reading. Advances the internal cycle
  /// counter, finishes training when the training period elapses, and
  /// re-adjusts every t_p cycles afterwards.
  void observe(Watts system_power);

  /// True while still inside the initial training period (no capping).
  /// A manual peak override ends training immediately (§III.A "set
  /// manually"): the administrator supplied the value training exists to
  /// discover, so capping must start now, not 86,400 cycles later.
  [[nodiscard]] bool training() const {
    return !training_done_ && cycles_ < params_.training_cycles;
  }

  [[nodiscard]] Watts p_peak() const { return p_peak_; }
  [[nodiscard]] Watts p_low() const;
  [[nodiscard]] Watts p_high() const;

  /// Highest power seen so far (training + execution).
  [[nodiscard]] Watts running_peak() const { return running_peak_; }
  /// Highest power seen since the last threshold adoption. This is what
  /// the next adjustment will adopt as P_peak; unlike running_peak(), it
  /// can fall between adjustments, so thresholds track workload phases
  /// down as well as up.
  [[nodiscard]] Watts window_peak() const { return window_peak_; }
  [[nodiscard]] std::int64_t cycles_observed() const { return cycles_; }
  [[nodiscard]] std::int64_t adjustments() const { return adjustments_; }
  /// Non-finite/negative readings observe() refused to learn from
  /// (lifetime; process-scoped, not checkpointed).
  [[nodiscard]] std::uint64_t rejected_observations() const {
    return rejected_observations_;
  }
  [[nodiscard]] const ThresholdParams& params() const { return params_; }

  /// Manual override (§III.A: thresholds "can be set manually by the
  /// system administrator"). Freezes learning when `freeze` is true.
  void set_manual_peak(Watts p_peak, bool freeze = true);

  /// Captures the full learning state for warm restart; params are not
  /// part of the image (a restarted controller keeps its configured
  /// margins). See power/checkpoint.hpp.
  [[nodiscard]] LearnerCheckpoint checkpoint() const;
  /// Restores learning state from a checkpoint: the observation window,
  /// adopted P_peak and training progress resume exactly where the
  /// checkpointed learner left off.
  void restore(const LearnerCheckpoint& cp);

 private:
  void adjust();

  ThresholdParams params_;
  Watts p_peak_;
  Watts running_peak_{0.0};  ///< all-time peak, reporting only
  Watts window_peak_{0.0};   ///< peak since last adoption, drives adjust()
  std::int64_t cycles_ = 0;
  std::int64_t cycles_since_adjust_ = 0;
  std::int64_t adjustments_ = 0;
  std::uint64_t rejected_observations_ = 0;
  bool frozen_ = false;
  /// Latched by set_manual_peak(): training is over regardless of how few
  /// cycles have elapsed. Checkpointed — a warm-restarted learner must
  /// not resume a training period the administrator already ended.
  bool training_done_ = false;
};

}  // namespace pcap::power
