#include "power/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace pcap::power {

namespace {

// v2: learner line grew a training_done flag; shard bodies carry opaque
// predictor/policy state vectors; the tree carries the root predictor.
// v1 images are not readable (warm restart is same-binary by design —
// rejecting the old header loudly beats silently resuming without the
// flag that says training already ended).
constexpr const char* kShardHeader = "pcap-shard-checkpoint v2";
constexpr const char* kTreeHeader = "pcap-tree-checkpoint v2";

/// C99 hexfloat: every bit of the mantissa survives the text round trip
/// (iostream hexfloat extraction is unreliable across standard libraries,
/// so both directions go through the C formatting functions).
std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Whitespace-token reader over the checkpoint image.
class Tokens {
 public:
  explicit Tokens(const std::string& text) : in_(text) {}

  std::string next(const char* what) {
    std::string tok;
    if (!(in_ >> tok)) {
      throw std::runtime_error(std::string("checkpoint: truncated before ") +
                               what);
    }
    return tok;
  }

  void expect(const char* literal) {
    const std::string tok = next(literal);
    if (tok != literal) {
      throw std::runtime_error(std::string("checkpoint: expected '") +
                               literal + "', got '" + tok + "'");
    }
  }

  double next_double(const char* what) {
    const std::string tok = next(what);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') {
      throw std::runtime_error(std::string("checkpoint: bad double for ") +
                               what + ": '" + tok + "'");
    }
    return v;
  }

  std::int64_t next_i64(const char* what) {
    const std::string tok = next(what);
    char* end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0') {
      throw std::runtime_error(std::string("checkpoint: bad integer for ") +
                               what + ": '" + tok + "'");
    }
    return static_cast<std::int64_t>(v);
  }

  std::uint64_t next_u64(const char* what) {
    const std::string tok = next(what);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || tok[0] == '-') {
      throw std::runtime_error(std::string("checkpoint: bad count for ") +
                               what + ": '" + tok + "'");
    }
    return static_cast<std::uint64_t>(v);
  }

  bool next_bool(const char* what) {
    const std::int64_t v = next_i64(what);
    if (v != 0 && v != 1) {
      throw std::runtime_error(std::string("checkpoint: bad flag for ") +
                               what);
    }
    return v == 1;
  }

 private:
  std::istringstream in_;
};

void encode_learner(std::ostringstream& out, const LearnerCheckpoint& l) {
  out << "learner " << hex_double(l.p_peak) << ' '
      << hex_double(l.running_peak) << ' ' << hex_double(l.window_peak) << ' '
      << l.cycles << ' ' << l.cycles_since_adjust << ' ' << l.adjustments
      << ' ' << (l.frozen ? 1 : 0) << ' ' << (l.training_done ? 1 : 0)
      << '\n';
}

LearnerCheckpoint decode_learner(Tokens& t) {
  t.expect("learner");
  LearnerCheckpoint l;
  l.p_peak = t.next_double("p_peak");
  l.running_peak = t.next_double("running_peak");
  l.window_peak = t.next_double("window_peak");
  l.cycles = t.next_i64("cycles");
  l.cycles_since_adjust = t.next_i64("cycles_since_adjust");
  l.adjustments = t.next_i64("adjustments");
  l.frozen = t.next_bool("frozen");
  l.training_done = t.next_bool("training_done");
  return l;
}

/// Opaque flat-double state vectors (predictor / policy). One line:
/// "<tag> <count> <hex> <hex> ..." — hexfloat for the same bit-exact
/// round trip the learner doubles get.
void encode_doubles(std::ostringstream& out, const char* tag,
                    const std::vector<double>& v) {
  out << tag << ' ' << v.size();
  for (const double d : v) out << ' ' << hex_double(d);
  out << '\n';
}

std::vector<double> decode_doubles(Tokens& t, const char* tag) {
  t.expect(tag);
  const std::uint64_t n = t.next_u64("state length");
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    v.push_back(t.next_double("state entry"));
  }
  return v;
}

void encode_shard_body(std::ostringstream& out, const ShardCheckpoint& cp) {
  encode_learner(out, cp.learner);
  out << "engine " << cp.engine.time_g << ' ' << cp.engine.degraded.size();
  for (const hw::NodeId id : cp.engine.degraded) out << ' ' << id;
  out << '\n';
  out << "recon " << cp.reconciler.slots.size() << '\n';
  for (const ReconcilerSlotCheckpoint& s : cp.reconciler.slots) {
    out << "slot " << s.node << ' ' << s.pending_target << ' '
        << s.issued_cycle << ' ' << s.next_retry_cycle << ' '
        << s.pending_retries << ' ' << s.believed_level << ' '
        << s.observed_cycle << ' ' << (s.has_pending ? 1 : 0) << ' '
        << (s.has_believed ? 1 : 0) << ' ' << (s.unresponsive ? 1 : 0)
        << '\n';
  }
  out << "collector " << cp.collector_cycles << '\n';
  encode_doubles(out, "predictor", cp.predictor_state);
  encode_doubles(out, "policy", cp.policy_state);
}

ShardCheckpoint decode_shard_body(Tokens& t) {
  ShardCheckpoint cp;
  cp.learner = decode_learner(t);
  t.expect("engine");
  cp.engine.time_g = t.next_i64("time_g");
  const std::uint64_t degraded = t.next_u64("degraded count");
  cp.engine.degraded.reserve(degraded);
  for (std::uint64_t i = 0; i < degraded; ++i) {
    cp.engine.degraded.push_back(
        static_cast<hw::NodeId>(t.next_u64("degraded id")));
  }
  t.expect("recon");
  const std::uint64_t slots = t.next_u64("slot count");
  cp.reconciler.slots.reserve(slots);
  for (std::uint64_t i = 0; i < slots; ++i) {
    t.expect("slot");
    ReconcilerSlotCheckpoint s;
    s.node = static_cast<hw::NodeId>(t.next_u64("slot node"));
    s.pending_target = static_cast<hw::Level>(t.next_i64("pending_target"));
    s.issued_cycle = t.next_u64("issued_cycle");
    s.next_retry_cycle = t.next_u64("next_retry_cycle");
    s.pending_retries = static_cast<int>(t.next_i64("pending_retries"));
    s.believed_level = static_cast<hw::Level>(t.next_i64("believed_level"));
    s.observed_cycle = t.next_u64("observed_cycle");
    s.has_pending = t.next_bool("has_pending");
    s.has_believed = t.next_bool("has_believed");
    s.unresponsive = t.next_bool("unresponsive");
    cp.reconciler.slots.push_back(s);
  }
  t.expect("collector");
  cp.collector_cycles = t.next_u64("collector cycles");
  cp.predictor_state = decode_doubles(t, "predictor");
  cp.policy_state = decode_doubles(t, "policy");
  return cp;
}

}  // namespace

std::string encode_checkpoint(const ShardCheckpoint& cp) {
  std::ostringstream out;
  out << kShardHeader << '\n';
  encode_shard_body(out, cp);
  return out.str();
}

ShardCheckpoint decode_shard_checkpoint(const std::string& text) {
  Tokens t(text);
  t.expect("pcap-shard-checkpoint");
  t.expect("v2");
  return decode_shard_body(t);
}

std::string encode_checkpoint(const TreeCheckpoint& cp) {
  if (cp.shards.size() != cp.hints.size()) {
    throw std::runtime_error(
        "checkpoint: tree shard/hint vectors must be parallel");
  }
  std::ostringstream out;
  out << kTreeHeader << '\n';
  encode_learner(out, cp.learner);
  encode_doubles(out, "predictor", cp.predictor_state);
  out << "state " << cp.last_state << ' ' << cp.job_events_seen << '\n';
  out << "zones " << cp.shards.size() << '\n';
  for (std::size_t z = 0; z < cp.shards.size(); ++z) {
    out << "zone " << z << '\n';
    encode_shard_body(out, cp.shards[z]);
    const ZoneHintCheckpoint& h = cp.hints[z];
    out << "hint " << (h.hints_valid ? 1 : 0) << ' ' << hex_double(h.power)
        << ' ' << hex_double(h.capacity) << ' ' << (h.floored ? 1 : 0) << ' '
        << (h.ever_measured ? 1 : 0) << '\n';
  }
  return out.str();
}

TreeCheckpoint decode_tree_checkpoint(const std::string& text) {
  Tokens t(text);
  t.expect("pcap-tree-checkpoint");
  t.expect("v2");
  TreeCheckpoint cp;
  cp.learner = decode_learner(t);
  cp.predictor_state = decode_doubles(t, "predictor");
  t.expect("state");
  cp.last_state = static_cast<int>(t.next_i64("last_state"));
  cp.job_events_seen = t.next_u64("job_events_seen");
  t.expect("zones");
  const std::uint64_t zones = t.next_u64("zone count");
  cp.shards.reserve(zones);
  cp.hints.reserve(zones);
  for (std::uint64_t z = 0; z < zones; ++z) {
    t.expect("zone");
    const std::uint64_t idx = t.next_u64("zone index");
    if (idx != z) {
      throw std::runtime_error("checkpoint: zone index out of order");
    }
    cp.shards.push_back(decode_shard_body(t));
    t.expect("hint");
    ZoneHintCheckpoint h;
    h.hints_valid = t.next_bool("hints_valid");
    h.power = t.next_double("hint power");
    h.capacity = t.next_double("hint capacity");
    h.floored = t.next_bool("floored");
    h.ever_measured = t.next_bool("ever_measured");
    cp.hints.push_back(h);
  }
  return cp;
}

}  // namespace pcap::power
