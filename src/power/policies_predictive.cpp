#include "power/policies_predictive.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcap::power {

namespace {

// Both predictive policies spend the demanded saving on the most power
// consuming jobs first, like MPC-C: the fewest whole jobs disturbed per
// watt shed.
constexpr auto kDescendingPower = [](const SelectionScratch::Ref& a,
                                     const SelectionScratch::Ref& b) {
  return a.job->power > b.job->power;
};

}  // namespace

void PiTuning::validate() const {
  if (!(kp >= 0.0) || !(ki >= 0.0)) {
    throw std::invalid_argument("pi gains must be >= 0");
  }
  if (!(kp > 0.0 || ki > 0.0)) {
    throw std::invalid_argument("pi controller needs kp or ki > 0");
  }
  if (!(integral_cap >= 0.0)) {
    throw std::invalid_argument("pi.integral_cap must be >= 0");
  }
}

PiCollection::PiCollection(PiTuning tuning) : tuning_(tuning) {
  tuning_.validate();
}

std::vector<hw::NodeId> PiCollection::select(const PolicyContext& ctx) {
  if (ctx.p_low <= Watts{0.0}) {
    // Zone-shard share mode: the deficit was shaped upstream; honour it.
    return accumulate_watts(ctx, scratch_, kDescendingPower,
                            ctx.required_saving());
  }
  const Watts p =
      ctx.has_forecast ? ctx.forecast_power : ctx.system_power;
  const double error = (p - ctx.p_low) / ctx.p_low;
  // Conditional integration with a hard clamp: positive error charges
  // the integral up to the cap, negative error (headroom) discharges it
  // back towards zero — the controller never "owes" throttling from a
  // past excursion once the system has been green for a while.
  integral_ = std::clamp(integral_ + error, 0.0, tuning_.integral_cap);
  const double intensity = tuning_.kp * error + tuning_.ki * integral_;
  // The forecast only ever ADDS shedding: when the meter itself is over
  // P_L, never demand less than Algorithm 2's reactive requirement — a
  // forecast lagging a fast ramp must not talk the controller out of the
  // saving the measured excursion already mandates (that undershoot is
  // how red excursions slip through).
  const Watts demand =
      std::max(ctx.p_low * intensity, ctx.required_saving());
  return accumulate_watts(ctx, scratch_, kDescendingPower, demand);
}

std::vector<double> PiCollection::checkpoint_state() const {
  return {integral_};
}

void PiCollection::restore_state(const std::vector<double>& state) {
  if (state.size() != 1) {
    throw std::invalid_argument("pi-c policy state must have 1 entry");
  }
  integral_ = state[0];
}

std::vector<hw::NodeId> PredictiveCollection::select(
    const PolicyContext& ctx) {
  if (ctx.p_low <= Watts{0.0}) {
    return accumulate_watts(ctx, scratch_, kDescendingPower,
                            ctx.required_saving());
  }
  const Watts p =
      ctx.has_forecast ? ctx.forecast_power : ctx.system_power;
  // Same floor as PI-C: cover max(forecast, measured) - P_L, so a lagging
  // forecast never undercuts the reactive requirement.
  return accumulate_watts(ctx, scratch_, kDescendingPower,
                          std::max(p - ctx.p_low, ctx.required_saving()));
}

}  // namespace pcap::power
