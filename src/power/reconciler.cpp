#include "power/reconciler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hpp"
#include "power/checkpoint.hpp"

namespace pcap::power {

void ReconcilerParams::validate() const {
  if (max_retries < 0) {
    throw std::invalid_argument("ReconcilerParams: max_retries must be >= 0");
  }
  if (retry_backoff_base_cycles < 1) {
    throw std::invalid_argument(
        "ReconcilerParams: retry backoff base must be >= 1 cycle");
  }
  if (retry_backoff_cap_cycles < retry_backoff_base_cycles) {
    throw std::invalid_argument(
        "ReconcilerParams: retry backoff cap must be >= the base");
  }
}

void ActuationReconciler::CycleWork::clear() {
  commands.clear();
  acks = 0;
  retries = 0;
  divergences = 0;
  heals = 0;
  abandoned = 0;
  suppressed = 0;
  readmitted = 0;
  adopted_nodes.clear();
}

ActuationReconciler::ActuationReconciler(ReconcilerParams params)
    : params_(params) {
  params_.validate();
}

std::uint64_t ActuationReconciler::backoff(int retries) const {
  const auto base =
      static_cast<std::uint64_t>(params_.retry_backoff_base_cycles);
  const auto cap =
      static_cast<std::uint64_t>(params_.retry_backoff_cap_cycles);
  if (retries >= 30) return cap;
  return std::min(base << retries, cap);
}

ActuationReconciler::Slot& ActuationReconciler::slot(hw::NodeId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= slots_.size()) slots_.resize(idx + 1);
  return slots_[idx];
}

void ActuationReconciler::register_pending(Slot& s, hw::Level target,
                                           std::uint64_t cycle) {
  if (!s.has_pending) ++pending_count_;
  s.has_pending = true;
  s.pending_target = target;
  s.issued_cycle = cycle;
  s.next_retry_cycle = cycle + backoff(0);
  s.pending_retries = 0;
}

void ActuationReconciler::register_pending(hw::NodeId id, hw::Level target,
                                           std::uint64_t cycle) {
  register_pending(slot(id), target, cycle);
}

void ActuationReconciler::observe_node(hw::NodeId id, hw::Level observed,
                                       std::uint64_t sample_cycle,
                                       std::uint64_t now_cycle,
                                       CycleWork& work) {
  Slot& s = slot(id);
  if (s.unresponsive) {
    // A fresh report from a node we gave up on: readmit it, adopting its
    // actual state as the new truth — our old intent was abandoned with
    // the retry budget.
    s.unresponsive = false;
    --unresponsive_count_;
    s.has_believed = true;
    s.believed_level = observed;
    s.observed_cycle = sample_cycle;
    ++work.readmitted;
    ++readmitted_;
    return;
  }

  if (s.has_believed && sample_cycle <= s.observed_cycle) {
    // Not newer than what already drove this table (the freshest sample
    // can move backwards when newer deliveries are corrupt): ignore.
    return;
  }

  if (s.has_pending) {
    if (observed == s.pending_target && sample_cycle > s.issued_cycle) {
      // Ack: the node demonstrably reached the commanded level after the
      // command was issued.
      s.has_believed = true;
      s.believed_level = observed;
      s.observed_cycle = sample_cycle;
      s.has_pending = false;
      --pending_count_;
      ++work.acks;
      ++acks_;
    }
    // Anything else — old level still showing, or a partial transition's
    // intermediate stop — means keep waiting; the retry clock decides.
    return;
  }

  if (!s.has_believed) {
    // First sight of this node: adopt what it reports.
    s.has_believed = true;
    s.believed_level = observed;
    s.observed_cycle = sample_cycle;
    return;
  }

  if (observed != s.believed_level) {
    // Divergence with nothing in flight: the node changed level under us
    // (reboot reset, partial transition acked long ago, operator). Heal
    // it back to the believed level and track the heal like any command.
    ++work.divergences;
    ++divergences_;
    ++work.heals;
    ++heals_;
    work.commands.push_back(LevelCommand{id, s.believed_level});
    register_pending(s, s.believed_level, now_cycle);
  }
  s.observed_cycle = sample_cycle;
}

void ActuationReconciler::adopt_reality(hw::NodeId id, hw::Level observed,
                                        std::uint64_t sample_cycle,
                                        CycleWork& work) {
  Slot& s = slot(id);
  if (s.unresponsive) {
    s.unresponsive = false;
    --unresponsive_count_;
    ++work.readmitted;
    ++readmitted_;
  }
  if (s.has_pending) {
    // The failsafe stomped whatever was in flight; keeping the pending
    // command alive would retry — and eventually apply — a level the
    // watchdog deliberately overrode.
    s.has_pending = false;
    --pending_count_;
  }
  s.has_believed = true;
  s.believed_level = observed;
  s.observed_cycle = std::max(s.observed_cycle, sample_cycle);
  work.adopted_nodes.push_back(LevelCommand{id, observed});
  ++adopted_;
}

void ActuationReconciler::finish_observation(std::uint64_t cycle,
                                             CycleWork& work) {
  if (pending_count_ == 0) return;
  for (std::size_t idx = 0; idx < slots_.size(); ++idx) {
    Slot& s = slots_[idx];
    if (!s.has_pending || s.next_retry_cycle > cycle) continue;
    if (s.pending_retries >= params_.max_retries) {
      // Budget exhausted: stop shouting at a node that never answers.
      // Marking it unresponsive drops it from the candidate context, so
      // selection and A_degraded forget it until fresh telemetry earns
      // it a readmission.
      PCAP_WARN(
          "reconciler: node %llu unresponsive after %d retries "
          "(target level %d abandoned)",
          static_cast<unsigned long long>(idx), s.pending_retries,
          s.pending_target);
      s.unresponsive = true;
      ++unresponsive_count_;
      s.has_pending = false;
      --pending_count_;
      ++work.abandoned;
      ++abandoned_;
      continue;
    }
    ++s.pending_retries;
    s.next_retry_cycle = cycle + backoff(s.pending_retries);
    work.commands.push_back(
        LevelCommand{static_cast<hw::NodeId>(idx), s.pending_target});
    ++work.retries;
    ++retries_;
  }
}

void ActuationReconciler::collect_watch(std::vector<hw::NodeId>& out) const {
  if (pending_count_ == 0 && unresponsive_count_ == 0) return;
  for (std::size_t idx = 0; idx < slots_.size(); ++idx) {
    const Slot& s = slots_[idx];
    if (s.has_pending || s.unresponsive) {
      out.push_back(static_cast<hw::NodeId>(idx));
    }
  }
}

void ActuationReconciler::admit(const std::vector<LevelCommand>& decided,
                                std::uint64_t cycle, CycleWork& work) {
  for (const LevelCommand& cmd : decided) {
    Slot& s = slot(cmd.node);
    if (s.unresponsive) {
      ++work.suppressed;
      ++suppressed_;
      continue;
    }
    if (s.has_pending && s.pending_target == cmd.level) {
      continue;  // retries own it
    }
    // Registers a brand-new command, or supersedes a pending one with a
    // different target outright — the newest intent wins and gets a fresh
    // retry budget.
    register_pending(s, cmd.level, cycle);
    work.commands.push_back(cmd);
  }
}

std::optional<hw::Level> ActuationReconciler::pending_target(
    hw::NodeId id) const {
  const Slot* s = find_slot(id);
  if (s == nullptr || !s->has_pending) return std::nullopt;
  return s->pending_target;
}

hw::Level ActuationReconciler::believed(hw::NodeId id,
                                        hw::Level fallback) const {
  const Slot* s = find_slot(id);
  return s == nullptr || !s->has_believed ? fallback : s->believed_level;
}

ReconcilerCheckpoint ActuationReconciler::checkpoint() const {
  ReconcilerCheckpoint cp;
  for (std::size_t idx = 0; idx < slots_.size(); ++idx) {
    const Slot& s = slots_[idx];
    if (!s.has_pending && !s.has_believed && !s.unresponsive) continue;
    ReconcilerSlotCheckpoint sc;
    sc.node = static_cast<hw::NodeId>(idx);
    sc.pending_target = s.pending_target;
    sc.issued_cycle = s.issued_cycle;
    sc.next_retry_cycle = s.next_retry_cycle;
    sc.pending_retries = s.pending_retries;
    sc.believed_level = s.believed_level;
    sc.observed_cycle = s.observed_cycle;
    sc.has_pending = s.has_pending;
    sc.has_believed = s.has_believed;
    sc.unresponsive = s.unresponsive;
    cp.slots.push_back(sc);
  }
  return cp;
}

void ActuationReconciler::restore(const ReconcilerCheckpoint& cp) {
  slots_.clear();
  pending_count_ = 0;
  unresponsive_count_ = 0;
  for (const ReconcilerSlotCheckpoint& sc : cp.slots) {
    Slot& s = slot(sc.node);
    s.pending_target = sc.pending_target;
    s.issued_cycle = sc.issued_cycle;
    s.next_retry_cycle = sc.next_retry_cycle;
    s.pending_retries = sc.pending_retries;
    s.believed_level = sc.believed_level;
    s.observed_cycle = sc.observed_cycle;
    s.has_pending = sc.has_pending;
    s.has_believed = sc.has_believed;
    s.unresponsive = sc.unresponsive;
    if (s.has_pending) ++pending_count_;
    if (s.unresponsive) ++unresponsive_count_;
  }
}

}  // namespace pcap::power
