#include "power/reconciler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hpp"

namespace pcap::power {

void ReconcilerParams::validate() const {
  if (max_retries < 0) {
    throw std::invalid_argument("ReconcilerParams: max_retries must be >= 0");
  }
  if (retry_backoff_base_cycles < 1) {
    throw std::invalid_argument(
        "ReconcilerParams: retry backoff base must be >= 1 cycle");
  }
  if (retry_backoff_cap_cycles < retry_backoff_base_cycles) {
    throw std::invalid_argument(
        "ReconcilerParams: retry backoff cap must be >= the base");
  }
}

void ActuationReconciler::CycleWork::clear() {
  commands.clear();
  acks = 0;
  retries = 0;
  divergences = 0;
  heals = 0;
  abandoned = 0;
  suppressed = 0;
  readmitted = 0;
}

ActuationReconciler::ActuationReconciler(ReconcilerParams params)
    : params_(params) {
  params_.validate();
}

std::uint64_t ActuationReconciler::backoff(int retries) const {
  const auto base =
      static_cast<std::uint64_t>(params_.retry_backoff_base_cycles);
  const auto cap =
      static_cast<std::uint64_t>(params_.retry_backoff_cap_cycles);
  if (retries >= 30) return cap;
  return std::min(base << retries, cap);
}

void ActuationReconciler::register_pending(hw::NodeId id, hw::Level target,
                                           std::uint64_t cycle) {
  pending_[id] = Pending{target, cycle, cycle + backoff(0), 0};
}

void ActuationReconciler::observe_node(hw::NodeId id, hw::Level observed,
                                       std::uint64_t sample_cycle,
                                       std::uint64_t now_cycle,
                                       CycleWork& work) {
  if (unresponsive_.count(id) != 0) {
    // A fresh report from a node we gave up on: readmit it, adopting its
    // actual state as the new truth — our old intent was abandoned with
    // the retry budget.
    unresponsive_.erase(id);
    believed_[id] = Believed{observed, sample_cycle};
    ++work.readmitted;
    ++readmitted_;
    return;
  }

  auto bit = believed_.find(id);
  if (bit != believed_.end() && sample_cycle <= bit->second.observed_cycle) {
    // Not newer than what already drove this table (the freshest sample
    // can move backwards when newer deliveries are corrupt): ignore.
    return;
  }

  auto pit = pending_.find(id);
  if (pit != pending_.end()) {
    const Pending& p = pit->second;
    if (observed == p.target && sample_cycle > p.issued_cycle) {
      // Ack: the node demonstrably reached the commanded level after the
      // command was issued.
      believed_[id] = Believed{observed, sample_cycle};
      pending_.erase(pit);
      ++work.acks;
      ++acks_;
    }
    // Anything else — old level still showing, or a partial transition's
    // intermediate stop — means keep waiting; the retry clock decides.
    return;
  }

  if (bit == believed_.end()) {
    // First sight of this node: adopt what it reports.
    believed_[id] = Believed{observed, sample_cycle};
    return;
  }

  if (observed != bit->second.level) {
    // Divergence with nothing in flight: the node changed level under us
    // (reboot reset, partial transition acked long ago, operator). Heal
    // it back to the believed level and track the heal like any command.
    ++work.divergences;
    ++divergences_;
    ++work.heals;
    ++heals_;
    work.commands.push_back(LevelCommand{id, bit->second.level});
    register_pending(id, bit->second.level, now_cycle);
  }
  bit->second.observed_cycle = sample_cycle;
}

void ActuationReconciler::finish_observation(std::uint64_t cycle,
                                             CycleWork& work) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& p = it->second;
    if (p.next_retry_cycle > cycle) {
      ++it;
      continue;
    }
    if (p.retries >= params_.max_retries) {
      // Budget exhausted: stop shouting at a node that never answers.
      // Marking it unresponsive drops it from the candidate context, so
      // selection and A_degraded forget it until fresh telemetry earns
      // it a readmission.
      PCAP_WARN(
          "reconciler: node %llu unresponsive after %d retries "
          "(target level %d abandoned)",
          static_cast<unsigned long long>(it->first), p.retries, p.target);
      unresponsive_.insert(it->first);
      ++work.abandoned;
      ++abandoned_;
      it = pending_.erase(it);
      continue;
    }
    ++p.retries;
    p.next_retry_cycle = cycle + backoff(p.retries);
    work.commands.push_back(LevelCommand{it->first, p.target});
    ++work.retries;
    ++retries_;
    ++it;
  }
}

void ActuationReconciler::admit(const std::vector<LevelCommand>& decided,
                                std::uint64_t cycle, CycleWork& work) {
  for (const LevelCommand& cmd : decided) {
    if (unresponsive_.count(cmd.node) != 0) {
      ++work.suppressed;
      ++suppressed_;
      continue;
    }
    auto it = pending_.find(cmd.node);
    if (it != pending_.end()) {
      if (it->second.target == cmd.level) continue;  // retries own it
      // A different target supersedes the pending command outright — the
      // newest intent wins and gets a fresh retry budget.
      it->second = Pending{cmd.level, cycle, cycle + backoff(0), 0};
      work.commands.push_back(cmd);
      continue;
    }
    register_pending(cmd.node, cmd.level, cycle);
    work.commands.push_back(cmd);
  }
}

std::optional<hw::Level> ActuationReconciler::pending_target(
    hw::NodeId id) const {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return std::nullopt;
  return it->second.target;
}

hw::Level ActuationReconciler::believed(hw::NodeId id,
                                        hw::Level fallback) const {
  const auto it = believed_.find(id);
  return it == believed_.end() ? fallback : it->second.level;
}

}  // namespace pcap::power
