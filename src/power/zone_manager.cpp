#include "power/zone_manager.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "power/checkpoint.hpp"

namespace pcap::power {

namespace {

// Synthetic threshold triples the shards' engines classify against. The
// watt values carry no physical meaning — they exist purely so
// classify_power lands in the intended branch and, in yellow, so
// ctx.required_saving() == the zone's deficit share.
constexpr Watts kGreenP{0.0};
constexpr Watts kGreenLow{1.0};
constexpr Watts kGreenHigh{2.0};
constexpr Watts kRedP{2.0};
constexpr Watts kRedLow{0.0};
constexpr Watts kRedHigh{1.0};

}  // namespace

ZoneTreeParams::Assignment parse_zone_assignment(const std::string& s) {
  if (s == "block") return ZoneTreeParams::Assignment::kBlock;
  if (s == "stride") return ZoneTreeParams::Assignment::kStride;
  throw std::invalid_argument("zones.assignment must be block|stride, got '" +
                              s + "'");
}

ZoneTreeParams::Redistribution parse_zone_redistribution(
    const std::string& s) {
  if (s == "uniform") return ZoneTreeParams::Redistribution::kUniform;
  if (s == "proportional") return ZoneTreeParams::Redistribution::kProportional;
  throw std::invalid_argument(
      "zones.redistribution must be uniform|proportional, got '" + s + "'");
}

ZoneTreeManager::ZoneTreeManager(ZoneTreeParams params,
                                 CappingManagerParams shard_params,
                                 std::function<PolicyPtr()> policy_factory,
                                 common::Rng rng)
    : params_(params), learner_(shard_params.thresholds) {
  if (params_.zone_count < 1) {
    throw std::invalid_argument("ZoneTreeManager: zone_count must be >= 1");
  }
  if (!policy_factory) {
    throw std::invalid_argument("ZoneTreeManager: null policy factory");
  }
  if (shard_params.selector) {
    throw std::invalid_argument(
        "ZoneTreeManager: dynamic candidate selection is not supported "
        "under zoning (the selector would re-partition every reselect)");
  }
  // The shards never classify or learn: freeze their learners at the
  // provision so their construction is valid and inert, and root-managed
  // training never double-counts. Their control-fault injectors are
  // cleared for the same reason: the tree owns every outage window (root
  // blackouts and per-zone crashes alike), drawn from its own streams.
  CappingManagerParams zp = shard_params;
  zp.thresholds.freeze_at_provision = true;
  zp.control = ControlFaultParams{};
  // Prediction runs at the root for the same reason learning does: there
  // is one facility meter, so there is one forecastable power series. The
  // shards' prediction params are cleared so they never grow predictors
  // of their own (their "meter" input is the global reading anyway).
  zp.prediction = PredictionParams{};
  orphan_margin_ = shard_params.stale_power_margin;
  prediction_ = shard_params.prediction;
  if (prediction_.enabled) {
    prediction_.validate();
    predictor_ = make_predictor(prediction_);
    predictor_refresh_cycles_ =
        prediction_.refresh_cycles > 0
            ? prediction_.refresh_cycles
            : shard_params.thresholds.adjust_period_cycles;
    scorer_.reset(prediction_.horizon_cycles);
  }
  zones_.resize(params_.zone_count);
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    // One rng branch per zone: zone z's fault/transport streams depend
    // only on (seed, z), not on the zone count or membership.
    zones_[z].shard = std::make_unique<CappingManager>(
        zp, policy_factory(), rng.fork("zone" + std::to_string(z)));
  }
  // Forked after every zone branch so enabling/disabling control faults —
  // or adding this fork at all — cannot perturb the zone streams existing
  // seeds depend on.
  ctrl_faults_.emplace(shard_params.control, rng.fork("control"));
  ctrl_faults_->ensure_zones(zones_.size());
}

std::string ZoneTreeManager::name() const {
  return "zonetree(" + std::to_string(zones_.size()) +
         "):" + zones_.front().shard->name();
}

void ZoneTreeManager::set_candidate_set(const std::vector<hw::NodeId>& ids) {
  std::vector<hw::NodeId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  const std::size_t n = sorted.size();
  const std::size_t zc = zones_.size();
  for (Zone& zone : zones_) zone.members.clear();
  if (params_.assignment == ZoneTreeParams::Assignment::kBlock) {
    // Balanced contiguous ranges: the first n % zc zones get one extra.
    const std::size_t q = n / zc;
    const std::size_t r = n % zc;
    std::size_t begin = 0;
    for (std::size_t z = 0; z < zc; ++z) {
      const std::size_t len = q + (z < r ? 1 : 0);
      zones_[z].members.assign(sorted.begin() + begin,
                               sorted.begin() + begin + len);
      begin += len;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      zones_[i % zc].members.push_back(sorted[i]);
    }
  }
  for (Zone& zone : zones_) {
    zone.shard->set_candidate_set(zone.members);
    zone.hints_valid = false;  // membership changed: hints describe the past
    zone.ever_measured = false;
    zone.worst_case_valid = false;
  }
  refresh_watchdog_groups();
}

void ZoneTreeManager::set_watchdog(hw::FailsafeWatchdog* wd) {
  watchdog_ = wd;
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    zones_[z].shard->attach_watchdog(wd, z);
  }
  refresh_watchdog_groups();
}

void ZoneTreeManager::refresh_watchdog_groups() {
  if (watchdog_ == nullptr) return;
  std::vector<std::vector<hw::NodeId>> groups;
  groups.reserve(zones_.size());
  for (const Zone& zone : zones_) groups.push_back(zone.members);
  watchdog_->set_groups(groups);
}

void ZoneTreeManager::invalidate_hints() {
  for (Zone& zone : zones_) zone.hints_valid = false;
}

void ZoneTreeManager::bind_metrics(obs::Registry& reg) {
  reg_ = &reg;
  metrics_.bind(reg);
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    const std::string label = "zone=\"" + std::to_string(z) + "\"";
    zones_[z].power_gauge =
        reg.gauge("pcap_zone_power_watts",
                  "Zone context power at the last active cycle", label);
    zones_[z].share_gauge =
        reg.gauge("pcap_zone_share_watts",
                  "Zone deficit share at the last cycle", label);
    zones_[z].active_cycles =
        reg.counter("pcap_zone_active_cycles_total",
                    "Cycles this zone ran collect+context+select", label);
    zones_[z].targets_total =
        reg.counter("pcap_zone_targets_total",
                    "Throttle/restore targets selected in this zone", label);
  }
}

ManagerReport ZoneTreeManager::cycle(Watts measured,
                                     std::vector<hw::Node>& nodes,
                                     const sched::Scheduler& scheduler,
                                     Seconds now) {
  // Control-fault windows advance first: a root blackout silences the
  // whole tree (no learning, no heartbeats, no decisions), a zone window
  // silences just that shard while the root conservatively re-plans
  // around the orphan.
  const bool root_down = ctrl_faults_->begin_cycle();

  // Root: threshold learning + global classification — one learner, one
  // facility meter reading, exactly like the flat manager's step 1. A
  // dead root cannot observe, but the band it last learned is still real,
  // so classification (and the report) use the frozen thresholds.
  if (!root_down) learner_.observe(measured);

  ManagerReport report;
  report.controller_down = root_down;
  report.measured = measured;
  report.p_low = learner_.p_low();
  report.p_high = learner_.p_high();
  report.training = learner_.training();
  report.state = classify_power(measured, report.p_low, report.p_high);
  const PowerState state = report.state;

  // Root forecasting (the flat manager's step 1b): model update + this
  // cycle's forecast. Runs during training too — the model is warm the
  // moment capping starts — but only arms the predictive path after.
  if (!root_down) predictor_phase(measured, report);
  const bool predictive_alarm =
      !root_down && !report.training && forecast_.has_value() &&
      zones_.front().shard->policy().forecast_driven() &&
      *forecast_ >= report.p_low;

  // Predictive elevation: a green root cycle with an armed alarm drives
  // the zones down the yellow deficit-distribution path, shedding for
  // where the meter is heading instead of where it is. Green→yellow only,
  // never →red — a bad forecast can cost a few conservative throttles but
  // can never floor the whole cluster.
  PowerState effective = state;
  if (predictive_alarm && state == PowerState::kGreen) {
    effective = PowerState::kYellow;
    ++predictive_elevations_;
    report.state = effective;
  }

  if (root_down) {
    // The root is blind this cycle: whatever it believed about the zones
    // is stale by the time it wakes, and the dirty triggers below did not
    // run, so every hint is dropped outright.
    invalidate_hints();
  } else {
    // Root dirty triggers: a global state change re-arms every zone, and
    // so does any job start/finish (membership of busy sets — and
    // therefore shed capacity — may have moved anywhere). The EFFECTIVE
    // state participates: a predictive elevation starting or ending moves
    // the zones between the green and yellow regimes exactly as a real
    // classification change would.
    const std::size_t job_events = scheduler.job_events().size();
    if (effective != last_state_ || job_events != job_events_seen_) {
      invalidate_hints();
    }
    last_state_ = effective;
    job_events_seen_ = job_events;
  }

  // Zone liveness scratch + watchdog heartbeats — serial (the watchdog is
  // shared state). Group z heartbeats exactly when zone z's shard is up
  // AND the root is up: a node's silence clock only resets on controller
  // traffic it could actually have seen.
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    Zone& zone = zones_[z];
    zone.down = root_down || ctrl_faults_->zone_down(z);
    if (zone.down) {
      zone.hints_valid = false;
    } else if (watchdog_ != nullptr) {
      watchdog_->heartbeat(z);
    }
  }

  const bool training = report.training;
  const std::size_t running_jobs = scheduler.running_count();

  // Phase A — per-zone gate + telemetry. The gate itself is O(1) per zone
  // and touches only that zone's state, so it runs serially up front; the
  // sweep that follows goes to the pool only when at least two zones
  // actually collect. A quiescent (or steady-green strided) cycle
  // otherwise pays a pool handoff per phase for zero work per zone — the
  // ~20x quiescent-cycle slowdown recorded in BENCH_control_cycle.json
  // before this gate existed. The gate is still evaluated exactly once
  // per zone, strictly before phase B, mirroring the flat cycle's
  // single-evaluation contract.
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    Zone& zone = zones_[z];
    CappingManager& m = *zone.shard;
    zone.report = ManagerReport{};
    zone.decision = CycleDecision{};
    zone.share = Watts{0.0};
    zone.transitions = 0;

    if (zone.down) {
      // Crashed shard: no gate, no sweep, no decision — only the
      // collector clock ticks (sample ages and reconciler deadlines
      // stay well-defined at recovery).
      zone.active = false;
      zone.collected = false;
    } else if (training) {
      const bool gate = m.context_gate(effective);
      zone.active = false;
      zone.collected = gate || m.collect_due();
    } else if (effective == PowerState::kGreen) {
      const bool gate = m.context_gate(effective);
      zone.active = gate;
      zone.collected = gate || m.collect_due();
    } else {
      // Yellow/red quiescence: a hinted zone with nothing left to
      // shed (yellow: zero job capacity; red: every node already at
      // the floor) is skipped. Anything pending, in flight,
      // unresponsive or awaiting watchdog adoption forces activity —
      // acks, readmissions and adoptions only arrive through a
      // context build.
      const bool nothing_to_shed = effective == PowerState::kYellow
                                       ? zone.capacity <= Watts{0.0}
                                       : zone.floored;
      const bool quiescent =
          zone.hints_valid && nothing_to_shed &&
          m.reconciler().pending_count() == 0 &&
          m.reconciler().unresponsive_count() == 0 &&
          m.actuation_channel().in_flight_count() == 0 &&
          !m.watchdog_pending();
      zone.active = !quiescent;
      zone.collected = zone.active;
    }
  }
  std::size_t collecting_zones = 0;
  std::size_t active_zones = 0;
  for (const Zone& zone : zones_) {
    collecting_zones += zone.collected ? 1 : 0;
    active_zones += zone.active ? 1 : 0;
  }
  common::ThreadPool* const collect_pool =
      collecting_zones >= 2 ? pool_ : nullptr;
  common::ThreadPool* const active_pool = active_zones >= 2 ? pool_ : nullptr;
  common::maybe_parallel_for(
      collect_pool, zones_.size(), 2, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t z = begin; z < end; ++z) {
          Zone& zone = zones_[z];
          zone.shard->collect_phase(zone.collected, nodes, now, running_jobs);
        }
      });

  // Phase B — actuation-plane hardware events (reboots, due deliveries)
  // mutate nodes: strictly serial, fixed zone order. A reboot resets a
  // node to full power behind the zone's back, so it invalidates that
  // zone's hints (the rebuild lands next cycle — one documented cycle of
  // lag, conservative because the meter still sees the extra draw and the
  // other zones shed for it).
  for (Zone& zone : zones_) {
    const std::uint64_t reboots_before =
        zone.shard->actuation_channel().reboot_events();
    zone.shard->begin_actuation_phase(nodes);
    if (zone.shard->actuation_channel().reboot_events() != reboots_before) {
      zone.hints_valid = false;
    }
  }

  const auto fill_totals = [&] {
    double utilization = 0.0;
    for (Zone& zone : zones_) {
      const CappingManager& m = *zone.shard;
      utilization += m.collector().last_cycle_manager_utilization();
      report.samples_lost += m.collector().samples_lost();
      report.samples_suppressed += m.collector().samples_suppressed();
      const telemetry::FaultInjector& faults = m.collector().fault_injector();
      report.samples_corrupted += faults.samples_corrupted();
      report.crash_events += faults.crash_events();
      report.recovery_events += faults.recovery_events();
      report.agents_down += faults.silent_count();
      report.commands_lost += m.actuation_channel().commands_lost();
      report.commands_rebooting +=
          m.actuation_channel().commands_dropped_rebooting();
      report.transitions_failed += m.actuation_channel().transitions_failed();
      report.transitions_partial +=
          m.actuation_channel().transitions_partial();
      report.reboot_events += m.actuation_channel().reboot_events();
      report.commands_abandoned += m.reconciler().total_abandoned();
      report.commands_clamped += m.controller().commands_clamped();
      report.commands_in_flight += m.reconciler().pending_count();
    }
    report.manager_utilization = utilization;
    // Control-plane fault truth lives in the tree's injector (the shards'
    // own injectors are cleared at construction and count nothing).
    report.zones_down = ctrl_faults_->zones_down();
    report.predictor_overshoots = scorer_.overshoots();
    report.predictor_misses = scorer_.misses();
    report.predictive_elevations = predictive_elevations_;
    report.ctrl_outages = ctrl_faults_->outages_started();
    report.ctrl_outage_cycles = ctrl_faults_->outage_cycles();
    report.ctrl_delayed_cycles = ctrl_faults_->delayed_cycles();
    report.ctrl_zone_outage_cycles = ctrl_faults_->zone_outage_cycles();
  };

  const auto publish = [&] {
    std::size_t unresponsive_now = 0;
    std::size_t active = 0;
    for (Zone& zone : zones_) {
      unresponsive_now += zone.shard->reconciler().unresponsive_count();
      if (zone.active) ++active;
      if (reg_ != nullptr) {
        reg_->set(zone.power_gauge, zone.power.value());
        reg_->set(zone.share_gauge, zone.share.value());
        if (zone.active) reg_->add(zone.active_cycles);
        reg_->add(zone.targets_total, zone.decision.commands.size());
      }
    }
    active_last_cycle_ = active;
    metrics_.publish(report, unresponsive_now);
  };

  // Training: the system runs unmanaged — only due deliveries land.
  if (training) {
    for (Zone& zone : zones_) zone.shard->apply_deliveries(nodes);
    fill_totals();
    publish();
    return report;
  }

  // Phase C — context assembly (parallel over zones when at least two
  // have real work; each shard's reconciler/collector/job-index state is
  // disjoint). The zone's power and shed capacity are serial per-zone
  // folds over its own context, so they are identical whichever worker
  // computed them.
  common::maybe_parallel_for(
      active_pool, zones_.size(), 2, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t z = begin; z < end; ++z) {
          Zone& zone = zones_[z];
          if (!zone.active) continue;
          zone.shard->context_phase(measured, nodes, scheduler, zone.report);
          const PolicyContext& ctx = zone.shard->context();
          Watts power{0.0};
          bool floored = true;
          for (const NodeView& nv : ctx.nodes) {
            power += nv.power;
            if (!nv.at_lowest) floored = false;
          }
          Watts capacity{0.0};
          for (const JobView& jv : ctx.jobs) {
            capacity += jv.saving_one_level;
          }
          zone.power = power;
          zone.capacity = capacity;
          zone.floored = floored;
          zone.ever_measured = true;
        }
      });

  // Root fold — deficit shares, serial in fixed zone order (the only
  // cross-zone arithmetic in the cycle; its inputs are per-zone values
  // already pinned above, so the fold is bit-identical for any worker
  // count). Only zones that are active AND still have shed capacity are
  // eligible; skipped zones keep share 0.
  if (effective == PowerState::kYellow) {
    // Forecast-driven deficit base: with an armed alarm the root sheds
    // for where the meter is heading, not just where it is — on an
    // elevated green cycle the measured deficit is zero by definition, so
    // without this the elevation would distribute nothing. The base never
    // drops below the measured reading: a forecast that undershoots
    // reality can't shrink the reactive response.
    Watts deficit_base = measured;
    if (predictive_alarm && *forecast_ > deficit_base) {
      deficit_base = *forecast_;
    }
    Watts deficit = std::max(Watts{0.0}, deficit_base - report.p_low);
    // Orphan-zone adoption: a downed shard cannot shed its share, and the
    // root cannot see where its draw is heading. The meter already counts
    // the orphan's actual power, so the live zones inherit its share of
    // the deficit by construction (it is simply ineligible below); on top
    // of that the deficit is inflated by margin × the orphan's accounted
    // power — last-known context power when it was ever measured, the
    // members' theoretical max otherwise — so unseen upward drift inside
    // the orphan is shed by its siblings instead of breaching P_H.
    for (Zone& zone : zones_) {
      if (!zone.down) continue;
      if (zone.ever_measured) {
        deficit += zone.power * orphan_margin_;
      } else {
        if (!zone.worst_case_valid) {
          Watts wc{0.0};
          for (const hw::NodeId id : zone.members) {
            wc += nodes[id].spec().power_model.theoretical_max();
          }
          zone.worst_case = wc;
          zone.worst_case_valid = true;
        }
        deficit += zone.worst_case * orphan_margin_;
      }
    }
    Watts eligible_power{0.0};
    std::size_t eligible = 0;
    for (const Zone& zone : zones_) {
      if (zone.active && zone.capacity > Watts{0.0}) {
        ++eligible;
        eligible_power += zone.power;
      }
    }
    const bool proportional =
        params_.redistribution == ZoneTreeParams::Redistribution::kProportional &&
        eligible_power > Watts{0.0};
    for (Zone& zone : zones_) {
      if (!(zone.active && zone.capacity > Watts{0.0})) continue;
      zone.share = proportional
                       ? deficit * (zone.power.value() / eligible_power.value())
                       : deficit / static_cast<double>(eligible);
    }
  }

  // Phase D — selection (parallel when at least two zones are active;
  // per-shard engine/policy state is disjoint — skipped and green-idle
  // zones only tick their engine timers, O(1) work that never justifies a
  // handoff). Green runs every zone's engine — O(1) with nothing
  // degraded — so each shard's green timer ticks exactly as the flat
  // engine's would. Skipped yellow/red zones reset their timer without a
  // decision, as if a decision had run and emitted nothing.
  common::maybe_parallel_for(
      active_pool, zones_.size(), 2, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t z = begin; z < end; ++z) {
          Zone& zone = zones_[z];
          CappingManager& m = *zone.shard;
          // A crashed shard decides nothing — not even a green-timer tick
          // or a non-green reset; its engine clock freezes mid-outage
          // exactly as the flat manager's does on a dead cycle.
          if (zone.down) continue;
          switch (effective) {
            case PowerState::kGreen:
              zone.decision = m.select_phase(kGreenP, kGreenLow, kGreenHigh);
              break;
            case PowerState::kYellow:
              if (zone.active && zone.share > Watts{0.0}) {
                zone.decision = m.select_phase(
                    zone.share, Watts{0.0},
                    Watts{std::numeric_limits<double>::max()});
              } else {
                m.note_non_green_cycle();
              }
              break;
            case PowerState::kRed:
              if (zone.active) {
                zone.decision = m.select_phase(kRedP, kRedLow, kRedHigh);
              } else {
                m.note_non_green_cycle();
              }
              break;
          }
        }
      });

  // Phase E — actuation mutates nodes: strictly serial, fixed zone order.
  // Every zone actuates every cycle (an empty decision still flushes the
  // reconciler's retries/heals and applies due deliveries). Hints refresh
  // here, after actuation: a zone that just sent commands has pending
  // state, so its hints stay invalid until the acks come back through a
  // clean build.
  for (Zone& zone : zones_) {
    CappingManager& m = *zone.shard;
    if (zone.down) {
      // Dead shard: no admissions, no retries, no heals — but commands
      // already in the network still land (stamping watchdog contacts;
      // the node cannot tell the sender died after transmitting).
      zone.transitions = m.apply_deliveries(nodes);
      continue;
    }
    zone.transitions = m.actuate_phase(zone.decision, nodes);
    if (zone.active) {
      const ManagerReport& zr = zone.report;
      zone.hints_valid =
          zr.stale_nodes == 0 && zr.missing_nodes == 0 &&
          zr.fallback_nodes == 0 && zr.rejected_samples == 0 &&
          zr.unresponsive_nodes == 0 && m.reconciler().pending_count() == 0 &&
          m.reconciler().unresponsive_count() == 0 &&
          m.actuation_channel().in_flight_count() == 0;
    }
  }

  // Root report — serial fixed-order sum over the shards.
  for (const Zone& zone : zones_) {
    report.targets += zone.decision.commands.size();
    report.transitions += zone.transitions;
    report.skipped_targets += zone.decision.skipped;
    report.deferred_targets += zone.decision.deferred_in_flight;
    report.stale_nodes += zone.report.stale_nodes;
    report.missing_nodes += zone.report.missing_nodes;
    report.fallback_nodes += zone.report.fallback_nodes;
    report.rejected_samples += zone.report.rejected_samples;
    report.unresponsive_nodes += zone.report.unresponsive_nodes;
    const ActuationReconciler::CycleWork& work = zone.shard->recon_work();
    report.acks += work.acks;
    report.retries += work.retries;
    report.divergences += work.divergences;
    report.heals += work.heals;
    report.watchdog_adoptions += zone.report.watchdog_adoptions;
  }
  fill_totals();
  publish();
  return report;
}

void ZoneTreeManager::predictor_phase(Watts measured, ManagerReport& report) {
  if (!predictor_) return;
  predictor_->observe(measured);
  ++predictor_observations_;
  if (auto* periodic = dynamic_cast<PeriodicityPredictor*>(predictor_.get());
      periodic != nullptr &&
      predictor_observations_ % predictor_refresh_cycles_ == 0) {
    // The only super-O(1) model work, scheduled on the root learner's t_p
    // cadence — never on the per-cycle hot path.
    periodic->refresh();
  }
  forecast_ = predictor_->forecast(prediction_.horizon_cycles);
  std::optional<double> raw;
  if (forecast_) raw = forecast_->value();
  const std::optional<ForecastScorer::Score> score =
      scorer_.step(measured.value(), learner_.p_low().value(), raw);
  if (score) {
    report.forecast_abs_error = score->abs_error;
    report.forecast_scored = true;
  }
  report.has_forecast = forecast_.has_value();
  if (forecast_) report.forecast = *forecast_;
}

TreeCheckpoint ZoneTreeManager::checkpoint() const {
  TreeCheckpoint cp;
  cp.learner = learner_.checkpoint();
  // The observation counter rides in front of the opaque model state so
  // the restored refresh cadence stays phase-aligned with the old run.
  if (predictor_) {
    cp.predictor_state.push_back(
        static_cast<double>(predictor_observations_));
    const std::vector<double> model = predictor_->checkpoint_state();
    cp.predictor_state.insert(cp.predictor_state.end(), model.begin(),
                              model.end());
  }
  cp.last_state = static_cast<int>(last_state_);
  cp.job_events_seen = job_events_seen_;
  cp.shards.reserve(zones_.size());
  cp.hints.reserve(zones_.size());
  for (const Zone& zone : zones_) {
    cp.shards.push_back(zone.shard->checkpoint());
    ZoneHintCheckpoint h;
    h.hints_valid = zone.hints_valid;
    h.power = zone.power.value();
    h.capacity = zone.capacity.value();
    h.floored = zone.floored;
    h.ever_measured = zone.ever_measured;
    cp.hints.push_back(h);
  }
  return cp;
}

void ZoneTreeManager::restore(const TreeCheckpoint& cp) {
  if (cp.shards.size() != zones_.size() ||
      cp.hints.size() != zones_.size()) {
    throw std::invalid_argument(
        "ZoneTreeManager::restore: checkpoint zone count (" +
        std::to_string(cp.shards.size()) + ") != tree zone count (" +
        std::to_string(zones_.size()) + ")");
  }
  learner_.restore(cp.learner);
  if (predictor_ && !cp.predictor_state.empty()) {
    predictor_observations_ =
        static_cast<std::int64_t>(cp.predictor_state[0]);
    predictor_->restore_state(std::vector<double>(
        cp.predictor_state.begin() + 1, cp.predictor_state.end()));
    forecast_ = predictor_->forecast(prediction_.horizon_cycles);
  }
  last_state_ = static_cast<PowerState>(cp.last_state);
  job_events_seen_ = cp.job_events_seen;
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    Zone& zone = zones_[z];
    zone.shard->restore(cp.shards[z]);
    const ZoneHintCheckpoint& h = cp.hints[z];
    zone.hints_valid = h.hints_valid;
    zone.power = Watts{h.power};
    zone.capacity = Watts{h.capacity};
    zone.floored = h.floored;
    zone.ever_measured = h.ever_measured;
    // Worst-case caches are re-derived from the live node table, not
    // carried across a restart.
    zone.worst_case_valid = false;
  }
}

}  // namespace pcap::power
