#include "power/policies_change_based.hpp"

#include <algorithm>

namespace pcap::power {

// SelectionScratch::build prefills Ref::score with ΔP^t(J), so the
// change-based policies rank the refs directly.

std::vector<hw::NodeId> HighestRateOfIncrease::select(
    const PolicyContext& ctx) {
  scratch_.build(ctx);
  const auto& jobs = scratch_.refs();
  if (jobs.empty()) return {};
  const auto it =
      std::max_element(jobs.begin(), jobs.end(),
                       [](const SelectionScratch::Ref& a,
                          const SelectionScratch::Ref& b) {
                         return a.score < b.score;
                       });
  return scratch_.targets_of(*it);
}

std::vector<hw::NodeId> HighestRateOfIncreaseCollection::select(
    const PolicyContext& ctx) {
  return accumulate_collection(ctx, scratch_,
                               [](const SelectionScratch::Ref& a,
                                  const SelectionScratch::Ref& b) {
                                 return a.score > b.score;  // fastest first
                               });
}

}  // namespace pcap::power
