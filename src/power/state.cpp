#include "power/state.hpp"

#include <stdexcept>

namespace pcap::power {

const char* power_state_name(PowerState s) {
  switch (s) {
    case PowerState::kGreen:
      return "green";
    case PowerState::kYellow:
      return "yellow";
    case PowerState::kRed:
      return "red";
  }
  return "?";
}

PowerState classify_power(Watts p, Watts p_low, Watts p_high) {
  if (p_low > p_high) {
    throw std::invalid_argument("classify_power: P_L > P_H");
  }
  if (p < p_low) return PowerState::kGreen;
  if (p < p_high) return PowerState::kYellow;
  return PowerState::kRed;
}

}  // namespace pcap::power
