// System-power forecasting (ROADMAP "Predictive capping").
//
// Every reactive policy pays at least one cycle of overspend on a demand
// ramp: the meter has to cross P_L before Algorithm 1 reacts. A
// PowerPredictor turns the per-cycle facility meter stream into a
// forecast h control cycles ahead; the manager stamps that forecast into
// the PolicyContext and the forecast-driven policies (PI-C, PRED-C) act
// on it before the threshold is crossed.
//
// Both predictors are O(1) per observe(). The periodicity predictor
// defers all spectrum work to a refresh that runs on the threshold
// learner's t_p cadence — never on the per-cycle hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace pcap::power {

struct PredictionParams {
  /// Off by default: with prediction disabled the control plane is
  /// byte-for-byte what it was before the predictor existed.
  bool enabled = false;
  /// "ewma" — Holt double exponential smoothing (level + trend);
  /// "fft"  — windowed periodicity model (mean + trend + dominant
  ///          harmonic), refreshed off the hot path.
  std::string kind = "ewma";
  /// Forecast horizon h: the policies act on the power expected this many
  /// control cycles ahead.
  std::int64_t horizon_cycles = 5;
  double ewma_alpha = 0.25;  ///< level smoothing weight
  double ewma_beta = 0.08;   ///< trend smoothing weight
  /// Periodicity window W: the ring of recent meter readings the spectrum
  /// refresh analyses. Power of two not required (plain DFT bins).
  std::int64_t window_cycles = 256;
  /// Spectrum refresh period; 0 = the manager substitutes the threshold
  /// learner's adjust period (t_p), the cadence the ISSUE prescribes.
  std::int64_t refresh_cycles = 0;

  void validate() const;
};

/// Incremental one-step-ahead … h-step-ahead forecaster over the facility
/// meter stream. observe() is fed exactly one reading per live control
/// cycle (dead/outage cycles observe nothing, exactly like the threshold
/// learner), so forecasts depend only on the meter sequence — never on
/// worker counts or context mode.
class PowerPredictor {
 public:
  virtual ~PowerPredictor() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Feeds one control cycle's meter reading. O(1) amortised; any
  /// heavier model refresh must be scheduled on a t_p-style cadence.
  virtual void observe(Watts system_power) = 0;

  /// Forecast h cycles ahead. Returns nullopt until the model has seen
  /// enough samples to say anything (callers fall back to reactive
  /// behaviour). Never negative.
  [[nodiscard]] virtual std::optional<Watts> forecast(
      std::int64_t h) const = 0;

  /// Full model state as a flat double vector for warm restart; a
  /// restored predictor continues bit-identically. The layout is private
  /// to each implementation — restore_state() rejects a vector it did not
  /// produce.
  [[nodiscard]] virtual std::vector<double> checkpoint_state() const = 0;
  virtual void restore_state(const std::vector<double>& state) = 0;
};

using PredictorPtr = std::unique_ptr<PowerPredictor>;

/// Holt's double exponential smoothing: level l and trend b, forecast
/// l + h·b. Two multiplies per observe.
class EwmaTrendPredictor final : public PowerPredictor {
 public:
  EwmaTrendPredictor(double alpha, double beta);

  [[nodiscard]] std::string name() const override { return "ewma"; }
  void observe(Watts system_power) override;
  [[nodiscard]] std::optional<Watts> forecast(std::int64_t h) const override;
  [[nodiscard]] std::vector<double> checkpoint_state() const override;
  void restore_state(const std::vector<double>& state) override;

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::int64_t seen_ = 0;
};

/// Windowed periodicity model (flux-power-monitor's fft_predictor idea):
/// keep the last W meter readings in a ring, and on every refresh fit
/// mean + linear trend, then scan the DFT bins of the detrended residual
/// for the dominant period. forecast(h) extrapolates trend + harmonic.
/// observe() is a ring store; the O(W²) bin scan runs only in refresh(),
/// which the manager calls on the learner's t_p cadence.
class PeriodicityPredictor final : public PowerPredictor {
 public:
  PeriodicityPredictor(std::int64_t window, double ewma_alpha,
                       double ewma_beta);

  [[nodiscard]] std::string name() const override { return "fft"; }
  void observe(Watts system_power) override;
  [[nodiscard]] std::optional<Watts> forecast(std::int64_t h) const override;
  [[nodiscard]] std::vector<double> checkpoint_state() const override;
  void restore_state(const std::vector<double>& state) override;

  /// Refits mean/trend/dominant-harmonic from the current window. Called
  /// by the manager every refresh_cycles; cheap to call early (it no-ops
  /// until the window has filled once).
  void refresh();

  /// True once refresh() has produced a usable spectral model.
  [[nodiscard]] bool model_valid() const { return model_valid_; }

 private:
  std::int64_t window_;
  /// Until the first window fills (and between fills and refreshes), the
  /// harmonic model is not trustworthy; a Holt fallback keeps forecasts
  /// available from the second sample on.
  EwmaTrendPredictor fallback_;
  std::vector<double> ring_;
  std::int64_t next_ = 0;   ///< ring write cursor
  std::int64_t count_ = 0;  ///< samples observed (lifetime)
  // Fitted model, valid while model_valid_: x(t) ≈ mean + trend·(t - t0)
  // + amp·cos(2π(t - t0)/period + phase), t in observation counts.
  bool model_valid_ = false;
  double mean_ = 0.0;
  double trend_ = 0.0;
  double amp_ = 0.0;
  double phase_ = 0.0;
  double period_ = 0.0;
  std::int64_t fit_at_ = 0;  ///< count_ when the model was fitted
};

/// Builds the predictor named by params.kind ("ewma" | "fft"); throws
/// std::invalid_argument on an unknown kind.
PredictorPtr make_predictor(const PredictionParams& params);

/// Rolling forecast accuracy bookkeeping for the pcap_predictor_* series.
/// Each cycle the manager hands in the forecast just made for cycle t+h
/// and the power realised NOW; the scorer matches the realised value
/// against the forecast made h cycles ago and classifies threshold
/// calls: an overshoot is a false alarm (predicted ≥ P_L, realised
/// < P_L), a miss is a ramp the forecast did not see coming. Process-
/// scoped like the other observability counters — not checkpointed.
class ForecastScorer {
 public:
  void reset(std::int64_t horizon);

  struct Score {
    double abs_error = 0.0;
    bool overshoot = false;
    bool miss = false;
  };

  /// `realized` is this cycle's meter reading, `p_low` the current lower
  /// threshold, `forecast` the (possibly absent) forecast for h cycles
  /// from now. Returns the score of the forecast that targeted THIS
  /// cycle, once the pipeline is full.
  std::optional<Score> step(double realized, double p_low,
                            const std::optional<double>& forecast);

  [[nodiscard]] std::uint64_t overshoots() const { return overshoots_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t scored() const { return scored_; }

 private:
  std::vector<double> pending_;      ///< ring: forecast for cycle slot
  std::vector<std::uint8_t> valid_;  ///< ring: slot holds a real forecast
  std::int64_t horizon_ = 0;
  std::int64_t pos_ = 0;
  std::int64_t filled_ = 0;
  std::uint64_t overshoots_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t scored_ = 0;
};

}  // namespace pcap::power
