#include "power/policy_registry.hpp"

#include <stdexcept>

#include "common/string_util.hpp"
#include "power/policies_change_based.hpp"
#include "power/policies_state_based.hpp"
#include "power/policies_thermal.hpp"

namespace pcap::power {

PolicyPtr make_policy(const std::string& name) {
  return make_policy(name, PiTuning{});
}

PolicyPtr make_policy(const std::string& name, const PiTuning& pi) {
  const std::string n = common::to_lower(name);
  if (n == "mpc") return std::make_unique<MostPowerConsumingJob>();
  if (n == "mpc-c") return std::make_unique<MostPowerConsumingCollection>();
  if (n == "lpc") return std::make_unique<LeastPowerConsumingJob>();
  if (n == "lpc-c") return std::make_unique<LeastPowerConsumingCollection>();
  if (n == "bfp") return std::make_unique<BestFitJob>();
  if (n == "hri") return std::make_unique<HighestRateOfIncrease>();
  if (n == "hri-c") return std::make_unique<HighestRateOfIncreaseCollection>();
  if (n == "ht") return std::make_unique<HottestJob>();
  if (n == "ht-c") return std::make_unique<HottestJobCollection>();
  if (n == "pi-c") return std::make_unique<PiCollection>(pi);
  if (n == "pred-c") return std::make_unique<PredictiveCollection>();
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

std::vector<std::string> policy_names() {
  return {"mpc",  "mpc-c", "lpc", "lpc-c",  "bfp",   "hri",
          "hri-c", "ht",   "ht-c", "pi-c", "pred-c"};
}

}  // namespace pcap::power
