#include "power/thresholds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/logging.hpp"
#include "power/checkpoint.hpp"

namespace pcap::power {

ThresholdLearner::ThresholdLearner(ThresholdParams params)
    : params_(params), p_peak_(params.provision) {
  if (params_.provision <= Watts{0.0}) {
    throw std::invalid_argument("ThresholdLearner: provision must be > 0");
  }
  if (params_.red_margin < 0.0 || params_.yellow_margin < params_.red_margin ||
      params_.yellow_margin >= 1.0) {
    throw std::invalid_argument(
        "ThresholdLearner: margins must satisfy 0 <= red <= yellow < 1");
  }
  if (params_.training_cycles < 0 || params_.adjust_period_cycles <= 0) {
    throw std::invalid_argument("ThresholdLearner: bad cycle counts");
  }
  if (params_.freeze_at_provision) {
    frozen_ = true;
    params_.training_cycles = 0;  // no unmanaged training phase either
  }
}

void ThresholdLearner::observe(Watts system_power) {
  // A corrupt reading that slips past telemetry rejection must not poison
  // the peaks: a NaN would stick in every std::max from here on, and a
  // negative or infinite value would skew what adjust() adopts as P_peak
  // permanently. The cycle still happened, so the clocks advance — only
  // the peak learning skips the sample.
  if (!std::isfinite(system_power.value()) || system_power < Watts{0.0}) {
    ++rejected_observations_;
    PCAP_WARN("thresholds: rejected implausible power reading %g W",
              system_power.value());
  } else {
    running_peak_ = std::max(running_peak_, system_power);
    window_peak_ = std::max(window_peak_, system_power);
  }
  const bool was_training = training();
  ++cycles_;
  if (frozen_) return;
  if (was_training) {
    if (!training()) {
      // Training just completed: adopt the observed peak as P_peak.
      adjust();
      cycles_since_adjust_ = 0;
    }
    return;
  }
  ++cycles_since_adjust_;
  if (cycles_since_adjust_ >= params_.adjust_period_cycles) {
    adjust();
    cycles_since_adjust_ = 0;
  }
}

void ThresholdLearner::adjust() {
  // Adopt the peak observed since the previous adoption, then start a new
  // observation window. Adopting the all-time peak instead would let
  // P_peak only ever ratchet upward: one noisy spike during training and
  // the thresholds stay inflated for the rest of the run, capping too
  // late forever after.
  if (window_peak_ > Watts{0.0}) {
    p_peak_ = window_peak_;
    ++adjustments_;
  }
  window_peak_ = Watts{0.0};
}

Watts ThresholdLearner::p_low() const {
  return p_peak_ * (1.0 - params_.yellow_margin);
}

Watts ThresholdLearner::p_high() const {
  return p_peak_ * (1.0 - params_.red_margin);
}

void ThresholdLearner::set_manual_peak(Watts p_peak, bool freeze) {
  if (p_peak <= Watts{0.0}) {
    throw std::invalid_argument("ThresholdLearner: manual peak must be > 0");
  }
  p_peak_ = p_peak;
  frozen_ = freeze;
  // §III.A: a manually set peak takes effect immediately. Before this
  // latch, an override issued during the training period left training()
  // true, so capping stayed disabled (and the admin's value was silently
  // replaced by the observed peak) until all 86,400 training cycles
  // elapsed — the override appeared to be ignored for a day.
  training_done_ = true;
  // The override starts a fresh observation window. Without this, the next
  // adjust() would adopt a window_peak_ accumulated from samples observed
  // BEFORE the administrator intervened, silently undoing the manual value
  // one adjustment period later. Only readings taken after the override
  // may displace it, and they get a full t_p window to accumulate.
  window_peak_ = Watts{0.0};
  cycles_since_adjust_ = 0;
}

LearnerCheckpoint ThresholdLearner::checkpoint() const {
  LearnerCheckpoint cp;
  cp.p_peak = p_peak_.value();
  cp.running_peak = running_peak_.value();
  cp.window_peak = window_peak_.value();
  cp.cycles = cycles_;
  cp.cycles_since_adjust = cycles_since_adjust_;
  cp.adjustments = adjustments_;
  cp.frozen = frozen_;
  cp.training_done = training_done_;
  return cp;
}

void ThresholdLearner::restore(const LearnerCheckpoint& cp) {
  if (!(cp.p_peak > 0.0)) {
    throw std::invalid_argument(
        "ThresholdLearner::restore: checkpointed p_peak must be > 0");
  }
  p_peak_ = Watts{cp.p_peak};
  running_peak_ = Watts{cp.running_peak};
  window_peak_ = Watts{cp.window_peak};
  cycles_ = cp.cycles;
  cycles_since_adjust_ = cp.cycles_since_adjust;
  adjustments_ = cp.adjustments;
  frozen_ = cp.frozen;
  training_done_ = cp.training_done;
}

}  // namespace pcap::power
