// The hierarchical zone-sharded control plane (§II's facility→cluster
// provisioning hierarchy, generalised).
//
// The flat CappingManager runs one telemetry/context/selection sweep over
// the whole candidate set every non-green cycle. The zone tree partitions
// A_candidate into Z zones, gives each zone its own collector/reconciler/
// channel/engine shard (an unmodified CappingManager driven through its
// phase API), and keeps exactly one learner at the root:
//
//   root:  observe the facility meter, classify green/yellow/red against
//          the learned thresholds, compute the global deficit
//          D = max(0, P - P_L), and split it into per-zone shares
//          (uniform or usage-proportional over the zones that can still
//          shed). Zone power/capacity are folded in fixed zone order, so
//          the root's arithmetic is one serial reduction regardless of
//          how many workers ran the zone sweeps.
//   zones: collect + build context + select fully in parallel (disjoint
//          per-shard state; the shards themselves run serially inside a
//          zone task, so there is no nested pool use). Each shard's
//          engine sees synthetic thresholds that encode (global state,
//          zone share): green → (0,1,2) W, yellow with share s →
//          (s, 0, +inf) so ctx.required_saving() == s, red → (2,0,1) W.
//          Node-mutating steps (reboot/delivery processing, actuation)
//          run serially in fixed zone order.
//
// Quiescence: a zone that last built a CLEAN context (no stale/missing/
// fallback/rejected views, nothing pending, unresponsive or in flight)
// publishes trustworthy power/capacity hints. In yellow, a hinted zone
// with zero job-level shed capacity is skipped outright (the flat
// controller would build its context and select nothing); in red, a
// hinted zone whose every context node sits at the ladder floor is
// skipped (the flat red cycle would emit nothing for it). Skipped zones
// still tick their collector clock, still process reboots/deliveries,
// and still reset their green timer. Hints are invalidated by any global
// state change, any scheduler job start/finish, and any reboot in the
// zone; degraded telemetry never produces a clean build, so faulted
// zones simply stay fully active (the flat behaviour).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "obs/registry.hpp"
#include "power/manager.hpp"
#include "power/predictor.hpp"
#include "power/state.hpp"
#include "power/thresholds.hpp"

namespace pcap::power {

struct TreeCheckpoint;  // power/checkpoint.hpp

struct ZoneTreeParams {
  enum class Assignment : std::uint8_t {
    kBlock,   ///< contiguous id ranges (rack-shaped zones)
    kStride,  ///< round-robin (load-levelling zones)
  };
  enum class Redistribution : std::uint8_t {
    kUniform,       ///< D / |eligible zones|
    kProportional,  ///< D scaled by each zone's measured share of power
  };

  std::size_t zone_count = 4;
  Assignment assignment = Assignment::kBlock;
  Redistribution redistribution = Redistribution::kUniform;
};

/// Parses "block"/"stride" — throws std::invalid_argument otherwise.
ZoneTreeParams::Assignment parse_zone_assignment(const std::string& s);
/// Parses "uniform"/"proportional" — throws std::invalid_argument otherwise.
ZoneTreeParams::Redistribution parse_zone_redistribution(const std::string& s);

class ZoneTreeManager final : public PowerManagerBase {
 public:
  /// `shard_params` configures every zone shard (its thresholds sub-struct
  /// is inert — the root owns classification). `policy_factory` is
  /// invoked once per zone so each shard gets its own selection-policy
  /// state. Dynamic candidate selection (shard_params.selector) is not
  /// supported under zoning and throws.
  ZoneTreeManager(ZoneTreeParams params, CappingManagerParams shard_params,
                  std::function<PolicyPtr()> policy_factory, common::Rng rng);

  [[nodiscard]] std::string name() const override;

  /// Partitions `ids` into the configured zones and hands each shard its
  /// members. Ids are sorted and deduplicated first so the partition is a
  /// pure function of the id set.
  void set_candidate_set(const std::vector<hw::NodeId>& ids);

  ManagerReport cycle(Watts measured, std::vector<hw::Node>& nodes,
                      const sched::Scheduler& scheduler,
                      Seconds now) override;

  /// The pool fans out ACROSS zones; shards never see it (their internal
  /// sweeps stay serial inside one zone task, so no nested pool use).
  void set_thread_pool(common::ThreadPool* pool) override { pool_ = pool; }

  /// Root aggregate series are the same pcap_manager_*/pcap_telemetry_*/
  /// pcap_actuation_* schema the flat manager publishes (experiments read
  /// them by name); per-zone gauges/counters are added under zone="..."
  /// labels.
  void bind_metrics(obs::Registry& reg) override;

  /// Watchdog group z = zone z: each shard attaches under its zone index
  /// and the tree owns the grouping (refreshed on every repartition).
  void set_watchdog(hw::FailsafeWatchdog* wd) override;

  /// The tree's control-fault process (root blackouts + per-zone crash
  /// windows; the shards' own injectors are cleared at construction so
  /// every window is drawn here, from streams keyed by (seed, zone)).
  [[nodiscard]] const ControlFaultInjector& control_faults() const {
    return *ctrl_faults_;
  }
  /// Mutable access for drills: inject a forced outage window from a test
  /// or an operator console. Serial with cycle().
  [[nodiscard]] ControlFaultInjector& control_faults() { return *ctrl_faults_; }

  /// Captures/restores warm-restart state: root learner, per-shard
  /// learner/engine/reconciler/collector-clock, zone quiescence hints and
  /// the root dirty triggers. Restore into a tree with the same zone
  /// count AFTER set_candidate_set. See power/checkpoint.hpp.
  [[nodiscard]] TreeCheckpoint checkpoint() const;
  void restore(const TreeCheckpoint& cp);

  [[nodiscard]] std::size_t zone_count() const { return zones_.size(); }
  [[nodiscard]] const std::vector<hw::NodeId>& zone_members(
      std::size_t z) const {
    return zones_[z].members;
  }
  [[nodiscard]] const CappingManager& zone(std::size_t z) const {
    return *zones_[z].shard;
  }
  [[nodiscard]] const ThresholdLearner& thresholds() const {
    return learner_;
  }
  [[nodiscard]] ThresholdLearner& thresholds() { return learner_; }
  /// The root forecaster, or nullptr when shard_params.prediction is
  /// disabled. Prediction runs at the root only — the shards' params are
  /// cleared at construction, exactly like their control-fault injectors.
  [[nodiscard]] const PowerPredictor* predictor() const {
    return predictor_.get();
  }
  [[nodiscard]] std::optional<Watts> current_forecast() const {
    return forecast_;
  }
  [[nodiscard]] const ForecastScorer& forecast_scorer() const {
    return scorer_;
  }
  /// Green root cycles promoted to the yellow deficit-distribution path
  /// by a forecast (lifetime total).
  [[nodiscard]] std::uint64_t predictive_elevations() const {
    return predictive_elevations_;
  }
  [[nodiscard]] const ZoneTreeParams& params() const { return params_; }
  /// Zones that ran collect+context+select last cycle (quiescence probe).
  [[nodiscard]] std::size_t zones_active_last_cycle() const {
    return active_last_cycle_;
  }
  /// Last measured zone power / deficit share (valid after a cycle).
  [[nodiscard]] Watts zone_power(std::size_t z) const {
    return zones_[z].power;
  }
  [[nodiscard]] Watts zone_share(std::size_t z) const {
    return zones_[z].share;
  }

 private:
  struct Zone {
    std::unique_ptr<CappingManager> shard;
    std::vector<hw::NodeId> members;

    // Hints from the last clean context build (see header comment).
    bool hints_valid = false;
    Watts power{0.0};     ///< sum of context node power
    Watts capacity{0.0};  ///< sum of job-level one-step shed capacity
    bool floored = false; ///< every context node at the ladder floor
    /// Ever completed a context build? Gates orphan accounting: a downed
    /// zone with a measured history is accounted at last-known power, one
    /// that crashed before its first build at theoretical worst case.
    bool ever_measured = false;
    /// Σ members' theoretical max draw (lazy; invalidated on membership
    /// change) — the conservative stand-in for a never-measured orphan.
    Watts worst_case{0.0};
    bool worst_case_valid = false;

    // Per-cycle scratch.
    bool active = false;   ///< built context + selected this cycle
    bool collected = false;
    bool down = false;     ///< zone shard crashed this cycle
    Watts share{0.0};
    CycleDecision decision;
    ManagerReport report;  ///< per-zone health/selection fields
    std::size_t transitions = 0;

    // Per-zone registry handles (inert when no registry is bound).
    obs::GaugeHandle power_gauge, share_gauge;
    obs::CounterHandle active_cycles, targets_total;
  };

  void invalidate_hints();
  /// Re-derives the watchdog's group partition (group z = zone z members).
  void refresh_watchdog_groups();
  /// Root forecasting: model update on the facility meter, t_p spectrum
  /// refresh, fresh forecast, accuracy scoring, report stamps. No-op
  /// without a predictor; called on live root cycles only (a dead root
  /// reads no meter, so the predictor window freezes like the learner's).
  void predictor_phase(Watts measured, ManagerReport& report);

  ZoneTreeParams params_;
  ThresholdLearner learner_;  ///< the root's (only live) learner
  /// Root forecasting (shard_params.prediction). The predictor sees the
  /// facility meter on every live root cycle; forecast_ is this cycle's
  /// output, consumed by the deficit fold and the elevation gate.
  PredictionParams prediction_;
  PredictorPtr predictor_;
  ForecastScorer scorer_;
  std::optional<Watts> forecast_;
  /// Resolved spectrum refresh cadence (param value, or the root
  /// learner's t_p when configured 0); counts live observations.
  std::int64_t predictor_refresh_cycles_ = 0;
  std::int64_t predictor_observations_ = 0;
  std::uint64_t predictive_elevations_ = 0;
  std::vector<Zone> zones_;
  common::ThreadPool* pool_ = nullptr;
  ManagerMetrics metrics_;  ///< root aggregate series
  obs::Registry* reg_ = nullptr;
  /// Optional only for construction order: its "control" rng fork must
  /// come AFTER the per-zone forks (seed compatibility with PR 7 zone
  /// streams), so it is emplaced at the end of the constructor body.
  std::optional<ControlFaultInjector> ctrl_faults_;
  hw::FailsafeWatchdog* watchdog_ = nullptr;
  /// Safe-side inflation for a downed zone's accounted power — reuses the
  /// shards' stale_power_margin (both cover "we cannot see this anymore").
  double orphan_margin_ = 0.10;

  // Root dirty triggers.
  PowerState last_state_ = PowerState::kGreen;
  std::size_t job_events_seen_ = 0;
  std::size_t active_last_cycle_ = 0;
};

}  // namespace pcap::power
