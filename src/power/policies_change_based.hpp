// Change-based target set selection policies (§IV.B).
//
// These target the job(s) whose power consumption is *rising* fastest —
// the likely cause of entering the yellow state — rather than whoever
// currently burns the most:
//   HRI   — highest rate of increase ΔP^t(J) = (P^t(J)-P^{t-1}(J)) / P^{t-1}(J).
//   HRI-C — collection variant: descending ΔP^t(J) until the expected
//           saving covers P - P_L (the counterpart of MPC-C the paper
//           sketches at the end of §IV.B).
#pragma once

#include "power/policy.hpp"

namespace pcap::power {

class HighestRateOfIncrease final : public TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "hri"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override;

 private:
  SelectionScratch scratch_;
};

class HighestRateOfIncreaseCollection final : public TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "hri-c"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override;

 private:
  SelectionScratch scratch_;
};

}  // namespace pcap::power
