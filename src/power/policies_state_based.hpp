// State-based target set selection policies (§IV.A).
//
// These select by the *current* power consumption of jobs:
//   MPC   — the single most power consuming job.
//   MPC-C — Algorithm 2: greedily add jobs in descending power order until
//           the expected saving covers P - P_L.
//   LPC   — the least power consuming job.
//   LPC-C — ascending-order collection until the saving covers P - P_L.
//   BFP   — the job whose one-level saving is "just above" P - P_L.
#pragma once

#include "power/policy.hpp"

namespace pcap::power {

class MostPowerConsumingJob final : public TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "mpc"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override;

 private:
  SelectionScratch scratch_;
};

class MostPowerConsumingCollection final : public TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "mpc-c"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override;

 private:
  SelectionScratch scratch_;
};

class LeastPowerConsumingJob final : public TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "lpc"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override;

 private:
  SelectionScratch scratch_;
};

class LeastPowerConsumingCollection final : public TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "lpc-c"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override;

 private:
  SelectionScratch scratch_;
};

class BestFitJob final : public TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "bfp"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override;

 private:
  SelectionScratch scratch_;
};

}  // namespace pcap::power
