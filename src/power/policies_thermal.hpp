// Thermal-aware target selection (extension).
//
// The paper motivates ΔP×T as a proxy for accumulated thermal damage and
// cites Sarood & Kale's temperature-driven load balancing [5]; its §VI
// leaves further policies as future work. These extensions act on the
// agents' board-temperature sensors directly:
//
//   HT    — hottest job: throttle the job whose candidate nodes have the
//           highest mean temperature.
//   HT-C  — collection variant: hottest jobs first until the expected
//           power saving covers P - P_L (Algorithm 2's skeleton).
//
// Rationale: the node most likely to trip thermal protection — and the
// one whose leakage is inflating system power — is the hottest one, not
// necessarily the one drawing the most instantaneous power.
#pragma once

#include "power/policy.hpp"

namespace pcap::power {

class HottestJob final : public TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "ht"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override;
  [[nodiscard]] bool temperature_sensitive() const override { return true; }

 private:
  SelectionScratch scratch_;
};

class HottestJobCollection final : public TargetSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "ht-c"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override;
  [[nodiscard]] bool temperature_sensitive() const override { return true; }

 private:
  SelectionScratch scratch_;
};

/// Mean board temperature over a job's candidate nodes (degrees C);
/// 0 for an empty node list.
double mean_job_temperature(const PolicyContext& ctx, const JobView& job);

}  // namespace pcap::power
