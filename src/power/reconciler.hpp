// Manager-side actuation reconciliation: closing the loop around an
// actuator that lies.
//
// With a lossy command channel the manager can no longer assume a sent
// LevelCommand happened. The reconciler keeps a believed-level shadow
// table per node and treats the next cycles' telemetry as the ack stream:
//
//   sent command  -> pending{target, issued_cycle, retry budget}
//   fresh sample showing the target level, taken after the command was
//     issued                      -> ack (believed := observed)
//   no ack by the backoff horizon -> retry, with capped exponential
//     backoff, up to max_retries
//   retry budget exhausted        -> abandon: the node is marked
//     unresponsive, dropped from the candidate context (and therefore
//     from A_degraded and target selection) with a counted warning
//   fresh sample from an unresponsive node -> readmit: believed adopts
//     the observed level — we give up on our old intent and accept the
//     node's actual state
//   fresh sample disagreeing with believed, with nothing pending
//     (reboot reset, partial transition, operator intervention)
//                                 -> divergence: emit a healing command
//     back to the believed level and track it like any other command
//
// Safe-side power accounting lives in the manager's context build, keyed
// off this table: an unacked throttle claims zero savings until its ack
// arrives; an unacked restore is assumed already applied when computing
// headroom. Both errors overestimate draw — capping stays conservative.
//
// The reconciler is plain serial state driven from the manager's control
// cycle; determinism falls out of every sweep running in ascending
// node-id order.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/node.hpp"
#include "power/capping.hpp"

namespace pcap::power {

struct ReconcilerCheckpoint;  // power/checkpoint.hpp

struct ReconcilerParams {
  /// A command unacked past its backoff horizon is re-sent at most this
  /// many times before the node is declared unresponsive.
  int max_retries = 5;
  /// First retry fires this many control cycles after issue; each further
  /// retry doubles the wait. Keep this above the telemetry ack latency
  /// (actuation delay + one collection cycle) or healthy-but-slow acks
  /// get needlessly re-sent.
  int retry_backoff_base_cycles = 2;
  /// Ceiling on the doubled backoff, in cycles.
  int retry_backoff_cap_cycles = 16;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

class ActuationReconciler {
 public:
  /// Everything one control cycle's reconciliation produced: commands to
  /// (re-)send and tallies for the manager's report.
  struct CycleWork {
    std::vector<LevelCommand> commands;  ///< heals + retries + admitted
    std::size_t acks = 0;
    std::size_t retries = 0;
    std::size_t divergences = 0;
    std::size_t heals = 0;
    std::size_t abandoned = 0;
    std::size_t suppressed = 0;  ///< commands dropped: node unresponsive
    std::size_t readmitted = 0;
    /// Watchdog-changed levels adopted as reality this cycle (node, the
    /// level it was observed at). The manager feeds these into
    /// CappingEngine::adopt_degraded so steady-green restores them.
    std::vector<LevelCommand> adopted_nodes;
    void clear();
  };

  explicit ActuationReconciler(ReconcilerParams params);

  /// Feeds one node's freshest plausible telemetry into the ack/divergence
  /// machinery. `sample_cycle` is the collection cycle the sample was
  /// taken in (acks require it strictly newer than the command's issue
  /// cycle — a sample taken before the command left cannot confirm it);
  /// observations not strictly newer than what the table has already seen
  /// for this node are ignored (a re-surfaced old sample must not fake a
  /// divergence). `now_cycle` stamps any healing command this observation
  /// triggers. Call only with fresh (non-stale) views — acking against
  /// ancient data would confirm commands that never landed.
  void observe_node(hw::NodeId id, hw::Level observed,
                    std::uint64_t sample_cycle, std::uint64_t now_cycle,
                    CycleWork& work);

  /// Adopts a node's observed level as the new believed truth — the
  /// failsafe watchdog changed it during a controller outage, so the
  /// divergence machinery must NOT heal it back up. Unlike a readmission,
  /// adoption also cancels any pending command (the watchdog stomped
  /// whatever the old intent was; retrying it later would raise a node
  /// the failsafe deliberately lowered) and clears unresponsive state.
  /// The adopted (node, level) is appended to `work.adopted_nodes`.
  void adopt_reality(hw::NodeId id, hw::Level observed,
                     std::uint64_t sample_cycle, CycleWork& work);

  /// After all observations for the cycle: emits due retries into
  /// `work.commands` and abandons commands whose retry budget ran out.
  void finish_observation(std::uint64_t cycle, CycleWork& work);

  /// Filters and registers this cycle's newly decided commands, appending
  /// the accepted ones to `work.commands`. Commands to unresponsive nodes
  /// are dropped (counted as suppressed); a command repeating an already-
  /// pending target is dropped too (the retry machinery owns it); a
  /// command superseding a pending one with a different target replaces
  /// it and resets the retry budget.
  void admit(const std::vector<LevelCommand>& decided, std::uint64_t cycle,
             CycleWork& work);

  /// Unacked command outstanding for this node?
  [[nodiscard]] bool in_flight(hw::NodeId id) const {
    const Slot* s = find_slot(id);
    return s != nullptr && s->has_pending;
  }
  /// Target level of the outstanding command, if any.
  [[nodiscard]] std::optional<hw::Level> pending_target(hw::NodeId id) const;
  /// Last confirmed level, or `fallback` if the node was never observed.
  [[nodiscard]] hw::Level believed(hw::NodeId id, hw::Level fallback) const;
  [[nodiscard]] bool unresponsive(hw::NodeId id) const {
    const Slot* s = find_slot(id);
    return s != nullptr && s->unresponsive;
  }

  [[nodiscard]] std::size_t pending_count() const { return pending_count_; }
  [[nodiscard]] std::size_t unresponsive_count() const {
    return unresponsive_count_;
  }

  /// Appends (ascending id order) every node the reconciler is actively
  /// watching the sample stream for: pending-ack and unresponsive slots.
  /// These nodes must be sampled and folded every cycle no matter what
  /// telemetry dedup thinks — acks, readmissions and retry deadlines are
  /// driven by the stream itself, not by content changes.
  void collect_watch(std::vector<hw::NodeId>& out) const;

  // Cumulative counters over the reconciler's lifetime.
  [[nodiscard]] std::uint64_t total_acks() const { return acks_; }
  [[nodiscard]] std::uint64_t total_retries() const { return retries_; }
  [[nodiscard]] std::uint64_t total_divergences() const {
    return divergences_;
  }
  [[nodiscard]] std::uint64_t total_heals() const { return heals_; }
  [[nodiscard]] std::uint64_t total_abandoned() const { return abandoned_; }
  [[nodiscard]] std::uint64_t total_suppressed() const { return suppressed_; }
  [[nodiscard]] std::uint64_t total_readmitted() const { return readmitted_; }
  [[nodiscard]] std::uint64_t total_adopted() const { return adopted_; }

  [[nodiscard]] const ReconcilerParams& params() const { return params_; }

  /// Captures the shadow tables for warm restart (non-empty slots only).
  /// Lifetime counters are process-scoped and not part of the image.
  [[nodiscard]] ReconcilerCheckpoint checkpoint() const;
  /// Rebuilds the shadow tables from a checkpoint; pending/unresponsive
  /// counts are recomputed from the restored slots.
  void restore(const ReconcilerCheckpoint& cp);

 private:
  /// Per-node reconciliation state, indexed directly by node id. The
  /// observe path runs once per candidate per non-green cycle, so probes
  /// must be O(1) array hits, not tree walks: node ids are dense in this
  /// tree (the node table, the collector's slot array and the policy
  /// context's node index all assume it), and a slot is ~48 bytes, so the
  /// whole table stays resident for even very large machines.
  struct Slot {
    hw::Level pending_target = 0;            ///< valid iff has_pending
    std::uint64_t issued_cycle = 0;          ///< valid iff has_pending
    std::uint64_t next_retry_cycle = 0;      ///< valid iff has_pending
    int pending_retries = 0;                 ///< valid iff has_pending
    hw::Level believed_level = 0;            ///< valid iff has_believed
    std::uint64_t observed_cycle = 0;        ///< valid iff has_believed
    bool has_pending = false;
    bool has_believed = false;
    bool unresponsive = false;
  };

  /// Grows the table to cover `id` (new slots are empty) and returns its
  /// slot. State therefore persists across candidate-set churn, exactly
  /// as the old ordered-map tables did.
  Slot& slot(hw::NodeId id);
  [[nodiscard]] const Slot* find_slot(hw::NodeId id) const {
    const auto idx = static_cast<std::size_t>(id);
    return idx < slots_.size() ? &slots_[idx] : nullptr;
  }

  void register_pending(hw::NodeId id, hw::Level target,
                        std::uint64_t cycle);
  void register_pending(Slot& s, hw::Level target, std::uint64_t cycle);
  [[nodiscard]] std::uint64_t backoff(int retries) const;

  ReconcilerParams params_;
  // Every sweep over the table runs in ascending node-id order — the same
  // order the old ordered-map iteration produced — which keeps emitted
  // command order, and therefore whole runs, deterministic.
  std::vector<Slot> slots_;
  std::size_t pending_count_ = 0;
  std::size_t unresponsive_count_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t divergences_ = 0;
  std::uint64_t heals_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t readmitted_ = 0;
  std::uint64_t adopted_ = 0;
};

}  // namespace pcap::power
