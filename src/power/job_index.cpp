#include "power/job_index.hpp"

#include <algorithm>
#include <utility>

namespace pcap::power {

void JobIndex::set_candidate_set(const std::vector<hw::NodeId>& candidates) {
  std::fill(is_candidate_.begin(), is_candidate_.end(),
            static_cast<unsigned char>(0));
  for (const hw::NodeId id : candidates) {
    if (static_cast<std::size_t>(id) >= is_candidate_.size()) {
      is_candidate_.resize(static_cast<std::size_t>(id) + 1, 0);
    }
    is_candidate_[id] = 1;
  }
  filter_dirty_ = true;
}

void JobIndex::refilter(Entry& entry) const {
  entry.candidate_nodes.clear();
  for (const hw::NodeId id : entry.nodes) {
    if (is_candidate(id)) entry.candidate_nodes.push_back(id);
  }
}

void JobIndex::sync(const sched::Scheduler& scheduler) {
  if (filter_dirty_) {
    for (Entry& entry : entries_) refilter(entry);
    filter_dirty_ = false;
    ++change_epoch_;
  }
  const std::vector<sched::JobEvent>& events = scheduler.job_events();
  if (event_cursor_ < events.size()) ++change_epoch_;
  for (; event_cursor_ < events.size(); ++event_cursor_) {
    const sched::JobEvent& ev = events[event_cursor_];
    if (ev.kind == sched::JobEvent::Kind::kStarted) {
      const workload::Job* job = scheduler.find(ev.id);
      if (job == nullptr) continue;  // scheduler never drops a known job
      Entry entry;
      if (!spare_.empty()) {
        entry = std::move(spare_.back());
        spare_.pop_back();
      }
      entry.id = ev.id;
      entry.nodes.assign(job->nodes().begin(), job->nodes().end());
      refilter(entry);
      entries_.push_back(std::move(entry));
    } else {
      const auto it =
          std::find_if(entries_.begin(), entries_.end(),
                       [&ev](const Entry& e) { return e.id == ev.id; });
      if (it == entries_.end()) continue;
      spare_.push_back(std::move(*it));
      entries_.erase(it);  // order-preserving, mirrors running_.erase
    }
  }
}

}  // namespace pcap::power
