// Target set selection policy interface (§IV).
//
// Each control cycle in the yellow state, a policy picks the subset of
// candidate nodes to degrade by one level. Policies see the world through
// PolicyContext — per-node and per-job aggregates derived from telemetry —
// never the hardware directly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "hw/dvfs.hpp"
#include "hw/node.hpp"
#include "workload/job.hpp"

namespace pcap::power {

/// A candidate node as the policy layer sees it.
struct NodeView {
  hw::NodeId id = 0;
  hw::Level level = 0;
  hw::Level highest_level = 0;  ///< top of this node's ladder
  bool at_lowest = false;  ///< cannot be degraded further
  bool busy = false;       ///< idle nodes must not be targeted (§III.B-4)
  /// The freshest usable sample exceeded the manager's age bound: `power`
  /// is a conservative fallback estimate, not a live reading. Stale nodes
  /// still count towards job power (inflated, so thresholds stay safe)
  /// but must not be selected as throttle targets — the command would act
  /// on a state the manager cannot see.
  bool stale = false;
  /// An actuation command for this node is still unacknowledged: its true
  /// level is in limbo between the telemetry reading and the commanded
  /// target. In-flight nodes keep contributing power (accounted on the
  /// safe side by the manager) but must not be selected again — stacking
  /// a second command on an unconfirmed first acts on a guessed state.
  bool command_in_flight = false;
  /// power_prev holds a real previous-cycle sample (a node can
  /// legitimately read 0.0 W, so the value alone cannot signal absence).
  bool has_prev = false;
  Watts power{0.0};        ///< P(x): formula-(1) estimate, current cycle
  Watts power_prev{0.0};   ///< P^{t-1}(x): previous cycle (0 if unknown)
  Watts power_one_level_down{0.0};  ///< P'(x): estimate at level-1
  Celsius temperature{0.0};  ///< board sensor (thermal-aware extension)
};

/// A job restricted to its candidate, non-idle nodes (Nodes(J) in §IV.A).
struct JobView {
  workload::JobId id = 0;
  std::vector<hw::NodeId> nodes;  ///< candidate nodes running this job
  /// The subset of `nodes` that is currently throttleable (busy, above the
  /// floor, fresh, no command in flight), in `nodes` order — the exact
  /// sequence saving_one_level was accumulated over. Filled by the
  /// manager's job pass (ctx.jobs_have_throttleable is then true), so
  /// SelectionScratch::build copies a range instead of re-probing every
  /// node of every job each yellow cycle.
  std::vector<hw::NodeId> throttleable;
  Watts power{0.0};               ///< P(J) = sum of P(x) over nodes
  Watts power_prev{0.0};          ///< P^{t-1}(J)
  Watts saving_one_level{0.0};    ///< sum of P(x)-P'(x) over throttleable nodes

  /// ΔP^t(J): relative rate of increase (§IV.B); 0 when no history.
  [[nodiscard]] double rate_of_increase() const {
    if (power_prev <= Watts{0.0}) return 0.0;
    return (power - power_prev) / power_prev;
  }
};

struct PolicyContext {
  Watts system_power{0.0};  ///< P: the meter reading this cycle
  Watts p_low{0.0};         ///< P_L (MPC-C/LPC-C/BFP need P - P_L)
  /// Predicted system power h control cycles ahead, stamped by a manager
  /// running a PowerPredictor. Valid only while has_forecast is true;
  /// forecast-driven policies (PI-C, PRED-C) fall back to system_power
  /// otherwise, so they stay usable in managers without a predictor.
  Watts forecast_power{0.0};
  bool has_forecast = false;
  std::vector<NodeView> nodes;
  std::vector<JobView> jobs;
  /// True when every JobView's `throttleable` list is maintained (the
  /// manager's builder does this); hand-built contexts leave it false and
  /// SelectionScratch::build falls back to probing ctx.node() per node.
  bool jobs_have_throttleable = false;

  // Telemetry-health tallies for the cycle this context was built from —
  // the manager copies them into its report so experiments can quantify
  // how much of the candidate set the controller was actually seeing.
  std::size_t stale_nodes = 0;      ///< views older than the age bound
  std::size_t missing_nodes = 0;    ///< candidates with no usable sample
  std::size_t fallback_nodes = 0;   ///< views on a substituted estimate
  std::size_t rejected_samples = 0; ///< implausible samples discarded
  /// Candidates excluded because their actuation retry budget ran out and
  /// no fresh telemetry has readmitted them yet.
  std::size_t unresponsive_nodes = 0;

  /// Power the system must shed to re-enter green: max(0, P - P_L).
  [[nodiscard]] Watts required_saving() const;
  /// Lookup table id -> index into nodes (built lazily by callers that
  /// need it); provided here so every policy does not rebuild it.
  [[nodiscard]] const NodeView* node(hw::NodeId id) const;
  void index_nodes();  ///< must be called after filling `nodes`

 private:
  /// Flat id -> index table (node ids are dense small integers). Sized to
  /// the largest candidate id; rebuilt each cycle without allocating once
  /// it has grown to the working-set size.
  static constexpr std::uint32_t kNoIndex = 0xffffffffu;
  std::vector<std::uint32_t> node_index_;
};

/// Reusable, policy-owned working storage for select(). Every selection
/// policy starts the same way — find the jobs that still have at least
/// one throttleable node, with those nodes and their one-level saving —
/// and most then deduplicate nodes across the chosen jobs (the
/// Nodes(J_i) - A term of Algorithm 2). Doing that with per-call vectors
/// and a hash set allocated every yellow cycle; this scratch keeps one
/// flat node buffer (each job's throttleable nodes as a contiguous
/// range), one ref table, and an epoch-stamped visited array, all of
/// which reach a steady size and then never touch the allocator again.
class SelectionScratch {
 public:
  struct Ref {
    const JobView* job = nullptr;
    std::uint32_t begin = 0;  ///< node range [begin, end) into node_buf()
    std::uint32_t end = 0;
    Watts saving{0.0};   ///< Σ P(x) - P'(x) over the range
    /// Ranking key: ΔP^t(J) after build(); a policy whose order is not
    /// rate-based overwrites it (e.g. mean temperature) before sorting.
    double score = 0.0;
  };

  /// Rebuilds refs()/node_buf() from the context: one Ref per job with at
  /// least one throttleable node, in ctx.jobs order; savings accumulate
  /// in node order, exactly as the per-call version did.
  void build(const PolicyContext& ctx);

  /// Mutable so collection policies can stable_sort the refs in place.
  [[nodiscard]] std::vector<Ref>& refs() { return refs_; }
  [[nodiscard]] const std::vector<hw::NodeId>& node_buf() const {
    return node_buf_;
  }

  /// Copies a ref's node range into a fresh result vector (select()
  /// returns ownership; everything up to that point stays in scratch).
  [[nodiscard]] std::vector<hw::NodeId> targets_of(const Ref& ref) const {
    return {node_buf_.begin() + ref.begin, node_buf_.begin() + ref.end};
  }

  /// Starts a new dedup round: after it, visit(id) returns true exactly
  /// once per id. Epoch stamps make this O(1) — no per-round clearing.
  void begin_visit() { ++epoch_; }
  bool visit(hw::NodeId id) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= seen_.size()) seen_.resize(idx + 1, 0);
    if (seen_[idx] == epoch_) return false;
    seen_[idx] = epoch_;
    return true;
  }

 private:
  std::vector<Ref> refs_;
  std::vector<hw::NodeId> node_buf_;
  /// seen_[id] == epoch_ means id was visited this round. A uint64 epoch
  /// never wraps, so stale stamps from old rounds are always distinct.
  std::vector<std::uint64_t> seen_;
  std::uint64_t epoch_ = 0;
};

class TargetSelectionPolicy {
 public:
  virtual ~TargetSelectionPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Returns ids of nodes to degrade by one level. Implementations must
  /// only return busy candidate nodes that are not already at the lowest
  /// level (a "valid target set selection policy" per §III.B), and must
  /// not return duplicates.
  virtual std::vector<hw::NodeId> select(const PolicyContext& ctx) = 0;

  /// Does this policy read NodeView::temperature? Drives whether the
  /// telemetry layer's change tracking (and dedup) must treat a pure
  /// temperature drift as a content change — for every other policy that
  /// would dirty each busy node every cycle for a field nothing reads.
  [[nodiscard]] virtual bool temperature_sensitive() const { return false; }

  /// Does this policy act on PolicyContext::forecast_power? Gates the
  /// engine's predictive elevation (a green cycle promoted to the yellow
  /// path because the forecast crosses P_L): elevating a reactive
  /// collection policy would hand it required_saving() == 0 and it would
  /// still grab its first whole job — throttling with nothing to save.
  [[nodiscard]] virtual bool forecast_driven() const { return false; }

  /// Internal controller state (e.g. a PI integral) as a flat double
  /// vector for warm restart; stateless policies return {}. A restored
  /// policy must continue bit-identically.
  [[nodiscard]] virtual std::vector<double> checkpoint_state() const {
    return {};
  }
  virtual void restore_state(const std::vector<double>& state) {
    (void)state;
  }
};

using PolicyPtr = std::unique_ptr<TargetSelectionPolicy>;

/// Filters a job's node list down to throttleable ones (busy, not at the
/// lowest level, acting on fresh telemetry). Shared by every policy
/// implementation; the capping engine additionally re-checks whatever a
/// policy returns, so a policy that bypasses this filter degrades to
/// skipped targets rather than wrong actuation.
std::vector<hw::NodeId> throttleable_nodes(const PolicyContext& ctx,
                                           const JobView& job);

/// Algorithm 2's accumulation loop with an explicit saving goal: rebuild
/// the scratch from ctx, order the refs by `cmp` (stable, so ties keep
/// job order), then take whole jobs in that order — deduplicating nodes
/// shared between them — until the accumulated saving covers `needed`.
/// A non-positive goal selects nothing (predictive policies legitimately
/// compute a zero or negative demand; reactive callers never pass one
/// because required_saving() > 0 whenever the engine is in yellow).
template <typename Compare>
std::vector<hw::NodeId> accumulate_watts(const PolicyContext& ctx,
                                         SelectionScratch& scratch,
                                         Compare cmp, Watts needed) {
  if (needed <= Watts{0.0}) return {};
  scratch.build(ctx);
  std::vector<SelectionScratch::Ref>& jobs = scratch.refs();
  if (jobs.empty()) return {};
  std::stable_sort(jobs.begin(), jobs.end(), cmp);

  std::vector<hw::NodeId> targets;
  scratch.begin_visit();
  Watts saved{0.0};
  for (const SelectionScratch::Ref& tj : jobs) {
    for (std::uint32_t i = tj.begin; i < tj.end; ++i) {
      const hw::NodeId id = scratch.node_buf()[i];
      if (!scratch.visit(id)) continue;  // Nodes(J_i) - A
      targets.push_back(id);
      const NodeView* nv = ctx.node(id);
      saved += nv->power - nv->power_one_level_down;
    }
    if (saved >= needed) break;  // "if Saved >= P - P_L then exit"
  }
  return targets;
}

/// Algorithm 2's shared skeleton (used by MPC-C, LPC-C, HRI-C, HT-C):
/// accumulate until the saving covers required_saving() = max(0, P-P_L).
/// Keeps the historical behaviour of selecting the first job even when
/// required_saving() is 0 (the engine only calls policies in yellow,
/// where P >= P_L makes that unreachable, but zone shards drive shares
/// through this path and rely on the >= comparison semantics).
template <typename Compare>
std::vector<hw::NodeId> accumulate_collection(const PolicyContext& ctx,
                                              SelectionScratch& scratch,
                                              Compare cmp) {
  scratch.build(ctx);
  std::vector<SelectionScratch::Ref>& jobs = scratch.refs();
  if (jobs.empty()) return {};
  std::stable_sort(jobs.begin(), jobs.end(), cmp);

  const Watts needed = ctx.required_saving();
  std::vector<hw::NodeId> targets;
  scratch.begin_visit();
  Watts saved{0.0};
  for (const SelectionScratch::Ref& tj : jobs) {
    for (std::uint32_t i = tj.begin; i < tj.end; ++i) {
      const hw::NodeId id = scratch.node_buf()[i];
      if (!scratch.visit(id)) continue;  // Nodes(J_i) - A
      targets.push_back(id);
      const NodeView* nv = ctx.node(id);
      saved += nv->power - nv->power_one_level_down;
    }
    if (saved >= needed) break;  // "if Saved >= P - P_L then exit"
  }
  return targets;
}

}  // namespace pcap::power
