// Name -> policy factory.
#pragma once

#include <string>
#include <vector>

#include "power/policies_predictive.hpp"
#include "power/policy.hpp"

namespace pcap::power {

/// Instantiates a policy by (case-insensitive) name: "mpc", "mpc-c",
/// "lpc", "lpc-c", "bfp", "hri", "hri-c", "ht", "ht-c", "pi-c",
/// "pred-c". Throws std::invalid_argument for unknown names.
PolicyPtr make_policy(const std::string& name);

/// Same, but routes PI gains into "pi-c" (other names ignore `pi`).
PolicyPtr make_policy(const std::string& name, const PiTuning& pi);

/// All registered policy names, stable order.
std::vector<std::string> policy_names();

}  // namespace pcap::power
