// Name -> policy factory.
#pragma once

#include <string>
#include <vector>

#include "power/policy.hpp"

namespace pcap::power {

/// Instantiates a policy by (case-insensitive) name: "mpc", "mpc-c",
/// "lpc", "lpc-c", "bfp", "hri", "hri-c". Throws std::invalid_argument
/// for unknown names.
PolicyPtr make_policy(const std::string& name);

/// All registered policy names, stable order.
std::vector<std::string> policy_names();

}  // namespace pcap::power
