// Candidate set selection (§III.A algorithm (c)).
//
// The paper configures A_candidate manually but notes it is "adjusted
// during the execution of the system according to the impact of the
// nodes' performance on system's performance as well as the existence of
// power management facility on the hardware" (details omitted there for
// space). This module implements that adjustment:
//
//   A_candidate = { controllable nodes }
//               - { nodes running privileged jobs }        (optional)
//               , truncated to at most max_candidates      (cost control)
//
// Re-selection runs every `reselect_period_cycles` control cycles, since
// the privileged job population changes as jobs start and finish.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/node.hpp"
#include "sched/scheduler.hpp"

namespace pcap::power {

struct CandidateSelectorParams {
  /// Upper bound on |A_candidate| (<= 0: unbounded). Figure 5/6 show why
  /// a deployment bounds this: management cost grows super-linearly.
  int max_candidates = -1;
  /// Exclude nodes currently running privileged jobs (§II.A).
  bool exclude_privileged = true;
  /// Control cycles between re-selections.
  std::int64_t reselect_period_cycles = 60;
};

class CandidateSelector {
 public:
  explicit CandidateSelector(CandidateSelectorParams params);

  [[nodiscard]] const CandidateSelectorParams& params() const {
    return params_;
  }

  /// Computes A_candidate for the current cluster state. Deterministic:
  /// lowest node ids win when truncating.
  [[nodiscard]] std::vector<hw::NodeId> select(
      const std::vector<hw::Node>& nodes,
      const sched::Scheduler& scheduler) const;

  /// Cycle-counting helper: true when a re-selection is due. Advances the
  /// internal counter.
  bool due();

 private:
  CandidateSelectorParams params_;
  std::int64_t cycles_since_selection_ = 0;
  bool ever_selected_ = false;
};

}  // namespace pcap::power
