#!/usr/bin/env python3
"""Bench smoke gate: fail CI when a recorded benchmark regresses.

Runs a --json benchmark (bench_control_cycle, bench_micro_tick) at the
reference size a few times, takes the best pass per metric (single-run
numbers are noisy on shared runners), and compares against the
`ci_reference` block of the recorded reference JSON
(BENCH_control_cycle.json, BENCH_tick.json). Any metric falling more than
the tolerance below its recorded value fails the job.

Usage: check_bench_regression.py <bench-binary> [reference-json] [block]

`block` picks the reference block inside the JSON (default `ci_reference`);
e.g. `ci_reference_drain` gates the `--drain` episode speedups. A block may
carry an `args` list (extra bench flags inserted before the size argument).
All gated metrics are higher-is-better: record rates/speedups, never
milliseconds.

A/B mode gates the observability instrumentation instead of a recorded
reference: the same benchmark runs once per variant flag and the first
variant (instrumentation on) must stay within the tolerance of the second
(off). Best-of-RUNS per variant, same noise reasoning as above.

Usage: check_bench_regression.py --ab <bench-binary> [size] [tolerance]
    e.g. check_bench_regression.py --ab build/bench/bench_micro_tick 1024 0.10
"""

import json
import pathlib
import subprocess
import sys

RUNS = 3
TOLERANCE = 0.30  # fail on >30 % regression vs the recorded reference
AB_TOLERANCE = 0.10  # on-vs-off gate; generous for shared-runner noise


def best_of(bench: str, size: int, runs: int, extra_args=()) -> dict:
    best: dict = {}
    for i in range(runs):
        out = subprocess.run(
            [bench, "--json", *extra_args, str(size)],
            check=True, capture_output=True, text=True,
        ).stdout
        for case in json.loads(out):
            if case.get("nodes") != size:
                continue
            for key, value in case.items():
                if key == "nodes":
                    continue
                best[key] = max(best.get(key, 0.0), float(value))
        print(f"pass {i + 1}/{runs}: best so far "
              f"{json.dumps(best, sort_keys=True)}", flush=True)
    return best


def check_ab(argv) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    bench = argv[0]
    size = int(argv[1]) if len(argv) > 1 else 1024
    tolerance = float(argv[2]) if len(argv) > 2 else AB_TOLERANCE

    print(f"== instrumentation ON (--obs=on), {size} nodes ==", flush=True)
    on = best_of(bench, size, RUNS, extra_args=("--obs=on",))
    print(f"== instrumentation OFF (--obs=off), {size} nodes ==", flush=True)
    off = best_of(bench, size, RUNS, extra_args=("--obs=off",))

    failed = False
    for key, off_value in sorted(off.items()):
        on_value = on.get(key)
        if on_value is None:
            print(f"FAIL {key}: metric missing from --obs=on output")
            failed = True
            continue
        floor = (1.0 - tolerance) * off_value
        overhead = (1.0 - on_value / off_value) * 100.0 if off_value else 0.0
        verdict = "ok" if on_value >= floor else "FAIL"
        print(f"{verdict} {key}: on {on_value:.2f} vs off {off_value:.2f} "
              f"({overhead:+.2f}% overhead, floor {floor:.2f})")
        failed |= on_value < floor
    return 1 if failed else 0


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--ab":
        return check_ab(sys.argv[2:])
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    bench = sys.argv[1]
    ref_path = pathlib.Path(
        sys.argv[2] if len(sys.argv) > 2 else "BENCH_control_cycle.json")

    block = sys.argv[3] if len(sys.argv) > 3 else "ci_reference"

    reference = json.loads(ref_path.read_text())[block]
    size = reference["nodes"]
    metrics = reference["metrics"]
    extra_args = tuple(reference.get("args", ()))

    measured = best_of(bench, size, RUNS, extra_args=extra_args)

    failed = False
    for key, ref_value in metrics.items():
        got = measured.get(key)
        if got is None:
            print(f"FAIL {key}: metric missing from bench output")
            failed = True
            continue
        floor = (1.0 - TOLERANCE) * ref_value
        verdict = "ok" if got >= floor else "FAIL"
        print(f"{verdict} {key}: measured {got:.2f} vs recorded "
              f"{ref_value:.2f} (floor {floor:.2f})")
        failed |= got < floor
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
