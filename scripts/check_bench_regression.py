#!/usr/bin/env python3
"""Bench smoke gate: fail CI when the control-cycle benchmark regresses.

Runs bench_control_cycle --json at the reference size a few times, takes
the best pass per metric (single-run numbers are noisy on shared runners),
and compares against the figures recorded in BENCH_control_cycle.json.
Any metric falling more than the tolerance below its recorded value fails
the job.

Usage: check_bench_regression.py <bench-binary> [reference-json]
"""

import json
import pathlib
import subprocess
import sys

RUNS = 3
TOLERANCE = 0.30  # fail on >30 % regression vs the recorded reference


def best_of(bench: str, size: int, runs: int) -> dict:
    best: dict = {}
    for i in range(runs):
        out = subprocess.run(
            [bench, "--json", str(size)],
            check=True, capture_output=True, text=True,
        ).stdout
        for case in json.loads(out):
            if case.get("nodes") != size:
                continue
            for key, value in case.items():
                if key == "nodes":
                    continue
                best[key] = max(best.get(key, 0.0), float(value))
        print(f"pass {i + 1}/{runs}: best so far "
              f"{json.dumps(best, sort_keys=True)}", flush=True)
    return best


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    bench = sys.argv[1]
    ref_path = pathlib.Path(
        sys.argv[2] if len(sys.argv) > 2 else "BENCH_control_cycle.json")

    reference = json.loads(ref_path.read_text())["ci_reference"]
    size = reference["nodes"]
    metrics = reference["metrics"]

    measured = best_of(bench, size, RUNS)

    failed = False
    for key, ref_value in metrics.items():
        got = measured.get(key)
        if got is None:
            print(f"FAIL {key}: metric missing from bench output")
            failed = True
            continue
        floor = (1.0 - TOLERANCE) * ref_value
        verdict = "ok" if got >= floor else "FAIL"
        print(f"{verdict} {key}: measured {got:.2f} vs recorded "
              f"{ref_value:.2f} (floor {floor:.2f})")
        failed |= got < floor
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
