#include "telemetry/agent.hpp"

#include <gtest/gtest.h>

#include "hw/node_spec.hpp"

namespace pcap::telemetry {
namespace {

hw::Node busy_node(hw::NodeId id = 3) {
  hw::Node n(id, hw::tianhe1a_node_spec());
  hw::OperatingPoint op;
  op.cpu_utilization = 0.7;
  op.mem_used = n.spec().mem_total * 0.4;
  op.mem_total = n.spec().mem_total;
  op.nic_bytes = Bytes{1e9};
  op.tau = Seconds{1.0};
  op.nic_bandwidth = n.spec().nic_bandwidth;
  n.set_operating_point(op);
  n.set_busy(true);
  return n;
}

TEST(Agent, NoiselessSampleMatchesNodeEstimate) {
  AgentParams p;
  p.utilization_noise = 0.0;
  p.nic_noise = 0.0;
  ProfilingAgent agent(3, p, common::Rng(1));
  const hw::Node n = busy_node();
  const NodeSample s = agent.sample(n, Seconds{10.0});
  EXPECT_EQ(s.node, 3u);
  EXPECT_EQ(s.time, Seconds{10.0});
  EXPECT_DOUBLE_EQ(s.cpu_utilization, 0.7);
  EXPECT_EQ(s.level, n.level());
  EXPECT_TRUE(s.busy);
  EXPECT_DOUBLE_EQ(s.estimated_power.value(), n.estimated_power().value());
}

TEST(Agent, NoisySampleStaysClose) {
  ProfilingAgent agent(3, AgentParams{}, common::Rng(2));
  const hw::Node n = busy_node();
  for (int i = 0; i < 100; ++i) {
    const NodeSample s = agent.sample(n, Seconds{static_cast<double>(i)});
    EXPECT_NEAR(s.cpu_utilization, 0.7, 0.06);
    EXPECT_NEAR(s.estimated_power.value(), n.estimated_power().value(),
                n.estimated_power().value() * 0.1);
  }
}

TEST(Agent, NoiseClampsUtilizationToValidRange) {
  AgentParams p;
  p.utilization_noise = 0.5;  // huge noise
  ProfilingAgent agent(3, p, common::Rng(3));
  const hw::Node n = busy_node();
  for (int i = 0; i < 200; ++i) {
    const NodeSample s = agent.sample(n, Seconds{0.0});
    EXPECT_GE(s.cpu_utilization, 0.0);
    EXPECT_LE(s.cpu_utilization, 1.0);
  }
}

TEST(Agent, ForeignNodeThrows) {
  ProfilingAgent agent(3, AgentParams{}, common::Rng(4));
  const hw::Node n = busy_node(/*id=*/4);
  EXPECT_THROW(agent.sample(n, Seconds{0.0}), std::invalid_argument);
}

TEST(Agent, NegativeNoiseThrows) {
  AgentParams p;
  p.utilization_noise = -0.1;
  EXPECT_THROW(ProfilingAgent(1, p, common::Rng(1)), std::invalid_argument);
}

TEST(Agent, ReportsThrottledLevel) {
  ProfilingAgent agent(3, AgentParams{}, common::Rng(5));
  hw::Node n = busy_node();
  n.set_level(2);
  const NodeSample s = agent.sample(n, Seconds{0.0});
  EXPECT_EQ(s.level, 2);
}

TEST(Agent, EstimateUsesCurrentLevel) {
  AgentParams p;
  p.utilization_noise = 0.0;
  p.nic_noise = 0.0;
  ProfilingAgent agent(3, p, common::Rng(6));
  hw::Node n = busy_node();
  const Watts top = agent.sample(n, Seconds{0.0}).estimated_power;
  n.set_level(0);
  const Watts floor = agent.sample(n, Seconds{1.0}).estimated_power;
  EXPECT_LT(floor, top);
}

}  // namespace
}  // namespace pcap::telemetry
