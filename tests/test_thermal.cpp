#include "hw/thermal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pcap::hw {
namespace {

ThermalParams params() {
  ThermalParams p;
  p.thermal_resistance = 0.1;
  p.time_constant = Seconds{100.0};
  p.ambient = Celsius{20.0};
  p.leakage_reference = Celsius{50.0};
  p.leakage_coefficient = 0.002;
  return p;
}

TEST(Thermal, EquilibriumIsAmbientPlusRTimesP) {
  const ThermalModel m(params());
  EXPECT_DOUBLE_EQ(m.equilibrium(Watts{300.0}).value(), 20.0 + 30.0);
  EXPECT_DOUBLE_EQ(m.equilibrium(Watts{0.0}).value(), 20.0);
}

TEST(Thermal, StepApproachesEquilibrium) {
  const ThermalModel m(params());
  Celsius t{20.0};
  for (int i = 0; i < 1000; ++i) t = m.step(t, Watts{300.0}, Seconds{1.0});
  EXPECT_NEAR(t.value(), 50.0, 0.1);
}

TEST(Thermal, StepMonotoneTowardsTarget) {
  const ThermalModel m(params());
  const Celsius t1 = m.step(Celsius{20.0}, Watts{300.0}, Seconds{1.0});
  const Celsius t2 = m.step(t1, Watts{300.0}, Seconds{1.0});
  EXPECT_GT(t1, Celsius{20.0});
  EXPECT_GT(t2, t1);
  EXPECT_LT(t2, Celsius{50.0});
}

TEST(Thermal, CoolsWhenPowerDrops) {
  const ThermalModel m(params());
  const Celsius hot{45.0};
  const Celsius cooled = m.step(hot, Watts{0.0}, Seconds{10.0});
  EXPECT_LT(cooled, hot);
  EXPECT_GT(cooled, Celsius{20.0});
}

TEST(Thermal, LargeStepIsStable) {
  // Exact exponential integration cannot overshoot, even for dt >> tau.
  const ThermalModel m(params());
  const Celsius t = m.step(Celsius{20.0}, Watts{300.0}, Seconds{1e6});
  EXPECT_NEAR(t.value(), 50.0, 1e-6);
}

TEST(Thermal, StepExactExponential) {
  const ThermalModel m(params());
  // One step of dt = tau: gap shrinks by e^-1.
  const Celsius t = m.step(Celsius{20.0}, Watts{300.0}, Seconds{100.0});
  EXPECT_NEAR(t.value(), 50.0 - 30.0 * std::exp(-1.0), 1e-9);
}

TEST(Thermal, LeakageBelowReferenceIsOne) {
  const ThermalModel m(params());
  EXPECT_DOUBLE_EQ(m.leakage_factor(Celsius{30.0}), 1.0);
  EXPECT_DOUBLE_EQ(m.leakage_factor(Celsius{50.0}), 1.0);
}

TEST(Thermal, LeakageGrowsAboveReference) {
  const ThermalModel m(params());
  EXPECT_DOUBLE_EQ(m.leakage_factor(Celsius{60.0}), 1.0 + 0.002 * 10.0);
  EXPECT_GT(m.leakage_factor(Celsius{80.0}), m.leakage_factor(Celsius{60.0}));
}

TEST(Thermal, ZeroCoefficientDisablesLeakage) {
  ThermalParams p = params();
  p.leakage_coefficient = 0.0;
  const ThermalModel m(p);
  EXPECT_DOUBLE_EQ(m.leakage_factor(Celsius{90.0}), 1.0);
}

TEST(Thermal, BadParamsThrow) {
  ThermalParams p = params();
  p.time_constant = Seconds{0.0};
  EXPECT_THROW(ThermalModel{p}, std::invalid_argument);
  p = params();
  p.thermal_resistance = -1.0;
  EXPECT_THROW(ThermalModel{p}, std::invalid_argument);
  p = params();
  p.leakage_coefficient = -0.1;
  EXPECT_THROW(ThermalModel{p}, std::invalid_argument);
}

}  // namespace
}  // namespace pcap::hw
