#include "workload/npb.hpp"

#include <gtest/gtest.h>

namespace pcap::workload {
namespace {

TEST(Npb, SuiteHasFiveBenchmarksInPaperOrder) {
  const auto suite = npb_suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "EP");
  EXPECT_EQ(suite[1].name, "CG");
  EXPECT_EQ(suite[2].name, "LU");
  EXPECT_EQ(suite[3].name, "BT");
  EXPECT_EQ(suite[4].name, "SP");
}

TEST(Npb, AllModelsValidate) {
  for (const auto& m : npb_suite(NpbClass::kD)) {
    EXPECT_NO_THROW(m.validate()) << m.name;
  }
  for (const auto& m : npb_suite(NpbClass::kC)) {
    EXPECT_NO_THROW(m.validate()) << m.name;
  }
}

TEST(Npb, NprocsChoicesMatchPaper) {
  EXPECT_EQ(npb_nprocs_choices(), (std::vector<int>{8, 16, 32, 64, 128, 256}));
}

TEST(Npb, ByNameCaseInsensitive) {
  EXPECT_EQ(npb_by_name("ep").name, "EP");
  EXPECT_EQ(npb_by_name("EP").name, "EP");
  EXPECT_EQ(npb_by_name("Cg").name, "CG");
  EXPECT_EQ(npb_by_name("LU").name, "LU");
  EXPECT_EQ(npb_by_name("bt").name, "BT");
  EXPECT_EQ(npb_by_name("sp").name, "SP");
}

TEST(Npb, ByNameUnknownThrows) {
  EXPECT_THROW(npb_by_name("dt"), std::invalid_argument);
  EXPECT_THROW(npb_by_name(""), std::invalid_argument);
}

TEST(Npb, ClassCIsSmallerThanClassD) {
  const AppModel d = make_lu(NpbClass::kD);
  const AppModel c = make_lu(NpbClass::kC);
  EXPECT_GT(d.reference_duration_s, c.reference_duration_s);
  EXPECT_NEAR(c.reference_duration_s / d.reference_duration_s, 1.0 / 16.0,
              1e-12);
}

TEST(Npb, EpIsMostFrequencySensitive) {
  // The compute-boundedness ordering that makes DVFS hurt EP most: the
  // dominant (longest) phase of EP has the highest sensitivity, CG the
  // lowest.
  const auto dominant = [](const AppModel& m) {
    const Phase* best = &m.iteration.front();
    for (const Phase& p : m.iteration) {
      if (p.seconds_per_iteration > best->seconds_per_iteration) best = &p;
    }
    return best->frequency_sensitivity;
  };
  const double ep = dominant(make_ep());
  const double lu = dominant(make_lu());
  const double bt = dominant(make_bt());
  const double sp = dominant(make_sp());
  const double cg = dominant(make_cg());
  EXPECT_GT(ep, lu);
  EXPECT_GT(lu, bt);
  EXPECT_GT(bt, sp);
  EXPECT_GT(sp, cg);
}

TEST(Npb, EpHasHighestMeanUtilization) {
  const double ep = make_ep().mean_cpu_utilization();
  for (const auto& m : {make_cg(), make_lu(), make_bt(), make_sp()}) {
    EXPECT_GT(ep, m.mean_cpu_utilization()) << m.name;
  }
}

TEST(Npb, CgIsMemoryHeavy) {
  const AppModel cg = make_cg();
  for (const Phase& p : cg.iteration) {
    EXPECT_GE(p.mem_fraction, 0.5);
  }
}

TEST(Npb, EpBarelyCommunicates) {
  const AppModel ep = make_ep();
  // The dominant compute phase of EP has negligible traffic.
  EXPECT_LT(ep.iteration[0].comm_bytes_per_proc_per_s, 1e5);
}

TEST(Npb, AllHavePrologues) {
  for (const auto& m : npb_suite()) {
    EXPECT_FALSE(m.prologue.empty()) << m.name;
    EXPECT_GT(m.prologue_seconds(), 0.0) << m.name;
    // Start-up is cool: well below the dominant phase's utilisation.
    EXPECT_LT(m.prologue[0].cpu_utilization, 0.5) << m.name;
  }
}

TEST(Npb, ScalingAlphasAreSane) {
  for (const auto& m : npb_suite()) {
    EXPECT_GT(m.scaling_alpha, 0.5) << m.name;
    EXPECT_LE(m.scaling_alpha, 1.0) << m.name;
  }
  // EP scales best (embarrassingly parallel), CG worst.
  EXPECT_GT(make_ep().scaling_alpha, make_cg().scaling_alpha);
}

TEST(NpbExtended, SuiteAddsThreeKernels) {
  const auto suite = npb_extended_suite();
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite[5].name, "MG");
  EXPECT_EQ(suite[6].name, "FT");
  EXPECT_EQ(suite[7].name, "IS");
  for (const auto& m : suite) EXPECT_NO_THROW(m.validate()) << m.name;
}

TEST(NpbExtended, ByNameResolvesExtendedKernels) {
  EXPECT_EQ(npb_by_name("mg").name, "MG");
  EXPECT_EQ(npb_by_name("FT").name, "FT");
  EXPECT_EQ(npb_by_name("is").name, "IS");
}

TEST(NpbExtended, FtTransposeIsNetworkBound) {
  const AppModel ft = make_ft();
  const Phase& transpose = ft.iteration[1];
  EXPECT_EQ(transpose.name, "all-to-all-transpose");
  EXPECT_LT(transpose.frequency_sensitivity, 0.2);
  EXPECT_GT(transpose.comm_bytes_per_proc_per_s, 1e8);
}

TEST(NpbExtended, IsIsShortest) {
  const AppModel is = make_is();
  for (const auto& m : npb_extended_suite()) {
    if (m.name == "IS") continue;
    EXPECT_LT(is.reference_duration_s, m.reference_duration_s) << m.name;
  }
}

TEST(NpbExtended, ExtendedKernelsScaleWorseThanEp) {
  // Communication-dominated kernels have lower scaling exponents.
  const double ep = make_ep().scaling_alpha;
  EXPECT_LT(make_mg().scaling_alpha, ep);
  EXPECT_LT(make_ft().scaling_alpha, ep);
  EXPECT_LT(make_is().scaling_alpha, ep);
}

// Property: durations are positive and strictly decreasing in NPROCS for
// every benchmark at every paper NPROCS step.
class NpbScaling : public ::testing::TestWithParam<int> {};

TEST_P(NpbScaling, DurationDecreasesWithProcs) {
  const AppModel m =
      npb_extended_suite()[static_cast<std::size_t>(GetParam())];
  double prev = 1e18;
  for (const int n : npb_nprocs_choices()) {
    const double d = m.duration_at(n);
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, prev);
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, NpbScaling, ::testing::Range(0, 8));

}  // namespace
}  // namespace pcap::workload
