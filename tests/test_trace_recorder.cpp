#include "metrics/trace_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/csv.hpp"

namespace pcap::metrics {
namespace {

CyclePoint point(double t, double p, int state = 0) {
  CyclePoint c;
  c.time_s = t;
  c.power_w = p;
  c.p_low_w = 840.0;
  c.p_high_w = 930.0;
  c.state = state;
  c.running_jobs = 3;
  c.targets = state == 1 ? 2 : 0;
  c.transitions = state == 1 ? 2 : 0;
  c.manager_utilization = 0.01;
  return c;
}

TEST(TraceRecorder, RecordsPoints) {
  TraceRecorder r(Seconds{1.0});
  r.record(point(1.0, 500.0));
  r.record(point(2.0, 600.0));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.points()[1].power_w, 600.0);
}

TEST(TraceRecorder, PowerTraceView) {
  TraceRecorder r(Seconds{2.0});
  r.record(point(2.0, 500.0));
  r.record(point(4.0, 700.0));
  const PowerTrace t = r.power_trace();
  EXPECT_EQ(t.dt, Seconds{2.0});
  EXPECT_EQ(t.watts, (std::vector<double>{500.0, 700.0}));
  EXPECT_DOUBLE_EQ(mean_power(t).value(), 600.0);
}

TEST(TraceRecorder, StateCounts) {
  TraceRecorder r(Seconds{1.0});
  r.record(point(1.0, 1.0, 0));
  r.record(point(2.0, 1.0, 1));
  r.record(point(3.0, 1.0, 1));
  r.record(point(4.0, 1.0, 2));
  EXPECT_EQ(r.state_count(0), 1u);
  EXPECT_EQ(r.state_count(1), 2u);
  EXPECT_EQ(r.state_count(2), 1u);
  EXPECT_EQ(r.state_count(3), 0u);
}

TEST(TraceRecorder, CsvHasHeaderAndRows) {
  TraceRecorder r(Seconds{1.0});
  r.record(point(1.0, 500.0, 1));
  const auto rows = common::parse_csv(r.to_csv());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "time_s");
  EXPECT_EQ(rows[1][1], "500");
  EXPECT_EQ(rows[1][4], "1");
}

TEST(TraceRecorder, CsvCarriesActuationReconciliationColumns) {
  TraceRecorder r(Seconds{1.0});
  CyclePoint c = point(1.0, 500.0, 1);
  c.retries = 3;
  c.divergences = 1;
  c.heals = 2;
  r.record(c);
  const auto rows = common::parse_csv(r.to_csv());
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].size(), 12u);
  EXPECT_EQ(rows[0][9], "retries");
  EXPECT_EQ(rows[0][10], "divergences");
  EXPECT_EQ(rows[0][11], "heals");
  EXPECT_EQ(rows[1][9], "3");
  EXPECT_EQ(rows[1][10], "1");
  EXPECT_EQ(rows[1][11], "2");
}

TEST(TraceRecorder, SaveWritesFile) {
  TraceRecorder r(Seconds{1.0});
  r.record(point(1.0, 500.0));
  const std::string path = ::testing::TempDir() + "/recorder_test.csv";
  r.save(path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

TEST(TraceRecorder, BadDtThrows) {
  EXPECT_THROW(TraceRecorder(Seconds{0.0}), std::invalid_argument);
  EXPECT_THROW(TraceRecorder(Seconds{-1.0}), std::invalid_argument);
}

TEST(TraceRecorder, EmptyTraceSafeMetrics) {
  TraceRecorder r(Seconds{1.0});
  const PowerTrace t = r.power_trace();
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(peak_power(t).value(), 0.0);
}

}  // namespace
}  // namespace pcap::metrics
