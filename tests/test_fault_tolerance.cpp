// End-to-end fault tolerance (the management plane as a failure domain):
// the capping manager must survive lossy/delayed transport, agent
// dropouts, crash windows, corrupted samples and candidate churn — all at
// once — without throwing, while still keeping the system capped; and the
// whole degraded run must stay bit-identical across worker-thread counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "baselines/uniform_policy.hpp"
#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "cluster/scenario.hpp"
#include "hw/node_spec.hpp"
#include "metrics/trace_recorder.hpp"
#include "power/manager.hpp"

namespace pcap {
namespace {

/// The determinism property must hold for any seed, so CI sweeps the
/// degraded-run harness across PCAP_FAULT_SEED=1..N. Convergence tests
/// keep their fixed seeds — their thresholds are calibrated, not
/// universal.
std::uint64_t fault_seed(std::uint64_t fallback) {
  const char* env = std::getenv("PCAP_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

struct RunResult {
  std::vector<metrics::CyclePoint> points;
  std::vector<metrics::JobRecord> finished;
  double total_energy_j = 0.0;
  std::uint64_t samples_lost = 0;
  std::uint64_t samples_suppressed = 0;
};

/// A degraded-management-plane cluster run: report loss AND delivery
/// delay AND agent dropout/crash/corruption AND periodic candidate
/// re-selection, with the parallel sweeps forced on.
RunResult run_degraded_cluster(std::size_t worker_threads) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 200;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = fault_seed(20260807);
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  cfg.parallel_node_threshold = 1;
  cfg.parallel_grain = 16;
  // Privileged jobs make the dynamic selector actually churn A_candidate.
  cfg.privileged_job_fraction = 0.3;
  cluster::Cluster cl(cfg);

  power::CappingManagerParams p;
  // Tight enough that the run leaves steady green and the manager must
  // keep building contexts from the degraded telemetry.
  p.thresholds.provision = cl.theoretical_peak() * 0.75;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  p.collector.parallel_threshold = 16;
  p.collector.parallel_grain = 16;
  p.collector.transport.loss_rate = 0.05;
  p.collector.transport.delay_cycles = 2;
  p.collector.faults.agent_dropout_rate = 0.02;
  p.collector.faults.agent_recovery_rate = 0.25;
  p.collector.faults.crash_rate = 2e-3;
  p.collector.faults.crash_duration_cycles = 30;
  p.collector.faults.corruption_rate = 0.01;
  p.max_sample_age_cycles = 3;  // delay is 2: healthy nodes stay fresh
  p.selector = power::CandidateSelectorParams{};
  p.selector->reselect_period_cycles = 5;
  // The uniform baseline selects every busy node, stale or not — which is
  // exactly what exercises the engine's defensive skip path.
  auto mgr = std::make_unique<power::CappingManager>(
      p, std::make_unique<baselines::UniformAllNodesPolicy>(),
      common::Rng(cfg.seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));

  cl.start_recording();
  cl.run(Seconds{500.0});

  RunResult out;
  out.points = cl.recorder().points();
  out.finished = cl.finished_records();
  for (const metrics::JobRecord& r : out.finished) {
    out.total_energy_j += r.energy_j;
  }
  out.samples_lost = cl.last_report().samples_lost;
  out.samples_suppressed = cl.last_report().samples_suppressed;
  return out;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const metrics::CyclePoint& pa = a.points[i];
    const metrics::CyclePoint& pb = b.points[i];
    EXPECT_EQ(pa.time_s, pb.time_s) << "tick " << i;
    EXPECT_EQ(pa.power_w, pb.power_w) << "tick " << i;
    EXPECT_EQ(pa.state, pb.state) << "tick " << i;
    EXPECT_EQ(pa.running_jobs, pb.running_jobs) << "tick " << i;
    EXPECT_EQ(pa.targets, pb.targets) << "tick " << i;
    EXPECT_EQ(pa.transitions, pb.transitions) << "tick " << i;
    EXPECT_EQ(pa.stale_nodes, pb.stale_nodes) << "tick " << i;
    EXPECT_EQ(pa.fallback_nodes, pb.fallback_nodes) << "tick " << i;
    EXPECT_EQ(pa.skipped_targets, pb.skipped_targets) << "tick " << i;
  }
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id) << "job " << i;
    EXPECT_EQ(a.finished[i].energy_j, b.finished[i].energy_j) << "job " << i;
  }
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.samples_lost, b.samples_lost);
  EXPECT_EQ(a.samples_suppressed, b.samples_suppressed);
}

TEST(FaultTolerance, DegradedRunSurvivesAndStaysDeterministic) {
  const RunResult serial = run_degraded_cluster(1);
  ASSERT_GT(serial.points.size(), 400u);

  // The fault machinery really fired...
  EXPECT_GT(serial.samples_lost, 0u);
  EXPECT_GT(serial.samples_suppressed, 0u);
  std::size_t stale = 0;
  for (const metrics::CyclePoint& p : serial.points) stale += p.stale_nodes;
  EXPECT_GT(stale, 0u) << "no cycle ever saw a stale node view";

  // ...and the run is still bit-identical under parallel sweeps.
  const RunResult four = run_degraded_cluster(4);
  expect_identical(serial, four);
}

TEST(FaultTolerance, FaultyScenarioStaysCappedAndCountsItsWounds) {
  cluster::ExperimentConfig cfg = cluster::faulty_telemetry_scenario(23);
  // Bench-sized windows; crashes made frequent enough that a short run is
  // guaranteed to see at least one full crash + recovery.
  cfg.calibration_duration = Seconds{900.0};
  cfg.training = Seconds{900.0};
  cfg.measured = Seconds{1800.0};
  cfg.faults.crash_rate = 5e-4;
  // The uniform policy ignores per-node staleness when selecting targets,
  // so the engine's defensive skip path is exercised too.
  cfg.manager = "uniform";

  const cluster::ExperimentResult r = cluster::run_experiment(cfg);

  EXPECT_LE(r.p_max, r.provision) << "capping lost control under faults";
  EXPECT_GT(r.stale_node_cycles, 0u);
  EXPECT_GT(r.fallback_node_cycles, 0u);
  EXPECT_GE(r.fallback_node_cycles, r.stale_node_cycles);
  EXPECT_GT(r.skipped_targets, 0u);
  EXPECT_GT(r.samples_lost, 0u);
  EXPECT_GT(r.samples_suppressed, 0u);
  EXPECT_GT(r.samples_corrupted, 0u);
  EXPECT_GE(r.crash_events, 1u);
  EXPECT_GE(r.recovery_events, 1u);
  // Jobs kept finishing: a blind-but-careful manager must not starve the
  // cluster by capping everything to the floor forever.
  EXPECT_GT(r.perf.finished_jobs, 0u);
}

}  // namespace
}  // namespace pcap
