#include "common/config.hpp"

#include <gtest/gtest.h>

namespace pcap::common {
namespace {

TEST(Config, ParseBasicPairs) {
  const Config c = Config::parse("a = 1\nb = hello\n");
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get_string("b", ""), "hello");
}

TEST(Config, CommentsAndBlanksIgnored) {
  const Config c = Config::parse("# comment\n\n; other comment\nx = 2\n");
  EXPECT_EQ(c.get_int("x", 0), 2);
  EXPECT_EQ(c.keys().size(), 1u);
}

TEST(Config, SectionsPrefixKeys) {
  const Config c = Config::parse("[power]\nbudget = 42\n[cluster]\nnodes=128");
  EXPECT_EQ(c.get_int("power.budget", 0), 42);
  EXPECT_EQ(c.get_int("cluster.nodes", 0), 128);
}

TEST(Config, WhitespaceTrimmed) {
  const Config c = Config::parse("  key   =   value with spaces  \n");
  EXPECT_EQ(c.get_string("key", ""), "value with spaces");
}

TEST(Config, MissingKeyUsesDefault) {
  const Config c = Config::parse("");
  EXPECT_EQ(c.get_int("nope", 7), 7);
  EXPECT_EQ(c.get_string("nope", "d"), "d");
  EXPECT_DOUBLE_EQ(c.get_double("nope", 1.5), 1.5);
  EXPECT_TRUE(c.get_bool("nope", true));
}

TEST(Config, DoubleParsing) {
  const Config c = Config::parse("x = 3.25\ny = -1e3\n");
  EXPECT_DOUBLE_EQ(c.get_double("x", 0.0), 3.25);
  EXPECT_DOUBLE_EQ(c.get_double("y", 0.0), -1000.0);
}

TEST(Config, BoolForms) {
  const Config c = Config::parse(
      "a=true\nb=FALSE\nc=1\nd=0\ne=yes\nf=no\ng=on\nh=off\n");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  EXPECT_TRUE(c.get_bool("e", false));
  EXPECT_FALSE(c.get_bool("f", true));
  EXPECT_TRUE(c.get_bool("g", false));
  EXPECT_FALSE(c.get_bool("h", true));
}

TEST(Config, BadIntThrows) {
  const Config c = Config::parse("x = abc\n");
  EXPECT_THROW((void)c.get_int("x", 0), std::runtime_error);
}

TEST(Config, BadBoolThrows) {
  const Config c = Config::parse("x = maybe\n");
  EXPECT_THROW((void)c.get_bool("x", false), std::runtime_error);
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::parse("this is not a pair\n"), std::runtime_error);
}

TEST(Config, UnterminatedSectionThrows) {
  EXPECT_THROW(Config::parse("[power\n"), std::runtime_error);
}

TEST(Config, EmptyKeyThrows) {
  EXPECT_THROW(Config::parse(" = value\n"), std::runtime_error);
}

TEST(Config, DoubleList) {
  const Config c = Config::parse("freqs = 1.6, 1.73, 2.93\n");
  const auto v = c.get_double_list("freqs", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.6);
  EXPECT_DOUBLE_EQ(v[2], 2.93);
}

TEST(Config, DoubleListDefault) {
  const Config c = Config::parse("");
  const auto v = c.get_double_list("freqs", {1.0, 2.0});
  ASSERT_EQ(v.size(), 2u);
}

TEST(Config, LastValueWins) {
  const Config c = Config::parse("x = 1\nx = 2\n");
  EXPECT_EQ(c.get_int("x", 0), 2);
}

TEST(Config, MergeOverrides) {
  Config base = Config::parse("a = 1\nb = 2\n");
  const Config over = Config::parse("b = 3\nc = 4\n");
  base.merge(over);
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 3);
  EXPECT_EQ(base.get_int("c", 0), 4);
}

TEST(Config, RoundTripThroughToString) {
  const Config c = Config::parse("a = 1\nsection.key = v\n");
  const Config c2 = Config::parse(c.to_string());
  EXPECT_EQ(c2.get_int("a", 0), 1);
  EXPECT_EQ(c2.get_string("section.key", ""), "v");
}

TEST(Config, HasAndRaw) {
  const Config c = Config::parse("x = 7\n");
  EXPECT_TRUE(c.has("x"));
  EXPECT_FALSE(c.has("y"));
  EXPECT_EQ(c.raw("x").value(), "7");
  EXPECT_FALSE(c.raw("y").has_value());
}

TEST(Config, LoadFileMissingThrows) {
  EXPECT_THROW(Config::load_file("/nonexistent/path/cfg.ini"),
               std::runtime_error);
}

}  // namespace
}  // namespace pcap::common
