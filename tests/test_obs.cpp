// Observability layer (obs/registry.hpp, obs/spans.hpp): registration
// semantics, exporters, span gating, and the registry-as-source-of-truth
// contract — trace CSV columns and manager reports are views over the
// same counters, and deterministic series stay bit-identical across
// worker counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "hw/node_spec.hpp"
#include "obs/registry.hpp"
#include "obs/spans.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"

namespace pcap {
namespace {

TEST(ObsRegistry, CounterGaugeBasics) {
  obs::Registry reg;
  const obs::CounterHandle c = reg.counter("pcap_test_total", "help");
  const obs::GaugeHandle g = reg.gauge("pcap_test_value", "help");
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(reg.value(c), 0u);
  reg.add(c);
  reg.add(c, 4);
  EXPECT_EQ(reg.value(c), 5u);
  reg.set_total(c, 3);
  EXPECT_EQ(reg.value(c), 3u);
  reg.set(g, 2.5);
  EXPECT_DOUBLE_EQ(reg.value(g), 2.5);
}

TEST(ObsRegistry, DefaultHandleIsInvalid) {
  const obs::CounterHandle c;
  EXPECT_FALSE(c.valid());
}

TEST(ObsRegistry, RegistrationIsIdempotentPerKey) {
  obs::Registry reg;
  const obs::CounterHandle a = reg.counter("pcap_x_total", "help");
  const obs::CounterHandle b = reg.counter("pcap_x_total", "ignored");
  EXPECT_EQ(a.index, b.index);
  // Distinct labels are a distinct series under the same family.
  const obs::CounterHandle c =
      reg.counter("pcap_x_total", "help", "kind=\"other\"");
  EXPECT_NE(a.index, c.index);
  EXPECT_EQ(reg.counter_count(), 2u);
}

TEST(ObsRegistry, FreezeRejectsNewSeriesButAllowsRebinding) {
  obs::Registry reg;
  const obs::CounterHandle a = reg.counter("pcap_x_total", "help");
  reg.freeze();
  // Existing key: fine (a replacement manager re-binding).
  const obs::CounterHandle b = reg.counter("pcap_x_total", "help");
  EXPECT_EQ(a.index, b.index);
  // New key: loud error, not a hot-path allocation.
  EXPECT_THROW(reg.counter("pcap_y_total", "help"), std::logic_error);
  EXPECT_THROW(reg.gauge("pcap_y", "help"), std::logic_error);
  EXPECT_THROW(reg.histogram("pcap_y_seconds", "help", {1.0}),
               std::logic_error);
}

TEST(ObsRegistry, HistogramBucketsAreInclusiveUpperBounds) {
  obs::Registry reg;
  const obs::HistogramHandle h =
      reg.histogram("pcap_h", "help", {1.0, 2.0, 4.0});
  reg.observe(h, 0.5);   // le=1
  reg.observe(h, 1.0);   // le=1 (inclusive)
  reg.observe(h, 3.0);   // le=4
  reg.observe(h, 100.0); // +Inf
  EXPECT_EQ(reg.count(h), 4u);
  EXPECT_DOUBLE_EQ(reg.sum(h), 104.5);
  const std::string prom = reg.prometheus_text();
  EXPECT_NE(prom.find("pcap_h_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("pcap_h_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("pcap_h_bucket{le=\"4\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("pcap_h_bucket{le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(prom.find("pcap_h_count 4"), std::string::npos);
}

TEST(ObsRegistry, HistogramValidation) {
  obs::Registry reg;
  EXPECT_THROW(reg.histogram("pcap_h", "help", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("pcap_h", "help", {2.0, 1.0}),
               std::invalid_argument);
}

TEST(ObsRegistry, FindAndCounterValue) {
  obs::Registry reg;
  const obs::CounterHandle c =
      reg.counter("pcap_x_total", "help", "state=\"green\"");
  reg.add(c, 7);
  EXPECT_FALSE(reg.find_counter("pcap_x_total").has_value());
  const auto found = reg.find_counter("pcap_x_total{state=\"green\"}");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(reg.value(*found), 7u);
  EXPECT_EQ(reg.counter_value("pcap_x_total{state=\"green\"}"), 7u);
  EXPECT_FALSE(reg.counter_value("pcap_missing_total").has_value());
}

TEST(ObsRegistry, PrometheusTextShape) {
  obs::Registry reg;
  reg.add(reg.counter("pcap_c_total", "counter help", "k=\"v\""), 2);
  reg.set(reg.gauge("pcap_g", "gauge help"), 1.5);
  const std::string prom = reg.prometheus_text();
  EXPECT_NE(prom.find("# HELP pcap_c_total counter help"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pcap_c_total counter"), std::string::npos);
  EXPECT_NE(prom.find("pcap_c_total{k=\"v\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pcap_g gauge"), std::string::npos);
  EXPECT_NE(prom.find("pcap_g 1.5"), std::string::npos);
}

TEST(ObsRegistry, JsonSnapshotShape) {
  obs::Registry reg;
  reg.add(reg.counter("pcap_c_total", "h"), 3);
  reg.set(reg.gauge("pcap_g", "h"), 0.5);
  reg.observe(reg.histogram("pcap_h", "h", {1.0}), 0.25);
  const std::string json = reg.json_snapshot();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"pcap_c_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(ObsSpans, UnboundScopeIsInert) {
  const obs::SpanTimer t;
  EXPECT_FALSE(t.bound());
  { const obs::SpanTimer::Scope s = t.start(); }  // must not crash
}

TEST(ObsSpans, BoundScopeRecordsOneObservation) {
  obs::Registry reg;
  obs::SpanTimer t;
  t.bind(reg, "pcap_cycle_phase_seconds", "help", "phase=\"test\"");
  { const obs::SpanTimer::Scope s = t.start(); }
  EXPECT_EQ(reg.count(t.handle()), 1u);
  EXPECT_GE(reg.sum(t.handle()), 0.0);
}

TEST(ObsSpans, TimingGateSkipsClockReads) {
  obs::Registry reg;
  obs::SpanTimer t;
  t.bind(reg, "pcap_cycle_phase_seconds", "help", "phase=\"test\"");
  reg.set_timing_enabled(false);
  { const obs::SpanTimer::Scope s = t.start(); }
  EXPECT_EQ(reg.count(t.handle()), 0u);
  reg.set_timing_enabled(true);
  { const obs::SpanTimer::Scope s = t.start(); }
  EXPECT_EQ(reg.count(t.handle()), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: a capped cluster publishes into its registry, and the
// registry agrees with every older view of the same quantities.

cluster::ClusterConfig capped_config(std::size_t worker_threads,
                                     bool obs_timing = true) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 96;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = 20260807;
  cfg.worker_threads = worker_threads;
  cfg.parallel_node_threshold = 1;
  cfg.parallel_grain = 16;
  cfg.obs_timing = obs_timing;
  return cfg;
}

void install_capping_manager(cluster::Cluster& cl) {
  power::CappingManagerParams p;
  p.thresholds.provision = cl.theoretical_peak() * 0.8;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cl.config().control_period;
  p.collector.parallel_threshold = 16;
  p.collector.parallel_grain = 16;
  p.collector.transport.loss_rate = 0.05;
  auto mgr = std::make_unique<power::CappingManager>(
      p, power::make_policy("mpc"),
      common::Rng(cl.config().seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));
}

TEST(ObsCluster, RegistryAgreesWithTraceRecorderAndReports) {
  cluster::Cluster cl(capped_config(1));
  install_capping_manager(cl);
  cl.start_recording();
  cl.run(Seconds{400.0});

  const obs::Registry& reg = cl.metrics();
  EXPECT_TRUE(reg.frozen());

  // Engine + cluster series.
  EXPECT_EQ(reg.counter_value("pcap_cluster_ticks_total"), 400u);
  const auto g = [&](const std::string& key) {
    const auto h = reg.find_gauge(key);
    return h ? reg.value(*h) : -1.0;
  };
  EXPECT_DOUBLE_EQ(g("pcap_cluster_power_watts"), cl.last_power().value());
  EXPECT_GT(reg.counter_value("pcap_sim_events_total").value_or(0), 0u);

  // State-cycle counters sum to the number of control cycles.
  const std::uint64_t cycles =
      reg.counter_value("pcap_manager_cycles_total{state=\"green\"}")
          .value_or(0) +
      reg.counter_value("pcap_manager_cycles_total{state=\"yellow\"}")
          .value_or(0) +
      reg.counter_value("pcap_manager_cycles_total{state=\"red\"}")
          .value_or(0);
  EXPECT_EQ(cycles, 100u);  // 400 s / 4 s control period

  // The CSV columns are a view over the same counters: summing them must
  // reproduce the registry totals exactly.
  std::uint64_t csv_stale = 0, csv_fallback = 0, csv_skipped = 0;
  std::uint64_t csv_retries = 0, csv_divergences = 0, csv_heals = 0;
  std::uint64_t csv_transitions = 0, csv_targets = 0;
  for (const metrics::CyclePoint& p : cl.recorder().points()) {
    csv_stale += p.stale_nodes;
    csv_fallback += p.fallback_nodes;
    csv_skipped += p.skipped_targets;
    csv_retries += p.retries;
    csv_divergences += p.divergences;
    csv_heals += p.heals;
    csv_transitions += p.transitions;
    csv_targets += p.targets;
  }
  const auto c = [&](const std::string& key) {
    return reg.counter_value(key).value_or(0);
  };
  EXPECT_EQ(c("pcap_manager_stale_node_cycles_total"), csv_stale);
  EXPECT_EQ(c("pcap_manager_fallback_node_cycles_total"), csv_fallback);
  EXPECT_EQ(c("pcap_manager_skipped_targets_total"), csv_skipped);
  EXPECT_EQ(c("pcap_manager_retries_total"), csv_retries);
  EXPECT_EQ(c("pcap_manager_divergences_total"), csv_divergences);
  EXPECT_EQ(c("pcap_manager_heals_total"), csv_heals);
  EXPECT_EQ(c("pcap_manager_transitions_total"), csv_transitions);
  EXPECT_EQ(c("pcap_manager_targets_total"), csv_targets);

  // Mirrored lifetime totals match the last report's ground truth.
  EXPECT_EQ(c("pcap_telemetry_samples_lost_total"),
            cl.last_report().samples_lost);
  EXPECT_EQ(c("pcap_actuation_commands_clamped_total"),
            cl.last_report().commands_clamped);

  // Span histograms recorded something (timing is on in this run).
  const auto tick_span =
      reg.find_histogram("pcap_cycle_phase_seconds{phase=\"tick\"}");
  ASSERT_TRUE(tick_span.has_value());
  EXPECT_EQ(reg.count(*tick_span), 400u);

  // Both exporters produce non-trivial output containing the span family.
  const std::string prom = reg.prometheus_text();
  EXPECT_NE(prom.find("pcap_cycle_phase_seconds_bucket"), std::string::npos);
  EXPECT_NE(prom.find("pcap_manager_cycles_total{state=\"green\"}"),
            std::string::npos);
  EXPECT_NE(reg.json_snapshot().find("pcap_cluster_power_watts"),
            std::string::npos);
}

TEST(ObsCluster, DeterministicSeriesBitIdenticalAcrossWorkerCounts) {
  // Wall-clock spans differ run to run; every deterministic series must
  // not. Collect (key, value) for all counters/gauges except the span
  // family and compare 1-thread vs 4-thread runs.
  const auto deterministic_dump = [](std::size_t workers) {
    cluster::Cluster cl(capped_config(workers));
    install_capping_manager(cl);
    cl.start_recording();
    cl.run(Seconds{400.0});
    std::string prom = cl.metrics().prometheus_text();
    // Strip the non-deterministic span family lines.
    std::string out;
    std::size_t pos = 0;
    while (pos < prom.size()) {
      std::size_t eol = prom.find('\n', pos);
      if (eol == std::string::npos) eol = prom.size();
      const std::string line = prom.substr(pos, eol - pos);
      if (line.find("pcap_cycle_phase_seconds") == std::string::npos) {
        out += line;
        out += '\n';
      }
      pos = eol + 1;
    }
    return out;
  };
  EXPECT_EQ(deterministic_dump(1), deterministic_dump(4));
}

TEST(ObsCluster, TimingGateDisablesSpansButKeepsCounters) {
  cluster::Cluster cl(capped_config(1, /*obs_timing=*/false));
  install_capping_manager(cl);
  cl.run(Seconds{100.0});
  const obs::Registry& reg = cl.metrics();
  const auto tick_span =
      reg.find_histogram("pcap_cycle_phase_seconds{phase=\"tick\"}");
  ASSERT_TRUE(tick_span.has_value());
  EXPECT_EQ(reg.count(*tick_span), 0u);
  EXPECT_EQ(reg.counter_value("pcap_cluster_ticks_total"), 100u);
}

TEST(ObsCluster, SimulationSeriesTrackEngineState) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.seed = 3;
  cluster::Cluster cl(cfg);
  cl.run(Seconds{50.0});
  EXPECT_EQ(cl.metrics().counter_value("pcap_sim_events_total"), 50u);
}

}  // namespace
}  // namespace pcap
