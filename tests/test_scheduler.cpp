#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "workload/npb.hpp"

namespace pcap::sched {
namespace {

using workload::Job;
using workload::JobState;

Scheduler make_sched(int nodes = 8, SchedulerOptions opts = {}) {
  return Scheduler(std::vector<int>(static_cast<std::size_t>(nodes), 12),
                   opts, common::Rng(1));
}

Job make_job(workload::JobId id, int nprocs) {
  return Job(id, workload::npb_by_name("ep", workload::NpbClass::kC), nprocs,
             Seconds{0.0});
}

TEST(Scheduler, SubmitQueues) {
  Scheduler s = make_sched();
  s.submit(make_job(1, 12));
  EXPECT_EQ(s.queue_length(), 1u);
  EXPECT_EQ(s.running_count(), 0u);
  EXPECT_EQ(s.free_node_count(), 8u);
}

TEST(Scheduler, LaunchAllocatesNodes) {
  Scheduler s = make_sched();
  s.submit(make_job(1, 24));
  const auto started = s.try_launch(Seconds{5.0});
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(s.running_count(), 1u);
  EXPECT_EQ(s.queue_length(), 0u);
  EXPECT_EQ(s.free_node_count(), 6u);
  const Job* j = s.find(1);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->state(), JobState::kRunning);
  EXPECT_EQ(j->start_time(), Seconds{5.0});
}

TEST(Scheduler, JobOnNodeTracksOwnership) {
  Scheduler s = make_sched();
  s.submit(make_job(1, 24));
  s.try_launch(Seconds{0.0});
  EXPECT_EQ(s.job_on_node(0), std::optional<workload::JobId>(1));
  EXPECT_EQ(s.job_on_node(1), std::optional<workload::JobId>(1));
  EXPECT_EQ(s.job_on_node(2), std::nullopt);
  EXPECT_EQ(s.job_on_node(99), std::nullopt);
}

TEST(Scheduler, FcfsBlocksBehindWideJob) {
  Scheduler s = make_sched(8);
  s.submit(make_job(1, 8 * 12));   // whole machine
  s.submit(make_job(2, 12));       // would fit, but FCFS blocks it
  s.try_launch(Seconds{0.0});
  EXPECT_EQ(s.running_count(), 1u);
  s.submit(make_job(3, 12));
  EXPECT_EQ(s.try_launch(Seconds{1.0}).size(), 0u);
  EXPECT_EQ(s.queue_length(), 2u);
}

TEST(Scheduler, BackfillJumpsBlockedHead) {
  SchedulerOptions opts;
  opts.backfill = true;
  Scheduler s = make_sched(8, opts);
  s.submit(make_job(1, 7 * 12));  // 7 nodes
  s.try_launch(Seconds{0.0});
  s.submit(make_job(2, 7 * 12));  // blocked: only 1 node free
  s.submit(make_job(3, 12));      // fits on the free node
  const auto started = s.try_launch(Seconds{1.0});
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0], 3u);
}

TEST(Scheduler, FinishReleasesNodes) {
  Scheduler s = make_sched();
  s.submit(make_job(1, 24));
  s.try_launch(Seconds{0.0});
  Job* j = s.find(1);
  // Drive to completion.
  double t = 0.0;
  while (j->state() == JobState::kRunning) {
    t += 60.0;
    j->advance(Seconds{60.0}, 1.0, Seconds{t});
  }
  s.on_job_finished(1);
  EXPECT_EQ(s.running_count(), 0u);
  EXPECT_EQ(s.finished_count(), 1u);
  EXPECT_EQ(s.free_node_count(), 8u);
  EXPECT_EQ(s.job_on_node(0), std::nullopt);
}

TEST(Scheduler, OnJobFinishedRequiresFinishedState) {
  Scheduler s = make_sched();
  s.submit(make_job(1, 12));
  s.try_launch(Seconds{0.0});
  EXPECT_THROW(s.on_job_finished(1), std::logic_error);
}

TEST(Scheduler, DuplicateIdThrows) {
  Scheduler s = make_sched();
  s.submit(make_job(1, 12));
  EXPECT_THROW(s.submit(make_job(1, 12)), std::invalid_argument);
}

TEST(Scheduler, TooWideJobThrows) {
  Scheduler s = make_sched(2);
  EXPECT_THROW(s.submit(make_job(1, 25)), std::invalid_argument);
}

TEST(Scheduler, TooWideUnderRankCapThrows) {
  SchedulerOptions opts;
  opts.max_procs_per_node = 2;
  Scheduler s = make_sched(4, opts);
  EXPECT_EQ(s.max_job_width(), 8);
  EXPECT_THROW(s.submit(make_job(1, 9)), std::invalid_argument);
  s.submit(make_job(2, 8));
  s.try_launch(Seconds{0.0});
  EXPECT_EQ(s.free_node_count(), 0u);  // 8 procs spread 2 per node
}

TEST(Scheduler, TotalsAndWidth) {
  Scheduler s = make_sched(8);
  EXPECT_EQ(s.total_nodes(), 8);
  EXPECT_EQ(s.total_cores(), 96);
  EXPECT_EQ(s.max_job_width(), 96);
}

TEST(Scheduler, FindUnknownReturnsNull) {
  Scheduler s = make_sched();
  EXPECT_EQ(s.find(99), nullptr);
}

TEST(Scheduler, EmptyClusterThrows) {
  EXPECT_THROW(Scheduler({}, {}, common::Rng(1)), std::invalid_argument);
  EXPECT_THROW(Scheduler({0}, {}, common::Rng(1)), std::invalid_argument);
}

TEST(Scheduler, ManyJobsLaunchInFcfsOrder) {
  Scheduler s = make_sched(8);
  for (workload::JobId id = 1; id <= 4; ++id) {
    s.submit(make_job(id, 24));  // 2 nodes each
  }
  const auto started = s.try_launch(Seconds{0.0});
  ASSERT_EQ(started.size(), 4u);
  EXPECT_EQ(started, (std::vector<workload::JobId>{1, 2, 3, 4}));
  EXPECT_EQ(s.free_node_count(), 0u);
}

TEST(Scheduler, SubmittedNonQueuedJobThrows) {
  Scheduler s = make_sched();
  Job j = make_job(1, 12);
  j.start({0}, {12}, Seconds{0.0});
  EXPECT_THROW(s.submit(std::move(j)), std::invalid_argument);
}

// Conservation property: across a random submit/advance/finish workload,
// nodes owned by running jobs + free nodes always equals the machine.
class SchedulerConservation : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerConservation, NodeAccountingAlwaysConsistent) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
  Scheduler s = make_sched(16);
  workload::JobId next_id = 1;
  double t = 0.0;
  for (int step = 0; step < 300; ++step) {
    t += 30.0;
    if (s.queue_length() == 0) {
      const int nprocs = static_cast<int>(rng.uniform_int(1, 96));
      s.submit(make_job(next_id++, nprocs));
    }
    s.try_launch(Seconds{t});
    // Advance running jobs and retire finished ones.
    std::vector<workload::JobId> done;
    for (const auto id : s.running_jobs()) {
      if (s.find(id)->advance(Seconds{30.0}, 1.0, Seconds{t})) {
        done.push_back(id);
      }
    }
    for (const auto id : done) s.on_job_finished(id);

    // Invariant: every node is either free or owned by exactly one
    // running job.
    std::size_t owned = 0;
    for (int n = 0; n < s.total_nodes(); ++n) {
      const auto owner = s.job_on_node(static_cast<hw::NodeId>(n));
      if (!owner) continue;
      ++owned;
      const Job* j = s.find(*owner);
      ASSERT_NE(j, nullptr);
      ASSERT_EQ(j->state(), JobState::kRunning);
    }
    ASSERT_EQ(owned + s.free_node_count(),
              static_cast<std::size_t>(s.total_nodes()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerConservation, ::testing::Range(1, 7));

}  // namespace
}  // namespace pcap::sched
