#include "power/thresholds.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "power/checkpoint.hpp"

namespace pcap::power {
namespace {

ThresholdParams params(std::int64_t training = 10, std::int64_t adjust = 5) {
  ThresholdParams p;
  p.provision = Watts{1000.0};
  p.training_cycles = training;
  p.adjust_period_cycles = adjust;
  return p;
}

TEST(Thresholds, InitialPeakIsProvision) {
  const ThresholdLearner l(params());
  EXPECT_EQ(l.p_peak(), Watts{1000.0});
  EXPECT_TRUE(l.training());
}

TEST(Thresholds, PaperFactors) {
  // P_H = 93% of P_peak, P_L = 84% of P_peak (§III.A).
  const ThresholdLearner l(params());
  EXPECT_NEAR(l.p_high().value(), 930.0, 1e-9);
  EXPECT_NEAR(l.p_low().value(), 840.0, 1e-9);
  EXPECT_LE(l.p_low(), l.p_high());
}

TEST(Thresholds, TrainingEndsAfterConfiguredCycles) {
  ThresholdLearner l(params(3));
  l.observe(Watts{500.0});
  EXPECT_TRUE(l.training());
  l.observe(Watts{500.0});
  EXPECT_TRUE(l.training());
  l.observe(Watts{500.0});
  EXPECT_FALSE(l.training());
  EXPECT_EQ(l.cycles_observed(), 3);
}

TEST(Thresholds, TrainingPeakBecomesPPeak) {
  ThresholdLearner l(params(3));
  l.observe(Watts{700.0});
  l.observe(Watts{900.0});  // training max
  l.observe(Watts{800.0});
  EXPECT_FALSE(l.training());
  EXPECT_EQ(l.p_peak(), Watts{900.0});
  EXPECT_NEAR(l.p_low().value(), 0.84 * 900.0, 1e-9);
  EXPECT_NEAR(l.p_high().value(), 0.93 * 900.0, 1e-9);
  EXPECT_EQ(l.adjustments(), 1);
}

TEST(Thresholds, TrainingCanLowerPeakBelowProvision) {
  // The paper replaces the provision-initialised P_peak with the observed
  // training maximum, which can be lower.
  ThresholdLearner l(params(2));
  l.observe(Watts{400.0});
  l.observe(Watts{450.0});
  EXPECT_EQ(l.p_peak(), Watts{450.0});
}

TEST(Thresholds, PeriodicAdjustmentAfterTraining) {
  ThresholdLearner l(params(1, 3));
  l.observe(Watts{500.0});  // training ends, peak = 500
  EXPECT_EQ(l.p_peak(), Watts{500.0});
  l.observe(Watts{600.0});
  l.observe(Watts{650.0});
  EXPECT_EQ(l.p_peak(), Watts{500.0});  // not yet adjusted
  l.observe(Watts{550.0});              // t_p cycles reached
  EXPECT_EQ(l.p_peak(), Watts{650.0});  // running max adopted
}

// Regression: the observation window was never reset after an adoption,
// so adjust() kept re-adopting the all-time maximum and thresholds could
// only ever ratchet upward — one spike during training inflated P_peak
// for the rest of the run.
TEST(Thresholds, AdjustmentTracksFallingPeaks) {
  ThresholdLearner l(params(1, 2));
  l.observe(Watts{1000.0});  // training ends: P_peak = 1000
  EXPECT_EQ(l.p_peak(), Watts{1000.0});
  l.observe(Watts{500.0});
  l.observe(Watts{400.0});  // t_p reached: adopt the window peak
  EXPECT_EQ(l.p_peak(), Watts{500.0});
  l.observe(Watts{300.0});
  l.observe(Watts{250.0});
  EXPECT_EQ(l.p_peak(), Watts{300.0});
  // The all-time peak is still reported for observability.
  EXPECT_EQ(l.running_peak(), Watts{1000.0});
}

TEST(Thresholds, QuietWindowKeepsPreviousPeak) {
  // A window in which nothing was observed above zero must not wipe the
  // learned P_peak.
  ThresholdLearner l(params(1, 1));
  l.observe(Watts{800.0});
  EXPECT_EQ(l.p_peak(), Watts{800.0});
  l.observe(Watts{0.0});  // adjustment with an empty window
  EXPECT_EQ(l.p_peak(), Watts{800.0});
}

TEST(Thresholds, RunningPeakTracksGlobalMax) {
  ThresholdLearner l(params(2));
  l.observe(Watts{300.0});
  l.observe(Watts{800.0});
  l.observe(Watts{100.0});
  EXPECT_EQ(l.running_peak(), Watts{800.0});
}

TEST(Thresholds, ZeroTrainingStartsLive) {
  ThresholdLearner l(params(0, 2));
  EXPECT_FALSE(l.training());
  l.observe(Watts{100.0});
  l.observe(Watts{200.0});
  EXPECT_EQ(l.p_peak(), Watts{200.0});
}

TEST(Thresholds, ManualPeakOverridesAndFreezes) {
  ThresholdLearner l(params(1, 1));
  l.set_manual_peak(Watts{2000.0});
  EXPECT_EQ(l.p_peak(), Watts{2000.0});
  for (int i = 0; i < 10; ++i) l.observe(Watts{3000.0});
  EXPECT_EQ(l.p_peak(), Watts{2000.0});  // frozen
}

TEST(Thresholds, ManualPeakWithoutFreezeKeepsLearning) {
  ThresholdLearner l(params(1, 1));
  l.set_manual_peak(Watts{2000.0}, /*freeze=*/false);
  l.observe(Watts{3000.0});  // ends training, adopts running peak
  l.observe(Watts{3000.0});
  EXPECT_EQ(l.p_peak(), Watts{3000.0});
}

// Regression: set_manual_peak left the observation window running, so
// the first adjust() after a live (freeze = false) override adopted a
// window peak accumulated from samples observed BEFORE the administrator
// intervened — silently undoing the manual value up to t_p - 1 cycles
// later. The override must start a fresh window: only readings taken
// after it may displace it, and they get a full t_p period to accumulate.
TEST(Thresholds, ManualPeakStartsFreshObservationWindow) {
  ThresholdLearner l(params(0, 5));
  for (int i = 0; i < 4; ++i) l.observe(Watts{900.0});
  l.set_manual_peak(Watts{500.0}, /*freeze=*/false);
  EXPECT_EQ(l.p_peak(), Watts{500.0});
  // The very next observation used to trip an adjustment that re-adopted
  // the stale 900 W window peak.
  l.observe(Watts{400.0});
  EXPECT_EQ(l.p_peak(), Watts{500.0});
  for (int i = 0; i < 4; ++i) l.observe(Watts{400.0});
  // A full post-override window elapsed: fresh readings take over.
  EXPECT_EQ(l.p_peak(), Watts{400.0});
}

// Regression: a manual override issued DURING the training period used to
// leave training() true (the flag was derived purely from the cycle
// count), so capping stayed disabled — and the admin's value was silently
// replaced by the observed peak — until the full training period elapsed.
// §III.A says the override takes effect immediately, frozen or not.
TEST(Thresholds, ManualPeakDuringTrainingEndsTrainingImmediately) {
  ThresholdLearner live(params(100, 5));
  live.observe(Watts{500.0});
  ASSERT_TRUE(live.training());
  live.set_manual_peak(Watts{900.0}, /*freeze=*/false);
  EXPECT_FALSE(live.training());
  EXPECT_EQ(live.p_peak(), Watts{900.0});

  ThresholdLearner frozen(params(100, 5));
  frozen.observe(Watts{500.0});
  ASSERT_TRUE(frozen.training());
  frozen.set_manual_peak(Watts{900.0}, /*freeze=*/true);
  EXPECT_FALSE(frozen.training());

  // The latch survives warm restart: a restored learner must not fall
  // back into the training period it already left.
  ThresholdLearner restored(params(100, 5));
  restored.restore(live.checkpoint());
  EXPECT_FALSE(restored.training());
  EXPECT_EQ(restored.p_peak(), Watts{900.0});
}

// Regression: a non-finite or negative meter reading slipping past
// telemetry rejection used to poison the peaks — a NaN sticks in every
// std::max from then on, and a negative/infinite value skews what
// adjust() adopts as P_peak permanently. Rejected samples still advance
// the clocks (the cycle did happen), but never touch the peaks.
TEST(Thresholds, RejectsNonFiniteAndNegativeObservations) {
  ThresholdLearner l(params(3, 5));
  l.observe(Watts{500.0});
  l.observe(Watts{std::numeric_limits<double>::quiet_NaN()});
  l.observe(Watts{-50.0});
  EXPECT_EQ(l.rejected_observations(), 2u);
  // The clock advanced through the rejected samples: training ended on
  // schedule, adopting the one plausible reading as P_peak.
  EXPECT_FALSE(l.training());
  EXPECT_EQ(l.p_peak(), Watts{500.0});
  EXPECT_EQ(l.running_peak(), Watts{500.0});
  EXPECT_FALSE(std::isnan(l.p_low().value()));

  l.observe(Watts{std::numeric_limits<double>::infinity()});
  EXPECT_EQ(l.rejected_observations(), 3u);
  EXPECT_EQ(l.running_peak(), Watts{500.0});
  // A zero reading is plausible (an idle PDU leg) and must NOT count as
  // rejected.
  l.observe(Watts{0.0});
  EXPECT_EQ(l.rejected_observations(), 3u);
}

TEST(Thresholds, CustomMargins) {
  ThresholdParams p = params();
  p.red_margin = 0.05;
  p.yellow_margin = 0.20;
  const ThresholdLearner l(p);
  EXPECT_NEAR(l.p_high().value(), 950.0, 1e-9);
  EXPECT_NEAR(l.p_low().value(), 800.0, 1e-9);
}

TEST(Thresholds, BadParamsThrow) {
  ThresholdParams p = params();
  p.provision = Watts{0.0};
  EXPECT_THROW(ThresholdLearner{p}, std::invalid_argument);

  p = params();
  p.red_margin = 0.2;
  p.yellow_margin = 0.1;  // yellow < red
  EXPECT_THROW(ThresholdLearner{p}, std::invalid_argument);

  p = params();
  p.yellow_margin = 1.0;
  EXPECT_THROW(ThresholdLearner{p}, std::invalid_argument);

  p = params();
  p.adjust_period_cycles = 0;
  EXPECT_THROW(ThresholdLearner{p}, std::invalid_argument);

  EXPECT_THROW(ThresholdLearner(params()).set_manual_peak(Watts{0.0}),
               std::invalid_argument);
}

// Property: whatever the observation sequence, P_L <= P_H always holds and
// both track 84%/93% of the current P_peak.
class ThresholdInvariant : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdInvariant, FactorsHoldUnderRandomLoad) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  ThresholdLearner l(params(20, 7));
  for (int i = 0; i < 500; ++i) {
    l.observe(Watts{rng.uniform(100.0, 2000.0)});
    ASSERT_LE(l.p_low(), l.p_high());
    ASSERT_NEAR(l.p_low().value(), 0.84 * l.p_peak().value(), 1e-9);
    ASSERT_NEAR(l.p_high().value(), 0.93 * l.p_peak().value(), 1e-9);
    ASSERT_GE(l.running_peak(), l.p_peak() * 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdInvariant, ::testing::Range(1, 7));

}  // namespace
}  // namespace pcap::power
