#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"

namespace pcap::common {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, PushAndIndex) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 1);
  EXPECT_EQ(rb[1], 2);
  EXPECT_EQ(rb[2], 3);
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 3);
}

TEST(RingBuffer, OverwritesOldest) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 3);
  EXPECT_EQ(rb[1], 4);
  EXPECT_EQ(rb[2], 5);
}

TEST(RingBuffer, CapacityOne) {
  RingBuffer<int> rb(1);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb.back(), 2);
  EXPECT_EQ(rb.front(), 2);
}

TEST(RingBuffer, Clear) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.front(), 9);
}

TEST(RingBuffer, MutableIndexing) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb[0] = 42;
  EXPECT_EQ(rb.front(), 42);
}

TEST(RingBuffer, MoveOnlyTypes) {
  RingBuffer<std::unique_ptr<int>> rb(2);
  rb.push(std::make_unique<int>(5));
  rb.push(std::make_unique<int>(6));
  rb.push(std::make_unique<int>(7));
  EXPECT_EQ(*rb[0], 6);
  EXPECT_EQ(*rb[1], 7);
}

// Property: behaves exactly like a size-capped deque under random pushes.
class RingBufferModel : public ::testing::TestWithParam<int> {};

TEST_P(RingBufferModel, MatchesDequeReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t cap = 1 + rng.index(16);
  RingBuffer<int> rb(cap);
  std::deque<int> ref;
  for (int step = 0; step < 500; ++step) {
    const int v = static_cast<int>(rng.uniform_int(-1000, 1000));
    rb.push(v);
    ref.push_back(v);
    if (ref.size() > cap) ref.pop_front();
    ASSERT_EQ(rb.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(rb[i], ref[i]) << "step " << step << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingBufferModel, ::testing::Range(1, 9));

}  // namespace
}  // namespace pcap::common
