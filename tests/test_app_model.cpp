#include "workload/app_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pcap::workload {
namespace {

AppModel two_phase_app() {
  AppModel m;
  m.name = "toy";
  m.iteration = {
      Phase{.name = "hot",
            .cpu_utilization = 0.9,
            .frequency_sensitivity = 0.8,
            .mem_fraction = 0.3,
            .comm_bytes_per_proc_per_s = 0.0,
            .seconds_per_iteration = 30.0},
      Phase{.name = "cold",
            .cpu_utilization = 0.3,
            .frequency_sensitivity = 0.2,
            .mem_fraction = 0.3,
            .comm_bytes_per_proc_per_s = 1e7,
            .seconds_per_iteration = 10.0},
  };
  m.reference_duration_s = 600.0;
  m.reference_nprocs = 64;
  m.scaling_alpha = 0.9;
  return m;
}

TEST(AppModel, IterationSeconds) {
  EXPECT_DOUBLE_EQ(two_phase_app().iteration_seconds(), 40.0);
}

TEST(AppModel, DurationAtReference) {
  EXPECT_DOUBLE_EQ(two_phase_app().duration_at(64), 600.0);
}

TEST(AppModel, StrongScalingShrinksWithProcs) {
  const AppModel m = two_phase_app();
  EXPECT_GT(m.duration_at(8), m.duration_at(64));
  EXPECT_GT(m.duration_at(64), m.duration_at(256));
  // alpha = 0.9: quadrupling procs gives 4^0.9 speedup.
  EXPECT_NEAR(m.duration_at(16) / m.duration_at(64), std::pow(4.0, 0.9),
              1e-9);
}

TEST(AppModel, DurationAtRejectsBadProcs) {
  EXPECT_THROW((void)two_phase_app().duration_at(0), std::invalid_argument);
  EXPECT_THROW((void)two_phase_app().duration_at(-8), std::invalid_argument);
}

TEST(AppModel, PhaseAtWalksTheIteration) {
  const AppModel m = two_phase_app();
  EXPECT_EQ(m.phase_at(0.0).name, "hot");
  EXPECT_EQ(m.phase_at(29.9).name, "hot");
  EXPECT_EQ(m.phase_at(30.0).name, "cold");
  EXPECT_EQ(m.phase_at(39.9).name, "cold");
}

TEST(AppModel, PhaseAtCycles) {
  const AppModel m = two_phase_app();
  EXPECT_EQ(m.phase_at(40.0).name, "hot");  // second iteration
  EXPECT_EQ(m.phase_at(75.0).name, "cold");
  EXPECT_EQ(m.phase_at(4000.0).name, m.phase_at(0.0).name);
}

TEST(AppModel, PhaseAtNegativeClampsToStart) {
  EXPECT_EQ(two_phase_app().phase_at(-5.0).name, "hot");
}

TEST(AppModel, PrologueRunsOnceThenIterates) {
  AppModel m = two_phase_app();
  m.prologue = {Phase{.name = "init",
                      .cpu_utilization = 0.2,
                      .frequency_sensitivity = 0.4,
                      .mem_fraction = 0.1,
                      .comm_bytes_per_proc_per_s = 0.0,
                      .seconds_per_iteration = 50.0}};
  EXPECT_DOUBLE_EQ(m.prologue_seconds(), 50.0);
  EXPECT_EQ(m.phase_at(0.0).name, "init");
  EXPECT_EQ(m.phase_at(49.9).name, "init");
  EXPECT_EQ(m.phase_at(50.0).name, "hot");
  EXPECT_EQ(m.phase_at(80.0).name, "cold");
  EXPECT_EQ(m.phase_at(90.0).name, "hot");  // cycling excludes the prologue
}

TEST(AppModel, MeanCpuUtilizationTimeWeighted) {
  // (0.9*30 + 0.3*10) / 40 = 0.75.
  EXPECT_NEAR(two_phase_app().mean_cpu_utilization(), 0.75, 1e-12);
}

TEST(AppModel, ValidateAcceptsGoodModel) {
  EXPECT_NO_THROW(two_phase_app().validate());
}

TEST(AppModel, ValidateRejectsBadModels) {
  AppModel m = two_phase_app();
  m.name = "";
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = two_phase_app();
  m.iteration.clear();
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = two_phase_app();
  m.reference_duration_s = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = two_phase_app();
  m.reference_nprocs = 0;
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = two_phase_app();
  m.scaling_alpha = 2.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = two_phase_app();
  m.iteration[0].cpu_utilization = 3.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = two_phase_app();
  Phase bad;
  bad.cpu_utilization = -1.0;
  m.prologue = {bad};
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(AppModel, PhaseAtWithNoPhasesThrows) {
  AppModel m;
  m.name = "empty";
  EXPECT_THROW((void)m.phase_at(0.0), std::logic_error);
}

}  // namespace
}  // namespace pcap::workload
