// Boundary conditions of the event-driven quiescence path.
//
// The tick loop advances stable nodes in closed form (energy = P·Δt, RC
// thermal exponential, linear phase progress) and wakes them on events:
// phase boundaries, job start/end, control-cycle boundaries, DVFS
// actuation. These tests pin the edges where fast-forward windows and
// wake events coincide — the places an off-by-one-tick or a missed
// heat-through would drift the trajectory away from the full per-tick
// sweep. Every cluster test compares event-driven against full-sweep
// bit-for-bit (meter trace, job energy attribution, final node
// temperatures), the same identity bench_micro_tick --verify gates in CI.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "hw/node_pool.hpp"
#include "hw/node_spec.hpp"
#include "metrics/trace_recorder.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"
#include "workload/app_model.hpp"
#include "workload/phase.hpp"

namespace pcap {
namespace {

struct RunResult {
  std::vector<metrics::CyclePoint> points;
  std::vector<metrics::JobRecord> finished;
  std::vector<double> final_temps_c;
};

/// One recorded cluster run. `app` overrides the generated workload (so a
/// test can place phase boundaries exactly where it wants them);
/// `provision_frac` scales the cap (0.7 keeps the manager actuating DVFS
/// changes, 0.9 leaves long green stretches where nodes quiesce).
RunResult run_cluster(bool event_driven, std::size_t worker_threads,
                      const workload::AppModel* app, double provision_frac,
                      std::uint64_t seed) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 64;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = seed;
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  cfg.parallel_node_threshold = 1;
  cfg.parallel_grain = 8;
  cfg.event_driven_ticks = event_driven;
  if (app != nullptr) cfg.app_suite = {*app};
  cluster::Cluster cl(cfg);

  power::CappingManagerParams p;
  p.thresholds.provision = cl.theoretical_peak() * provision_frac;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  auto mgr = std::make_unique<power::CappingManager>(
      p, power::make_policy("mpc"), common::Rng(seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));

  cl.start_recording();
  cl.run(Seconds{400.0});

  RunResult out;
  out.points = cl.recorder().points();
  out.finished = cl.finished_records();
  // Quiescent nodes hold their temperature lazily at the last refresh
  // instant; materialise everything at end-of-run sim-time so the
  // comparison sees one consistent snapshot.
  out.final_temps_c.reserve(cfg.num_nodes);
  for (const hw::Node& n : cl.nodes()) {
    out.final_temps_c.push_back(n.temperature_at(cl.now()).value());
  }
  return out;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const metrics::CyclePoint& pa = a.points[i];
    const metrics::CyclePoint& pb = b.points[i];
    EXPECT_EQ(pa.time_s, pb.time_s) << "tick " << i;
    EXPECT_EQ(pa.power_w, pb.power_w) << "tick " << i;
    EXPECT_EQ(pa.state, pb.state) << "tick " << i;
    EXPECT_EQ(pa.running_jobs, pb.running_jobs) << "tick " << i;
    EXPECT_EQ(pa.targets, pb.targets) << "tick " << i;
    EXPECT_EQ(pa.transitions, pb.transitions) << "tick " << i;
  }
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id) << "job " << i;
    EXPECT_EQ(a.finished[i].actual_s, b.finished[i].actual_s) << "job " << i;
    EXPECT_EQ(a.finished[i].energy_j, b.finished[i].energy_j) << "job " << i;
  }
  ASSERT_EQ(a.final_temps_c.size(), b.final_temps_c.size());
  for (std::size_t i = 0; i < a.final_temps_c.size(); ++i) {
    EXPECT_EQ(a.final_temps_c[i], b.final_temps_c[i]) << "node " << i;
  }
}

// -- wake exactly on a control-cycle boundary ---------------------------------
//
// Phases lasting exactly one control period put every phase-boundary wake
// on the same tick as the control-cycle boundary: the workload refresh,
// the utilisation-staircase wake, and the manager cycle all fire at once.
// A fencepost error in the fast-forward window (advancing to the boundary
// twice, or past it) breaks the A/B identity immediately.
TEST(Quiescence, WakeOnControlCycleBoundaryIsExact) {
  workload::AppModel app;
  app.name = "boundary-aligned";
  app.iteration = {
      {.name = "compute",
       .cpu_utilization = 0.9,
       .frequency_sensitivity = 1.0,
       .mem_fraction = 0.3,
       .seconds_per_iteration = 4.0},
      {.name = "exchange",
       .cpu_utilization = 0.2,
       .frequency_sensitivity = 0.1,
       .mem_fraction = 0.3,
       .comm_bytes_per_proc_per_s = 1e8,
       .network_sensitivity = 0.5,
       .seconds_per_iteration = 4.0},
  };
  app.reference_duration_s = 48.0;
  app.reference_nprocs = 8;
  app.scaling_alpha = 1.0;
  app.validate();

  const RunResult off = run_cluster(false, 1, &app, 0.9, 911u);
  ASSERT_GT(off.points.size(), 90u);
  ASSERT_GT(off.finished.size(), 0u) << "no job ever finished";
  const RunResult on = run_cluster(true, 1, &app, 0.9, 911u);
  expect_identical(off, on);
  const RunResult on_parallel = run_cluster(true, 4, &app, 0.9, 911u);
  expect_identical(off, on_parallel);
}

// -- sub-tick phases ----------------------------------------------------------
//
// Phases shorter than a tick mean several phase boundaries inside one
// fast-forward step: the workload engine folds progress through them and
// the closed-form advance must land on the same folded state as the
// per-tick sweep. (True zero-duration phases are rejected at the model
// layer — see ZeroDurationPhaseIsRejected — so the fold always
// terminates.)
TEST(Quiescence, SubTickPhasesFoldIdentically) {
  workload::AppModel app;
  app.name = "sub-tick";
  app.iteration = {
      {.name = "burst",
       .cpu_utilization = 1.0,
       .frequency_sensitivity = 1.0,
       .seconds_per_iteration = 0.25},
      {.name = "stall",
       .cpu_utilization = 0.1,
       .frequency_sensitivity = 0.0,
       .seconds_per_iteration = 0.5},
      {.name = "mix",
       .cpu_utilization = 0.6,
       .frequency_sensitivity = 0.5,
       .seconds_per_iteration = 0.25},
  };
  app.reference_duration_s = 30.0;
  app.reference_nprocs = 8;
  app.scaling_alpha = 1.0;
  app.validate();

  const RunResult off = run_cluster(false, 1, &app, 0.9, 74123u);
  ASSERT_GT(off.finished.size(), 0u) << "no job ever finished";
  const RunResult on = run_cluster(true, 1, &app, 0.9, 74123u);
  expect_identical(off, on);
}

TEST(Quiescence, ZeroDurationPhaseIsRejected) {
  workload::Phase p;
  p.name = "degenerate";
  p.seconds_per_iteration = 0.0;
  EXPECT_THROW(workload::validate_phase(p), std::invalid_argument);
  p.seconds_per_iteration = -1.0;
  EXPECT_THROW(workload::validate_phase(p), std::invalid_argument);
}

// -- thermal fast-forward across a DVFS change --------------------------------
//
// A DVFS command landing mid-quiescence-window splits the thermal
// integral: heating up to the change instant happens at the old level's
// power, the rest at the new level's. set_level's internal heat-through
// must therefore be exactly equivalent to an explicit advance to the
// change instant followed by the level write — if it re-evaluates power
// first (or skips the heat-through), a long-quiescent node drifts from a
// frequently-swept one.
TEST(Quiescence, ThermalFastForwardAcrossDvfsChangeIsExact) {
  const hw::NodeSpecPtr spec = hw::tianhe1a_node_spec();
  const hw::Level low = spec->ladder.lowest();

  hw::NodeStatePool lazy(1);
  lazy.init_slot(0, spec.get(), 1.0);
  lazy.set_cpu_utilization(0, 0.9);
  lazy.set_busy(0, true);

  hw::NodeStatePool eager(1);
  eager.init_slot(0, spec.get(), 1.0);
  eager.set_cpu_utilization(0, 0.9);
  eager.set_busy(0, true);

  // Lazy: the slot sleeps from t=0 straight through the DVFS change at
  // t=150; set_level itself must heat through [0, 150) at the old draw.
  lazy.set_now(150.0);
  lazy.set_level(0, low);
  const double lazy_t = lazy.advance_temperature_to(0, 200.0).value();

  // Eager: explicit advance to the change instant, then the same write.
  eager.advance_temperature_to(0, 150.0);
  eager.set_now(150.0);
  eager.set_level(0, low);
  const double eager_t = eager.advance_temperature_to(0, 200.0).value();

  EXPECT_EQ(lazy_t, eager_t);
  // And the run genuinely heated the node (the comparison is not 0 == 0).
  EXPECT_GT(lazy_t, spec->thermal.ambient.value());
}

// A cluster-level version of the same guard: a tight cap keeps the
// manager issuing DVFS transitions all run long, so level changes keep
// landing on nodes in every quiescence state; the event-driven run must
// still match the full sweep bit-for-bit, final temperatures included.
TEST(Quiescence, DvfsChurnUnderTightCapStaysIdentical) {
  const RunResult off = run_cluster(false, 1, nullptr, 0.7, 515253u);
  std::size_t transitions = 0;
  for (const metrics::CyclePoint& pt : off.points) transitions += pt.transitions;
  ASSERT_GT(transitions, 0u) << "cap never actuated; test exercises nothing";
  const RunResult on = run_cluster(true, 1, nullptr, 0.7, 515253u);
  expect_identical(off, on);
}

// -- steady-green collect stride ----------------------------------------------
//
// The dedicated stride test the fast_params comment in test_manager.cpp
// promises: on quiet green cycles the collector only sweeps on stride
// marks (cycle_count multiples), and any cycle that needs a policy
// context — here, a yellow meter reading — collects unconditionally, so
// a decision never reads across a strided gap.
TEST(Quiescence, GreenCollectStrideSkipsQuietCyclesOnly) {
  const int n = 4;
  std::vector<hw::Node> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.emplace_back(static_cast<hw::NodeId>(i), hw::tianhe1a_node_spec());
  }
  sched::Scheduler scheduler(std::vector<int>(n, 12), {}, common::Rng(3));

  power::CappingManagerParams p;
  p.thresholds.provision = Watts{2000.0};
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  p.green_collect_stride = 4;
  power::CappingManager m(p, power::make_policy("mpc"), common::Rng(7));
  std::vector<hw::NodeId> ids;
  for (int i = 0; i < n; ++i) ids.push_back(static_cast<hw::NodeId>(i));
  m.set_candidate_set(ids);

  std::uint64_t delivered_before = 0;
  // 12 quiet green cycles: the sweep fires exactly on every 4th cycle.
  for (int c = 0; c < 12; ++c) {
    const bool expect_collect = (m.collector().cycle_count() + 1) % 4 == 0;
    m.cycle(Watts{100.0}, nodes, scheduler,
            Seconds{static_cast<double>(c)});
    const std::uint64_t delivered = m.collector().samples_delivered();
    if (expect_collect) {
      EXPECT_EQ(delivered, delivered_before + n) << "cycle " << c;
    } else {
      EXPECT_EQ(delivered, delivered_before) << "cycle " << c;
    }
    delivered_before = delivered;
  }

  // Yellow cycles collect regardless of stride position: drive the meter
  // above provision for three consecutive cycles (none on a stride mark
  // boundary-aligned with the quiet pattern above) and expect a sweep on
  // every one of them.
  for (int c = 12; c < 15; ++c) {
    m.cycle(Watts{2500.0}, nodes, scheduler,
            Seconds{static_cast<double>(c)});
    const std::uint64_t delivered = m.collector().samples_delivered();
    EXPECT_EQ(delivered, delivered_before + n) << "yellow cycle " << c;
    delivered_before = delivered;
  }
}

}  // namespace
}  // namespace pcap
