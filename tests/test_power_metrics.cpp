#include "metrics/power_metrics.hpp"

#include <gtest/gtest.h>

namespace pcap::metrics {
namespace {

PowerTrace trace(std::vector<double> watts, double dt = 1.0) {
  PowerTrace t;
  t.dt = Seconds{dt};
  t.watts = std::move(watts);
  return t;
}

TEST(PowerTrace, DurationAndAdd) {
  PowerTrace t;
  t.dt = Seconds{2.0};
  t.add(Watts{100.0});
  t.add(Watts{200.0});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.duration(), Seconds{4.0});
}

TEST(PeakPower, FindsMax) {
  EXPECT_DOUBLE_EQ(peak_power(trace({100.0, 300.0, 200.0})).value(), 300.0);
}

TEST(PeakPower, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(peak_power(trace({})).value(), 0.0);
}

TEST(MeanPower, Averages) {
  EXPECT_DOUBLE_EQ(mean_power(trace({100.0, 200.0, 300.0})).value(), 200.0);
}

TEST(TotalEnergy, IntegratesOverDt) {
  EXPECT_DOUBLE_EQ(total_energy(trace({100.0, 200.0}, 2.0)).value(), 600.0);
}

TEST(OverspentEnergy, OnlyAboveThreshold) {
  // Above 150: (50 + 0 + 150) * dt.
  EXPECT_DOUBLE_EQ(
      overspent_energy(trace({200.0, 100.0, 300.0}), Watts{150.0}).value(),
      200.0);
}

TEST(OverspentEnergy, ZeroWhenNeverAbove) {
  EXPECT_DOUBLE_EQ(
      overspent_energy(trace({100.0, 120.0}), Watts{150.0}).value(), 0.0);
}

TEST(TimeAbove, CountsSamples) {
  EXPECT_DOUBLE_EQ(
      time_above(trace({200.0, 100.0, 151.0}, 2.0), Watts{150.0}).value(),
      4.0);
}

TEST(TimeAbove, ThresholdExactSampleIsNotAbove) {
  // The boundary convention (power_metrics.hpp): a sample sitting exactly
  // at the threshold is NOT above it, matching overspent_energy's
  // max(0, w - th) which contributes nothing there.
  EXPECT_DOUBLE_EQ(
      time_above(trace({150.0, 150.0, 150.0}), Watts{150.0}).value(), 0.0);
}

TEST(AccumulatedOverspend, MatchesPaperFormula) {
  // P = {200, 100, 300}, th = 150. Overspend = 200, total = 600.
  EXPECT_NEAR(accumulated_overspend(trace({200.0, 100.0, 300.0}),
                                    Watts{150.0}),
              200.0 / 600.0, 1e-12);
}

TEST(AccumulatedOverspend, ZeroForSafeTrace) {
  EXPECT_DOUBLE_EQ(
      accumulated_overspend(trace({100.0, 100.0}), Watts{150.0}), 0.0);
}

TEST(AccumulatedOverspend, EmptyTraceIsZero) {
  EXPECT_DOUBLE_EQ(accumulated_overspend(trace({}), Watts{150.0}), 0.0);
}

TEST(AccumulatedOverspend, IndependentOfDt) {
  // The ratio of two integrals over the same trace cancels dt.
  const double a =
      accumulated_overspend(trace({200.0, 100.0, 300.0}, 1.0), Watts{150.0});
  const double b =
      accumulated_overspend(trace({200.0, 100.0, 300.0}, 5.0), Watts{150.0});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(AccumulatedOverspend, CappingReducesIt) {
  // A capped version of the same trace (clipped at 250) must score lower.
  const auto uncapped = trace({200.0, 100.0, 300.0, 280.0});
  auto capped = uncapped;
  for (double& w : capped.watts) w = std::min(w, 250.0);
  EXPECT_LT(accumulated_overspend(capped, Watts{150.0}),
            accumulated_overspend(uncapped, Watts{150.0}));
}

TEST(FractionAbove, CountsStrictlyAbove) {
  // Strict >: the threshold-exact 150 W sample does not count. Before the
  // fix this returned 2/3 (inclusive) while time_above said 1 sample.
  EXPECT_DOUBLE_EQ(fraction_above(trace({100.0, 150.0, 200.0}), Watts{150.0}),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(fraction_above(trace({}), Watts{1.0}), 0.0);
}

TEST(FractionAbove, AgreesWithTimeAboveAtThreshold) {
  // fraction_above * duration == time_above, including at the boundary.
  const auto t = trace({149.9, 150.0, 150.1, 200.0}, 2.0);
  EXPECT_DOUBLE_EQ(
      fraction_above(t, Watts{150.0}) * t.duration().value(),
      time_above(t, Watts{150.0}).value());
}

TEST(AccumulatedOverspend, ZeroDtTraceIsZero) {
  // Degenerate dt = 0: both integrals vanish; no division blow-up.
  EXPECT_DOUBLE_EQ(
      accumulated_overspend(trace({200.0, 300.0}, 0.0), Watts{150.0}), 0.0);
}

TEST(AccumulatedOverspend, AllBelowThresholdIsZero) {
  EXPECT_DOUBLE_EQ(
      accumulated_overspend(trace({10.0, 20.0, 30.0}), Watts{150.0}), 0.0);
}

TEST(AccumulatedOverspend, AllAtThresholdIsZero) {
  // Every sample exactly at the threshold overspends nothing — the same
  // boundary convention time_above/fraction_above follow.
  EXPECT_DOUBLE_EQ(
      accumulated_overspend(trace({150.0, 150.0, 150.0}), Watts{150.0}),
      0.0);
}

TEST(BoundaryConvention, AllFourMetricsAgreeOnAThresholdExactSample) {
  // ΔP×T boundary pin: one sample exactly AT the threshold, one below,
  // one strictly above. All four metrics must count only the strict
  // excursion — an exact-at-threshold sample contributes zero overspend,
  // zero time and zero fraction, never a mix of conventions.
  const auto t = trace({150.0, 149.0, 151.0}, 2.0);
  const Watts th{150.0};
  EXPECT_DOUBLE_EQ(overspent_energy(t, th).value(), 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(time_above(t, th).value(), 2.0);
  EXPECT_DOUBLE_EQ(fraction_above(t, th), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(accumulated_overspend(t, th),
                   (1.0 * 2.0) / ((150.0 + 149.0 + 151.0) * 2.0));
}

TEST(EnergyDelayProduct, Powers) {
  EXPECT_DOUBLE_EQ(energy_delay_product(Joules{100.0}, Seconds{2.0}, 1),
                   200.0);
  EXPECT_DOUBLE_EQ(energy_delay_product(Joules{100.0}, Seconds{2.0}, 2),
                   400.0);
  EXPECT_DOUBLE_EQ(energy_delay_product(Joules{100.0}, Seconds{2.0}, 0),
                   100.0);
  EXPECT_THROW(energy_delay_product(Joules{1.0}, Seconds{1.0}, -1),
               std::invalid_argument);
}

TEST(WorkPerWatt, Green500Style) {
  // 1000 work units in 10 s at mean 50 W -> 100 units/s / 50 W = 2.
  EXPECT_DOUBLE_EQ(work_per_watt(1000.0, Joules{500.0}, Seconds{10.0}), 2.0);
  EXPECT_DOUBLE_EQ(work_per_watt(1.0, Joules{0.0}, Seconds{10.0}), 0.0);
}

TEST(WorkPerWatt, ZeroDurationIsZero) {
  // Degenerate zero/negative durations short-circuit to 0 instead of
  // dividing by zero.
  EXPECT_DOUBLE_EQ(work_per_watt(1000.0, Joules{500.0}, Seconds{0.0}), 0.0);
  EXPECT_DOUBLE_EQ(work_per_watt(1000.0, Joules{500.0}, Seconds{-1.0}), 0.0);
}

TEST(Pue, FacilityOverIt) {
  EXPECT_DOUBLE_EQ(pue(Watts{170.0}, Watts{100.0}), 1.7);
  EXPECT_THROW(pue(Watts{100.0}, Watts{0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace pcap::metrics
